"""The paper's Section II example: the hotel key-management specification.

The specification models a front desk issuing room keys.  The seeded bug is
the over-restrictive constraint the paper discusses (a guest must hold *no*
keys at check-in); here we reproduce the scenario in the static fragment of
the dialect and let every technique family attempt the repair.

Run with::

    python examples/hotel_locking.py
"""

from repro.analyzer import Analyzer
from repro.llm import FeedbackLevel, MockGPT, PromptSetting, RepairHints
from repro.llm.mock_gpt import GPT35_PROFILE, GPT4_PROFILE
from repro.metrics import rep
from repro.repair import (
    Atr,
    BeAFix,
    MultiRoundLLM,
    RepairTask,
    SingleRoundLLM,
)

CORRECT = """
abstract sig Key {}
sig RoomKey extends Key {}
sig Room { assignedKeys: some RoomKey }
sig Guest { holding: set Key }
one sig FrontDesk { issued: Room -> lone Guest }

fact Policy {
  all r: Room, g: r.(FrontDesk.issued) | r.assignedKeys & g.holding in r.assignedKeys
  all g: Guest | g.holding in RoomKey
  all disj r1, r2: Room | no r1.assignedKeys & r2.assignedKeys
}

pred checkedIn { some FrontDesk.issued }

assert KeysPartitioned {
  all disj r1, r2: Room | no r1.assignedKeys & r2.assignedKeys
}
assert OnlyRoomKeysHeld {
  all g: Guest | g.holding in RoomKey
}

run checkedIn for 3 expect 1
check KeysPartitioned for 3 expect 0
check OnlyRoomKeysHeld for 3 expect 0
"""

# The seeded bug: key sets of distinct rooms are allowed to overlap
# (the "no" became "some" — an over-permissive policy).  Only the *fact* is
# weakened (count=1); the assertion stays intact as the oracle.
FAULTY = CORRECT.replace(
    "all disj r1, r2: Room | no r1.assignedKeys & r2.assignedKeys",
    "all disj r1, r2: Room | some r1.assignedKeys & r2.assignedKeys",
    1,
)

HINTS = RepairHints(
    location="fact 'Policy', constraint 3",
    fix_description="A multiplicity keyword appears incorrect.",
    passing_assertion="KeysPartitioned",
)


def main() -> None:
    print("Faulty hotel policy command outcomes:")
    for result in Analyzer(FAULTY).execute_all():
        marker = "" if result.meets_expectation else "  <-- violated"
        print(f"  {result.kind} {result.name}: {'SAT' if result.sat else 'UNSAT'}{marker}")
    print()

    task = RepairTask.from_source(FAULTY)
    attempts = [
        BeAFix(),
        Atr(),
        SingleRoundLLM(
            MockGPT(seed=1, profile=GPT35_PROFILE), PromptSetting.LOC_FIX, HINTS
        ),
        MultiRoundLLM(MockGPT(seed=1, profile=GPT4_PROFILE), FeedbackLevel.GENERIC),
    ]
    for tool in attempts:
        result = tool.repair(task)
        fixed_text = result.final_source(task)
        print(
            f"{tool.name:<24} status={result.status.value:<10} "
            f"REP={rep(fixed_text, CORRECT)}  ({result.detail[:60]})"
        )


if __name__ == "__main__":
    main()
