"""Quickstart: analyze a specification, break it, and repair it.

Run with::

    python examples/quickstart.py
"""

from repro.analyzer import Analyzer
from repro.metrics import rep, syntax_match, token_match
from repro.repair import Atr, BeAFix, RepairTask

CORRECT = """
sig Node { next: lone Node }

fact Acyclic {
  all n: Node | n not in n.^next
}

pred nonEmpty { some Node }
assert NoCycle { no n: Node | n in n.^next }

run nonEmpty for 3 expect 1
check NoCycle for 3 expect 0
"""

# A typical novice slip: `^next` (all reachable nodes) became `next`
# (direct successor only), so longer cycles are no longer ruled out.
FAULTY = CORRECT.replace("n not in n.^next", "n not in n.next")


def show_analysis(title: str, source: str) -> None:
    print(f"== {title} ==")
    analyzer = Analyzer(source)
    for result in analyzer.execute_all():
        verdict = "SAT" if result.sat else "UNSAT"
        note = "" if result.meets_expectation else "   <-- unexpected!"
        print(f"  {result.kind} {result.name}: {verdict}{note}")
        if result.kind == "check" and result.instance is not None:
            print("  counterexample:")
            for line in result.instance.describe(analyzer.info).splitlines():
                print(f"    {line}")
    print()


def main() -> None:
    show_analysis("correct specification", CORRECT)
    show_analysis("faulty specification", FAULTY)

    task = RepairTask.from_source(FAULTY)
    for tool in (BeAFix(), Atr()):
        result = tool.repair(task)
        fixed_text = result.final_source(task)
        print(f"== {tool.name} ==")
        print(f"  status: {result.status.value} ({result.detail})")
        print(f"  REP vs ground truth: {rep(fixed_text, CORRECT)}")
        print(f"  Token Match:  {token_match(fixed_text, CORRECT):.3f}")
        print(f"  Syntax Match: {syntax_match(fixed_text, CORRECT):.3f}")
        print()


if __name__ == "__main__":
    main()
