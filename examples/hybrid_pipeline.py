"""Hybrid repair: the set-union analysis of RQ3 plus the pipeline hybrid.

Samples a slice of the Alloy4Fun benchmark, runs ATR and Multi-Round_None,
reports their individual/overlap/union repair capabilities (the shape of
Table II), and then runs the *pipeline* hybrid — traditional fault
localization feeding a location hint to the multi-round LLM — the direction
the paper's discussion proposes.

Run with::

    python examples/hybrid_pipeline.py
"""

from repro.benchmarks import load_benchmark
from repro.experiments import run_spec, sequential_hybrid
from repro.metrics import rep
from repro.repair import RepairTask


def main() -> None:
    specs = load_benchmark("alloy4fun", seed=0, scale=0.01)
    print(f"Sampled {len(specs)} Alloy4Fun specifications\n")

    atr_fixed: set[str] = set()
    llm_fixed: set[str] = set()
    pipeline_fixed: set[str] = set()

    for spec in specs:
        atr = run_spec(spec, "ATR", seed=0)
        llm = run_spec(spec, "Multi-Round_None", seed=0)
        if atr.rep:
            atr_fixed.add(spec.spec_id)
        if llm.rep:
            llm_fixed.add(spec.spec_id)
        hybrid_result = sequential_hybrid(spec, seed=0)
        hybrid_text = hybrid_result.final_source(
            RepairTask.from_source(spec.faulty_source)
        )
        if rep(hybrid_text, spec.truth_source):
            pipeline_fixed.add(spec.spec_id)

    union = atr_fixed | llm_fixed
    overlap = atr_fixed & llm_fixed
    total = len(specs)
    print(f"ATR alone:             {len(atr_fixed)}/{total}")
    print(f"Multi-Round_None:      {len(llm_fixed)}/{total}")
    print(f"overlap:               {len(overlap)}")
    print(f"set-union hybrid:      {len(union)}/{total}  (the paper's RQ3 measure)")
    print(f"pipeline hybrid:       {len(pipeline_fixed)}/{total}  "
          "(localization -> Loc hint -> multi-round LLM)")


if __name__ == "__main__":
    main()
