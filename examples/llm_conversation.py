"""Inspect the multi-round dual-agent dialogue, message by message.

Shows exactly what the Repair Agent sees at each feedback level, including
the Prompt Agent's tailored guidance in the Auto setting — the conversation
structure of Alhanahnah et al. (2024) that the study replicates.

Run with::

    python examples/llm_conversation.py
"""

from repro.llm import FeedbackLevel, MockGPT
from repro.llm.mock_gpt import GPT4_PROFILE
from repro.llm.client import Conversation, LLMClient
from repro.repair import MultiRoundLLM, RepairTask

FAULTY = """
sig Task { dependsOn: set Task }

fact Schedule {
  all t: Task | t in t.^dependsOn
}

pred busy { some t: Task | some t.dependsOn }
assert NoSelfDependency { no t: Task | t in t.^dependsOn }

run busy for 3 expect 1
check NoSelfDependency for 3 expect 0
"""


class TranscriptClient:
    """Wraps a client, printing each exchange as it happens."""

    def __init__(self, inner: LLMClient, label: str) -> None:
        self._inner = inner
        self._label = label

    def complete(self, conversation: Conversation) -> str:
        last_user = next(
            (m for m in reversed(conversation.messages) if m.role == "user"),
            None,
        )
        if last_user is not None:
            print(f"--- prompt to {self._label} " + "-" * 30)
            print(_clip(last_user.content))
        response = self._inner.complete(conversation)
        print(f"--- {self._label} replies " + "-" * 32)
        print(_clip(response))
        print()
        return response


def _clip(text: str, limit: int = 900) -> str:
    return text if len(text) <= limit else text[:limit] + "\n[... clipped ...]"


def main() -> None:
    task = RepairTask.from_source(FAULTY)
    for level in (FeedbackLevel.NONE, FeedbackLevel.AUTO):
        print("=" * 70)
        print(f"FEEDBACK LEVEL: {level.value}")
        print("=" * 70)
        tool = MultiRoundLLM(
            TranscriptClient(MockGPT(seed=5, profile=GPT4_PROFILE), "Repair Agent"),
            level,
            prompt_client=TranscriptClient(
                MockGPT(seed=9, profile=GPT4_PROFILE), "Prompt Agent"
            ),
        )
        result = tool.repair(task)
        print(f">>> outcome: {result.status.value} after {result.iterations} round(s)\n")


if __name__ == "__main__":
    main()
