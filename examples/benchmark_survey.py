"""Survey the regenerated benchmarks: sizes, fault mix, and difficulty.

Builds the full ARepair-38 suite plus a sample of the Alloy4Fun benchmark
and prints their statistics, then runs the dynamic-selector portfolio (the
paper's future-work extension) on a handful of specifications.

Run with::

    python examples/benchmark_survey.py
"""

from repro.benchmarks import load_benchmark, render_stats, summarize
from repro.llm.mock_gpt import GPT4_PROFILE, MockGPT
from repro.metrics import rep
from repro.repair import DynamicSelector, RepairTask, characterize


def main() -> None:
    arepair = load_benchmark("arepair", seed=0)
    alloy4fun = load_benchmark("alloy4fun", seed=0, scale=0.02)

    print(render_stats(summarize(arepair), "ARepair benchmark (full)"))
    print()
    print(render_stats(summarize(alloy4fun), "Alloy4Fun benchmark (2% sample)"))
    print()

    print("Dynamic selector on the first five Alloy4Fun faults:")
    selector = DynamicSelector(MockGPT(seed=3, profile=GPT4_PROFILE))
    for spec in alloy4fun[:5]:
        task = RepairTask.from_source(spec.faulty_source)
        profile = characterize(task)
        result = selector.repair(task)
        fixed = rep(result.final_source(task), spec.truth_source)
        kind = (
            "under-constrained"
            if profile.looks_underconstrained
            else "over-constrained"
        )
        print(
            f"  {spec.spec_id:<22} {kind:<18} depth={spec.depth} "
            f"-> REP={fixed}  ({result.detail.split(';')[-1].strip()[:50]})"
        )


if __name__ == "__main__":
    main()
