"""Setup shim for environments without the `wheel` package.

The canonical metadata lives in pyproject.toml; this file exists so that
`pip install -e .` works via the legacy `setup.py develop` path when PEP 660
editable builds are unavailable (no `wheel` distribution offline).
"""

from setuptools import setup

setup()
