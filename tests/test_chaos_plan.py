"""Fault plans: determinism, validation, pickling, cache-key digests."""

import pickle

import pytest

from repro.chaos.plan import SITES, FaultPlan, SiteConfig


class TestSiteCatalog:
    def test_catalog_covers_every_layer(self):
        prefixes = {name.split(".")[0] for name in SITES}
        assert {"sat", "analyzer", "repair", "llm", "persist"} <= prefixes

    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown injection site"):
            FaultPlan(seed=0, sites={"not.a.site": SiteConfig()})


class TestSiteConfigValidation:
    def test_probability_bounds(self):
        with pytest.raises(ValueError):
            SiteConfig(probability=1.5)
        with pytest.raises(ValueError):
            SiteConfig(probability=-0.1)

    def test_max_fires_and_start_after_bounds(self):
        with pytest.raises(ValueError):
            SiteConfig(max_fires=-1)
        with pytest.raises(ValueError):
            SiteConfig(start_after=-1)


class TestDraw:
    def test_draw_is_pure(self):
        plan = FaultPlan.for_sites(7, ["sat.budget"])
        assert plan.draw("sat.budget", 3) == plan.draw("sat.budget", 3)
        assert plan.draw("sat.budget", 3, salt="a") == plan.draw(
            "sat.budget", 3, salt="a"
        )

    def test_draw_varies_with_every_input(self):
        plan = FaultPlan.for_sites(7, ["sat.budget", "sat.flip"])
        base = plan.draw("sat.budget", 0)
        assert plan.draw("sat.budget", 1) != base
        assert plan.draw("sat.flip", 0) != base
        assert plan.draw("sat.budget", 0, salt="spec#1") != base
        assert FaultPlan.for_sites(8, ["sat.budget"]).draw("sat.budget", 0) != base

    def test_draw_ranges(self):
        plan = FaultPlan.for_sites(0, ["repair.crash"])
        for index in range(64):
            fraction, payload = plan.draw("repair.crash", index)
            assert 0.0 <= fraction < 1.0
            assert 0 <= payload < 2**32


class TestPlanObject:
    def test_mapping_normalizes_to_sorted_tuple(self):
        a = FaultPlan(
            seed=0,
            sites={"sat.flip": SiteConfig(), "sat.budget": SiteConfig()},
        )
        b = FaultPlan(
            seed=0,
            sites={"sat.budget": SiteConfig(), "sat.flip": SiteConfig()},
        )
        assert a == b
        assert a.site_names() == ["sat.budget", "sat.flip"]

    def test_config_for(self):
        config = SiteConfig(probability=0.5)
        plan = FaultPlan(seed=0, sites={"llm.garbage": config})
        assert plan.config_for("llm.garbage") == config
        assert plan.config_for("llm.truncate") is None

    def test_plan_pickles(self):
        plan = FaultPlan.for_sites(
            3, ["persist.corrupt", "repair.crash"], probability=0.25, max_fires=2
        )
        clone = pickle.loads(pickle.dumps(plan))
        assert clone == plan
        assert clone.draw("repair.crash", 5) == plan.draw("repair.crash", 5)


class TestDigest:
    def test_digest_stable_and_discriminating(self):
        plan = FaultPlan.for_sites(0, ["sat.budget"], probability=0.5)
        assert plan.digest() == FaultPlan.for_sites(
            0, ["sat.budget"], probability=0.5
        ).digest()
        assert plan.digest() != FaultPlan.for_sites(
            1, ["sat.budget"], probability=0.5
        ).digest()
        assert plan.digest() != FaultPlan.for_sites(
            0, ["sat.budget"], probability=0.6
        ).digest()
        assert plan.digest() != FaultPlan.for_sites(
            0, ["sat.flip"], probability=0.5
        ).digest()
