"""Instance tests: equality, canonical keys, rendering."""

from repro.analyzer.instance import Instance, make_instance


class TestInstance:
    def test_relation_lookup_defaults_empty(self):
        instance = make_instance({"A": {("x",)}})
        assert instance.relation("A") == frozenset({("x",)})
        assert instance.relation("missing") == frozenset()

    def test_atoms_collects_unary_tuples(self):
        instance = make_instance(
            {"A": {("x",), ("y",)}, "r": {("x", "y")}}
        )
        assert instance.atoms() == frozenset({"x", "y"})

    def test_equality_is_order_independent(self):
        first = make_instance({"A": {("x",), ("y",)}, "B": set()})
        second = make_instance({"B": set(), "A": {("y",), ("x",)}})
        assert first == second
        assert hash(first) == hash(second)

    def test_inequality(self):
        first = make_instance({"A": {("x",)}})
        second = make_instance({"A": {("y",)}})
        assert first != second

    def test_with_relation_replaces_immutably(self):
        instance = make_instance({"A": {("x",)}})
        updated = instance.with_relation("A", frozenset({("y",)}))
        assert instance.relation("A") == frozenset({("x",)})
        assert updated.relation("A") == frozenset({("y",)})

    def test_canonical_key_stable(self):
        instance = make_instance({"A": {("x",), ("y",)}})
        assert instance.canonical_key() == instance.canonical_key()

    def test_describe_renders_tuples(self):
        instance = make_instance({"r": {("a", "b")}, "A": {("a",)}})
        text = instance.describe()
        assert "r = {a->b}" in text
        assert "A = {a}" in text

    def test_describe_orders_sigs_before_fields(self, marriage_spec):
        from repro.alloy.parser import parse_module
        from repro.alloy.resolver import resolve_module

        info = resolve_module(parse_module(marriage_spec))
        instance = make_instance(
            {"wife": {("m", "w")}, "Man": {("m",)}, "Woman": {("w",)}}
        )
        text = instance.describe(info)
        assert text.index("Man") < text.index("wife")
