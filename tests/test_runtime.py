"""Unit tests for the resilience runtime: errors, budgets, retry, guard,
persistence."""

import json

import pytest

from repro.alloy.errors import (
    AnalysisBudgetError,
    LexError,
    ParseError,
    ResolutionError,
)
from repro.llm.extract import ExtractionError
from repro.runtime import (
    Budget,
    BudgetExhaustedError,
    CacheCorruptionError,
    FailureRecord,
    ReproError,
    RetryPolicy,
    TransientError,
    atomic_write_json,
    call_with_retry,
    capture_failure,
    classify_exception,
    load_json,
    summarize_failures,
)
from repro.sat.solver import BudgetExceeded


class TestClassifyException:
    @pytest.mark.parametrize(
        "error, code",
        [
            (LexError("bad char"), "spec.lex"),
            (ParseError("unexpected token"), "spec.parse"),
            (ResolutionError("unknown name"), "spec.resolve"),
            (AnalysisBudgetError("over budget"), "analysis.budget"),
            (BudgetExceeded("too many conflicts"), "solver.budget"),
            (ExtractionError("nothing parsed"), "llm.extract"),
            (RecursionError(), "runtime.recursion"),
            (MemoryError(), "runtime.memory"),
            (FileNotFoundError("gone"), "io.missing"),
            (ValueError("odd"), "internal.ValueError"),
        ],
    )
    def test_known_types(self, error, code):
        assert classify_exception(error) == code

    def test_repro_error_uses_its_own_code(self):
        assert classify_exception(CacheCorruptionError("x")) == "cache.corrupt"
        assert classify_exception(ReproError("x", code="custom.code")) == "custom.code"

    def test_json_decode_error(self):
        try:
            json.loads("{nope")
        except json.JSONDecodeError as error:
            assert classify_exception(error) == "cache.corrupt"

    def test_total_over_unknown_types(self):
        class Weird(Exception):
            pass

        assert classify_exception(Weird()) == "internal.Weird"


class TestBudget:
    def test_charges_until_exhausted(self):
        budget = Budget(steps=3)
        budget.charge()
        budget.charge(2)
        assert budget.remaining == 0
        with pytest.raises(BudgetExhaustedError):
            budget.charge()
        assert budget.spent == 4

    def test_unlimited_budget_never_exhausts(self):
        budget = Budget()
        for _ in range(1000):
            budget.charge()
        assert not budget.exhausted
        assert budget.remaining is None

    def test_exhausted_probe_does_not_consume(self):
        budget = Budget(steps=1)
        assert not budget.exhausted
        budget.charge()
        assert budget.exhausted
        assert budget.spent == 1

    def test_wall_deadline_with_injected_clock(self):
        now = [0.0]
        budget = Budget(wall_seconds=10.0, clock=lambda: now[0])
        budget.charge()
        now[0] = 11.0
        assert budget.exhausted
        with pytest.raises(BudgetExhaustedError):
            budget.charge()

    def test_deadline_boundary_probing_and_charging_agree(self):
        # A clock landing *exactly* on the deadline is spent on both paths:
        # `exhausted` and `charge` must never disagree at the boundary.
        now = [0.0]
        budget = Budget(wall_seconds=10.0, clock=lambda: now[0])
        now[0] = 10.0
        assert budget.exhausted
        with pytest.raises(BudgetExhaustedError):
            budget.charge()

    def test_just_under_the_deadline_is_not_exhausted(self):
        now = [0.0]
        budget = Budget(wall_seconds=10.0, clock=lambda: now[0])
        now[0] = 9.999
        assert not budget.exhausted
        budget.charge()

    def test_rejects_negative_limits(self):
        with pytest.raises(ValueError):
            Budget(steps=-1)
        with pytest.raises(ValueError):
            Budget(wall_seconds=-0.1)


class TestRetry:
    def test_succeeds_after_transient_failures(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise TransientError("blip")
            return "ok"

        assert call_with_retry(flaky, policy=RetryPolicy(attempts=3)) == "ok"
        assert len(calls) == 3

    def test_exhausted_attempts_propagate_the_real_error(self):
        def always_fails():
            raise TransientError("persistent blip")

        with pytest.raises(TransientError, match="persistent blip"):
            call_with_retry(always_fails, policy=RetryPolicy(attempts=2))

    def test_non_transient_errors_are_not_retried(self):
        calls = []

        def broken():
            calls.append(1)
            raise ValueError("bug")

        with pytest.raises(ValueError):
            call_with_retry(broken)
        assert len(calls) == 1

    def test_backoff_schedule_is_deterministic_and_capped(self):
        policy = RetryPolicy(attempts=5, base_delay=0.1, multiplier=2.0, max_delay=0.3)
        assert policy.schedule() == [0.1, 0.2, 0.3, 0.3]

    def test_sleep_and_hook_receive_the_schedule(self):
        slept = []
        seen = []

        def flaky():
            if len(slept) < 2:
                raise TransientError("blip")
            return 42

        result = call_with_retry(
            flaky,
            policy=RetryPolicy(attempts=3, base_delay=1.0, multiplier=3.0,
                               max_delay=10.0),
            sleep=slept.append,
            on_retry=lambda attempt, delay, error: seen.append((attempt, delay)),
        )
        assert result == 42
        assert slept == [1.0, 3.0]
        assert seen == [(1, 1.0), (2, 3.0)]

    def test_policy_rejects_zero_attempts(self):
        with pytest.raises(ValueError):
            RetryPolicy(attempts=0)

    def test_default_policy_is_jitter_free(self):
        # The reproduction guarantee: without an explicit jitter_seed the
        # schedule is the exact exponential sequence, byte-identical
        # across runs and machines.
        assert RetryPolicy().jitter_seed is None
        policy = RetryPolicy(attempts=4, base_delay=0.1, multiplier=2.0)
        assert policy.schedule() == [0.1, 0.2, 0.4]

    def test_seeded_jitter_is_deterministic(self):
        jittered = RetryPolicy(
            attempts=5, base_delay=0.1, multiplier=2.0, max_delay=0.3,
            jitter_seed=7,
        )
        again = RetryPolicy(
            attempts=5, base_delay=0.1, multiplier=2.0, max_delay=0.3,
            jitter_seed=7,
        )
        assert jittered.schedule() == again.schedule()
        other = RetryPolicy(
            attempts=5, base_delay=0.1, multiplier=2.0, max_delay=0.3,
            jitter_seed=8,
        )
        assert jittered.schedule() != other.schedule()

    def test_jitter_stays_within_half_to_full_backoff(self):
        plain = RetryPolicy(attempts=6, base_delay=0.05, max_delay=2.0)
        jittered = RetryPolicy(
            attempts=6, base_delay=0.05, max_delay=2.0, jitter_seed=123
        )
        for attempt in range(1, 6):
            exact = plain.delay_for(attempt)
            delay = jittered.delay_for(attempt)
            assert 0.5 * exact <= delay < exact


class TestGuard:
    def test_capture_failure_freezes_code_type_and_message(self):
        try:
            raise ParseError("unexpected token")
        except ParseError as error:
            record = capture_failure("spec_1:BeAFix", error)
        assert record.where == "spec_1:BeAFix"
        assert record.code == "spec.parse"
        assert record.exception == "ParseError"
        assert "unexpected token" in record.message
        assert "raise ParseError" in record.traceback_tail

    def test_capture_failure_includes_context(self):
        error = BudgetExhaustedError("over", context={"spent": 5, "limit": 3})
        record = capture_failure("x", error)
        assert record.context == {"spent": 5, "limit": 3}

    def test_round_trips_through_json(self):
        record = FailureRecord(
            where="a:b", code="spec.parse", exception="ParseError",
            message="boom", traceback_tail="tb", context={"k": 1},
        )
        assert FailureRecord.from_json(record.to_json()) == record

    def test_summarize_counts_per_code(self):
        records = [
            FailureRecord("a", "spec.parse", "E", "m"),
            FailureRecord("b", "spec.parse", "E", "m"),
            FailureRecord("c", "solver.budget", "E", "m"),
        ]
        assert summarize_failures(records) == {"solver.budget": 1, "spec.parse": 2}


class TestPersist:
    def test_round_trip_with_schema(self, tmp_path):
        path = tmp_path / "cache.json"
        atomic_write_json(path, {"a": [1, 2]}, schema="test/1")
        assert load_json(path, schema="test/1") == {"a": [1, 2]}

    def test_no_temp_files_left_behind(self, tmp_path):
        path = tmp_path / "cache.json"
        atomic_write_json(path, [1, 2, 3])
        assert [p.name for p in tmp_path.iterdir()] == ["cache.json"]

    def test_truncated_file_raises_corruption(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text('{"schema": "test/1", "data": [1, 2')  # killed mid-write
        with pytest.raises(CacheCorruptionError):
            load_json(path, schema="test/1")

    def test_wrong_schema_raises_corruption(self, tmp_path):
        path = tmp_path / "cache.json"
        atomic_write_json(path, [1], schema="test/1")
        with pytest.raises(CacheCorruptionError, match="schema"):
            load_json(path, schema="test/2")

    def test_unstamped_file_raises_when_schema_expected(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text("[1, 2, 3]")  # pre-versioning format
        with pytest.raises(CacheCorruptionError, match="no schema stamp"):
            load_json(path, schema="test/1")

    def test_missing_file_raises_corruption_not_oserror(self, tmp_path):
        with pytest.raises(CacheCorruptionError):
            load_json(tmp_path / "absent.json")

    def test_unwrapped_mode_round_trips(self, tmp_path):
        path = tmp_path / "plain.json"
        atomic_write_json(path, {"x": 1})
        assert load_json(path) == {"x": 1}
