"""Counterexample minimization tests."""

import pytest

from repro.alloy.parser import parse_module
from repro.alloy.resolver import resolve_module
from repro.analyzer.analyzer import Analyzer
from repro.analyzer.evaluator import Evaluator
from repro.analyzer.instance import make_instance
from repro.analyzer.minimize import (
    minimize_counterexample,
    minimize_fact_violation,
    minimize_instance,
)

SPEC = """
sig Node { next: set Node }

fact Shape { some Node }

pred show { some Node }
assert NoSelfLoop { all n: Node | n not in n.next }

run show for 3 expect 1
check NoSelfLoop for 3 expect 0
"""

FAULTY = SPEC  # NoSelfLoop is genuinely violated: facts allow self loops


@pytest.fixture
def info():
    return resolve_module(parse_module(FAULTY))


class TestMinimizeInstance:
    def test_requires_interesting_input(self):
        instance = make_instance({"A": {("x",)}})
        with pytest.raises(ValueError):
            minimize_instance(instance, lambda i: False)

    def test_result_is_still_interesting(self):
        instance = make_instance(
            {"A": {("x",), ("y",), ("z",)}, "r": {("x", "y"), ("y", "z")}}
        )

        def interesting(candidate):
            return ("x",) in candidate.relation("A")

        result = minimize_instance(instance, interesting)
        assert interesting(result)
        assert len(result.relation("A")) == 1
        assert not result.relation("r")

    def test_local_minimality(self):
        instance = make_instance({"A": {("x",), ("y",)}})

        def interesting(candidate):
            return len(candidate.relation("A")) >= 1

        result = minimize_instance(instance, interesting)
        assert len(result.relation("A")) == 1


class TestCounterexampleMinimization:
    def test_shrinks_analyzer_counterexample(self, info):
        analyzer = Analyzer(FAULTY)
        result = analyzer.check_assertion("NoSelfLoop", scope=3)
        assert result.sat
        original = result.instance
        minimized = minimize_counterexample(info, original, "NoSelfLoop")
        # Still a genuine counterexample...
        evaluator = Evaluator(info, minimized)
        assert evaluator.facts_hold()
        assert not evaluator.assertion_holds("NoSelfLoop")
        # ...and no larger than the original.
        original_size = sum(len(t) for t in original.relations.values())
        minimized_size = sum(len(t) for t in minimized.relations.values())
        assert minimized_size <= original_size

    def test_minimal_self_loop_is_one_node(self, info):
        bloated = make_instance(
            {
                "Node": {("Node$0",), ("Node$1",), ("Node$2",)},
                "next": {
                    ("Node$0", "Node$0"),
                    ("Node$1", "Node$2"),
                    ("Node$2", "Node$1"),
                },
            }
        )
        minimized = minimize_counterexample(info, bloated, "NoSelfLoop")
        assert len(minimized.relation("Node")) == 1
        assert len(minimized.relation("next")) == 1


class TestFactViolationMinimization:
    def test_shrinks_negative_test(self):
        source = (
            "sig Node { next: set Node }\n"
            "fact NoLoops { all n: Node | n not in n.next }\n"
            "pred p { some Node }\nrun p for 2\n"
        )
        info = resolve_module(parse_module(source))
        violating = make_instance(
            {
                "Node": {("Node$0",), ("Node$1",)},
                "next": {("Node$0", "Node$0"), ("Node$0", "Node$1")},
            }
        )
        minimized = minimize_fact_violation(info, violating)
        assert not Evaluator(info, minimized).facts_hold()
        assert len(minimized.relation("next")) == 1
