"""Printing edge cases: commands, scopes, functions, nested arrows."""

import pytest

from repro.alloy.parser import parse_module
from repro.alloy.pretty import print_module, print_paragraph


def reprint(source: str) -> str:
    return print_module(parse_module(source))


class TestCommandPrinting:
    def test_expect_preserved(self):
        text = reprint("sig A {}\npred p { some A }\nrun p for 4 expect 1")
        assert "run p for 4 expect 1" in text

    def test_but_scopes_preserved(self):
        text = reprint(
            "sig A {}\nsig B {}\npred p { some A }\n"
            "run p for 3 but exactly 2 B"
        )
        assert "for 3 but exactly 2 B" in text

    def test_multiple_but_scopes(self):
        text = reprint(
            "sig A {}\nsig B {}\npred p { some A }\n"
            "run p for 3 but 2 A, exactly 1 B"
        )
        assert "2 A" in text and "exactly 1 B" in text

    def test_anonymous_block_command(self):
        text = reprint("sig A {}\nrun { some A } for 2")
        assert "run { some A } for 2" in text

    def test_check_command(self):
        text = reprint("sig A {}\nassert X { no A }\ncheck X for 5")
        assert "check X for 5" in text


class TestDeclTypePrinting:
    def test_arrow_with_both_multiplicities(self):
        text = reprint("sig A {}\nsig M { r: A some -> lone A }")
        assert "A some -> lone A" in text

    def test_nested_arrow(self):
        text = reprint("sig A {}\nsig M { r: A -> A -> A }")
        assert "A -> A -> A" in text

    def test_default_one_multiplicity_printed(self):
        text = reprint("sig A { f: A }")
        assert "f: one A" in text

    def test_some_multiplicity(self):
        text = reprint("sig A { f: some A }")
        assert "f: some A" in text


class TestFunPrinting:
    def test_zero_param_fun(self):
        text = reprint("sig A {}\nfun everything: set A { A }")
        assert "fun everything: set A" in text

    def test_multi_param_fun(self):
        text = reprint(
            "sig A { r: set A }\nfun img[x: A, y: A]: set A { x.r + y.r }"
        )
        assert "fun img[x: A, y: A]: set A" in text


class TestSigPrinting:
    def test_multi_name_sig(self):
        text = reprint("sig A, B {}")
        assert "sig A, B {}" in text

    def test_abstract_one(self):
        text = reprint("abstract sig P {}\none sig Q extends P {}")
        assert "abstract sig P {}" in text
        assert "one sig Q extends P" in text

    def test_print_paragraph_rejects_unknown(self):
        with pytest.raises(TypeError):
            print_paragraph(object())  # type: ignore[arg-type]
