"""Per-fault-class repair coverage: which classes can each paradigm reach?

Encodes the complementarity story of the paper as executable expectations:
mutation search handles operator-class faults; template strengthening
handles missing-constraint faults; the multi-round LLM spans both.
"""

import pytest

from repro.llm.mock_gpt import GPT4_PROFILE, MockGPT
from repro.llm.prompts import FeedbackLevel
from repro.metrics.rep import rep
from repro.repair.atr import Atr
from repro.repair.base import RepairTask
from repro.repair.beafix import BeAFix
from repro.repair.multi_round import MultiRoundLLM

TRUTH = """
sig Person { boss: lone Person, team: set Person }

fact Org {
  all p: Person | p not in p.^boss
  all p: Person | p.team in boss.p
  some Person implies some p: Person | no p.boss
}

pred busy { some p: Person | some p.team }
assert NoBossCycle { no p: Person | p in p.^boss }
assert TeamReports { all p: Person, q: p.team | p = q.boss }

run busy for 3 expect 1
check NoBossCycle for 3 expect 0
check TeamReports for 3 expect 0
"""

FAULTS = {
    "operator-swap": TRUTH.replace("p not in p.^boss", "p not in p.boss", 1),
    "quantifier-swap": TRUTH.replace(
        "all p: Person | p.team in boss.p", "some p: Person | p.team in boss.p", 1
    ),
    "missing-constraint": TRUTH.replace(
        "  all p: Person | p not in p.^boss\n", "  some Person or no Person\n", 1
    ),
    "wrong-relation": TRUTH.replace("p.team in boss.p", "p.team in team.p", 1),
}


def _task(kind: str) -> RepairTask:
    return RepairTask.from_source(FAULTS[kind])


def _fixed_by(tool, kind: str) -> bool:
    task = _task(kind)
    result = tool.repair(task)
    return rep(result.final_source(task), TRUTH) == 1


class TestFaultsAreReal:
    @pytest.mark.parametrize("kind", sorted(FAULTS))
    def test_each_fault_flips_a_command(self, kind):
        assert rep(FAULTS[kind], TRUTH) == 0


class TestMutationSearchCoverage:
    def test_beafix_fixes_operator_swap(self):
        assert _fixed_by(BeAFix(), "operator-swap")

    def test_beafix_fixes_quantifier_swap(self):
        assert _fixed_by(BeAFix(), "quantifier-swap")

    def test_beafix_cannot_synthesize_missing_constraint(self):
        # Pure replacement mutation cannot recreate a deleted constraint.
        task = _task("missing-constraint")
        result = BeAFix().repair(task)
        assert not result.fixed


class TestTemplateCoverage:
    def test_atr_fixes_missing_constraint_via_strengthening(self):
        assert _fixed_by(Atr(), "missing-constraint")

    def test_wrong_relation_reachable_by_search(self):
        # Name-replacement faults are core mutation-search territory; at
        # least one of the search-based tools must land the repair.
        assert _fixed_by(BeAFix(), "wrong-relation") or _fixed_by(
            Atr(), "wrong-relation"
        )


class TestLLMCoverage:
    def test_multi_round_spans_both_classes(self):
        wins = 0
        for kind in ("operator-swap", "missing-constraint"):
            for seed in range(3):
                tool = MultiRoundLLM(
                    MockGPT(seed=seed, profile=GPT4_PROFILE),
                    FeedbackLevel.GENERIC,
                )
                if _fixed_by(tool, kind):
                    wins += 1
                    break
        assert wins == 2  # at least one seed succeeds on each class
