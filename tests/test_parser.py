"""Parser tests: grammar coverage, precedence, and error reporting."""

import pytest

from repro.alloy.errors import ParseError
from repro.alloy.nodes import (
    ArrowType,
    AssertDecl,
    BinaryExpr,
    BinOp,
    BoolBin,
    CardExpr,
    Command,
    Compare,
    CmpOp,
    Comprehension,
    FactDecl,
    FunCall,
    FunDecl,
    ImpliesElse,
    IntLit,
    Let,
    LogicOp,
    Mult,
    MultTest,
    NameExpr,
    Not,
    PredCall,
    PredDecl,
    Quant,
    Quantified,
    SigDecl,
    UnaryExpr,
    UnaryType,
    UnOp,
)
from repro.alloy.parser import parse_expr, parse_formula, parse_module


class TestSignatures:
    def test_simple_sig(self):
        module = parse_module("sig A {}")
        sig = module.sigs[0]
        assert sig.names == ["A"]
        assert not sig.abstract and sig.parent is None

    def test_abstract_sig_with_extends(self):
        module = parse_module("abstract sig A {}\nsig B extends A {}")
        assert module.sigs[0].abstract
        assert module.sigs[1].parent == "A"

    def test_multiplicity_sig(self):
        module = parse_module("one sig S {}")
        assert module.sigs[0].mult is Mult.ONE

    def test_multiple_names(self):
        module = parse_module("sig A, B {}")
        assert module.sigs[0].names == ["A", "B"]

    def test_field_default_multiplicity_is_one(self):
        module = parse_module("sig A { f: A }")
        field = module.sigs[0].fields[0]
        assert isinstance(field.type, UnaryType)
        assert field.type.mult is Mult.ONE

    def test_field_set_multiplicity(self):
        module = parse_module("sig A { f: set A }")
        assert module.sigs[0].fields[0].type.mult is Mult.SET

    def test_arrow_field(self):
        module = parse_module("sig A {}\nsig B { f: A -> lone A }")
        field_type = module.sigs[1].fields[0].type
        assert isinstance(field_type, ArrowType)
        assert field_type.right_mult is Mult.LONE

    def test_multiple_fields(self):
        module = parse_module("sig A { f: set A, g: lone A }")
        assert [f.name for f in module.sigs[0].fields] == ["f", "g"]


class TestParagraphs:
    def test_fact_with_name(self):
        module = parse_module("sig A {}\nfact F { some A }")
        assert module.facts[0].name == "F"

    def test_anonymous_fact(self):
        module = parse_module("sig A {}\nfact { some A }")
        assert module.facts[0].name is None

    def test_pred_with_params(self):
        module = parse_module("sig A {}\npred p[x: A, y: set A] { x in y }")
        pred = module.preds[0]
        assert pred.name == "p"
        assert [d.names for d in pred.params] == [["x"], ["y"]]

    def test_fun(self):
        module = parse_module("sig A { f: set A }\nfun g[x: A]: set A { x.f }")
        fun = module.funs[0]
        assert fun.name == "g"
        assert isinstance(fun.result, UnaryType)

    def test_assert(self):
        module = parse_module("sig A {}\nassert X { no A }")
        assert module.asserts[0].name == "X"

    def test_module_header(self):
        module = parse_module("module m\nsig A {}")
        assert module.name == "m"


class TestCommands:
    def test_run_with_scope_and_expect(self):
        module = parse_module("sig A {}\npred p { some A }\nrun p for 5 expect 1")
        command = module.commands[0]
        assert command.kind == "run"
        assert command.default_scope == 5
        assert command.expect == 1

    def test_check_with_but(self):
        module = parse_module(
            "sig A {}\nsig B {}\nassert X { no A }\n"
            "check X for 3 but exactly 2 B"
        )
        command = module.commands[0]
        assert command.kind == "check"
        assert command.sig_scopes[0].sig == "B"
        assert command.sig_scopes[0].bound == 2
        assert command.sig_scopes[0].exact

    def test_anonymous_run_block(self):
        module = parse_module("sig A {}\nrun { some A } for 2")
        command = module.commands[0]
        assert command.target is None
        assert command.block is not None

    def test_default_scope_is_three(self):
        module = parse_module("sig A {}\npred p { some A }\nrun p")
        assert module.commands[0].default_scope == 3


class TestExpressions:
    def test_join_left_associative(self):
        expr = parse_expr("a.b.c")
        assert isinstance(expr, BinaryExpr) and expr.op is BinOp.JOIN
        assert isinstance(expr.left, BinaryExpr)

    def test_union_precedence_below_join(self):
        expr = parse_expr("a + b.c")
        assert expr.op is BinOp.UNION
        assert isinstance(expr.right, BinaryExpr)

    def test_product_right_associative(self):
        expr = parse_expr("a -> b -> c")
        assert expr.op is BinOp.PRODUCT
        assert isinstance(expr.right, BinaryExpr)

    def test_intersection_binds_tighter_than_union(self):
        expr = parse_expr("a + b & c")
        assert expr.op is BinOp.UNION

    def test_unary_operators(self):
        assert parse_expr("~r").op is UnOp.TRANSPOSE
        assert parse_expr("^r").op is UnOp.CLOSURE
        assert parse_expr("*r").op is UnOp.RCLOSURE

    def test_cardinality(self):
        expr = parse_expr("#a + 1")
        assert isinstance(expr, BinaryExpr)
        assert isinstance(expr.left, CardExpr)
        assert isinstance(expr.right, IntLit)

    def test_box_join_on_name_becomes_call(self):
        expr = parse_expr("f[a, b]")
        assert isinstance(expr, FunCall)
        assert len(expr.args) == 2

    def test_box_join_on_expr_desugars(self):
        expr = parse_expr("(a.f)[b]")
        assert isinstance(expr, BinaryExpr) and expr.op is BinOp.JOIN
        assert isinstance(expr.left, NameExpr) and expr.left.name == "b"

    def test_comprehension(self):
        expr = parse_expr("{ x: A | some x }")
        assert isinstance(expr, Comprehension)

    def test_restrictions(self):
        assert parse_expr("a <: r").op is BinOp.DOM_RESTRICT
        assert parse_expr("r :> a").op is BinOp.RAN_RESTRICT

    def test_override(self):
        assert parse_expr("a ++ b").op is BinOp.OVERRIDE


class TestFormulas:
    def test_comparison(self):
        formula = parse_formula("a in b")
        assert isinstance(formula, Compare) and formula.op is CmpOp.IN

    def test_negated_in(self):
        formula = parse_formula("a not in b")
        assert isinstance(formula, Not)
        assert formula.operand.op is CmpOp.IN

    def test_bang_in(self):
        formula = parse_formula("a !in b")
        assert isinstance(formula, Compare) and formula.op is CmpOp.NOT_IN

    def test_multiplicity_test(self):
        formula = parse_formula("lone a.b")
        assert isinstance(formula, MultTest) and formula.mult is Mult.LONE

    def test_quantifier(self):
        formula = parse_formula("all x: A | some x")
        assert isinstance(formula, Quantified)
        assert formula.quant is Quant.ALL

    def test_quantifier_multiple_binders(self):
        formula = parse_formula("some x, y: A | x = y")
        assert formula.decls[0].names == ["x", "y"]

    def test_disjoint_binders(self):
        formula = parse_formula("all disj x, y: A | x != y")
        assert formula.decls[0].disj

    def test_some_expr_vs_some_binder(self):
        assert isinstance(parse_formula("some a.b"), MultTest)
        assert isinstance(parse_formula("some x: A | some x"), Quantified)

    def test_implies_else(self):
        formula = parse_formula("a in b implies c in d else d in c")
        assert isinstance(formula, ImpliesElse)

    def test_precedence_or_iff_implies_and(self):
        formula = parse_formula("a in b and c in d or e in f")
        assert isinstance(formula, BoolBin) and formula.op is LogicOp.OR

    def test_implies_right_associative(self):
        formula = parse_formula("a in b implies c in d implies e in f")
        assert formula.op is LogicOp.IMPLIES
        assert formula.right.op is LogicOp.IMPLIES

    def test_let(self):
        formula = parse_formula("let x = a + b | some x")
        assert isinstance(formula, Let) and formula.name == "x"

    def test_pred_call_bare_name(self):
        formula = parse_formula("reachable")
        assert isinstance(formula, PredCall) and not formula.args

    def test_pred_call_with_args(self):
        formula = parse_formula("path[a, b]")
        assert isinstance(formula, PredCall) and len(formula.args) == 2

    def test_parenthesized_formula(self):
        formula = parse_formula("(a in b) and (c in d)")
        assert isinstance(formula, BoolBin)

    def test_parenthesized_expr_in_comparison(self):
        formula = parse_formula("(a + b) in c")
        assert isinstance(formula, Compare)

    def test_block_formula(self):
        formula = parse_formula("{ a in b c in d }")
        assert len(formula.formulas) == 2

    def test_int_comparison(self):
        formula = parse_formula("#a < 3")
        assert formula.op is CmpOp.LT


class TestErrors:
    def test_unclosed_brace(self):
        with pytest.raises(ParseError):
            parse_module("sig A {")

    def test_missing_expr(self):
        with pytest.raises(ParseError):
            parse_formula("a in ")

    def test_trailing_garbage_in_formula(self):
        with pytest.raises(ParseError):
            parse_formula("a in b extra")

    def test_bad_top_level(self):
        with pytest.raises(ParseError):
            parse_module("wibble A {}")

    def test_error_carries_position(self):
        with pytest.raises(ParseError) as excinfo:
            parse_module("sig A {}\nsig {}")
        assert excinfo.value.pos is not None
        assert excinfo.value.pos.line == 2
