"""Transcript recording and replay tests."""

import pytest

from repro.llm.client import Conversation
from repro.llm.mock_gpt import MockGPT
from repro.llm.prompts import PromptSetting, RepairHints, single_round_prompt
from repro.llm.transcripts import ReplayClient, TranscriptRecorder

SPEC = "sig A { f: set A }\nfact F { some f }\npred p { some A }\nrun p for 2"


def conversation():
    return single_round_prompt(SPEC, PromptSetting.NONE, RepairHints())


class TestRecorder:
    def test_records_exchanges(self):
        recorder = TranscriptRecorder(inner=MockGPT(seed=0))
        response = recorder.complete(conversation())
        assert len(recorder.exchanges) == 1
        assert recorder.exchanges[0].response == response
        assert recorder.exchanges[0].messages[0]["role"] == "system"

    def test_passthrough_matches_inner(self):
        direct = MockGPT(seed=5).complete(conversation())
        recorded = TranscriptRecorder(inner=MockGPT(seed=5)).complete(
            conversation()
        )
        assert direct == recorded

    def test_save_and_load(self, tmp_path):
        recorder = TranscriptRecorder(inner=MockGPT(seed=1))
        recorder.complete(conversation())
        path = tmp_path / "transcript.jsonl"
        recorder.save(path)
        loaded = TranscriptRecorder.load_exchanges(path)
        assert len(loaded) == 1
        assert loaded[0].response == recorder.exchanges[0].response


class TestCorruptTranscripts:
    GOOD = '{"messages": [{"role": "user", "content": "hi"}], "response": "ok"}'

    def _write(self, path, lines):
        path.write_text("\n".join(lines) + "\n")

    def test_corrupt_lines_are_skipped_not_fatal(self, tmp_path):
        path = tmp_path / "damaged.jsonl"
        self._write(
            path,
            [
                self.GOOD,
                '{"messages": [',  # torn mid-write
                '{"response": "no messages key"}',
                '{"messages": "not a list", "response": "x"}',
                '{"messages": [], "response": 42}',  # wrong response type
                "",  # blank lines are not corruption
                self.GOOD,
            ],
        )
        loaded = TranscriptRecorder.load_exchanges(path)
        assert len(loaded) == 2
        assert all(exchange.response == "ok" for exchange in loaded)

    def test_skipped_lines_are_counted_on_the_metric(self, tmp_path):
        from repro import obs
        from repro.obs.metrics import MetricsRegistry
        from repro.obs.trace import NULL_TRACER

        path = tmp_path / "damaged.jsonl"
        self._write(path, [self.GOOD, "not json at all", '{"messages": ['])
        metrics = MetricsRegistry()
        with obs.scope(NULL_TRACER, metrics):
            loaded = TranscriptRecorder.load_exchanges(path)
        assert len(loaded) == 1
        assert metrics.counter("transcripts.corrupt_lines").value == 2

    def test_fully_intact_file_records_no_corruption(self, tmp_path):
        from repro import obs
        from repro.obs.metrics import MetricsRegistry
        from repro.obs.trace import NULL_TRACER

        path = tmp_path / "clean.jsonl"
        self._write(path, [self.GOOD])
        metrics = MetricsRegistry()
        with obs.scope(NULL_TRACER, metrics):
            TranscriptRecorder.load_exchanges(path)
        assert "transcripts.corrupt_lines" not in metrics.counter_values()


class TestReplay:
    def test_replays_recorded_response(self, tmp_path):
        recorder = TranscriptRecorder(inner=MockGPT(seed=2))
        original = recorder.complete(conversation())
        path = tmp_path / "t.jsonl"
        recorder.save(path)
        replay = ReplayClient.from_file(path)
        assert replay.complete(conversation()) == original

    def test_unknown_conversation_raises(self):
        replay = ReplayClient([])
        with pytest.raises(KeyError):
            replay.complete(conversation())

    def test_repair_run_replays_identically(self, tmp_path):
        """An entire multi-round repair replays bit-for-bit."""
        from repro.llm.prompts import FeedbackLevel
        from repro.repair import MultiRoundLLM, RepairTask

        faulty = (
            "sig Node { next: lone Node }\n"
            "fact F { all n: Node | n in n.next }\n"
            "pred p { some Node }\n"
            "assert X { no n: Node | n in n.next }\n"
            "run p for 2 expect 1\ncheck X for 2 expect 0\n"
        )
        task = RepairTask.from_source(faulty)
        recorder = TranscriptRecorder(inner=MockGPT(seed=3))
        first = MultiRoundLLM(recorder, FeedbackLevel.GENERIC).repair(task)
        path = tmp_path / "run.jsonl"
        recorder.save(path)

        replay = ReplayClient.from_file(path)
        second = MultiRoundLLM(replay, FeedbackLevel.GENERIC).repair(task)
        assert first.status == second.status
        assert first.candidate_source == second.candidate_source
