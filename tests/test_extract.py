"""LLM response extraction tests: the 'specialized parser' of the study."""

import pytest

from repro.llm.extract import (
    ExtractionError,
    candidate_regions,
    extract_module,
    try_extract_module,
)

SPEC = "sig A { f: set A }\nfact F { some A }\npred p { some f }\nrun p for 3"


class TestExtraction:
    def test_plain_fenced_block(self):
        response = f"Here is the fix:\n```alloy\n{SPEC}\n```\nDone."
        module = extract_module(response)
        assert [s.names[0] for s in module.sigs] == ["A"]

    def test_fence_with_odd_language_tag(self):
        response = f"```java\n{SPEC}\n```"
        assert extract_module(response).sigs

    def test_fence_with_no_tag(self):
        response = f"```\n{SPEC}\n```"
        assert extract_module(response).sigs

    def test_unfenced_code_after_prose(self):
        response = f"I fixed the quantifier.\n\n{SPEC}"
        assert extract_module(response).sigs

    def test_bare_spec(self):
        assert extract_module(SPEC).sigs

    def test_multiple_fences_prefers_parseable_full_spec(self):
        snippet = "some A"  # parses as nothing useful, not a module
        response = f"```alloy\n{snippet}\n```\nFull fix:\n```alloy\n{SPEC}\n```"
        module = extract_module(response)
        assert module.facts and module.commands

    def test_truncated_spec_raises(self):
        truncated = SPEC[: len(SPEC) // 2]
        response = f"```alloy\n{truncated}"
        # Either the keyword fallback finds a prefix that parses, or the
        # extraction fails; both are acceptable as long as nothing crashes.
        module, error = try_extract_module(response)
        assert module is not None or error is not None

    def test_pure_prose_fails(self):
        with pytest.raises(ExtractionError):
            extract_module("I'm sorry, I cannot repair this specification.")

    def test_try_extract_reports_error(self):
        module, error = try_extract_module("no code here")
        assert module is None and error

    def test_regions_ordering(self):
        response = f"```alloy\n{SPEC}\n```trailing"
        regions = candidate_regions(response)
        assert any(SPEC.split()[0] in region for region in regions)

    def test_windows_style_content(self):
        response = "```alloy\n" + SPEC.replace("\n", "\n") + "\n```"
        assert extract_module(response).sigs
