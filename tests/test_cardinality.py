"""Abstract cardinality interpretation and the A5xx lint rules."""

from repro.alloy.nodes import CmpOp
from repro.alloy.parser import parse_expr, parse_formula, parse_module
from repro.alloy.resolver import resolve_module
from repro.analysis import Interval, cardinality_analyzer, lint_module
from repro.analysis.cardinality import EMPTY, SCALAR, TOP, _interval_compare

SHAPES = """
abstract sig Node { next: lone Node, links: set Node }
one sig Root extends Node {}
sig Leaf extends Node {}
some sig Busy { owns: one Leaf }
abstract sig Ghost {}
run {} for 3
"""


def analyzer_for(source):
    module = parse_module(source)
    info = resolve_module(module)
    return cardinality_analyzer(info), info


class TestInterval:
    def test_describe(self):
        assert Interval(0, None).describe() == "[0..*]"
        assert Interval(1, 1).describe() == "[1..1]"

    def test_hi_clamped_to_lo(self):
        assert Interval(3, 1) == Interval(3, 3)

    def test_empty_and_nonempty(self):
        assert Interval(0, 0).is_empty
        assert Interval(1, None).is_nonempty
        assert not Interval(0, None).is_empty
        assert not Interval(0, None).is_nonempty


class TestSigIntervals:
    def test_multiplicities(self):
        cards, _ = analyzer_for(SHAPES)
        assert cards.sig_interval("Root") == Interval(1, 1)
        assert cards.sig_interval("Busy") == Interval(1, None)
        assert cards.sig_interval("Leaf") == Interval(0, None)

    def test_abstract_without_children_is_empty(self):
        cards, _ = analyzer_for(SHAPES)
        assert cards.sig_interval("Ghost") == EMPTY

    def test_abstract_is_sum_of_children(self):
        cards, _ = analyzer_for(SHAPES)
        # Node = Root + Leaf (disjoint), so Root alone forces an atom.
        node = cards.sig_interval("Node")
        assert node.lo >= 1
        assert node.hi is None


class TestExprIntervals:
    def _interval(self, text):
        cards, _ = analyzer_for(SHAPES)
        return cards.interval_of(parse_expr(text), {})

    def test_none_is_empty(self):
        assert self._interval("none") == EMPTY

    def test_union_maxes_lo_and_adds_hi(self):
        # Overlap is not tracked, so the union's lo is a max, not a sum.
        union = self._interval("Root + Busy")
        assert union.lo == 1
        assert union.hi is None

    def test_intersection_of_disjoint_sigs_is_empty(self):
        assert self._interval("Root & Busy") == EMPTY

    def test_difference_with_unbounded_right_drops_lo(self):
        assert self._interval("Root - Busy") == Interval(0, 1)

    def test_difference_with_bounded_right_keeps_slack(self):
        # Busy - Root: at least one Busy atom survives removing ≤1 atom...
        # except nothing guarantees two atoms, so lo = max(0, 1-1) = 0.
        assert self._interval("Busy - Root") == Interval(0, None)

    def test_product_multiplies(self):
        assert self._interval("Root -> Root") == Interval(1, 1)

    def test_lone_field_has_no_lower_bound(self):
        assert self._interval("next").lo == 0

    def test_one_field_lo_scales_with_owner(self):
        # owns: one Leaf over `some sig Busy` — at least one tuple.
        assert self._interval("owns").lo >= 1

    def test_join_propagates_empty(self):
        assert self._interval("Ghost.links") == EMPTY


class TestTruth:
    def _truth(self, text):
        cards, _ = analyzer_for(SHAPES)
        return cards.truth(parse_formula(text), {})

    def test_some_one_sig_is_true(self):
        assert self._truth("some Root") is True

    def test_no_one_sig_is_false(self):
        assert self._truth("no Root") is False

    def test_unknown_stays_unknown(self):
        assert self._truth("some Leaf") is None

    def test_card_tautology(self):
        assert self._truth("#Root = 1") is True

    def test_card_contradiction(self):
        assert self._truth("#Root > 1") is False

    def test_quantifier_over_empty_domain(self):
        assert self._truth("all g: Ghost | some g") is True
        assert self._truth("some g: Ghost | some g") is False


class TestIntervalCompare:
    def test_disjoint_ranges_decide(self):
        assert _interval_compare(
            CmpOp.LT, Interval(0, 1), Interval(5, 9)
        ) is True
        assert _interval_compare(
            CmpOp.GT, Interval(0, 1), Interval(5, 9)
        ) is False

    def test_overlap_stays_unknown(self):
        assert _interval_compare(CmpOp.EQ, TOP, SCALAR) is None

    def test_in_is_never_decided(self):
        assert _interval_compare(
            CmpOp.IN, Interval(1, 1), Interval(1, 1)
        ) is None


def findings(source):
    module = parse_module(source)
    info = resolve_module(module)
    return [d for d in lint_module(module, info) if d.code.startswith("A5")]


class TestA5xxRules:
    def test_a501_statically_unsat_fact(self):
        found = findings(
            "one sig Root {}\nfact bad { no Root }\nrun {} for 3\n"
        )
        assert [d.code for d in found] == ["A501"]
        assert found[0].rule.prunes

    def test_a502_statically_valid_assert(self):
        found = findings(
            "sig S {}\nassert triv { #S >= 0 }\ncheck triv for 3\n"
        )
        assert [d.code for d in found] == ["A502"]
        assert not found[0].rule.prunes

    def test_a503_empty_parameter_domain(self):
        found = findings(
            "abstract sig E {}\nsig S {}\n"
            "pred p[x: E] { some S }\npred q { some x: S | p[x] }\n"
            "run q for 3\n"
        )
        assert "A503" in [d.code for d in found]

    def test_a503_empty_field_domain(self):
        found = findings(
            "abstract sig E {}\nsig S { f: set E }\nrun {} for 3\n"
        )
        assert "A503" in [d.code for d in found]

    def test_a504_infeasible_compare(self):
        found = findings(
            "one sig Root {}\npred p { #Root > 1 }\nrun p for 3\n"
        )
        assert [d.code for d in found] == ["A504"]

    def test_feasible_compare_is_clean(self):
        assert findings("sig S {}\npred p { #S > 1 }\nrun p for 3\n") == []

    def test_binder_shadowing_a_sig_gets_no_bounds(self):
        # A binder named after a one-sig must not borrow the sig's [1..1]
        # bounds: inside the quantifier the name means the binder.
        found = findings(
            "one sig Root {}\nsig S {}\n"
            "pred p { some Root: S | #Root > 1 }\nrun p for 3\n"
        )
        assert [d.code for d in found] == []
