"""The observability subsystem: spans, metrics, export, and run telemetry.

The subsystem's central contracts, in the order tested here:

- spans nest per thread and always close, even when the traced code raises;
- the disabled path (no scope installed) is a shared no-op — it records
  nothing and allocates nothing per call;
- metric snapshots merge across shards exactly (counters add, gauges keep
  the max, histograms keep exact count/sum/min/max);
- a trace file round-trips through the JSONL writer;
- the solver's ``last_solve`` is a fresh per-call view on a reused solver;
- tracing never changes a run's results, and a serial run and a parallel
  run of the same config produce traces with the same span names and
  metric totals (the acceptance criterion for per-shard capture).
"""

import threading

import pytest

from repro import obs
from repro.experiments.runner import RunConfig, run_matrix
from repro.obs.export import (
    TraceData,
    flatten_spans,
    merge_trace_data,
    read_trace,
    write_trace,
)
from repro.obs.metrics import MetricsRegistry, metric_key, parse_key
from repro.obs.trace import NULL_TRACER, Span, Tracer
from repro.sat.solver import SatSolver

from .test_executor import payload


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    return tmp_path / "cache"


class TestTracer:
    def test_spans_nest(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner", detail=1):
                pass
            assert tracer.current() is outer
        (root,) = tracer.roots()
        assert root.name == "outer"
        assert [child.name for child in root.children] == ["inner"]
        assert root.children[0].attrs == {"detail": 1}

    def test_span_closes_on_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        (root,) = tracer.roots()
        assert root.name == "doomed"
        assert tracer.current() is None

    def test_attrs_set_after_entry(self):
        tracer = Tracer()
        with tracer.span("work") as span:
            span.set(result="sat", count=3)
        (root,) = tracer.roots()
        assert root.attrs == {"result": "sat", "count": 3}

    def test_span_json_round_trip(self):
        parent = Span(name="p", attrs={"a": 1}, duration=0.5)
        parent.children.append(Span(name="c", duration=0.25))
        clone = Span.from_json(parent.to_json())
        assert clone == parent

    def test_threads_do_not_interleave_span_trees(self):
        tracer = Tracer()

        def worker(label):
            for _ in range(50):
                with tracer.span("root", worker=label):
                    with tracer.span("child", worker=label):
                        pass

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        roots = tracer.roots()
        assert len(roots) == 4 * 50
        for root in roots:
            (child,) = root.children
            # The child belongs to the same thread's root, never another's.
            assert child.attrs["worker"] == root.attrs["worker"]

    def test_null_tracer_is_inert_and_allocation_free(self):
        assert not NULL_TRACER.enabled
        # The disabled fast path hands back one shared context manager.
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b", attr=1)
        with NULL_TRACER.span("ignored") as span:
            assert span.set(anything=True) is span
        assert NULL_TRACER.roots() == []
        assert NULL_TRACER.current() is None


class TestMetrics:
    def test_key_encoding_round_trips(self):
        key = metric_key("sat.solves", {"technique": "ATR", "phase": "x"})
        assert key == "sat.solves{phase=x,technique=ATR}"
        assert parse_key(key) == (
            "sat.solves",
            {"phase": "x", "technique": "ATR"},
        )
        assert parse_key("plain") == ("plain", {})

    def test_instruments_are_get_or_create(self):
        registry = MetricsRegistry()
        registry.counter("hits", technique="ATR").inc()
        registry.counter("hits", technique="ATR").inc(2)
        registry.counter("hits", technique="BeAFix").inc()
        assert registry.counter_values() == {
            "hits{technique=ATR}": 3,
            "hits{technique=BeAFix}": 1,
        }

    def test_histogram_summary(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("latency")
        for value in [1.0, 2.0, 3.0, 4.0, 5.0]:
            histogram.observe(value)
        summary = histogram.summary()
        assert summary["count"] == 5
        assert summary["sum"] == 15.0
        assert summary["min"] == 1.0
        assert summary["max"] == 5.0
        assert summary["mean"] == 3.0
        assert summary["p50"] == 3.0
        assert summary["p99"] == 5.0

    def test_snapshot_merge_folds_shard_registries(self):
        run = MetricsRegistry()
        for shard_value in (2, 5):
            shard = MetricsRegistry()
            shard.counter("cells").inc(shard_value)
            shard.gauge("peak").set(shard_value)
            shard.histogram("seconds").observe(float(shard_value))
            run.merge(shard.snapshot())
        assert run.counter_values() == {"cells": 7}
        assert run.gauge("peak").value == 5
        summary = run.histogram_summaries()["seconds"]
        assert summary["count"] == 2
        assert summary["min"] == 2.0 and summary["max"] == 5.0

    def test_snapshot_is_json_safe(self):
        import json

        registry = MetricsRegistry()
        registry.counter("a", technique="ATR").inc()
        registry.histogram("b").observe(1.5)
        assert json.loads(json.dumps(registry.snapshot()))


class TestScope:
    def test_no_scope_means_null_instruments(self):
        assert obs.get_tracer() is NULL_TRACER
        assert not obs.tracing_enabled()
        # Module-level helpers are no-ops outside a scope.
        with obs.span("ignored") as span:
            span.set(x=1)
        obs.counter("ignored").inc()
        assert obs.get_metrics().counter_values() == {}

    def test_scope_installs_and_restores(self):
        tracer, metrics = Tracer(), MetricsRegistry()
        with obs.scope(tracer, metrics):
            assert obs.get_tracer() is tracer
            with obs.span("work"):
                obs.counter("ops").inc()
        assert obs.get_tracer() is NULL_TRACER
        assert [root.name for root in tracer.roots()] == ["work"]
        assert metrics.counter_values() == {"ops": 1}

    def test_ambient_labels_attach_to_metrics(self):
        metrics = MetricsRegistry()
        with obs.scope(Tracer(), metrics):
            with obs.labels(technique="ATR"):
                obs.counter("sat.solves").inc()
                with obs.labels(phase="verify"):
                    obs.counter("sat.solves").inc()
            obs.counter("sat.solves").inc()
        assert metrics.counter_values() == {
            "sat.solves{technique=ATR}": 1,
            "sat.solves{phase=verify,technique=ATR}": 1,
            "sat.solves": 1,
        }

    def test_scope_is_thread_local(self):
        seen = {}

        def other_thread():
            seen["tracer"] = obs.get_tracer()

        with obs.scope(Tracer(), MetricsRegistry()):
            thread = threading.Thread(target=other_thread)
            thread.start()
            thread.join()
        assert seen["tracer"] is NULL_TRACER


class TestExport:
    def _sample(self):
        tracer = Tracer()
        with tracer.span("run") as span:
            span.set(benchmark="arepair")
            with tracer.span("cell", spec="s1", technique="ATR"):
                with tracer.span("sat.solve"):
                    pass
        metrics = MetricsRegistry()
        metrics.counter("sat.solves", technique="ATR").inc(3)
        metrics.counter("sat.solves", technique="BeAFix").inc(2)
        metrics.gauge("peak").set(7)
        metrics.histogram("repair.seconds", technique="ATR").observe(0.5)
        return tracer, metrics

    def test_flatten_paths_and_depths(self):
        tracer, _ = self._sample()
        records = list(flatten_spans(tracer.roots()))
        assert [(r["path"], r["depth"]) for r in records] == [
            ("run", 0),
            ("run/cell", 1),
            ("run/cell/sat.solve", 2),
        ]

    def test_trace_file_round_trips(self, tmp_path):
        tracer, metrics = self._sample()
        path = tmp_path / "trace.jsonl"
        write_trace(path, tracer.roots(), metrics, meta={"seed": 0})
        data = read_trace(path)
        assert data.meta == {"seed": 0}
        assert data.span_names() == {"run", "cell", "sat.solve"}
        assert data.counter_total("sat.solves") == 5
        assert data.labelled_counter("sat.solves", "ATR") == 3
        assert data.techniques() == ["ATR", "BeAFix"]
        assert data.gauges == {"peak": 7}
        assert data.histograms["repair.seconds{technique=ATR}"]["count"] == 1

    def test_merge_trace_data_sums_counters(self):
        first = TraceData(counters={"sat.solves": 2, "llm.requests": 1})
        second = TraceData(counters={"sat.solves": 3})
        merged = merge_trace_data([first, second])
        assert merged.counters == {"sat.solves": 5, "llm.requests": 1}


def _pigeonhole_solver(pigeons: int, holes: int) -> SatSolver:
    """An UNSAT pigeonhole instance: guaranteed to generate conflicts."""
    solver = SatSolver()
    var = {
        (i, j): solver.new_var()
        for i in range(pigeons)
        for j in range(holes)
    }
    for i in range(pigeons):
        solver.add_clause([var[i, j] for j in range(holes)])
    for j in range(holes):
        for a in range(pigeons):
            for b in range(a + 1, pigeons):
                solver.add_clause([-var[a, j], -var[b, j]])
    return solver


class TestSolverPerCallStats:
    """Satellite: counters reset correctly between ``solve()`` calls."""

    def test_last_solve_is_a_per_call_view(self):
        solver = _pigeonhole_solver(5, 4)
        assert not solver.solve()
        first = solver.last_solve
        assert first.conflicts > 0
        cumulative = solver.stats.copy()

        assert not solver.solve()
        second = solver.last_solve
        # The lifetime stats advanced by exactly the second call's delta...
        assert solver.stats.conflicts == cumulative.conflicts + second.conflicts
        assert solver.stats.decisions == cumulative.decisions + second.decisions
        assert solver.stats.restarts == cumulative.restarts + second.restarts
        # ...and last_solve no longer reflects the first call.
        assert second.conflicts <= first.conflicts

    def test_restart_schedule_is_per_call(self):
        solver = _pigeonhole_solver(6, 5)
        assert not solver.solve()
        assert solver.last_solve.restarts > 0, "instance too easy to restart"
        # A reused solver re-proving the learned UNSAT does almost no work,
        # so its per-call restart count starts from zero again.
        assert not solver.solve()
        assert solver.last_solve.restarts == 0
        assert solver.stats.restarts > 0

    def test_unsat_by_assumption_keeps_per_call_stats(self):
        solver = SatSolver()
        a, b = solver.new_var(), solver.new_var()
        solver.add_clause([a, b])
        solver.add_clause([-a, b])
        assert not solver.solve(assumptions=[-b])
        by_assumption = solver.last_solve
        assert solver.solve()
        # The failed-assumption call did not leak into the next call's view.
        assert solver.last_solve is not by_assumption

    def test_solve_records_metrics_inside_a_scope(self):
        metrics = MetricsRegistry()
        solver = _pigeonhole_solver(4, 3)
        with obs.scope(Tracer(), metrics):
            assert not solver.solve()
        counters = metrics.counter_values()
        assert counters["sat.solves"] == 1
        assert counters["sat.conflicts"] == solver.last_solve.conflicts
        assert metrics.histogram_summaries()["sat.conflicts_per_solve"][
            "count"
        ] == 1


class TestTracedRuns:
    """Acceptance criteria: tracing never changes results, and serial vs
    parallel traced runs agree on span names and metric totals."""

    CONFIG = dict(
        benchmark="arepair",
        scale=0.05,
        techniques=("ATR", "Single-Round_None"),
        use_cache=False,
    )

    def test_tracing_does_not_change_the_matrix(self, tmp_path):
        plain = run_matrix(RunConfig(**self.CONFIG))
        traced = run_matrix(
            RunConfig(
                **self.CONFIG, trace_out=str(tmp_path / "trace.jsonl")
            )
        )
        assert payload(traced) == payload(plain)
        assert plain.telemetry is None
        assert traced.telemetry is not None
        assert (tmp_path / "trace.jsonl").exists()

    def test_serial_and_process_traces_agree(self, tmp_path):
        serial_out = tmp_path / "serial.jsonl"
        parallel_out = tmp_path / "parallel.jsonl"
        run_matrix(RunConfig(**self.CONFIG, trace_out=str(serial_out)))
        run_matrix(
            RunConfig(
                **self.CONFIG,
                trace_out=str(parallel_out),
                jobs=2,
                executor="process",
            )
        )
        serial = read_trace(serial_out)
        parallel = read_trace(parallel_out)
        assert serial.span_names() == parallel.span_names()
        # Deterministic cells mean every count matches exactly; only
        # timings (span durations, seconds histograms) may differ.
        assert serial.counters == parallel.counters
        assert {
            key: summary["count"] for key, summary in serial.histograms.items()
        } == {
            key: summary["count"]
            for key, summary in parallel.histograms.items()
        }
        assert serial.techniques() == ["ATR", "Single-Round_None"]

    def test_thread_executor_traced_run_smoke(self, tmp_path):
        out = tmp_path / "threads.jsonl"
        matrix = run_matrix(
            RunConfig(
                benchmark="arepair",
                scale=0.05,
                techniques=("ATR",),
                use_cache=False,
                trace_out=str(out),
                jobs=2,
                executor="thread",
            )
        )
        data = read_trace(out)
        assert "cell" in data.span_names()
        cell_spans = [r for r in data.spans if r["name"] == "cell"]
        assert len(cell_spans) == len(matrix.specs)
        assert data.counter_total("repair.attempts") == len(matrix.specs)
        assert data.counter_total("sat.solves") > 0

    def test_trace_telemetry_reaches_the_matrix(self, tmp_path):
        matrix = run_matrix(
            RunConfig(
                benchmark="arepair",
                scale=0.05,
                techniques=("ATR",),
                use_cache=False,
                trace_out=str(tmp_path / "t.jsonl"),
            )
        )
        snapshot = matrix.telemetry["metrics"]
        assert snapshot["counters"]["repair.attempts{technique=ATR}"] == len(
            matrix.specs
        )


class TestOnMetricsListener:
    """Satellite: the optional per-shard ``on_metrics`` progress event."""

    class Recorder:
        def __init__(self):
            self.summaries = []

        def on_cell(self, benchmark, outcome, done, total):
            pass

        def on_shard_done(self, benchmark, spec_id, done, total):
            pass

        def on_failure(self, benchmark, failure):
            pass

        def on_metrics(self, benchmark, summary):
            self.summaries.append(summary)

    def test_listener_receives_per_shard_summaries(self):
        recorder = self.Recorder()
        matrix = run_matrix(
            RunConfig(
                benchmark="arepair",
                scale=0.05,
                techniques=("ATR",),
                use_cache=False,
                listener=recorder,
            )
        )
        assert len(recorder.summaries) == len(matrix.specs)
        for summary in recorder.summaries:
            assert summary["cells"] == 1
            assert summary["elapsed"] >= 0

    def test_verbose_console_listener_prints_shard_timing(self, capsys):
        from repro.experiments.progress import ConsoleListener

        listener = ConsoleListener(verbose=True)
        listener.on_metrics(
            "arepair", {"spec_id": "s1", "elapsed": 0.5, "cells": 13}
        )
        out = capsys.readouterr().out
        assert "s1" in out and "13 cells" in out

    def test_quiet_console_listener_stays_silent(self, capsys):
        from repro.experiments.progress import ConsoleListener

        listener = ConsoleListener(verbose=False)
        listener.on_metrics(
            "arepair", {"spec_id": "s1", "elapsed": 0.5, "cells": 13}
        )
        assert capsys.readouterr().out == ""


class TestProfileStaticAnalysisSections:
    """The profile surfaces for the static-analysis subsystem."""

    def _data(self) -> TraceData:
        return TraceData(
            counters={
                "analyzer.solve_calls{technique=ATR}": 10,
                "analysis.pruned_typed{rule=disjoint-join,technique=ATR}": 4,
                "analysis.pruned_typed{rule=tautology,technique=ATR}": 2,
                "analysis.pruned_typed{rule=disjoint-join,technique=BeAFix}": 1,
                "analysis.lint_findings{rule=unused-sig,technique=Single-Round_0shot}": 3,
            },
            gauges={
                "analyzer.peak_vars": 321,
                "analyzer.peak_clauses{technique=ATR}": 999,
            },
        )

    def test_labelled_total_sums_across_extra_labels(self):
        data = self._data()
        assert data.labelled_total("analysis.pruned_typed", "ATR") == 6
        assert data.labelled_total("analysis.pruned_typed", "BeAFix") == 1
        assert data.labelled_total("analysis.pruned_typed", "ICEBAR") == 0

    def test_profile_renders_typed_column(self):
        from repro.obs.export import render_profile

        rendered = render_profile(self._data())
        assert "typed" in rendered
        header, atr_row = None, None
        for line in rendered.splitlines():
            if line.lstrip().startswith("technique"):
                header = line.split()
            if line.strip().startswith("ATR"):
                atr_row = line.split()
                break
        assert header is not None and atr_row is not None
        assert atr_row[header.index("typed")] == "6"

    def test_profile_renders_pruning_by_rule(self):
        from repro.obs.export import render_profile

        rendered = render_profile(self._data())
        assert "Static pruning by rule" in rendered
        assert "disjoint-join" in rendered and "tautology" in rendered

    def test_profile_renders_peak_gauges(self):
        from repro.obs.export import render_profile

        rendered = render_profile(self._data())
        assert "Peak gauges" in rendered
        assert "analyzer.peak_vars" in rendered and "321" in rendered

    def test_gauges_section_absent_without_gauges(self):
        from repro.obs.export import render_profile

        data = TraceData(counters={"analyzer.solve_calls{technique=ATR}": 1})
        assert "Peak gauges" not in render_profile(data)

    def test_gauges_merge_as_max(self):
        first = TraceData(gauges={"analyzer.peak_vars": 10})
        second = TraceData(gauges={"analyzer.peak_vars": 30, "other": 1})
        merged = merge_trace_data([first, second])
        assert merged.gauges == {"analyzer.peak_vars": 30, "other": 1}
