"""Lint engine tests: every rule, positions, ordering, and the fatal path."""

import pytest

from repro.alloy.parser import parse_module
from repro.analysis import (
    LintError,
    Severity,
    all_rules,
    check_module,
    lint_source,
    render_diagnostics,
    rule_by_name,
)
from repro.analysis.diagnostics import register_rule
from repro.runtime.errors import classify_exception


def codes(source: str) -> list[str]:
    return [d.code for d in lint_source(source)]


CLEAN = """
sig Node { next: set Node }
pred hasNext { some n: Node | some n.next }
run hasNext for 3
"""


class TestRules:
    def test_clean_spec_has_no_findings(self):
        assert lint_source(CLEAN) == []

    def test_disjoint_join(self):
        source = """
        sig A {}
        sig B { f: set A }
        pred p { some A.f }
        run p for 3
        """
        assert "A201" in codes(source)

    def test_empty_intersection(self):
        source = """
        sig A {}
        sig B {}
        pred p { no A & B }
        run p for 3
        """
        assert "A202" in codes(source)

    def test_vacuous_quantifier(self):
        source = """
        sig A {}
        sig B {}
        pred p { all x: A & B | x in A }
        run p for 3
        """
        assert "A203" in codes(source)

    def test_contradictory_mult(self):
        source = """
        sig A {}
        sig B {}
        pred p { some A & B }
        run p for 3
        """
        assert "A204" in codes(source)

    def test_tautological_compare(self):
        source = """
        sig A {}
        pred p { A = A }
        run p for 3
        """
        assert "A301" in codes(source)

    def test_contradictory_compare(self):
        source = """
        sig A {}
        pred p { A != A }
        run p for 3
        """
        assert "A302" in codes(source)

    def test_shadowed_binding(self):
        source = """
        sig A {}
        pred p { all a: A | all a: A | some a }
        run p for 3
        """
        assert "A303" in codes(source)

    def test_binder_shadowing_a_sig_name(self):
        source = """
        sig A {}
        pred p { all A: A | some A }
        run p for 3
        """
        assert "A303" in codes(source)

    def test_unused_sig(self):
        source = """
        sig A {}
        sig Orphan {}
        pred p { some A }
        run p for 3
        """
        assert "A401" in codes(source)

    def test_unused_field(self):
        source = """
        sig A { f: set A }
        pred p { some A }
        run p for 3
        """
        assert "A402" in codes(source)

    def test_unused_pred(self):
        source = """
        sig A {}
        pred used { some A }
        pred dead { no A }
        run used for 3
        """
        findings = lint_source(source)
        assert any(
            d.code == "A403" and "dead" in d.message for d in findings
        )

    def test_unused_fun(self):
        source = """
        sig A {}
        fun pick: A { A }
        pred p { some A }
        run p for 3
        """
        assert "A404" in codes(source)

    def test_fun_used_via_call_is_not_flagged(self):
        source = """
        sig A {}
        fun pick: A { A }
        pred p { some pick }
        run p for 3
        """
        assert "A404" not in codes(source)

    def test_parent_sig_with_children_is_used(self):
        source = """
        abstract sig A {}
        sig B extends A {}
        pred p { some B }
        run p for 3
        """
        assert "A401" not in codes(source)


class TestPositionsAndOrdering:
    def test_findings_carry_positions(self):
        source = "sig A {}\nsig B {}\npred p { some A & B }\nrun p for 3"
        findings = lint_source(source)
        assert findings
        for d in findings:
            assert d.pos.line > 0 and d.pos.column > 0

    def test_findings_sorted_by_position(self):
        source = """
        sig Orphan {}
        sig A {}
        sig B {}
        pred p { some A & B }
        pred q { no A & B }
        run p for 3
        run q for 3
        """
        findings = lint_source(source)
        keys = [(d.pos.line, d.pos.column, d.code) for d in findings]
        assert keys == sorted(keys)

    def test_context_names_the_paragraph(self):
        source = "sig A {}\nsig B {}\npred p { some A & B }\nrun p for 3"
        finding = next(d for d in lint_source(source) if d.code == "A204")
        assert finding.context == "pred p"

    def test_render(self):
        source = "sig A {}\nsig B {}\npred p { some A & B }\nrun p for 3"
        rendered = render_diagnostics(lint_source(source))
        assert "A204" in rendered and "pred p" in rendered

    def test_render_empty(self):
        assert "no findings" in render_diagnostics([])


class TestFatalPath:
    def test_check_module_raises_at_threshold(self):
        module = parse_module(
            "sig A {}\nsig B {}\npred p { some A & B }\nrun p for 3"
        )
        with pytest.raises(LintError) as exc:
            check_module(module)
        assert exc.value.diagnostics
        assert classify_exception(exc.value) == "spec.lint"

    def test_check_module_threshold_can_relax(self):
        module = parse_module(
            "sig A {}\nsig Orphan {}\npred p { some A }\nrun p for 3"
        )
        # Only INFO findings: the default ERROR threshold passes...
        assert [d.code for d in check_module(module)] == ["A401"]
        # ...while an INFO threshold is fatal.
        with pytest.raises(LintError):
            check_module(module, fail_on=Severity.INFO)


class TestRegistry:
    def test_rule_lookup_by_code_and_name(self):
        assert rule_by_name("A201") is rule_by_name("disjoint-join")
        with pytest.raises(KeyError):
            rule_by_name("no-such-rule")

    def test_codes_are_unique_and_stable(self):
        rules = all_rules()
        assert len({r.code for r in rules}) == len(rules)
        assert {r.code for r in rules} >= {
            "A201", "A202", "A203", "A204",
            "A301", "A302", "A303",
            "A401", "A402", "A403", "A404",
        }

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_rule("A201", "dup", Severity.INFO, "dup")
        with pytest.raises(ValueError):
            register_rule("A999", "disjoint-join", Severity.INFO, "dup")

    def test_severity_parse(self):
        assert Severity.parse("error") is Severity.ERROR
        assert Severity.parse("WARNING") is Severity.WARNING
        with pytest.raises(ValueError):
            Severity.parse("fatal")

    def test_severity_ordering(self):
        assert Severity.ERROR > Severity.WARNING > Severity.INFO


class TestLLMLintFeedback:
    """The lint surfaces the LLM tools attach to proposals."""

    DIRTY = "sig A {}\nsig B {}\npred p { some A & B }\nrun p for 3"

    def test_single_round_note_summarizes_codes(self):
        from repro.repair.single_round import SingleRoundLLM

        note = SingleRoundLLM._lint_note(parse_module(self.DIRTY))
        assert "lint finding" in note
        assert "A204" in note

    def test_single_round_note_empty_for_clean_proposal(self):
        from repro.repair.single_round import SingleRoundLLM

        assert SingleRoundLLM._lint_note(parse_module(CLEAN)) == ""

    def test_multi_round_section_renders_diagnostics(self):
        from repro.repair.multi_round import MultiRoundLLM

        section = MultiRoundLLM._lint_section(parse_module(self.DIRTY))
        assert "Static analysis of your last proposal" in section
        assert "A204" in section

    def test_multi_round_section_empty_cases(self):
        from repro.repair.multi_round import MultiRoundLLM

        assert MultiRoundLLM._lint_section(None) == ""
        assert MultiRoundLLM._lint_section(parse_module(CLEAN)) == ""

    def test_findings_counted_in_metrics(self):
        from repro import obs
        from repro.repair.multi_round import MultiRoundLLM

        registry = obs.MetricsRegistry()
        with obs.scope(obs.Tracer(), registry):
            MultiRoundLLM._lint_section(parse_module(self.DIRTY))
        counters = registry.snapshot()["counters"]
        assert any(
            key.startswith("analysis.lint_findings") for key in counters
        )
