"""CDCL solver tests: correctness against brute force, incrementality,
assumptions, budgets, and the Luby sequence."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sat.solver import BudgetExceeded, SatSolver, _luby


def brute_force_sat(num_vars: int, clauses: list[list[int]]) -> bool:
    for bits in itertools.product([False, True], repeat=num_vars):
        if all(any(bits[abs(l) - 1] ^ (l < 0) for l in clause) for clause in clauses):
            return True
    return False


def make_solver(num_vars: int, clauses: list[list[int]]) -> SatSolver:
    solver = SatSolver()
    for _ in range(num_vars):
        solver.new_var()
    for clause in clauses:
        solver.add_clause(clause)
    return solver


class TestBasics:
    def test_empty_problem_is_sat(self):
        assert SatSolver().solve()

    def test_unit_clause(self):
        solver = make_solver(1, [[1]])
        assert solver.solve()
        assert 1 in solver.model()

    def test_contradictory_units(self):
        solver = make_solver(1, [[1], [-1]])
        assert not solver.solve()

    def test_simple_implication_chain(self):
        solver = make_solver(3, [[1], [-1, 2], [-2, 3]])
        assert solver.solve()
        assert solver.model() == {1, 2, 3}

    def test_pigeonhole_2_into_1(self):
        # Two pigeons, one hole: p1 and p2 both in hole, but not together.
        solver = make_solver(2, [[1], [2], [-1, -2]])
        assert not solver.solve()

    def test_tautology_dropped(self):
        solver = make_solver(2, [[1, -1]])
        assert solver.solve()

    def test_duplicate_literals_merged(self):
        solver = make_solver(1, [[1, 1, 1]])
        assert solver.solve()
        assert 1 in solver.model()

    def test_zero_literal_rejected(self):
        solver = SatSolver()
        solver.new_var()
        with pytest.raises(ValueError):
            solver.add_clause([0])

    def test_model_satisfies_clauses(self):
        clauses = [[1, 2], [-1, 3], [-2, -3], [2, 3]]
        solver = make_solver(3, clauses)
        assert solver.solve()
        model = solver.model()
        for clause in clauses:
            assert any((abs(l) in model) == (l > 0) for l in clause)


class TestAgainstBruteForce:
    @given(
        st.integers(min_value=2, max_value=7).flatmap(
            lambda n: st.tuples(
                st.just(n),
                st.lists(
                    st.lists(
                        st.integers(min_value=1, max_value=n).flatmap(
                            lambda v: st.sampled_from([v, -v])
                        ),
                        min_size=1,
                        max_size=3,
                    ),
                    min_size=1,
                    max_size=25,
                ),
            )
        )
    )
    @settings(max_examples=150, deadline=None)
    def test_matches_brute_force(self, problem):
        num_vars, clauses = problem
        solver = make_solver(num_vars, clauses)
        assert solver.solve() == brute_force_sat(num_vars, clauses)

    @given(
        st.lists(
            st.lists(
                st.integers(min_value=1, max_value=5).flatmap(
                    lambda v: st.sampled_from([v, -v])
                ),
                min_size=2,
                max_size=3,
            ),
            min_size=1,
            max_size=15,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_sat_answers_come_with_valid_models(self, clauses):
        solver = make_solver(5, clauses)
        if solver.solve():
            model = solver.model()
            for clause in clauses:
                assert any((abs(l) in model) == (l > 0) for l in clause)


class TestIncremental:
    def test_enumerate_all_models(self):
        solver = make_solver(4, [[1, 2, 3, 4]])
        count = 0
        while solver.solve():
            count += 1
            solver.add_clause([-l for l in solver.model_list()])
        assert count == 15  # all assignments except all-false

    def test_clauses_after_sat_answer(self):
        solver = make_solver(2, [[1, 2]])
        assert solver.solve()
        solver.add_clause([-1])
        solver.add_clause([-2])
        assert not solver.solve()


class TestAssumptions:
    def test_assumption_forces_value(self):
        solver = make_solver(2, [[1, 2]])
        assert solver.solve([-1])
        assert 2 in solver.model()

    def test_conflicting_assumptions(self):
        solver = make_solver(2, [[1, 2], [-1, -2]])
        assert not solver.solve([1, 2])

    def test_assumption_against_unit(self):
        solver = make_solver(1, [[1]])
        assert not solver.solve([-1])

    def test_solver_reusable_after_assumption_failure(self):
        solver = make_solver(1, [[1]])
        assert not solver.solve([-1])
        assert solver.solve()


class TestBudget:
    def test_budget_raises(self):
        # Pigeonhole PHP(4,3) is small but needs search.
        clauses = []
        holes, pigeons = 3, 4

        def var(p, h):
            return p * holes + h + 1

        for p in range(pigeons):
            clauses.append([var(p, h) for h in range(holes)])
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    clauses.append([-var(p1, h), -var(p2, h)])
        solver = make_solver(pigeons * holes, clauses)
        with pytest.raises(BudgetExceeded):
            solver.solve(conflict_limit=2)

    def test_generous_budget_succeeds(self):
        solver = make_solver(3, [[1, 2], [-1, 3]])
        assert solver.solve(conflict_limit=100)


class TestLuby:
    def test_first_fifteen_elements(self):
        expected = [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]
        assert [_luby(i) for i in range(1, 16)] == expected

    def test_terminates_for_all_small_inputs(self):
        for i in range(1, 2000):
            value = _luby(i)
            assert value >= 1 and value & (value - 1) == 0  # power of two

    def test_stats_populated(self):
        solver = make_solver(3, [[1, 2], [-1, 2], [1, -2], [-1, -2, 3]])
        solver.solve()
        assert solver.stats.propagations > 0
