"""DIMACS CNF I/O tests."""

import pytest

from repro.sat.dimacs import parse_dimacs, solver_from_dimacs, to_dimacs


class TestParse:
    def test_basic_problem(self):
        text = "c comment\np cnf 3 2\n1 -2 0\n2 3 0\n"
        num_vars, clauses = parse_dimacs(text)
        assert num_vars == 3
        assert clauses == [[1, -2], [2, 3]]

    def test_clause_across_lines(self):
        text = "p cnf 2 1\n1\n-2 0\n"
        _, clauses = parse_dimacs(text)
        assert clauses == [[1, -2]]

    def test_trailing_clause_without_zero(self):
        text = "p cnf 2 1\n1 2\n"
        _, clauses = parse_dimacs(text)
        assert clauses == [[1, 2]]

    def test_comments_ignored(self):
        text = "c hello\nc world\np cnf 1 1\n1 0\n"
        num_vars, clauses = parse_dimacs(text)
        assert num_vars == 1 and clauses == [[1]]

    def test_malformed_problem_line(self):
        with pytest.raises(ValueError):
            parse_dimacs("p qbf 3 2\n1 0\n")


class TestRoundTrip:
    def test_to_dimacs_and_back(self):
        clauses = [[1, -2, 3], [-1], [2, 3]]
        text = to_dimacs(3, clauses)
        num_vars, parsed = parse_dimacs(text)
        assert num_vars == 3 and parsed == clauses

    def test_parse_emit_parse_is_identity(self):
        # Messy but legal input: comments, a clause split across lines, a
        # trailing clause without its 0 terminator.  One parse → emit pass
        # canonicalizes; after that the representation is a fixed point.
        messy = "c header\np cnf 4 3\n1 -2\n3 0\nc mid\n-3 4 0\n2 -4\n"
        num_vars, clauses = parse_dimacs(messy)
        emitted = to_dimacs(num_vars, clauses)
        assert parse_dimacs(emitted) == (num_vars, clauses)
        assert parse_dimacs(to_dimacs(num_vars, clauses)) == (
            num_vars,
            clauses,
        )

    def test_solver_from_dimacs_sat(self):
        solver = solver_from_dimacs("p cnf 2 2\n1 2 0\n-1 2 0\n")
        assert solver.solve()
        assert 2 in solver.model()

    def test_solver_from_dimacs_unsat(self):
        solver = solver_from_dimacs("p cnf 1 2\n1 0\n-1 0\n")
        assert not solver.solve()
