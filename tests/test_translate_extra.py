"""Additional translator coverage: operators the core tests don't reach."""

import pytest

from repro.analyzer.analyzer import Analyzer
from repro.analyzer.evaluator import Evaluator


def solve_pred(source: str, limit: int = 32):
    analyzer = Analyzer(source)
    command = analyzer.info.commands[0]
    result = analyzer.run_command(command, max_instances=limit)
    return analyzer, result


class TestOverrideAndRestrict:
    def test_override_semantics(self):
        source = (
            "sig A { r: set A, s: set A }\n"
            "pred t { some r and some s and (r ++ s) != r }\n"
            "run t for 2\n"
        )
        analyzer, result = solve_pred(source)
        assert result.sat
        for instance in result.instances:
            evaluator = Evaluator(analyzer.info, instance)
            assert evaluator.pred_holds("t")

    def test_domain_restriction(self):
        source = (
            "sig A { r: set A }\nsig B {}\n"
            "pred t { some a: A | some (a <: r) and (a <: r) in r }\n"
            "run t for 2\n"
        )
        analyzer, result = solve_pred(source)
        assert result.sat

    def test_range_restriction(self):
        source = (
            "sig A { r: set A }\n"
            "pred t { some a: A | some (r :> a) }\n"
            "run t for 2\n"
        )
        analyzer, result = solve_pred(source)
        assert result.sat


class TestIntegerTranslation:
    def test_card_equality_between_relations(self):
        source = (
            "sig A {}\nsig B {}\n"
            "pred t { #A = #B and some A }\n"
            "run t for 3\n"
        )
        analyzer, result = solve_pred(source)
        assert result.sat
        for instance in result.instances:
            assert len(instance.relation("A")) == len(instance.relation("B"))

    def test_card_sum(self):
        source = (
            "sig A {}\nsig B {}\n"
            "pred t { #A + #B = 3 }\n"
            "run t for 3\n"
        )
        analyzer, result = solve_pred(source)
        assert result.sat
        for instance in result.instances:
            total = len(instance.relation("A")) + len(instance.relation("B"))
            assert total == 3

    def test_card_neq(self):
        source = "sig A {}\npred t { #A != 2 }\nrun t for 3\n"
        analyzer, result = solve_pred(source, limit=8)
        for instance in result.instances:
            assert len(instance.relation("A")) != 2

    def test_unsupported_int_minus_raises(self):
        from repro.alloy.errors import AlloyError

        source = "sig A {}\npred t { #A - 1 = 2 }\nrun t for 3\n"
        analyzer = Analyzer(source)
        with pytest.raises(AlloyError):
            analyzer.execute_all()


class TestLetAndCalls:
    def test_let_binding(self):
        source = (
            "sig A { r: set A }\n"
            "pred t { let x = A.r | some x }\n"
            "run t for 2\n"
        )
        analyzer, result = solve_pred(source)
        assert result.sat

    def test_fun_inlining(self):
        source = (
            "sig A { r: set A }\n"
            "fun image[x: A]: set A { x.r }\n"
            "pred t { some a: A | some image[a] }\n"
            "run t for 2\n"
        )
        analyzer, result = solve_pred(source)
        assert result.sat

    def test_pred_call_with_args(self):
        source = (
            "sig A { r: set A }\n"
            "pred linked[x: A, y: A] { y in x.r }\n"
            "pred t { some disj a, b: A | linked[a, b] }\n"
            "run t for 2\n"
        )
        analyzer, result = solve_pred(source)
        assert result.sat

    def test_recursive_pred_rejected(self):
        from repro.alloy.errors import AlloyError

        source = (
            "sig A {}\n"
            "pred loop { loop }\n"
            "run loop for 2\n"
        )
        analyzer = Analyzer(source)
        with pytest.raises(AlloyError):
            analyzer.execute_all()


class TestQuantifierVariants:
    @pytest.mark.parametrize("quant,expected_counts", [
        ("lone", {0, 1}),
        ("one", {1}),
        ("no", {0}),
    ])
    def test_counting_quantifiers(self, quant, expected_counts):
        source = (
            "sig A { mark: lone A }\n"
            f"pred t {{ {quant} a: A | a in a.mark }}\n"
            "run t for 2\n"
        )
        analyzer, result = solve_pred(source, limit=64)
        assert result.sat
        for instance in result.instances:
            self_marked = sum(
                1
                for (a,) in instance.relation("A")
                if (a, a) in instance.relation("mark")
            )
            assert self_marked in expected_counts

    def test_nested_quantifiers_with_dependent_bound(self):
        source = (
            "sig A { r: set A }\n"
            "pred t { some a: A | all b: a.r | b != a }\n"
            "run t for 2\n"
        )
        analyzer, result = solve_pred(source)
        assert result.sat
        for instance in result.instances:
            evaluator = Evaluator(analyzer.info, instance)
            assert evaluator.pred_holds("t")


class TestTernaryFields:
    def test_ternary_field_translation(self):
        source = (
            "sig S { t: S -> S }\n"
            "pred p { some s: S | some s.t }\n"
            "run p for 2\n"
        )
        analyzer, result = solve_pred(source)
        assert result.sat
        for instance in result.instances:
            assert all(len(tup) == 3 for tup in instance.relation("t"))

    def test_ternary_with_arrow_multiplicity(self):
        source = (
            "sig S { t: S -> lone S }\n"
            "pred p { some t }\n"
            "run p for 2\n"
        )
        analyzer, result = solve_pred(source, limit=64)
        for instance in result.instances:
            for owner, left in {
                (tup[0], tup[1]) for tup in instance.relation("t")
            }:
                images = {
                    tup[2]
                    for tup in instance.relation("t")
                    if tup[0] == owner and tup[1] == left
                }
                assert len(images) <= 1
