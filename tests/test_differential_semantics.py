"""Differential fuzzing: the evaluator against independent reference
implementations of the relational operators.

The reference semantics here are written straight from Jackson's definitions
(naive set comprehensions over tuples), deliberately *not* sharing code with
``repro.analyzer.evaluator``, so agreement is meaningful evidence.
"""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.alloy.parser import parse_expr, parse_module
from repro.alloy.resolver import resolve_module
from repro.analyzer.evaluator import Evaluator
from repro.analyzer.instance import make_instance

ATOMS = ["a", "b", "c"]

SPEC = "sig S { r: set S, q: set S }"


def reference_join(left, right):
    return frozenset(
        x[:-1] + y[1:]
        for x in left
        for y in right
        if x[-1] == y[0]
    )


def reference_closure(relation):
    atoms = {a for t in relation for a in t}
    closure = set(relation)
    for _ in range(len(atoms)):
        closure |= {
            (x, w)
            for (x, y) in closure
            for (z, w) in closure
            if y == z
        }
    return frozenset(closure)


def reference_override(left, right):
    heads = {t[0] for t in right}
    return frozenset(t for t in left if t[0] not in heads) | right


@st.composite
def binary_relation(draw):
    pairs = [
        (x, y) for x in ATOMS for y in ATOMS
    ]
    chosen = draw(st.lists(st.sampled_from(pairs), max_size=6))
    return frozenset(chosen)


@st.composite
def unary_relation(draw):
    chosen = draw(st.lists(st.sampled_from(ATOMS), min_size=1, max_size=3))
    return frozenset((a,) for a in chosen)


def evaluator_for(sig_atoms, r, q):
    info = resolve_module(parse_module(SPEC))
    instance = make_instance({"S": sig_atoms, "r": r, "q": q})
    return Evaluator(info, instance)


class TestDifferentialOperators:
    @given(unary_relation(), binary_relation(), binary_relation())
    @settings(max_examples=80, deadline=None)
    def test_join_matches_reference(self, s_atoms, r, q):
        evaluator = evaluator_for(s_atoms, r, q)
        ours = evaluator.expr(parse_expr("r.q"))
        assert ours == reference_join(r, q)

    @given(unary_relation(), binary_relation())
    @settings(max_examples=80, deadline=None)
    def test_closure_matches_reference(self, s_atoms, r):
        evaluator = evaluator_for(s_atoms, r, frozenset())
        ours = evaluator.expr(parse_expr("^r"))
        assert ours == reference_closure(r)

    @given(unary_relation(), binary_relation(), binary_relation())
    @settings(max_examples=80, deadline=None)
    def test_override_matches_reference(self, s_atoms, r, q):
        evaluator = evaluator_for(s_atoms, r, q)
        ours = evaluator.expr(parse_expr("r ++ q"))
        assert ours == reference_override(r, q)

    @given(unary_relation(), binary_relation(), binary_relation())
    @settings(max_examples=60, deadline=None)
    def test_transpose_involution(self, s_atoms, r, q):
        evaluator = evaluator_for(s_atoms, r, q)
        assert evaluator.expr(parse_expr("~~r")) == r

    @given(unary_relation(), binary_relation(), binary_relation())
    @settings(max_examples=60, deadline=None)
    def test_set_algebra_laws(self, s_atoms, r, q):
        evaluator = evaluator_for(s_atoms, r, q)
        union = evaluator.expr(parse_expr("r + q"))
        intersect = evaluator.expr(parse_expr("r & q"))
        diff_rq = evaluator.expr(parse_expr("r - q"))
        # |r ∪ q| = |r| + |q| - |r ∩ q|
        assert len(union) == len(r) + len(q) - len(intersect)
        # (r - q) ∪ (r ∩ q) = r
        assert diff_rq | intersect == r

    @given(unary_relation(), binary_relation())
    @settings(max_examples=60, deadline=None)
    def test_closure_is_idempotent_and_contains_relation(self, s_atoms, r):
        evaluator = evaluator_for(s_atoms, r, frozenset())
        once = evaluator.expr(parse_expr("^r"))
        info = resolve_module(parse_module(SPEC))
        again = Evaluator(
            info, make_instance({"S": s_atoms, "r": once, "q": frozenset()})
        ).expr(parse_expr("^r"))
        assert once == again
        assert r <= once

    @given(unary_relation(), binary_relation(), binary_relation())
    @settings(max_examples=60, deadline=None)
    def test_restrict_decomposition(self, s_atoms, r, q):
        """dom-restrict + its complement partition the relation."""
        evaluator = evaluator_for(s_atoms, r, q)
        restricted = evaluator.expr(parse_expr("S <: r"))
        # All S atoms are present, so S <: r = r when heads are in S.
        heads_in_s = frozenset(t for t in r if (t[0],) in s_atoms)
        assert restricted == heads_in_s
