"""ATR template engine tests."""

import pytest

from repro.alloy.parser import parse_module
from repro.alloy.pretty import print_module
from repro.alloy.resolver import resolve_module
from repro.repair.localization import formula_paths
from repro.repair.mutation import mutation_points
from repro.repair.templates import (
    atomic_candidates,
    expression_templates,
    strengthening_candidates,
    template_candidates,
)

SPEC = """
sig Node { next: lone Node, marks: set Mark }
sig Mark {}

fact Shape {
  all n: Node | n not in n.next
}

pred show { some Node }
assert Deep { no n: Node | n in n.^next }

run show for 3 expect 1
check Deep for 3 expect 0
"""


@pytest.fixture
def module():
    return parse_module(SPEC)


@pytest.fixture
def info(module):
    return resolve_module(module)


class TestAtomicCandidates:
    def test_unary_candidates_include_sigs(self, info):
        names = {c.name for c in atomic_candidates(info, {}, 1)}
        assert {"Node", "Mark"} <= names

    def test_binary_candidates_include_fields(self, info):
        names = {c.name for c in atomic_candidates(info, {}, 2)}
        assert {"next", "marks"} <= names

    def test_env_variables_included(self, info):
        names = {c.name for c in atomic_candidates(info, {"x": 1}, 1)}
        assert "x" in names


class TestExpressionTemplates:
    def _expr_path(self, module):
        # Deepest expression inside the fact.
        points = [
            p
            for p in mutation_points(module)
            if p not in set(formula_paths(module))
        ]
        return max(points, key=len)

    def test_templates_resolve(self, module, info):
        path = self._expr_path(module)
        produced = list(expression_templates(module, info, path))
        assert produced
        for candidate, _ in produced:
            resolve_module(candidate)

    def test_templates_include_closure(self, module, info):
        path = self._expr_path(module)
        descriptions = [d for _, d in expression_templates(module, info, path)]
        # Binary expressions gain closure/transpose templates.
        assert descriptions  # at minimum replacement templates exist


class TestTemplateCandidates:
    def test_deduplicated(self, module, info):
        path = formula_paths(module)[0]
        texts = [
            print_module(m.module)
            for m in template_candidates(module, info, path)
        ]
        assert len(texts) == len(set(texts))

    def test_respects_cap(self, module, info):
        path = formula_paths(module)[0]
        produced = list(
            template_candidates(module, info, path, max_per_location=5)
        )
        assert len(produced) <= 5


class TestStrengthening:
    def test_adds_fact_from_assertion(self, module, info):
        produced = list(strengthening_candidates(module, info))
        assert produced
        candidate, description = produced[0]
        assert "Deep" in description
        assert len(candidate.facts) == len(module.facts) + 1

    def test_strengthened_module_resolves(self, module, info):
        for candidate, _ in strengthening_candidates(module, info):
            resolve_module(candidate)

    def test_repairs_dropped_constraint(self):
        """The signature scenario: a constraint was deleted; the assertion
        still states it; strengthening recovers it."""
        from repro.analyzer.analyzer import Analyzer

        faulty = SPEC.replace("all n: Node | n not in n.next\n", "some Node\n")
        module = parse_module(faulty)
        info = resolve_module(module)
        fixed = False
        for candidate, _ in strengthening_candidates(module, info):
            analyzer = Analyzer(candidate)
            results = analyzer.execute_all()
            if all(r.meets_expectation for r in results):
                fixed = True
                break
        assert fixed
