"""Shard deadlines: cooperative in-worker enforcement and the watchdog.

The contract under test: an overdue shard records exactly one
``shard.timeout`` failure and ``"timeout"`` outcomes for its *pending*
cells (completed cells are kept), a hung worker is bounded by the
ProcessExecutor watchdog rather than wedging the run, and timeout
artifacts never enter the result cache.
"""

import multiprocessing
import time
from contextlib import contextmanager

import pytest

from repro.benchmarks.faults import FaultySpec
from repro.experiments.executor import (
    ProcessExecutor,
    ShardTask,
    execute_shard,
    timeout_shard_result,
)
from repro.experiments.runner import (
    MATRIX_SCHEMA,
    ResultMatrix,
    RunConfig,
    _save_outcomes,
    _timeout_outcome,
)
from repro.llm.prompts import RepairHints
from repro.repair import registry
from repro.repair.base import RepairResult, RepairStatus, RepairTool
from repro.runtime.errors import ShardTimeoutError
from repro.runtime.guard import capture_failure
from repro.runtime.persist import load_json

from .conftest import LINKED_LIST_SPEC


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    return tmp_path / "cache"


def make_spec(spec_id: str) -> FaultySpec:
    return FaultySpec(
        spec_id=spec_id,
        benchmark="adhoc",
        domain="adhoc",
        model_name=spec_id,
        faulty_source=LINKED_LIST_SPEC,
        truth_source=LINKED_LIST_SPEC,
        fault_description="",
        depth=0,
        hints=RepairHints(),
    )


class _Sleepy(RepairTool):
    """Cooperative slowness: sleeps, then finishes normally."""

    name = "Sleepy"
    nap = 0.5

    def _repair(self, task):
        time.sleep(self.nap)
        return RepairResult(status=RepairStatus.NOT_FIXED, technique=self.name)


class _Hangy(RepairTool):
    """Uncooperative slowness: hangs only inside a pool worker, so the
    watchdog's in-process recovery paths stay fast."""

    name = "Hangy"

    def _repair(self, task):
        if multiprocessing.parent_process() is not None:
            time.sleep(30)
        return RepairResult(status=RepairStatus.NOT_FIXED, technique=self.name)


@contextmanager
def registered(name, factory):
    registry.register(name, factory, replace=True)
    try:
        yield
    finally:
        registry.unregister(name)


class TestCooperativeDeadline:
    def test_overdue_shard_keeps_done_cells_and_times_out_the_rest(self):
        task = ShardTask(
            spec=make_spec("slow"),
            techniques=("Sleepy", "ATR"),
            seed=0,
            shard_timeout=0.2,
        )
        with registered("Sleepy", lambda spec, seed: _Sleepy()):
            result = execute_shard(task)
        # The cell that was already running finished and is kept; only the
        # cells still pending at the deadline check become timeouts.
        assert result.outcomes["Sleepy"].status == "not_fixed"
        assert result.outcomes["ATR"].status == "timeout"
        assert result.outcomes["ATR"].rep == 0
        (failure,) = result.failures
        assert failure.code == "shard.timeout"
        assert failure.where == "slow:shard"
        assert failure.context["pending"] == ["ATR"]

    def test_generous_deadline_changes_nothing(self):
        task = ShardTask(
            spec=make_spec("fine"), techniques=("ATR",), seed=0
        )
        timed = ShardTask(
            spec=make_spec("fine"),
            techniques=("ATR",),
            seed=0,
            shard_timeout=600.0,
        )
        plain_result = execute_shard(task)
        timed_result = execute_shard(timed)
        assert timed_result.failures == []
        assert {
            t: (o.rep, o.tm, o.sm, o.status)
            for t, o in timed_result.outcomes.items()
        } == {
            t: (o.rep, o.tm, o.sm, o.status)
            for t, o in plain_result.outcomes.items()
        }

    def test_deadline_before_first_cell_times_out_everything(self):
        task = ShardTask(
            spec=make_spec("instant"),
            techniques=("ATR", "BeAFix"),
            seed=0,
            shard_timeout=1e-9,
        )
        result = execute_shard(task)
        assert {o.status for o in result.outcomes.values()} == {"timeout"}
        (failure,) = result.failures
        assert failure.context["pending"] == ["ATR", "BeAFix"]


class TestWatchdog:
    def test_allowance_is_twice_the_largest_timeout_plus_grace(self):
        plain = ShardTask(spec=make_spec("a"), techniques=("ATR",), seed=0)
        timed = ShardTask(
            spec=make_spec("b"), techniques=("ATR",), seed=0, shard_timeout=3.0
        )
        assert ProcessExecutor._watchdog_allowance([plain]) is None
        assert ProcessExecutor._watchdog_allowance([plain, timed]) == 7.0

    def test_on_timeout_policy_is_validated(self):
        with pytest.raises(ValueError, match="on_timeout"):
            ProcessExecutor(jobs=2, on_timeout="bogus")

    def _shards(self):
        return [
            ShardTask(
                spec=make_spec(spec_id),
                techniques=("Hangy",),
                seed=0,
                shard_timeout=0.4,
            )
            for spec_id in ("hung", "fine-1", "fine-2")
        ]

    def test_hung_worker_is_abandoned_and_the_run_completes(self):
        with registered("Hangy", lambda spec, seed: _Hangy()):
            results = list(ProcessExecutor(jobs=2).run(self._shards()))
        assert [r.spec_id for r in results] == ["hung", "fine-1", "fine-2"]
        hung = results[0]
        assert hung.outcomes["Hangy"].status == "timeout"
        (failure,) = hung.failures
        assert failure.code == "shard.timeout"
        assert "watchdog" in failure.message
        for salvaged in results[1:]:
            assert salvaged.outcomes["Hangy"].status == "not_fixed"
            assert salvaged.failures == []

    def test_requeue_recovers_the_result_and_keeps_the_audit_record(self):
        with registered("Hangy", lambda spec, seed: _Hangy()):
            results = list(
                ProcessExecutor(jobs=2, on_timeout="requeue").run(self._shards())
            )
        hung = results[0]
        # The in-process rerun produced the real outcome...
        assert hung.outcomes["Hangy"].status == "not_fixed"
        # ...and the watchdog trip stays on the record.
        (failure,) = hung.failures
        assert failure.code == "shard.timeout"
        assert failure.context["requeued"] is True

    def test_requeued_shard_matches_a_direct_run(self):
        # The salvage path is only trustworthy if the in-process rerun is
        # the *same computation*: identical rep/tm/sm/status to executing
        # the shard directly, watchdog involvement notwithstanding.
        with registered("Hangy", lambda spec, seed: _Hangy()):
            direct = execute_shard(
                ShardTask(spec=make_spec("hung"), techniques=("Hangy",), seed=0)
            )
            results = list(
                ProcessExecutor(jobs=2, on_timeout="requeue").run(self._shards())
            )
        hung = results[0]
        assert {
            t: (o.rep, o.tm, o.sm, o.status)
            for t, o in hung.outcomes.items()
        } == {
            t: (o.rep, o.tm, o.sm, o.status)
            for t, o in direct.outcomes.items()
        }


class TestTimeoutArtifactsStayOutOfTheCache:
    def test_save_outcomes_filters_timeouts(self, tmp_path):
        spec = make_spec("mixed")
        matrix = ResultMatrix(benchmark="adhoc", seed=0, scale=1.0, specs=[spec])
        matrix.outcomes["mixed"] = {
            "ATR": _timeout_outcome(spec, "ATR"),
            "BeAFix": _completed(spec, "BeAFix"),
        }
        matrix.failures.append(
            capture_failure(
                "mixed:shard", ShardTimeoutError("deadline exceeded")
            )
        )
        matrix.failures.append(
            capture_failure("mixed:ATR", RuntimeError("real crash"))
        )
        path = tmp_path / "matrix.json"
        _save_outcomes(matrix, path)
        payload = load_json(path, schema=MATRIX_SCHEMA)
        # Timeout cells and shard.timeout records are execution artifacts:
        # a rerun must recompute them, so they never persist.
        assert payload["outcomes"]["mixed"] == {
            "BeAFix": {
                "rep": 0, "tm": 0.0, "sm": 0.0,
                "status": "not_fixed", "elapsed": 0.0,
            }
        }
        assert [record["code"] for record in payload["failures"]] == [
            "internal.RuntimeError"
        ]

    def test_synthesized_watchdog_result_is_complete(self):
        task = ShardTask(
            spec=make_spec("gone"),
            techniques=("ATR", "BeAFix"),
            seed=0,
            shard_timeout=1.0,
        )
        result = timeout_shard_result(task, "worker never reported")
        assert set(result.outcomes) == {"ATR", "BeAFix"}
        assert {o.status for o in result.outcomes.values()} == {"timeout"}
        (failure,) = result.failures
        assert failure.code == "shard.timeout"
        assert failure.context["pending"] == ["ATR", "BeAFix"]


class TestRunConfigTimeout:
    def test_shard_timeout_must_be_positive(self):
        with pytest.raises(ValueError, match="shard_timeout"):
            RunConfig(benchmark="arepair", shard_timeout=0)
        with pytest.raises(ValueError, match="shard_timeout"):
            RunConfig(benchmark="arepair", shard_timeout=-1.5)


def _completed(spec, technique):
    from repro.experiments.runner import SpecOutcome

    return SpecOutcome(
        spec_id=spec.spec_id,
        technique=technique,
        rep=0,
        tm=0.0,
        sm=0.0,
        status="not_fixed",
        elapsed=0.0,
    )
