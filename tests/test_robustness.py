"""Integration tests for the resilience layer: crash-isolated experiment
runs, corruption-tolerant caches, budgeted analysis, retrying LLM clients,
hardened extraction, and CLI error handling."""

import json

import pytest

from repro.alloy.errors import AnalysisBudgetError
from repro.analyzer.analyzer import Analyzer
from repro.benchmarks.cache import BENCHMARK_SCHEMA, load_benchmark
from repro.cli import EXIT_INPUT, main
from repro.experiments.runner import (
    MATRIX_SCHEMA,
    RunConfig,
    run_matrix,
    run_spec,
)
from repro.llm.client import (
    Conversation,
    RetryingClient,
    TransientLLMError,
    UnreliableClient,
)
from repro.llm.extract import extract_module
from repro.llm.mock_gpt import MockGPT
from repro.repair.base import RepairStatus, RepairTask, RepairTool
from repro.runtime import Budget, RetryPolicy


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    return tmp_path / "cache"


class TestCrashIsolatedRepair:
    def test_arbitrary_tool_crash_becomes_error_result(self, linked_list_spec):
        class BuggyTool(RepairTool):
            name = "Buggy"

            def _repair(self, task):
                raise KeyError("tool bug")

        result = BuggyTool().repair(RepairTask.from_source(linked_list_spec))
        assert result.status is RepairStatus.ERROR
        assert "[internal.KeyError]" in result.detail

    def test_keyboard_interrupt_still_propagates(self, linked_list_spec):
        class InterruptedTool(RepairTool):
            name = "Interrupted"

            def _repair(self, task):
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            InterruptedTool().repair(RepairTask.from_source(linked_list_spec))


class TestCrashIsolatedMatrix:
    def test_cell_crash_is_recorded_not_fatal(self, monkeypatch):
        import repro.experiments.runner as runner_module

        real_run_spec = run_spec

        def sabotaged(spec, technique, seed, truth_outcomes=None):
            if technique == "ATR":
                raise RuntimeError("injected cell crash")
            return real_run_spec(spec, technique, seed, truth_outcomes)

        monkeypatch.setattr(runner_module, "run_spec", sabotaged)
        matrix = run_matrix(
            RunConfig(
                benchmark="arepair",
                scale=0.1,
                techniques=("BeAFix", "ATR"),
                use_cache=False,
            )
        )
        assert matrix.specs, "scaled benchmark should not be empty"
        for spec in matrix.specs:
            assert matrix.outcomes[spec.spec_id]["ATR"].status == "crashed"
            assert matrix.outcomes[spec.spec_id]["ATR"].rep == 0
            assert matrix.outcomes[spec.spec_id]["BeAFix"].status != "crashed"
        assert len(matrix.failures) == len(matrix.specs)
        assert matrix.failure_summary() == {
            "internal.RuntimeError": len(matrix.specs)
        }

    def test_fail_fast_propagates_the_crash(self, monkeypatch):
        import repro.experiments.runner as runner_module

        def always_crashes(spec, technique, seed, truth_outcomes=None):
            raise RuntimeError("injected cell crash")

        monkeypatch.setattr(runner_module, "run_spec", always_crashes)
        with pytest.raises(RuntimeError, match="injected cell crash"):
            run_matrix(
                RunConfig(
                    benchmark="arepair",
                    scale=0.1,
                    techniques=("ATR",),
                    use_cache=False,
                    fail_fast=True,
                )
            )

    def test_failures_round_trip_through_the_cache(self):
        import repro.experiments.runner as runner_module

        def always_crashes(spec, technique, seed, truth_outcomes=None):
            raise RuntimeError("injected cell crash")

        # A dedicated MonkeyPatch context: undoing the test's shared
        # `monkeypatch` here would also undo the cache isolation fixture.
        with pytest.MonkeyPatch.context() as patcher:
            patcher.setattr(runner_module, "run_spec", always_crashes)
            first = run_matrix(
                RunConfig(benchmark="arepair", scale=0.1, techniques=("ATR",))
            )
        # Second call must be served entirely from cache (run_spec restored,
        # so a cache miss would produce non-crashed outcomes).
        second = run_matrix(
            RunConfig(benchmark="arepair", scale=0.1, techniques=("ATR",))
        )
        assert len(second.failures) == len(first.failures)
        for spec in second.specs:
            assert second.outcomes[spec.spec_id]["ATR"].status == "crashed"


class TestGracefulInterrupt:
    class _InterruptAfterFirstShard:
        """A listener standing in for Ctrl-C landing mid-run."""

        def on_cell(self, benchmark, outcome, done, total):
            pass

        def on_shard_done(self, benchmark, spec_id, shards_done, total_shards):
            raise KeyboardInterrupt

        def on_failure(self, benchmark, failure):
            pass

    def test_interrupt_flushes_partial_results_and_reraises(
        self, isolated_cache, capsys
    ):
        # flush_every is huge, so the only way the first shard's cells
        # reach the cache is the interrupt handler's explicit flush.
        config = RunConfig(
            benchmark="arepair",
            scale=0.1,
            techniques=("ATR",),
            flush_every=10_000,
            listener=self._InterruptAfterFirstShard(),
        )
        with pytest.raises(KeyboardInterrupt):
            run_matrix(config)
        err = capsys.readouterr().err
        assert "interrupted:" in err
        assert "a rerun resumes from there" in err
        from repro.runtime.persist import load_json

        (cache_file,) = isolated_cache.glob("matrix-*.json")
        payload = load_json(cache_file, schema=MATRIX_SCHEMA)
        flushed = payload["outcomes"]
        assert flushed, "the finished shard must survive the interrupt"
        assert all("ATR" in row for row in flushed.values())
        # The rerun resumes from the flushed shard and completes.
        matrix = run_matrix(
            RunConfig(benchmark="arepair", scale=0.1, techniques=("ATR",))
        )
        assert all("ATR" in row for row in matrix.outcomes.values())
        for spec_id, row in flushed.items():
            assert matrix.outcomes[spec_id]["ATR"].rep == row["ATR"]["rep"]

    def test_interrupt_without_cache_still_reports_and_reraises(self, capsys):
        config = RunConfig(
            benchmark="arepair",
            scale=0.1,
            techniques=("ATR",),
            use_cache=False,
            listener=self._InterruptAfterFirstShard(),
        )
        with pytest.raises(KeyboardInterrupt):
            run_matrix(config)
        assert "computed but not cached" in capsys.readouterr().err


class TestMatrixCacheRobustness:
    def _cache_files(self, cache_root):
        return list(cache_root.glob("matrix-*.json"))

    def test_corrupt_matrix_cache_regenerates(self, isolated_cache):
        matrix = run_matrix(
            RunConfig(benchmark="arepair", scale=0.1, techniques=("ATR",))
        )
        (cache_file,) = self._cache_files(isolated_cache)
        cache_file.write_text('{"schema": "' + MATRIX_SCHEMA + '", "data": {')
        again = run_matrix(
            RunConfig(benchmark="arepair", scale=0.1, techniques=("ATR",))
        )
        assert {
            spec_id: outcome["ATR"].rep
            for spec_id, outcome in again.outcomes.items()
        } == {
            spec_id: outcome["ATR"].rep
            for spec_id, outcome in matrix.outcomes.items()
        }

    def test_pre_versioning_matrix_cache_regenerates(self, isolated_cache):
        run_matrix(
            RunConfig(benchmark="arepair", scale=0.1, techniques=("ATR",))
        )
        (cache_file,) = self._cache_files(isolated_cache)
        cache_file.write_text("{}")  # old unstamped format
        again = run_matrix(
            RunConfig(benchmark="arepair", scale=0.1, techniques=("ATR",))
        )
        assert all("ATR" in row for row in again.outcomes.values())


class TestBenchmarkCacheRobustness:
    def test_truncated_benchmark_cache_regenerates(self, isolated_cache, capsys):
        specs = load_benchmark("arepair", scale=0.1)
        (cache_file,) = isolated_cache.glob("arepair-*.json")
        cache_file.write_text('{"schema": "' + BENCHMARK_SCHEMA + '", "data": [{')
        again = load_benchmark("arepair", scale=0.1)
        assert [s.spec_id for s in again] == [s.spec_id for s in specs]
        assert "discarding unusable benchmark cache" in capsys.readouterr().err

    def test_benchmark_cache_write_is_atomic(self, isolated_cache):
        load_benchmark("arepair", scale=0.1)
        leftovers = [
            p for p in isolated_cache.iterdir() if p.name.endswith(".tmp")
        ]
        assert leftovers == []

    def test_valid_cache_still_round_trips(self, isolated_cache):
        first = load_benchmark("arepair", scale=0.1)
        second = load_benchmark("arepair", scale=0.1)
        assert [s.faulty_source for s in first] == [s.faulty_source for s in second]


class TestBudgetedAnalysis:
    def test_session_budget_bounds_solver_calls(self, linked_list_spec):
        analyzer = Analyzer(linked_list_spec, budget=Budget(steps=1))
        # One command fits in one solver call; the next call must trip.
        analyzer.run_command(analyzer.info.commands[0])
        with pytest.raises(AnalysisBudgetError):
            analyzer.run_command(analyzer.info.commands[0])

    def test_enumeration_budget_keeps_partial_instances(self, linked_list_spec):
        # Enumerating many instances charges one step each; the first
        # instance lands within budget, later ones trip it — the result
        # must keep what was found and flag the truncation.
        analyzer = Analyzer(linked_list_spec, budget=Budget(steps=1))
        result = analyzer.run_command(
            analyzer.info.commands[0], max_instances=50
        )
        assert result.sat
        assert result.truncated
        assert len(result.instances) == 1

    def test_unbudgeted_analysis_is_unchanged(self, linked_list_spec):
        analyzer = Analyzer(linked_list_spec)
        result = analyzer.run_command(analyzer.info.commands[0], max_instances=5)
        assert result.sat and not result.truncated


class TestRetryingClient:
    def test_rides_through_injected_failures(self):
        inner = MockGPT(seed=7)
        flaky = UnreliableClient(inner, failure_period=2)
        client = RetryingClient(flaky, policy=RetryPolicy(attempts=3))
        conversation = Conversation()
        conversation.add("user", "fix this spec please")
        reference = MockGPT(seed=7).complete(conversation)
        for _ in range(4):  # every 2nd inner request fails
            assert client.complete(conversation) == reference
        assert client.retries > 0

    def test_gives_up_after_policy_attempts(self):
        class AlwaysDown:
            def complete(self, conversation):
                raise TransientLLMError("api down")

        client = RetryingClient(AlwaysDown(), policy=RetryPolicy(attempts=2))
        conversation = Conversation()
        conversation.add("user", "hello")
        with pytest.raises(TransientLLMError):
            client.complete(conversation)
        assert client.retries == 1

    def test_empty_completion_is_retried(self):
        class Stuttering:
            def __init__(self):
                self.calls = 0

            def complete(self, conversation):
                self.calls += 1
                return "" if self.calls == 1 else "sig A {}"

        inner = Stuttering()
        client = RetryingClient(inner)
        conversation = Conversation()
        conversation.add("user", "hello")
        assert client.complete(conversation) == "sig A {}"
        assert inner.calls == 2


class TestExtractionHardening:
    def test_unterminated_fence_is_recovered(self):
        response = (
            "Here is the corrected specification:\n"
            "```alloy\n"
            "sig Node { next: lone Node }\n"
            "fact Acyclic { all n: Node | n not in n.^next }\n"
            # ...the completion was cut off before the closing fence
        )
        module = extract_module(response)
        assert len(module.paragraphs) == 2

    def test_paired_fences_still_preferred(self):
        response = (
            "```alloy\nsig Node { next: lone Node }\n```\n"
            "And a fragment: `sig`"
        )
        module = extract_module(response)
        assert len(module.paragraphs) == 1


class TestCliHardening:
    def test_missing_file_is_friendly(self, capsys):
        assert main(["analyze", "/no/such/file.als"]) == EXIT_INPUT
        err = capsys.readouterr().err
        assert "no such file" in err
        assert "Traceback" not in err

    def test_unparsable_spec_is_friendly(self, tmp_path, capsys):
        bad = tmp_path / "bad.als"
        bad.write_text("sig { this is not alloy")
        assert main(["analyze", str(bad)]) == EXIT_INPUT
        assert "specification error" in capsys.readouterr().err

    def test_directory_instead_of_file_is_friendly(self, tmp_path, capsys):
        assert main(["analyze", str(tmp_path)]) == EXIT_INPUT
        err = capsys.readouterr().err
        assert "Is a directory" in err
        assert "Traceback" not in err

    def test_scale_out_of_range_is_a_usage_error(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["table1", "--scale", "1.5"])
        assert excinfo.value.code == 2

    def test_negative_seed_is_a_usage_error(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["table1", "--seed", "-3"])
        assert excinfo.value.code == 2

    def test_fail_fast_flag_parses(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["all", "--fail-fast"])
        assert args.fail_fast
