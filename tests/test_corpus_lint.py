"""The corpus lint gate: every registered model's findings are pinned.

A new finding means either a corpus regression or a lint-rule behaviour
change — both need a human look, so this test fails on ANY drift from the
expected baseline (unexpected findings AND vanished ones).  `classroom_a`
deliberately keeps one redundant constraint (`all t: Teacher | no
t.enrolled`, where `enrolled` lives on `Student`): it is the corpus's
standing example of the statically-dead idiom the engine exists to catch,
and it pins the disjoint-join rule against a real model.
"""

from repro.analysis import lint_source
from repro.benchmarks.models.registry import all_models

EXPECTED: dict[str, tuple[str, ...]] = {
    "balancedBSt": ("A402",),
    "cd": ("A402",),
    "classroom_a": ("A201", "A301", "A401", "A404"),
    "classroom_b": ("A403",),
    "classroom_c": ("A403", "A404"),
    "cv_a": ("A403",),
    "cv_b": ("A403",),
    "graphs_a": ("A403", "A404"),
    "graphs_b": ("A403",),
    "graphs_c": ("A401", "A403"),
    "lts_a": ("A403",),
    "lts_b": ("A403", "A404"),
    "production_a": ("A403", "A404"),
    "production_b": ("A403",),
    "trash_a": ("A403", "A404"),
    "trash_b": ("A403",),
}
"""Models with no entry are expected to lint clean."""


def test_corpus_lint_findings_match_baseline():
    actual = {}
    for model in all_models():
        findings = lint_source(model.source)
        if findings:
            actual[model.name] = tuple(sorted(d.code for d in findings))
    unexpected = {
        name: codes for name, codes in actual.items()
        if codes != EXPECTED.get(name, ())
    }
    vanished = {
        name: codes for name, codes in EXPECTED.items() if name not in actual
    }
    assert not unexpected and not vanished, (
        f"corpus lint drift — unexpected: {unexpected}, vanished: {vanished}; "
        f"update tests/test_corpus_lint.py only after reviewing the findings"
    )


def test_corpus_error_findings_are_exactly_the_known_ones():
    # Error-severity findings in ground-truth models are corpus defects
    # unless explicitly pinned here.
    known_errors = {("classroom_a", "A201")}
    errors = {
        (model.name, d.code)
        for model in all_models()
        for d in lint_source(model.source)
        if d.severity.name == "ERROR"
    }
    assert errors == known_errors
