"""RepairTask / RepairResult / PropertyOracle unit tests."""

import pytest

from repro.alloy.errors import ParseError
from repro.alloy.nodes import Command
from repro.repair.base import (
    PropertyOracle,
    RepairResult,
    RepairStatus,
    RepairTask,
    RepairTool,
)


class TestRepairTask:
    def test_from_source(self, linked_list_spec):
        task = RepairTask.from_source(linked_list_spec)
        assert task.module.sigs and task.info.commands

    def test_from_module(self, linked_list_spec):
        from repro.alloy.parser import parse_module

        module = parse_module(linked_list_spec)
        task = RepairTask.from_module(module)
        assert "sig Node" in task.source

    def test_bad_source_raises(self):
        with pytest.raises(ParseError):
            RepairTask.from_source("sig {")


class TestExpectedOutcome:
    def test_expect_annotation_wins(self, linked_list_spec):
        task = RepairTask.from_source(linked_list_spec)
        oracle = PropertyOracle(task)
        run_cmd = task.info.commands[0]
        check_cmd = task.info.commands[1]
        assert oracle.expected_outcome(run_cmd) is True
        assert oracle.expected_outcome(check_cmd) is False

    def test_defaults_without_annotation(self, linked_list_spec):
        task = RepairTask.from_source(linked_list_spec)
        oracle = PropertyOracle(task)
        assert oracle.expected_outcome(Command(kind="run")) is True
        assert oracle.expected_outcome(Command(kind="check")) is False


class TestWitnesses:
    def test_witnesses_from_expected_sat_commands(self, linked_list_spec):
        task = RepairTask.from_source(linked_list_spec)
        oracle = PropertyOracle(task)
        witnesses = oracle.witnesses(task.module, max_instances=2)
        assert witnesses  # the run command is satisfiable

    def test_evaluate_module_rejects_broken_candidate(self, linked_list_spec):
        from repro.alloy.parser import parse_module

        task = RepairTask.from_source(linked_list_spec)
        oracle = PropertyOracle(task)
        # Candidate that dropped the predicate the run command targets.
        broken = parse_module("sig Node { next: lone Node }")
        ok, _ = oracle.evaluate_module(broken)
        assert not ok


class TestRepairToolWrapper:
    def test_alloy_error_becomes_error_status(self, linked_list_spec):
        class Exploding(RepairTool):
            name = "Exploding"

            def _repair(self, task):
                from repro.alloy.errors import AlloyError

                raise AlloyError("boom")

        task = RepairTask.from_source(linked_list_spec)
        result = Exploding().repair(task)
        assert result.status is RepairStatus.ERROR
        assert "boom" in result.detail
        assert result.elapsed >= 0.0

    def test_elapsed_recorded(self, linked_list_spec):
        class Instant(RepairTool):
            name = "Instant"

            def _repair(self, task):
                return RepairResult(
                    status=RepairStatus.NOT_FIXED, technique=self.name
                )

        result = Instant().repair(RepairTask.from_source(linked_list_spec))
        assert result.technique == "Instant"
        assert result.elapsed >= 0.0

    def test_base_repair_not_implemented(self, linked_list_spec):
        with pytest.raises(NotImplementedError):
            RepairTool()._repair(RepairTask.from_source(linked_list_spec))
