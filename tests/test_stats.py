"""Benchmark statistics tests."""

from repro.benchmarks.stats import classify_fault, render_stats, summarize
from repro.benchmarks.suite import build_arepair


class TestClassification:
    def test_quantifier(self):
        assert classify_fault("quantifier all -> some") == "quantifier swap"

    def test_compound_uses_first(self):
        assert (
            classify_fault("compare in -> =; name a -> b")
            == "comparison operator"
        )

    def test_missing_constraint(self):
        assert classify_fault("drop conjunct") == "missing constraint"

    def test_unknown(self):
        assert classify_fault("mystery edit") == "other"


class TestSummarize:
    def test_arepair_suite_stats(self):
        specs = build_arepair(seed=0)
        stats = summarize(specs)
        assert stats.total == 38
        assert sum(stats.by_domain.values()) == 38
        assert sum(stats.by_depth.values()) == 38
        assert sum(stats.by_class.values()) == 38
        assert stats.spec_lines_min > 5
        assert stats.spec_lines_mean >= stats.spec_lines_min

    def test_depths_match_config(self):
        specs = build_arepair(seed=0)
        stats = summarize(specs)
        # The ARepair-style config injects depths 1..3.
        assert set(stats.by_depth) <= {1, 2, 3}
        assert stats.by_depth[1] >= stats.by_depth.get(3, 0)

    def test_render(self):
        specs = build_arepair(seed=0)
        text = render_stats(summarize(specs), "ARepair benchmark")
        assert "per fault class:" in text
        assert "Student" in text
