"""MockGPT behaviour tests: determinism, prompt understanding, response form."""

import pytest

from repro.llm.client import Conversation
from repro.llm.extract import try_extract_module
from repro.llm.mock_gpt import (
    GPT35_PROFILE,
    GPT4_PROFILE,
    CapabilityProfile,
    MockGPT,
)
from repro.llm.prompts import (
    PromptSetting,
    RepairHints,
    initial_multi_round_prompt,
    single_round_prompt,
)

SPEC = """
sig Node { next: lone Node }
fact Acyclic { all n: Node | n not in n.next }
pred show { some Node }
assert NoCycle { no n: Node | n in n.^next }
run show for 3 expect 1
check NoCycle for 3 expect 0
"""

HINTS = RepairHints(
    location="fact 'Acyclic', constraint 1",
    fix_description="A transitive closure seems to be misused here.",
    passing_assertion="NoCycle",
)


def conversation_for(setting=PromptSetting.LOC_FIX):
    return single_round_prompt(SPEC, setting, HINTS)


class TestDeterminism:
    def test_same_seed_same_response(self):
        first = MockGPT(seed=11).complete(conversation_for())
        second = MockGPT(seed=11).complete(conversation_for())
        assert first == second

    def test_different_seeds_vary(self):
        responses = {
            MockGPT(seed=s).complete(conversation_for()) for s in range(6)
        }
        assert len(responses) > 1

    def test_different_prompts_vary(self):
        gpt = MockGPT(seed=3)
        first = gpt.complete(conversation_for(PromptSetting.LOC))
        second = gpt.complete(conversation_for(PromptSetting.NONE))
        assert first != second


class TestResponseShape:
    def test_response_usually_extractable(self):
        extractable = 0
        for seed in range(20):
            response = MockGPT(seed=seed).complete(conversation_for())
            module, _ = try_extract_module(response)
            if module is not None:
                extractable += 1
        assert extractable >= 16  # malformed_rate keeps a few unparseable

    def test_usage_recorded(self):
        gpt = MockGPT(seed=0)
        gpt.complete(conversation_for())
        assert gpt.usage.requests == 1
        assert gpt.usage.completion_chars > 0

    def test_no_spec_in_prompt_handled(self):
        conversation = Conversation()
        conversation.add("system", "You repair Alloy specifications.")
        conversation.add("user", "please fix my code")
        response = MockGPT(seed=0).complete(conversation)
        assert "specification" in response


class TestPromptAgent:
    def test_prompt_agent_mode_produces_guidance(self):
        from repro.llm.prompts import (
            AnalyzerReport,
            CommandReport,
            prompt_agent_conversation,
        )
        from repro.analyzer.instance import make_instance

        report = AnalyzerReport(
            compiled=True,
            commands=[
                CommandReport(
                    name="NoCycle",
                    kind="check",
                    expected_sat=False,
                    actual_sat=True,
                    counterexamples=[
                        make_instance({"Node": {("Node$0",)}, "next": set()})
                    ],
                )
            ],
        )
        conversation = prompt_agent_conversation(SPEC, report)
        response = MockGPT(seed=0).complete(conversation)
        assert "suspect" in response or "assessment" in response
        # No code block: the Prompt Agent writes guidance, not specs.
        assert "sig Node" not in response


class TestProfiles:
    def test_gpt4_stronger_than_gpt35_unaided(self):
        """Across many seeds with no hints, the GPT-4 profile should emit
        oracle-passing repairs more often than the GPT-3.5 profile."""
        from repro.repair.base import PropertyOracle, RepairTask
        from repro.llm.extract import try_extract_module

        task = RepairTask.from_source(SPEC.replace("n not in n.next", "n in n.next"))

        def wins(profile):
            count = 0
            for seed in range(12):
                gpt = MockGPT(seed=seed, profile=profile)
                response = gpt.complete(
                    initial_multi_round_prompt(task.source)
                )
                module, _ = try_extract_module(response)
                if module is None:
                    continue
                oracle = PropertyOracle(task)
                ok, _ = oracle.evaluate_module(module)
                count += ok
            return count

        assert wins(GPT4_PROFILE) >= wins(GPT35_PROFILE)

    def test_custom_profile_zero_self_check(self):
        profile = CapabilityProfile(self_check_candidates=0)
        gpt = MockGPT(seed=0, profile=profile)
        assert gpt.complete(conversation_for())  # must not crash


class TestHintParsing:
    def test_collect_hints(self):
        text = (
            "Bug location: fact 'Acyclic', constraint 1\n"
            "Fix description: The quantifier of this constraint seems wrong.\n"
            "must make the assertion 'NoCycle' pass."
        )
        hints = MockGPT._collect_hints(text)
        assert "loc" in hints and "fix" in hints and hints["pass"] == "NoCycle"

    def test_parse_feedback_instances(self):
        text = (
            "counterexample 1:\n"
            "    Node = {Node$0, Node$1}\n"
            "    next = {Node$0->Node$1}\n"
        )
        instances = MockGPT._parse_feedback_instances(text)
        assert len(instances) == 1
        assert ("Node$0", "Node$1") in instances[0].relation("next")
