"""Study report assembly tests (on synthetic matrices, no heavy runs)."""

import pytest

from repro.benchmarks.stats import render_stats, summarize
from repro.experiments.report import StudyReport


class TestStudyReportDataclass:
    def test_holds_matrices_and_text(self):
        from repro.experiments.runner import ResultMatrix

        matrix = ResultMatrix(benchmark="arepair", seed=0, scale=1.0)
        report = StudyReport(arepair=matrix, alloy4fun=matrix, text="hello")
        assert report.text == "hello"
        assert report.arepair.benchmark == "arepair"


class TestStatsRendering:
    def test_stats_section_for_generated_suite(self):
        from repro.benchmarks.suite import build_arepair

        specs = build_arepair(seed=0)
        text = render_stats(summarize(specs), "ARepair benchmark")
        assert "38 specifications" in text
        assert "per fault depth:" in text
