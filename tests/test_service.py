"""Service-layer tests: protocol framing, admission control, circuit
breakers, the warm worker pool, the incremental result store, and the
daemon's drain/resume contract.

The expensive end-to-end paths (chaos under load, SLO assertions) live in
``repro chaos --service``; these tests pin the component contracts with
fake clocks and paused pools so every assertion is deterministic.
"""

import tempfile
import threading
import time
from pathlib import Path

import pytest

from repro.experiments.executor import ShardTask, execute_shard
from repro.experiments.runner import SpecOutcome
from repro.service.admission import AdmissionController, TokenBucket
from repro.service.breaker import (
    BreakerClient,
    BreakerConfig,
    BreakerOpenError,
    CircuitBreaker,
)
from repro.service.client import ServiceClient
from repro.service.daemon import (
    ReproService,
    ResultStore,
    ServiceConfig,
    ServiceHandle,
    percentile,
)
from repro.service.pool import WorkerPool
from repro.service.protocol import (
    JobRecord,
    JobSpec,
    JobState,
    ProtocolError,
    decode_message,
    encode_message,
    event_frame,
    reject_frame,
    uses_llm,
)


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    return tmp_path / "cache"


@pytest.fixture
def socket_dir():
    # Unix socket paths are length-limited (~108 bytes); a short /tmp dir
    # keeps the tests independent of how deep pytest's tmp_path nests.
    with tempfile.TemporaryDirectory(prefix="repro-svc-") as path:
        yield path


def _config(socket_dir, **overrides):
    defaults = dict(
        socket=str(Path(socket_dir) / "svc.sock"),
        benchmark="arepair",
        scale=0.1,
        seed=0,
        workers=1,
        job_timeout=None,
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


def _wait(predicate, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return False


def _projection(cells: dict) -> dict:
    """Strip timing fields so equality means *result* equality."""
    return {
        technique: (cell["rep"], cell["tm"], cell["sm"], cell["status"])
        for technique, cell in cells.items()
    }


class TestProtocol:
    def test_frames_round_trip(self):
        frame = {"op": "submit", "job": {"spec_id": "x"}, "watch": True}
        assert decode_message(encode_message(frame)) == frame

    def test_encoding_is_canonical(self):
        # Sorted keys, compact separators, newline-terminated: the frame
        # bytes are a pure function of the message.
        raw = encode_message({"b": 1, "a": 2})
        assert raw == b'{"a":2,"b":1}\n'

    @pytest.mark.parametrize(
        "line", [b"{nope", b"[1, 2]", b'"just a string"', b"\xff\xfe"]
    )
    def test_malformed_frames_raise_protocol_error(self, line):
        with pytest.raises(ProtocolError):
            decode_message(line)

    def test_job_spec_round_trips(self):
        spec = JobSpec(
            benchmark="arepair",
            spec_id="s#1",
            techniques=("ATR", "BeAFix"),
            seed=3,
            tenant="t1",
            priority=2,
        )
        assert JobSpec.from_json(spec.to_json()) == spec

    def test_adhoc_jobs_must_carry_source(self):
        with pytest.raises(ValueError, match="source"):
            JobSpec(benchmark="adhoc", spec_id="x", techniques=("ATR",))

    def test_jobs_need_at_least_one_technique(self):
        with pytest.raises(ValueError, match="technique"):
            JobSpec(benchmark="arepair", spec_id="x", techniques=())

    def test_malformed_job_payload_raises_protocol_error(self):
        with pytest.raises(ProtocolError):
            JobSpec.from_json({"benchmark": "arepair"})

    @pytest.mark.parametrize(
        "technique, expected",
        [
            ("Single-Round_Pass", True),
            ("Multi-Round_Generic", True),
            ("Dynamic", True),
            ("ATR", False),
            ("BeAFix", False),
        ],
    )
    def test_llm_technique_classification(self, technique, expected):
        assert uses_llm(technique) is expected

    def test_reject_frame_carries_the_backpressure_hint(self):
        frame = reject_frame("queue_full", 0.123456789)
        assert frame["type"] == "reject"
        assert frame["retry_after"] == pytest.approx(0.123457)

    def test_terminal_event_frame_carries_the_payload(self):
        spec = JobSpec(benchmark="arepair", spec_id="s", techniques=("ATR",))
        record = JobRecord(job_id="job-1", spec=spec, state=JobState.DONE)
        record.outcomes = {"ATR": {"rep": 1}}
        frame = event_frame(record)
        assert frame["state"] == "done"
        assert frame["outcomes"] == {"ATR": {"rep": 1}}
        running = JobRecord(job_id="job-2", spec=spec, state=JobState.RUNNING)
        assert "outcomes" not in event_frame(running)


class TestTokenBucket:
    def test_drains_then_reports_the_exact_wait(self):
        now = [0.0]
        bucket = TokenBucket(capacity=2, refill_rate=0.5, clock=lambda: now[0])
        assert bucket.acquire() == 0.0
        assert bucket.acquire() == 0.0
        # Empty: one token at 0.5/s is 2 seconds away.
        assert bucket.acquire() == pytest.approx(2.0)
        now[0] = 2.0
        assert bucket.acquire() == 0.0

    def test_unrefillable_bucket_reports_the_horizon_not_infinity(self):
        bucket = TokenBucket(capacity=1, refill_rate=0.0, clock=lambda: 0.0)
        assert bucket.acquire() == 0.0
        assert bucket.acquire() == 3600.0

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(capacity=0, refill_rate=1.0)
        with pytest.raises(ValueError):
            TokenBucket(capacity=1, refill_rate=-1.0)


class TestAdmissionController:
    def test_full_queue_rejects_without_spending_tokens(self):
        now = [0.0]
        controller = AdmissionController(
            max_queue=2, bucket_capacity=4, bucket_refill=0.0,
            clock=lambda: now[0],
        )
        verdict = controller.admit("t1", queue_depth=2)
        assert not verdict.admitted
        assert verdict.reason == "queue_full"
        assert verdict.retry_after > 0
        # The queue gate ran first: the tenant's budget is intact.
        assert controller.bucket_for("t1").available == 4.0

    def test_rate_limit_recovers_with_the_clock(self):
        now = [0.0]
        controller = AdmissionController(
            max_queue=64, bucket_capacity=1, bucket_refill=2.0,
            clock=lambda: now[0],
        )
        assert controller.admit("t1", queue_depth=0).admitted
        verdict = controller.admit("t1", queue_depth=0)
        assert verdict.reason == "rate_limited"
        assert verdict.retry_after == pytest.approx(0.5)
        # Other tenants draw from their own buckets.
        assert controller.admit("t2", queue_depth=0).admitted
        now[0] = 0.5
        assert controller.admit("t1", queue_depth=0).admitted

    def test_snapshot_counts_verdicts(self):
        controller = AdmissionController(
            max_queue=1, bucket_capacity=1, bucket_refill=0.0,
            clock=lambda: 0.0,
        )
        controller.admit("a", queue_depth=0)
        controller.admit("a", queue_depth=0)
        controller.admit("a", queue_depth=5)
        snapshot = controller.snapshot()
        assert snapshot["admitted"] == 1
        assert snapshot["rejected"] == {"queue_full": 1, "rate_limited": 1}
        assert snapshot["tenants"] == ["a"]


class TestCircuitBreaker:
    def _breaker(self, now, **overrides):
        defaults = dict(
            window=4, min_calls=2, failure_rate=0.5, cooldown=10.0,
            half_open_probes=1,
        )
        defaults.update(overrides)
        return CircuitBreaker(
            "dep", BreakerConfig(**defaults), clock=lambda: now[0]
        )

    def test_trips_at_the_failure_rate(self):
        now = [0.0]
        breaker = self._breaker(now)
        breaker.record_failure("llm.transient")
        assert breaker.state == "closed"  # below min_calls
        breaker.record_failure("llm.transient")
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.retry_after() == pytest.approx(10.0)
        assert breaker.last_failure_code == "llm.transient"

    def test_successes_keep_the_rate_below_threshold(self):
        now = [0.0]
        breaker = self._breaker(now)
        for _ in range(3):
            breaker.record_success()
        breaker.record_failure("llm.transient")
        # 1 failure in a window of 4 is under the 0.5 trip rate.
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_cooldown_leads_to_half_open_probing(self):
        now = [0.0]
        breaker = self._breaker(now)
        breaker.record_failure("x")
        breaker.record_failure("x")
        now[0] = 10.0
        assert breaker.state == "half-open"
        assert breaker.allow()  # the single probe
        assert not breaker.allow()  # no more until the probe reports

    def test_successful_probe_closes(self):
        now = [0.0]
        breaker = self._breaker(now)
        breaker.record_failure("x")
        breaker.record_failure("x")
        now[0] = 10.0
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_failing_probe_reopens(self):
        now = [0.0]
        breaker = self._breaker(now)
        breaker.record_failure("x")
        breaker.record_failure("x")
        now[0] = 10.0
        assert breaker.allow()
        breaker.record_failure("x")
        assert breaker.state == "open"
        # The cooldown restarts from the failed probe.
        assert breaker.retry_after() == pytest.approx(10.0)
        assert breaker.opens == 2

    def test_breaker_client_gates_and_records(self):
        now = [0.0]
        breaker = self._breaker(now)

        class Flaky:
            def __init__(self):
                self.calls = 0

            def complete(self, conversation):
                self.calls += 1
                raise RuntimeError("backend down")

        client = BreakerClient(inner=Flaky(), breaker=breaker)
        for _ in range(2):
            with pytest.raises(RuntimeError):
                client.complete("hi")
        # Tripped: the inner client is no longer reached.
        with pytest.raises(BreakerOpenError):
            client.complete("hi")
        assert client.inner.calls == 2


class TestWorkerPool:
    def test_dispatch_order_is_priority_then_longest_then_fifo(self):
        pool = WorkerPool(
            workers=1, runner=lambda item: item, on_result=lambda *a: None
        )
        pool.pause()
        try:
            pool.submit("a", priority=0, cost=1.0)
            pool.submit("b", priority=1, cost=0.5)
            pool.submit("c", priority=1, cost=2.0)
            pool.submit("d", priority=0, cost=1.0)
            assert pool.drain_pending() == ["c", "b", "a", "d"]
        finally:
            pool.stop()

    def test_paused_pool_holds_work_until_resume(self):
        done = []
        pool = WorkerPool(
            workers=2,
            runner=lambda item: item * 2,
            on_result=lambda item, result, error: done.append(result),
        )
        pool.pause()
        try:
            pool.submit(1)
            pool.submit(2)
            time.sleep(0.05)
            assert done == []
            assert pool.queued() == 2
            pool.resume()
            assert _wait(lambda: len(done) == 2)
            assert sorted(done) == [2, 4]
            assert pool.executed == 2
        finally:
            pool.stop()

    def test_wedged_worker_is_replaced_and_its_late_result_discarded(self):
        now = [0.0]
        release = threading.Event()
        results = []

        def runner(item):
            if item == "wedge":
                release.wait(timeout=30)
            return item

        pool = WorkerPool(
            workers=1,
            runner=runner,
            on_result=lambda item, result, error: results.append(item),
            deadline=1.0,
            clock=lambda: now[0],
        )
        try:
            pool.submit("wedge")
            assert _wait(lambda: pool.running() == 1)
            assert pool.reap_wedged() == []  # within the allowance
            now[0] = 3.5  # past deadline*2 + 1
            assert pool.reap_wedged() == ["wedge"]
            assert pool.wedged == 1 and pool.replaced == 1
            # The replacement thread restores capacity immediately...
            release.set()
            pool.submit("fresh")
            assert _wait(lambda: "fresh" in results)
            # ...and the abandoned worker's eventual result is discarded.
            assert "wedge" not in results
        finally:
            pool.stop()

    def test_submit_after_stop_is_an_error(self):
        pool = WorkerPool(
            workers=1, runner=lambda item: item, on_result=lambda *a: None
        )
        pool.stop()
        with pytest.raises(RuntimeError, match="stopped"):
            pool.submit("x")


class TestResultStore:
    def _store(self, socket_dir):
        return ResultStore(_config(socket_dir))

    def _outcome(self, status="not_fixed", rep=1):
        return SpecOutcome(
            spec_id="s", technique="ATR", rep=rep, tm=0.5, sm=0.25,
            status=status, elapsed=0.1,
        )

    def test_round_trips_and_skips_timeout_cells(self, socket_dir):
        store = self._store(socket_dir)
        store.merge("s", {
            "ATR": self._outcome(),
            "BeAFix": self._outcome(status="timeout", rep=0),
        })
        store.flush()
        again = self._store(socket_dir)
        assert again.lookup("s", "ATR")["rep"] == 1
        # Timeout cells are execution artifacts: never persisted, so a
        # resumed job recomputes them.
        assert again.lookup("s", "BeAFix") is None
        assert again.missing("s", ("ATR", "BeAFix")) == ("BeAFix",)

    def test_corrupt_store_is_a_miss_not_a_crash(self, socket_dir):
        store = self._store(socket_dir)
        store.merge("s", {"ATR": self._outcome()})
        store.flush()
        store.path.write_text('{"schema": "repro-service-store/1", "data":')
        healed = self._store(socket_dir)
        assert healed.cells == {}
        # The next flush rewrites the whole store from memory.
        healed.merge("s", {"ATR": self._outcome()})
        healed.flush()
        assert self._store(socket_dir).lookup("s", "ATR")["rep"] == 1

    def test_percentile_is_nearest_rank(self):
        assert percentile([], 0.99) == 0.0
        values = [float(v) for v in range(1, 101)]
        assert percentile(values, 0.50) == 50.0
        assert percentile(values, 0.99) == 100.0
        assert percentile([7.0], 0.99) == 7.0


class TestServiceSubmission:
    def test_validation_errors_never_create_jobs(self, socket_dir):
        service = ReproService(_config(socket_dir))
        service.pool.pause()
        try:
            known = service.jobs_corpus_ids()[0]
            cases = [
                (
                    JobSpec(benchmark="alloy4fun", spec_id=known,
                            techniques=("ATR",)),
                    "service.wrong_benchmark",
                ),
                (
                    JobSpec(benchmark="arepair", spec_id="no-such-spec",
                            techniques=("ATR",)),
                    "service.unknown_spec",
                ),
                (
                    JobSpec(benchmark="arepair", spec_id=known,
                            techniques=("NotATool",)),
                    "service.unknown_technique",
                ),
            ]
            for spec, code in cases:
                record, frame = service.submit(spec)
                assert record is None
                assert frame["type"] == "error"
                assert frame["code"] == code
            assert service.jobs == {}
        finally:
            service.pool.stop()

    def test_draining_service_rejects_new_work(self, socket_dir):
        service = ReproService(_config(socket_dir))
        service.pool.pause()
        try:
            service._draining = True
            spec = JobSpec(
                benchmark="arepair",
                spec_id=service.jobs_corpus_ids()[0],
                techniques=("ATR",),
            )
            record, frame = service.submit(spec)
            assert record is None
            assert frame == reject_frame("draining", 1.0)
        finally:
            service.pool.stop()


class TestDrainResume:
    """The kill-and-restart contract: checkpointed jobs resume under a new
    incarnation and produce results bit-identical to a direct run."""

    def test_resumed_jobs_match_a_direct_run(self, socket_dir):
        config = _config(socket_dir)

        # Incarnation one admits jobs but never runs them (paused pool),
        # then drains: every job must land in the checkpoint.
        first = ReproService(config)
        first.pool.pause()
        spec_ids = first.jobs_corpus_ids()[:2]
        assert spec_ids, "scaled benchmark should not be empty"
        job_ids = []
        for spec_id in spec_ids:
            record, frame = first.submit(
                JobSpec(benchmark="arepair", spec_id=spec_id,
                        techniques=("ATR",))
            )
            assert frame["type"] == "ack"
            job_ids.append(record.job_id)
        first._checkpoint()
        first.pool.stop()
        state_path = config.resolved_state_path()
        assert state_path.exists()

        # The reference: the same cells computed directly by the engine.
        reference = {}
        for spec_id in spec_ids:
            result = execute_shard(
                ShardTask(
                    spec=first._specs[spec_id], techniques=("ATR",), seed=0
                )
            )
            reference[spec_id] = {
                t: (o.rep, o.tm, o.sm, o.status)
                for t, o in result.outcomes.items()
            }

        # Incarnation two resumes the checkpoint and executes.
        revived = ReproService(config)
        try:
            revived._resume_from_checkpoint()
            assert revived.resumed_jobs == len(spec_ids)
            assert not state_path.exists()
            assert sorted(revived.jobs) == sorted(job_ids)
            assert _wait(
                lambda: all(r.terminal for r in revived.jobs.values())
            )
            for job_id in job_ids:
                record = revived.jobs[job_id]
                assert record.state is JobState.DONE
                assert _projection(record.outcomes) == (
                    reference[record.spec.spec_id]
                )
        finally:
            revived.pool.stop()

        # Incarnation three finds everything in the store: jobs complete
        # without executing anything.
        third = ReproService(config)
        try:
            for spec_id in spec_ids:
                record, _ = third.submit(
                    JobSpec(benchmark="arepair", spec_id=spec_id,
                            techniques=("ATR",))
                )
                assert record.state is JobState.DONE
                assert record.from_store is True
                assert _projection(record.outcomes) == reference[spec_id]
            assert third.pool.executed == 0
        finally:
            third.pool.stop()

    def test_clean_drain_leaves_no_checkpoint(self, socket_dir):
        config = _config(socket_dir)
        service = ReproService(config)
        try:
            service._checkpoint()
            assert not config.resolved_state_path().exists()
        finally:
            service.pool.stop()

    def test_unreadable_checkpoint_does_not_block_startup(self, socket_dir):
        config = _config(socket_dir)
        config.resolved_state_path().write_text("{not json")
        service = ReproService(config)
        try:
            service._resume_from_checkpoint()
            assert service.resumed_jobs == 0
            assert not config.resolved_state_path().exists()
        finally:
            service.pool.stop()


class TestServiceEndToEnd:
    def test_socket_submission_matches_direct_execution(self, socket_dir):
        config = _config(socket_dir, workers=2)
        handle = ServiceHandle.start(config)
        try:
            client = ServiceClient(handle.socket)
            pong = client.ping()
            assert pong["type"] == "pong"
            assert pong["benchmark"] == "arepair"

            spec_id = handle.service.jobs_corpus_ids()[0]
            job = JobSpec(
                benchmark="arepair", spec_id=spec_id, techniques=("ATR",)
            )
            outcome = client.submit_retrying(job)
            assert outcome.accepted
            assert outcome.state == "done"
            assert outcome.error is None

            direct = execute_shard(
                ShardTask(
                    spec=handle.service._specs[spec_id],
                    techniques=("ATR",),
                    seed=0,
                )
            )
            assert _projection(outcome.outcomes) == {
                t: (o.rep, o.tm, o.sm, o.status)
                for t, o in direct.outcomes.items()
            }

            # The repeat is served from the store, byte-identical.
            again = client.submit_retrying(job)
            assert again.from_store is True
            assert again.outcomes == outcome.outcomes

            stats = client.stats()
            assert stats["jobs_by_state"] == {"done": 2}
            assert stats["queue_wait"]["count"] == 2
            (summary,) = [
                j for j in client.jobs() if j["job_id"] == outcome.job_id
            ]
            assert summary["state"] == "done"
        finally:
            handle.drain(grace=5.0)
        assert not Path(handle.socket).exists()
