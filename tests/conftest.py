"""Shared fixtures: canonical specifications used across the test suite."""

from __future__ import annotations

import pytest

MARRIAGE_SPEC = """
abstract sig Person {}
sig Man extends Person { wife: lone Woman }
sig Woman extends Person { husband: lone Man }

fact Marriage {
  all m: Man | some m.wife implies m.wife.husband = m
  all w: Woman | some w.husband implies w.husband.wife = w
}

pred someMarried { some m: Man | some m.wife }
assert Mutual { all m: Man | m.wife.husband in m }

run someMarried for 3 expect 1
check Mutual for 3 expect 0
"""

LINKED_LIST_SPEC = """
sig Node { next: lone Node }

fact Acyclic {
  all n: Node | n not in n.^next
}

pred nonEmpty { some Node }
assert NoCycle { no n: Node | n in n.^next }

run nonEmpty for 3 expect 1
check NoCycle for 3 expect 0
"""

FAULTY_LINKED_LIST_SPEC = LINKED_LIST_SPEC.replace(
    "all n: Node | n not in n.^next", "all n: Node | n not in n.next"
)

HOTEL_SPEC = """
abstract sig Key {}
sig RoomKey extends Key {}
sig Room { roomKeys: set Key }
sig Guest { guestKeys: set Key }
one sig FrontDesk {
  lastKey: Room -> lone RoomKey,
  occupant: Room -> lone Guest
}

fact HotelInvariant {
  all r: Room | some r.(FrontDesk.lastKey)
}

pred occupied { some FrontDesk.occupant }
assert KeysIssued { all r: Room | some r.(FrontDesk.lastKey) }

run occupied for 3 expect 1
check KeysIssued for 3 expect 0
"""


@pytest.fixture
def marriage_spec() -> str:
    return MARRIAGE_SPEC


@pytest.fixture
def linked_list_spec() -> str:
    return LINKED_LIST_SPEC


@pytest.fixture
def faulty_linked_list_spec() -> str:
    return FAULTY_LINKED_LIST_SPEC


@pytest.fixture
def hotel_spec() -> str:
    return HOTEL_SPEC
