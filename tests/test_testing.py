"""AUnit testing substrate tests: tests, suites, and generation."""

import pytest

from repro.alloy.parser import parse_module
from repro.alloy.resolver import resolve_module
from repro.analyzer.analyzer import Analyzer
from repro.analyzer.evaluator import Evaluator
from repro.analyzer.instance import make_instance
from repro.testing.aunit import FACTS_TARGET, AUnitTest, TestSuite
from repro.testing.generation import (
    counterexample_test,
    generate_suite,
    witness_test,
)


@pytest.fixture
def info(linked_list_spec):
    return resolve_module(parse_module(linked_list_spec))


GOOD = make_instance({"Node": {("N0",), ("N1",)}, "next": {("N0", "N1")}})
CYCLIC = make_instance({"Node": {("N0",)}, "next": {("N0", "N0")}})


class TestAUnitTest:
    def test_positive_test_passes_on_truth(self, info):
        test = AUnitTest(name="good", instance=GOOD, expect=True)
        assert test.passes(info)

    def test_negative_test_passes_when_facts_reject(self, info):
        test = AUnitTest(name="cyclic", instance=CYCLIC, expect=False)
        assert test.passes(info)

    def test_wrong_expectation_fails(self, info):
        test = AUnitTest(name="bad", instance=CYCLIC, expect=True)
        assert not test.passes(info)

    def test_pred_target(self, info):
        test = AUnitTest(
            name="pred", instance=GOOD, expect=True, target="nonEmpty"
        )
        assert test.passes(info)

    def test_unknown_pred_is_failure(self, info):
        test = AUnitTest(
            name="missing", instance=GOOD, expect=True, target="nothere"
        )
        assert not test.passes(info)


class TestSuiteBehaviour:
    def test_score_and_partition(self, info):
        suite = TestSuite(
            tests=[
                AUnitTest(name="a", instance=GOOD, expect=True),
                AUnitTest(name="b", instance=CYCLIC, expect=True),  # fails
            ]
        )
        assert suite.score(info) == 0.5
        assert len(suite.passing(info)) == 1
        assert len(suite.failing(info)) == 1
        assert not suite.all_pass(info)

    def test_empty_suite_scores_one(self, info):
        assert TestSuite(tests=[]).score(info) == 1.0

    def test_merge_deduplicates(self):
        first = TestSuite(tests=[AUnitTest(name="a", instance=GOOD, expect=True)])
        second = TestSuite(
            tests=[
                AUnitTest(name="dup", instance=GOOD, expect=True),
                AUnitTest(name="new", instance=CYCLIC, expect=False),
            ]
        )
        merged = first.merged_with(second)
        assert len(merged) == 2

    def test_iteration(self):
        suite = TestSuite(tests=[AUnitTest(name="a", instance=GOOD, expect=True)])
        assert [t.name for t in suite] == ["a"]


class TestGeneration:
    def test_generated_suite_passes_on_oracle(self, linked_list_spec):
        oracle = Analyzer(linked_list_spec)
        suite = generate_suite(oracle, positives=3, negatives=3, seed=1)
        assert len(suite) >= 4
        assert suite.all_pass(oracle.info)

    def test_generation_is_deterministic(self, linked_list_spec):
        oracle = Analyzer(linked_list_spec)
        first = generate_suite(oracle, seed=7)
        second = generate_suite(oracle, seed=7)
        assert [t.instance.canonical_key() for t in first] == [
            t.instance.canonical_key() for t in second
        ]

    def test_different_seeds_differ(self, linked_list_spec):
        oracle = Analyzer(linked_list_spec)
        first = generate_suite(oracle, seed=1)
        second = generate_suite(oracle, seed=2)
        names_first = [t.name for t in first]
        names_second = [t.name for t in second]
        assert names_first != names_second or [
            t.instance.canonical_key() for t in first
        ] != [t.instance.canonical_key() for t in second]

    def test_negative_tests_violate_facts(self, linked_list_spec):
        oracle = Analyzer(linked_list_spec)
        suite = generate_suite(oracle, positives=2, negatives=3, seed=3)
        negatives = [t for t in suite if not t.expect]
        assert negatives
        for test in negatives:
            assert not Evaluator(oracle.info, test.instance).facts_hold()

    def test_wrappers(self):
        cex = counterexample_test(GOOD, "c")
        assert not cex.expect and cex.target == FACTS_TARGET
        wit = witness_test(GOOD, "w")
        assert wit.expect
