"""The chaos invariant checker: report shape, determinism, cheap drills.

The expensive drills (matrix-equivalence, resume, shard-timeout) are
exercised end-to-end by ``repro chaos`` in CI; here we pin the harness
machinery itself — payload projection, site routing, report canonical
form — plus the persistence drill, which is fast enough to run whole.
"""

import pytest

from repro.chaos.harness import (
    CHAOS_SCHEMA,
    DrillResult,
    equivalence_drill,
    matrix_payload,
    persist_drill,
    render_report,
    retry_drill,
    run_drills,
    write_report,
)
from repro.experiments.runner import ResultMatrix, SpecOutcome


def outcome(spec_id, technique, status="not_fixed", elapsed=1.25):
    return SpecOutcome(
        spec_id=spec_id,
        technique=technique,
        rep=0,
        tm=0.5,
        sm=0.25,
        status=status,
        elapsed=elapsed,
    )


class TestMatrixPayload:
    def test_payload_is_sorted_and_drops_wall_clock(self):
        matrix = ResultMatrix(benchmark="adhoc", seed=0, scale=1.0)
        matrix.outcomes = {
            "z": {"B": outcome("z", "B", elapsed=9.0), "A": outcome("z", "A")},
            "a": {"A": outcome("a", "A", elapsed=0.1)},
        }
        payload = matrix_payload(matrix)
        assert list(payload) == ["a", "z"]
        assert list(payload["z"]) == ["A", "B"]
        assert payload["a"]["A"] == {
            "rep": 0, "tm": 0.5, "sm": 0.25, "status": "not_fixed"
        }
        # elapsed must not appear anywhere: it would break byte-identity.
        assert "elapsed" not in str(payload)


class TestSiteRouting:
    def test_drills_skip_when_their_sites_are_not_requested(self):
        assert persist_drill(0, {"sat.budget"}).skipped
        assert retry_drill(0, {"persist.corrupt"}, scale=0.05).skipped
        assert equivalence_drill(0, {"persist.corrupt"}, 2, 0.05).skipped

    def test_run_drills_rejects_unknown_sites(self):
        with pytest.raises(ValueError, match="unknown injection site"):
            run_drills(sites=["persist.corrupt", "made.up"])


class TestPersistDrill:
    def test_no_corrupted_file_reads_back_valid(self):
        drill = persist_drill(0, {"persist.corrupt", "persist.truncate"})
        assert not drill.skipped
        assert drill.violations == []
        assert drill.detail["sites"] == ["persist.corrupt", "persist.truncate"]
        # 4 JSON + 4 JSONL writes per site.
        assert drill.detail["writes"] == 16


class TestReport:
    def _report(self):
        return {
            "schema": CHAOS_SCHEMA,
            "seed": 0,
            "jobs": 2,
            "scale": 0.05,
            "sites": ["persist.corrupt"],
            "drills": [
                DrillResult(name="good").to_json(),
                DrillResult(name="idle", skipped=True).to_json(),
                DrillResult(name="bad", violations=["it broke"]).to_json(),
            ],
            "violations": 1,
            "ok": False,
        }

    def test_write_report_is_byte_deterministic(self, tmp_path):
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        write_report(first, self._report())
        write_report(second, self._report())
        assert first.read_bytes() == second.read_bytes()
        assert first.read_bytes().endswith(b"\n")

    def test_render_report_marks_each_drill(self):
        text = render_report(self._report())
        assert "[  ok] good" in text
        assert "[SKIP] idle" in text
        assert "[FAIL] bad" in text
        assert "- it broke" in text
        assert "1 violation(s)" in text

    def test_ok_report_renders_verdict(self):
        report = self._report()
        report["drills"] = report["drills"][:2]
        report["violations"] = 0
        report["ok"] = True
        assert "all invariants held" in render_report(report)


class TestDrillResult:
    def test_ok_tracks_violations(self):
        assert DrillResult(name="x").ok
        assert not DrillResult(name="x", violations=["v"]).ok

    def test_to_json_shape(self):
        data = DrillResult(name="x", detail={"k": 1}).to_json()
        assert data == {
            "name": "x",
            "ok": True,
            "skipped": False,
            "violations": [],
            "detail": {"k": 1},
        }
