"""Fault localization tests: the injected fault should rank highly."""

import pytest

from repro.alloy.parser import parse_module
from repro.alloy.resolver import resolve_module
from repro.analyzer.instance import make_instance
from repro.repair.base import PropertyOracle, RepairTask
from repro.repair.localization import (
    Discriminator,
    formula_paths,
    localize,
    verdict_matches,
)
from repro.testing.aunit import AUnitTest
from repro.alloy.walk import get_at


FAULTY = """
sig Node { next: lone Node }

fact Shape {
  some Node
  all n: Node | n in n.next
}

pred show { some Node }
assert Ok { all n: Node | n in n.next }

run show for 3 expect 1
check Ok for 3 expect 0
"""


@pytest.fixture
def module():
    return parse_module(FAULTY)


@pytest.fixture
def info(module):
    return resolve_module(module)


class TestFormulaPaths:
    def test_paths_exclude_assertions(self, module):
        for path in formula_paths(module):
            paragraph = module.paragraphs[path[0][1]]
            assert type(paragraph).__name__ != "AssertDecl"

    def test_paths_cover_fact_conjuncts(self, module):
        paths = formula_paths(module)
        assert len(paths) >= 3  # block + 2 conjuncts at minimum


class TestLocalize:
    def test_faulty_conjunct_ranks_first(self, module, info):
        # Discriminator: an instance with an unlinked node should be legal
        # (expected True) but the faulty `n in n.next` fact rejects it.
        instance = make_instance(
            {"Node": {("N0",)}, "next": set()}
        )
        discriminators = [Discriminator(instance=instance, expected=True)]
        locations = localize(module, info, discriminators)
        assert locations, "expected suspicious locations"
        top = locations[0]
        node = get_at(module, top.path)
        from repro.alloy.pretty import print_formula

        assert "n in n.next" in print_formula(node)

    def test_no_evidence_uses_structural_fallback(self, module, info):
        locations = localize(module, info, [])
        assert locations  # fallback still ranks formulas

    def test_scores_are_sorted_descending(self, module, info):
        instance = make_instance({"Node": {("N0",)}, "next": set()})
        locations = localize(
            module, info, [Discriminator(instance=instance, expected=True)]
        )
        scores = [loc.score for loc in locations]
        assert scores == sorted(scores, reverse=True)

    def test_expression_children_included(self, module, info):
        instance = make_instance({"Node": {("N0",)}, "next": set()})
        locations = localize(
            module, info, [Discriminator(instance=instance, expected=True)]
        )
        assert any(not loc.is_formula for loc in locations)


class TestDiscriminators:
    def test_from_test(self):
        test = AUnitTest(
            name="t",
            instance=make_instance({"Node": set(), "next": set()}),
            expect=False,
        )
        discriminator = Discriminator.from_test(test)
        assert discriminator.expected is False
        assert discriminator.pred is None

    def test_from_check_command_evidence(self, module, info):
        task = RepairTask.from_source(FAULTY)
        oracle = PropertyOracle(task)
        evidence = oracle.failing_evidence_by_command(task.module)
        # The faulty model satisfies its own (faulty) assertion; evidence may
        # be empty here, so construct the discriminator directly.
        command = task.info.commands[1]
        instance = make_instance({"Node": {("N0",)}, "next": set()})
        discriminator = Discriminator.from_command_evidence(command, instance)
        assert discriminator.violated_assertion == "Ok"

    def test_verdict_matches_on_truth(self, linked_list_spec):
        info = resolve_module(parse_module(linked_list_spec))
        good = make_instance(
            {"Node": {("N0",), ("N1",)}, "next": {("N0", "N1")}}
        )
        discriminator = Discriminator(instance=good, expected=True)
        assert verdict_matches(info, discriminator)
