"""The parallel experiment engine: executors, sharding, resume, progress.

The engine's central contract is that parallelism is an execution detail:
serial, thread-pool, and process-pool runs of the same :class:`RunConfig`
must produce identical matrices (and share one cache entry), a worker
crash must degrade to a ``crashed`` cell rather than kill the run, and a
killed run must resume from its flushed shards.
"""

import pickle

import pytest

from repro.benchmarks.faults import FaultySpec
from repro.experiments.executor import (
    ProcessExecutor,
    SerialExecutor,
    ShardResult,
    ShardTask,
    ThreadExecutor,
    create_executor,
)
from repro.experiments.runner import (
    RunConfig,
    SpecOutcome,
    _matrix_key,
    run_matrix,
)
from repro.llm.prompts import RepairHints
from repro.repair import registry
from repro.runtime.guard import capture_failure

from .conftest import LINKED_LIST_SPEC


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    return tmp_path / "cache"


def payload(matrix):
    """The result content of a matrix — everything except wall-clock."""
    return {
        spec_id: {
            technique: (o.rep, o.tm, o.sm, o.status)
            for technique, o in row.items()
        }
        for spec_id, row in matrix.outcomes.items()
    }


def _tiny_spec() -> FaultySpec:
    return FaultySpec(
        spec_id="tiny",
        benchmark="adhoc",
        domain="adhoc",
        model_name="tiny",
        faulty_source=LINKED_LIST_SPEC,
        truth_source=LINKED_LIST_SPEC,
        fault_description="",
        depth=0,
        hints=RepairHints(),
    )


class TestExecutorEquivalence:
    """Acceptance criterion: parallel runs are identical to serial runs."""

    TECHNIQUES = ("ATR", "BeAFix")

    def _config(self, **overrides):
        base = dict(
            benchmark="arepair",
            scale=0.1,
            seed=0,
            techniques=self.TECHNIQUES,
            use_cache=False,
        )
        base.update(overrides)
        return RunConfig(**base)

    def test_process_jobs_4_matches_serial(self):
        serial = run_matrix(self._config())
        parallel = run_matrix(self._config(jobs=4, executor="process"))
        assert payload(parallel) == payload(serial)
        for technique in self.TECHNIQUES:
            assert parallel.rep_count(technique) == serial.rep_count(technique)
            assert parallel.mean_similarity(technique, "tm") == (
                serial.mean_similarity(technique, "tm")
            )
            assert parallel.mean_similarity(technique, "sm") == (
                serial.mean_similarity(technique, "sm")
            )

    def test_thread_pool_matches_serial(self):
        serial = run_matrix(self._config(techniques=("ATR",)))
        threaded = run_matrix(
            self._config(techniques=("ATR",), jobs=2, executor="thread")
        )
        assert payload(threaded) == payload(serial)

    def test_parallel_run_is_served_from_serial_cache(self, monkeypatch):
        import repro.experiments.runner as runner_module

        config = dict(benchmark="arepair", scale=0.05, techniques=("ATR",))
        serial = run_matrix(RunConfig(**config))

        def must_not_run(spec, technique, seed, truth_outcomes=None):
            raise AssertionError("expected a cache hit, not a recomputation")

        monkeypatch.setattr(runner_module, "run_spec", must_not_run)
        parallel = run_matrix(RunConfig(**config, jobs=4, executor="process"))
        assert payload(parallel) == payload(serial)


class TestCrashIsolationAcrossProcesses:
    def test_worker_crash_becomes_failure_record_and_crashed_cell(self):
        def crashing_factory(spec, seed):
            raise RuntimeError("injected worker crash")

        registry.register("Crashy", crashing_factory)
        try:
            matrix = run_matrix(
                RunConfig(
                    benchmark="arepair",
                    scale=0.05,
                    techniques=("ATR", "Crashy"),
                    jobs=2,
                    executor="process",
                    use_cache=False,
                )
            )
        finally:
            registry.unregister("Crashy")
        assert matrix.specs, "scaled benchmark should not be empty"
        for spec in matrix.specs:
            row = matrix.outcomes[spec.spec_id]
            assert row["Crashy"].status == "crashed"
            assert row["Crashy"].rep == 0
            assert row["ATR"].status != "crashed"
        assert len(matrix.failures) == len(matrix.specs)
        assert matrix.failure_summary() == {
            "internal.RuntimeError": len(matrix.specs)
        }
        assert all(f.where.endswith(":Crashy") for f in matrix.failures)


class TestBrokenPoolFallback:
    def test_hard_killed_worker_falls_back_in_process(self):
        """A worker that dies without raising (os._exit, OOM-kill) breaks
        the pool; the run must finish in-process instead of dying with it."""
        import multiprocessing
        import os

        from repro.repair.base import RepairResult, RepairStatus, RepairTool

        class HardKill(RepairTool):
            name = "HardKill"

            def _repair(self, task):
                # Only die inside a pool worker — the in-process fallback
                # (and the test runner) must survive.
                if multiprocessing.parent_process() is not None:
                    os._exit(3)
                return RepairResult(
                    status=RepairStatus.NOT_FIXED, technique=self.name
                )

        registry.register("HardKill", lambda spec, seed: HardKill())
        try:
            matrix = run_matrix(
                RunConfig(
                    benchmark="arepair",
                    scale=0.05,
                    techniques=("HardKill",),
                    jobs=2,
                    executor="process",
                    use_cache=False,
                )
            )
        finally:
            registry.unregister("HardKill")
        assert matrix.specs, "scaled benchmark should not be empty"
        for spec in matrix.specs:
            assert matrix.outcomes[spec.spec_id]["HardKill"].status == "not_fixed"
        assert matrix.failures == []


class TestResumeFromShardCache:
    def test_interrupted_run_resumes_from_flushed_shards(
        self, isolated_cache, monkeypatch
    ):
        import repro.experiments.runner as runner_module

        real_run_spec = runner_module.run_spec
        config = dict(benchmark="arepair", scale=0.1, techniques=("ATR",))
        completed_before_kill = 5
        calls = {"n": 0}

        def killed_mid_run(spec, technique, seed, truth_outcomes=None):
            if calls["n"] >= completed_before_kill:
                raise KeyboardInterrupt
            calls["n"] += 1
            return real_run_spec(spec, technique, seed, truth_outcomes)

        monkeypatch.setattr(runner_module, "run_spec", killed_mid_run)
        with pytest.raises(KeyboardInterrupt):
            run_matrix(RunConfig(**config))

        # The flushed shards survived the kill...
        partial = ResumeProbe.load_cached_rows(isolated_cache)
        assert len(partial) == completed_before_kill

        # ...and the rerun recomputes only what is missing.
        recomputed = {"n": 0}

        def counting(spec, technique, seed, truth_outcomes=None):
            recomputed["n"] += 1
            return real_run_spec(spec, technique, seed, truth_outcomes)

        monkeypatch.setattr(runner_module, "run_spec", counting)
        matrix = run_matrix(RunConfig(**config))
        assert recomputed["n"] == len(matrix.specs) - completed_before_kill
        assert set(matrix.outcomes) == {s.spec_id for s in matrix.specs}


class ResumeProbe:
    @staticmethod
    def load_cached_rows(cache_root):
        import json

        (cache_file,) = cache_root.glob("matrix-*.json")
        return json.loads(cache_file.read_text())["data"]["outcomes"]


class TestProgressListener:
    class Recorder:
        def __init__(self):
            self.cells = []
            self.shards = []
            self.failures = []

        def on_cell(self, benchmark, outcome, done, total):
            self.cells.append((benchmark, outcome.technique, done, total))

        def on_shard_done(self, benchmark, spec_id, shards_done, total_shards):
            self.shards.append((spec_id, shards_done, total_shards))

        def on_failure(self, benchmark, failure):
            self.failures.append(failure)

    def test_listener_sees_every_cell_and_shard(self):
        recorder = self.Recorder()
        matrix = run_matrix(
            RunConfig(
                benchmark="arepair",
                scale=0.05,
                techniques=("ATR",),
                use_cache=False,
                listener=recorder,
            )
        )
        n = len(matrix.specs)
        assert [done for _, _, done, _ in recorder.cells] == list(range(1, n + 1))
        assert all(total == n for _, _, _, total in recorder.cells)
        assert [progress for _, *progress in recorder.shards] == [
            [i, n] for i in range(1, n + 1)
        ]
        assert recorder.failures == []

    def test_library_default_is_silent(self, capsys):
        run_matrix(
            RunConfig(
                benchmark="arepair",
                scale=0.05,
                techniques=("ATR",),
                use_cache=False,
            )
        )
        assert capsys.readouterr().out == ""


class TestRunMatrixApi:
    def test_legacy_call_shape_is_rejected(self):
        with pytest.raises(TypeError, match="RunConfig"):
            run_matrix("arepair")

    def test_legacy_keyword_shape_is_rejected(self):
        with pytest.raises(TypeError):
            run_matrix("arepair", scale=0.05, techniques=["ATR"])

    def test_runconfig_validation(self):
        with pytest.raises(ValueError, match="jobs"):
            RunConfig(benchmark="arepair", jobs=0)
        with pytest.raises(ValueError, match="executor"):
            RunConfig(benchmark="arepair", executor="bogus")
        with pytest.raises(ValueError, match="flush_every"):
            RunConfig(benchmark="arepair", flush_every=0)

    def test_unknown_technique_is_rejected_before_running(self):
        with pytest.raises(ValueError, match="NoSuchTool"):
            run_matrix(
                RunConfig(benchmark="arepair", techniques=("NoSuchTool",))
            )


class TestCacheKey:
    def test_key_folds_the_technique_set(self):
        subset = _matrix_key("arepair", 0, 1.0, ["ATR"])
        pair = _matrix_key("arepair", 0, 1.0, ["ATR", "BeAFix"])
        assert subset != pair

    def test_key_ignores_technique_order(self):
        forward = _matrix_key("arepair", 0, 1.0, ["ATR", "BeAFix"])
        backward = _matrix_key("arepair", 0, 1.0, ["BeAFix", "ATR"])
        assert forward == backward

    def test_key_varies_with_seed_and_scale(self):
        base = _matrix_key("arepair", 0, 1.0, ["ATR"])
        assert _matrix_key("arepair", 1, 1.0, ["ATR"]) != base
        assert _matrix_key("arepair", 0, 0.5, ["ATR"]) != base


class TestExecutorFactory:
    def test_auto_is_serial_for_one_job(self):
        assert isinstance(create_executor("auto", 1), SerialExecutor)

    def test_auto_is_a_process_pool_for_many_jobs(self):
        assert isinstance(create_executor("auto", 4), ProcessExecutor)

    def test_explicit_kinds(self):
        assert isinstance(create_executor("serial", 1), SerialExecutor)
        assert isinstance(create_executor("thread", 2), ThreadExecutor)
        assert isinstance(create_executor("process", 2), ProcessExecutor)

    def test_unknown_kind_is_rejected(self):
        with pytest.raises(ValueError, match="bogus"):
            create_executor("bogus", 2)

    def test_pool_executors_reject_zero_jobs(self):
        with pytest.raises(ValueError):
            ThreadExecutor(0)
        with pytest.raises(ValueError):
            ProcessExecutor(0)


class TestPicklability:
    """Everything that crosses the process boundary must pickle."""

    def test_shard_task_round_trips(self):
        task = ShardTask(
            spec=_tiny_spec(), techniques=("ATR", "BeAFix"), seed=7
        )
        clone = pickle.loads(pickle.dumps(task))
        assert clone == task

    def test_shard_result_with_failure_round_trips(self):
        class ContextualError(RuntimeError):
            def __init__(self):
                super().__init__("boom")
                # An unpicklable context value: capture must flatten it.
                self.context = {"handle": object()}

        try:
            raise ContextualError()
        except ContextualError as error:
            record = capture_failure("tiny:ATR", error)
        result = ShardResult(
            spec_id="tiny",
            outcomes={
                "ATR": SpecOutcome(
                    spec_id="tiny",
                    technique="ATR",
                    rep=0,
                    tm=0.0,
                    sm=0.0,
                    status="crashed",
                    elapsed=0.0,
                )
            },
            failures=[record],
        )
        clone = pickle.loads(pickle.dumps(result))
        assert clone.outcomes == result.outcomes
        assert clone.failures == result.failures
        assert "object at 0x" in clone.failures[0].context["handle"]
