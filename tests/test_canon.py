"""Semantic canonicalization and oracle-level candidate deduplication.

The contract under test mirrors the incremental session's: replaying a
cached verdict for a canonically-equal candidate must never change any
outcome — verdicts, matrix payloads, and chaos schedules are identical
with dedup on or off, which is what keeps ``--no-canon`` out of the
result-cache key.
"""

import json
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

import pytest

from repro import chaos, obs
from repro.alloy.parser import parse_module
from repro.alloy.resolver import resolve_module
from repro.analysis import (
    CandidateFilter,
    canonical_enabled,
    canonical_key,
    canonical_text,
    canonicalizing,
    verdict_sharing,
)
from repro.chaos.plan import FaultPlan, SiteConfig
from repro.experiments.runner import RunConfig, run_matrix
from repro.repair.base import PropertyOracle, RepairTask
from repro.repair.mutation import Mutator

from .conftest import FAULTY_LINKED_LIST_SPEC, MARRIAGE_SPEC

BASE = """
sig Node { next: lone Node }
fact acyclic { all n: Node | n not in n.^next }
pred nonEmpty { some Node }
run nonEmpty for 3
"""

ALPHA_VARIANT = BASE.replace("all n: Node | n not in n.^next",
                             "all m: Node | m not in m.^next")

COMMUTED_VARIANT = """
sig Node { next: lone Node }
fact acyclic { all n: Node | n not in n.^next }
pred nonEmpty { some Node }
run nonEmpty for 3
""".replace("some Node", "some Node or some Node")

DOUBLE_NEG_VARIANT = BASE.replace(
    "n not in n.^next", "not not (n not in n.^next)"
)

DIFFERENT = BASE.replace("lone Node", "set Node")


def canon(source):
    module = parse_module(source)
    return canonical_text(module, resolve_module(module))


class TestCanonicalText:
    def test_alpha_renaming_is_invisible(self):
        assert canon(BASE) == canon(ALPHA_VARIANT)

    def test_double_negation_folds(self):
        assert canon(BASE) == canon(DOUBLE_NEG_VARIANT)

    def test_idempotent_disjunction_folds(self):
        assert canon(BASE) == canon(COMMUTED_VARIANT)

    def test_commuted_conjuncts_agree(self):
        a = "sig S {}\npred p { some S and no S }\nrun p for 3\n"
        b = "sig S {}\npred p { no S and some S }\nrun p for 3\n"
        assert canon(a) == canon(b)

    def test_different_specs_differ(self):
        assert canon(BASE) != canon(DIFFERENT)

    def test_key_is_stable_hash(self):
        module = parse_module(BASE)
        info = resolve_module(module)
        first = canonical_key(module, info)
        second = canonical_key(module, info)
        assert first == second
        assert isinstance(first, str) and len(first) == 64

    def test_keys_of_equal_specs_collide(self):
        a = parse_module(BASE)
        b = parse_module(ALPHA_VARIANT)
        assert canonical_key(a, resolve_module(a)) == canonical_key(
            b, resolve_module(b)
        )


class TestCanonicalSwitch:
    def test_nests_and_restores(self):
        assert canonical_enabled() is True
        with canonicalizing(False):
            assert canonical_enabled() is False
            with canonicalizing(True):
                assert canonical_enabled() is True
            assert canonical_enabled() is False
        assert canonical_enabled() is True


class TestOracleDedup:
    def test_replay_counts_query_but_not_solve(self):
        task = RepairTask.from_source(BASE)
        oracle = PropertyOracle(task)
        first = oracle.evaluate_module(parse_module(BASE))
        second = oracle.evaluate_module(parse_module(ALPHA_VARIANT))
        assert first == second
        assert oracle.queries == 2
        assert oracle.solver_checks == 1

    def test_replay_records_dedup_hit(self):
        task = RepairTask.from_source(BASE)
        registry = obs.MetricsRegistry()
        with obs.scope(obs.Tracer(), registry):
            oracle = PropertyOracle(task)
            oracle.evaluate_module(parse_module(BASE))
            oracle.evaluate_module(parse_module(BASE))
        counters = registry.snapshot()["counters"]
        assert sum(
            value for key, value in counters.items()
            if key.startswith("analysis.dedup_hits")
        ) == 1

    def test_ablation_solves_every_candidate(self):
        task = RepairTask.from_source(BASE)
        with canonicalizing(False):
            oracle = PropertyOracle(task)
            oracle.evaluate_module(parse_module(BASE))
            oracle.evaluate_module(parse_module(BASE))
        assert oracle.queries == 2
        assert oracle.solver_checks == 2

    def test_chaos_scope_suppresses_replay(self):
        # Fault sites trigger per solver invocation; a replay would shift
        # the deterministic schedule away from the --no-canon arm.
        task = RepairTask.from_source(BASE)
        plan = FaultPlan(seed=3, sites={})
        with chaos.install(plan, salt="t"):
            oracle = PropertyOracle(task)
            oracle.evaluate_module(parse_module(BASE))
            oracle.evaluate_module(parse_module(BASE))
        assert oracle.solver_checks == 2


class TestVerdictSharing:
    """The shard-scoped cache: oracles of distinct tools replay each
    other's verdicts and evidence for the same task, and distinct tasks
    never collide."""

    def test_second_oracle_replays_verdict(self):
        task = RepairTask.from_source(BASE)
        with verdict_sharing():
            first = PropertyOracle(task)
            second = PropertyOracle(task)
            a = first.evaluate_module(parse_module(BASE))
            b = second.evaluate_module(parse_module(ALPHA_VARIANT))
        assert a == b
        assert first.solver_checks == 1
        assert second.solver_checks == 0
        assert second.queries == 1

    def test_without_scope_oracles_solve_independently(self):
        task = RepairTask.from_source(BASE)
        first = PropertyOracle(task)
        second = PropertyOracle(task)
        first.evaluate_module(parse_module(BASE))
        second.evaluate_module(parse_module(BASE))
        assert first.solver_checks == 1
        assert second.solver_checks == 1

    def test_distinct_tasks_do_not_collide(self):
        # Same candidate, different tasks (the commands and expectations
        # differ with the task source) must not share verdicts.
        with verdict_sharing():
            one = PropertyOracle(RepairTask.from_source(BASE))
            other = PropertyOracle(RepairTask.from_source(DIFFERENT))
            one.evaluate_module(parse_module(BASE))
            other.evaluate_module(parse_module(BASE))
        assert one.solver_checks == 1
        assert other.solver_checks == 1

    def test_evidence_replays_across_oracles(self):
        task = RepairTask.from_source(FAULTY_LINKED_LIST_SPEC)
        with verdict_sharing():
            first = PropertyOracle(task)
            second = PropertyOracle(task)
            original = first.failing_evidence_by_command(task.module)
            replayed = second.failing_evidence_by_command(task.module)
        assert first.queries > 0
        # Byte-identical budget traversal: the replay advances queries by
        # exactly the per-command count of the original run.
        assert second.queries == first.queries
        assert replayed == original

    def test_evidence_replay_counts_dedup_hits(self):
        task = RepairTask.from_source(FAULTY_LINKED_LIST_SPEC)
        registry = obs.MetricsRegistry()
        with obs.scope(obs.Tracer(), registry), verdict_sharing():
            PropertyOracle(task).failing_evidence_by_command(task.module)
            replayer = PropertyOracle(task)
            replayer.failing_evidence_by_command(task.module)
        counters = registry.snapshot()["counters"]
        assert sum(
            value for key, value in counters.items()
            if key.startswith("analysis.dedup_hits")
        ) == replayer.queries

    def test_ablation_disables_sharing(self):
        task = RepairTask.from_source(BASE)
        with verdict_sharing(), canonicalizing(False):
            first = PropertyOracle(task)
            second = PropertyOracle(task)
            first.evaluate_module(parse_module(BASE))
            second.evaluate_module(parse_module(BASE))
        assert first.solver_checks == 1
        assert second.solver_checks == 1

    def test_scope_nests_and_restores(self):
        from repro.analysis.canon import shared_verdicts

        assert shared_verdicts() is None
        with verdict_sharing():
            outer = shared_verdicts()
            assert outer == {}
            with verdict_sharing():
                assert shared_verdicts() is not outer
            assert shared_verdicts() is outer
        assert shared_verdicts() is None


def _verdicts(source, enabled):
    """(ok, [sat...]) per mutant through one PropertyOracle."""
    task = RepairTask.from_source(source)
    mutants = [m.module for m in Mutator(task.module, task.info).all_mutants()]
    assert mutants, "mutation produced no candidates"
    out = []
    with canonicalizing(enabled):
        oracle = PropertyOracle(task)
        for module in mutants:
            ok, results = oracle.evaluate_module(module)
            out.append((ok, [r.sat for r in results]))
    return out


class TestVerdictEquivalence:
    """Canonically-equal candidates get identical verdicts: dedup on and
    off must agree candidate-by-candidate, in every executor, and under a
    chaos plan."""

    @pytest.mark.parametrize("source", [FAULTY_LINKED_LIST_SPEC, MARRIAGE_SPEC])
    def test_mutant_stream_matches_ablation(self, source):
        assert _verdicts(source, True) == _verdicts(source, False)

    def test_thread_workers_agree(self):
        with ThreadPoolExecutor(max_workers=2) as pool:
            deduped = pool.submit(_verdicts, FAULTY_LINKED_LIST_SPEC, True)
            scratch = pool.submit(_verdicts, FAULTY_LINKED_LIST_SPEC, False)
            assert deduped.result() == scratch.result()

    def test_process_workers_agree(self):
        with ProcessPoolExecutor(max_workers=2) as pool:
            deduped = pool.submit(_verdicts, MARRIAGE_SPEC, True)
            scratch = pool.submit(_verdicts, MARRIAGE_SPEC, False)
            assert deduped.result(timeout=120) == scratch.result(timeout=120)

    def test_chaos_schedule_identical_across_ablation(self):
        plan = FaultPlan(
            seed=7, sites={"sat.budget": SiteConfig(probability=0.3)}
        )
        task = RepairTask.from_source(FAULTY_LINKED_LIST_SPEC)
        mutants = [
            m.module for m in Mutator(task.module, task.info).all_mutants()
        ]
        streams = []
        events = []
        for enabled in (True, False):
            with canonicalizing(enabled), chaos.install(plan, salt="x") as scope:
                oracle = PropertyOracle(task)
                streams.append(
                    [oracle.evaluate_module(m)[0] for m in mutants]
                )
                events.append([e.to_json() for e in scope.events])
        assert streams[0] == streams[1]
        assert events[0] == events[1]


@pytest.fixture
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    return tmp_path / "cache"


def _payload_bytes(matrix) -> bytes:
    payload = {
        spec_id: {
            technique: (o.rep, round(o.tm, 9), round(o.sm, 9), o.status)
            for technique, o in sorted(row.items())
        }
        for spec_id, row in sorted(matrix.outcomes.items())
    }
    return json.dumps(payload, sort_keys=True).encode()


def _run(**overrides):
    settings = dict(
        benchmark="arepair",
        scale=0.2,
        techniques=("BeAFix", "ATR"),
        use_cache=False,
    )
    settings.update(overrides)
    return run_matrix(RunConfig(**settings))


class TestMatrixEquivalence:
    def test_canon_matches_ablation_bytes(self, isolated_cache):
        assert _payload_bytes(_run()) == _payload_bytes(
            _run(canonical=False)
        )

    def test_ablation_shares_the_result_cache(self, isolated_cache):
        # canonical is excluded from the cache key: a --no-canon rerun of
        # a cached matrix must be served from the same file.
        first = _run(use_cache=True)
        second = _run(use_cache=True, canonical=False)
        assert _payload_bytes(first) == _payload_bytes(second)
        assert second.telemetry is None


class TestBaselineMemo:
    def test_same_module_reuses_baseline_lint(self):
        module = parse_module(BASE)
        info = resolve_module(module)
        registry = obs.MetricsRegistry()
        with obs.scope(obs.Tracer(), registry):
            CandidateFilter(module, info)
            CandidateFilter(module, info)
        counters = registry.snapshot()["counters"]
        assert counters.get("analysis.baseline_lint_reuse") == 1

    def test_distinct_modules_do_not_collide(self):
        first = parse_module(BASE)
        second = parse_module(DIFFERENT)
        registry = obs.MetricsRegistry()
        with obs.scope(obs.Tracer(), registry):
            CandidateFilter(first, resolve_module(first))
            CandidateFilter(second, resolve_module(second))
        counters = registry.snapshot()["counters"]
        assert "analysis.baseline_lint_reuse" not in counters


class TestAblationPlumbing:
    def test_shard_task_carries_the_bit(self, monkeypatch):
        from repro.benchmarks.faults import FaultySpec
        from repro.experiments import runner
        from repro.experiments.executor import ShardTask, execute_shard
        from repro.llm.prompts import RepairHints

        spec = FaultySpec(
            spec_id="s",
            benchmark="adhoc",
            domain="adhoc",
            model_name="s",
            faulty_source=BASE,
            truth_source=BASE,
            fault_description="",
            depth=0,
            hints=RepairHints(),
        )
        observed = {}

        def fake_run_spec(spec, technique, seed, truth):
            observed[technique] = canonical_enabled()
            return runner._crashed_outcome(spec, technique)

        monkeypatch.setattr(runner, "run_spec", fake_run_spec)
        execute_shard(
            ShardTask(spec=spec, techniques=("T1",), seed=0, canonical=False)
        )
        execute_shard(
            ShardTask(spec=spec, techniques=("T2",), seed=0, canonical=True)
        )
        assert observed == {"T1": False, "T2": True}

    def test_cli_exposes_no_canon(self):
        from repro.cli import build_parser

        parser = build_parser()
        assert parser.parse_args(["table1", "--no-canon"]).no_canon is True
        assert parser.parse_args(["table1"]).no_canon is False
        assert parser.parse_args(
            ["repair", "spec.als", "--no-canon"]
        ).no_canon is True
        assert parser.parse_args(["serve", "--no-canon"]).no_canon is True

    def test_matrix_key_ignores_canonical(self):
        import inspect

        from repro.experiments.runner import _matrix_key

        assert "canonical" not in inspect.signature(_matrix_key).parameters
