"""Incremental candidate solving: the SolveSession / OracleSession stack.

The contract under test is *bit-identical outcomes*: evaluating a stream of
repair candidates through the shared incremental session must produce the
same verdicts, the same matrix payloads, and the same chaos fault schedules
as the from-scratch path — only faster.  The ``--no-incremental`` ablation
is therefore a pure performance switch, which is what lets it stay out of
the result-cache key.
"""

import json

import pytest

from repro.alloy.parser import parse_module
from repro.alloy.resolver import resolve_module
from repro.analyzer.session import OracleSession, incremental, incremental_enabled
from repro.chaos.plan import FaultPlan, SiteConfig
from repro.experiments.executor import ShardTask
from repro.experiments.runner import RunConfig, run_matrix
from repro.repair.base import PropertyOracle, RepairTask
from repro.repair.mutation import Mutator
from repro.sat.solver import SolveSession

from .conftest import FAULTY_LINKED_LIST_SPEC, MARRIAGE_SPEC


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    return tmp_path / "cache"


class TestSolveSession:
    """The assumption-based incremental layer over one SatSolver."""

    def test_selector_groups_activate_only_under_assumption(self):
        session = SolveSession()
        x = session.new_var()
        wants_true = session.new_selector()
        wants_false = session.new_selector()
        session.add_clause_under(wants_true, [x])
        session.add_clause_under(wants_false, [-x])

        assert session.solve([wants_true]) is True
        assert x in session.model()
        assert session.solve([wants_false]) is True
        assert x not in session.model()
        # Both groups at once are contradictory — but only under assumption.
        assert session.solve([wants_true, wants_false]) is False
        assert session.solve([]) is True

    def test_retired_group_is_permanently_satisfied(self):
        session = SolveSession()
        x = session.new_var()
        session.add_clause([x])
        poison = session.new_selector()
        session.add_clause_under(poison, [-x])
        assert session.solve([poison]) is False
        session.retire(poison)
        # The unit [-poison] disables the group at level 0; the remaining
        # permanent structure is satisfiable.  Retiring twice is a no-op.
        session.retire(poison)
        assert session.solve([]) is True
        assert x in session.model()

    def test_state_carries_across_solves(self):
        session = SolveSession()
        variables = [session.new_var() for _ in range(6)]
        for a, b in zip(variables, variables[1:]):
            session.add_clause([-a, b])
        selector = session.new_selector()
        session.add_clause_under(selector, [variables[0]])
        assert session.solve([selector]) is True
        assert all(v in session.model() for v in variables)
        assert session.solves == 1
        assert session.solve([selector, -variables[-1]]) is False
        assert session.solves == 2

    def test_num_selectors_counts_allocations(self):
        session = SolveSession()
        assert session.num_selectors == 0
        session.new_selector()
        session.new_selector()
        assert session.num_selectors == 2


def _verdicts(task: RepairTask, modules, enabled: bool):
    """(ok, [sat...]) per candidate through one PropertyOracle."""
    out = []
    with incremental(enabled):
        oracle = PropertyOracle(task)
        for module in modules:
            ok, results = oracle.evaluate_module(module)
            out.append((ok, [r.sat for r in results]))
    return out


class TestOracleSessionEquivalence:
    """Session verdicts must equal from-scratch verdicts, candidate by
    candidate, including resolution failures and structural fallbacks."""

    @pytest.mark.parametrize("source", [FAULTY_LINKED_LIST_SPEC, MARRIAGE_SPEC])
    def test_mutant_stream_verdicts_match_scratch(self, source):
        task = RepairTask.from_source(source)
        mutator = Mutator(task.module, task.info)
        mutants = [m.module for m in mutator.all_mutants()]
        assert mutants, "mutation produced no candidates"
        incremental_verdicts = _verdicts(task, mutants, enabled=True)
        scratch_verdicts = _verdicts(task, mutants, enabled=False)
        assert incremental_verdicts == scratch_verdicts

    def test_structurally_divergent_candidate_returns_none(self):
        task = RepairTask.from_source(FAULTY_LINKED_LIST_SPEC)
        session = OracleSession(task.info)
        divergent = parse_module(
            FAULTY_LINKED_LIST_SPEC.replace("next: lone Node", "next: set Node")
        )
        assert session.evaluate(divergent) is None

    def test_unresolvable_candidate_fails_oracle(self):
        task = RepairTask.from_source(FAULTY_LINKED_LIST_SPEC)
        session = OracleSession(task.info)
        broken = parse_module(
            FAULTY_LINKED_LIST_SPEC.replace("n.next", "n.nonexistent")
        )
        assert session.evaluate(broken) == ([], False)

    def test_base_module_evaluates_like_analyzer(self):
        task = RepairTask.from_source(MARRIAGE_SPEC)
        session = OracleSession(task.info)
        module = parse_module(MARRIAGE_SPEC)
        resolve_module(module)
        outcome = session.evaluate(module)
        assert outcome is not None
        results, completed = outcome
        assert completed is True
        scratch = _verdicts(task, [module], enabled=False)
        assert [r.sat for r in results] == scratch[0][1]


def _payload_bytes(matrix) -> bytes:
    """The result content of a matrix as canonical bytes."""
    payload = {
        spec_id: {
            technique: (o.rep, round(o.tm, 9), round(o.sm, 9), o.status)
            for technique, o in sorted(row.items())
        }
        for spec_id, row in sorted(matrix.outcomes.items())
    }
    return json.dumps(payload, sort_keys=True).encode()


def _run(**overrides) -> bytes:
    config = RunConfig(
        benchmark="arepair",
        scale=0.2,
        techniques=("BeAFix", "ATR"),
        use_cache=False,
        **overrides,
    )
    return run_matrix(config)


class TestMatrixEquivalence:
    """run_matrix payloads are byte-identical with the session on or off,
    and across executors, including under a chaos plan."""

    def test_incremental_matches_scratch_bytes(self):
        assert _payload_bytes(_run()) == _payload_bytes(_run(incremental=False))

    def test_incremental_matches_across_executors(self):
        serial = _run()
        threaded = _run(executor="thread", jobs=2)
        assert _payload_bytes(serial) == _payload_bytes(threaded)

    def test_chaos_schedule_identical_across_executors(self):
        plan = FaultPlan(
            seed=7, sites={"sat.budget": SiteConfig(probability=0.3)}
        )
        serial = _run(chaos=plan)
        threaded = _run(chaos=plan, executor="thread", jobs=2)
        assert _payload_bytes(serial) == _payload_bytes(threaded)
        assert serial.chaos_events == threaded.chaos_events
        processed = _run(chaos=plan, executor="process", jobs=2)
        assert _payload_bytes(serial) == _payload_bytes(processed)
        assert serial.chaos_events == processed.chaos_events


class TestAblationPlumbing:
    """The --no-incremental bit must reach the worker ambiently."""

    def test_ambient_toggle_nests_and_restores(self):
        assert incremental_enabled() is True
        with incremental(False):
            assert incremental_enabled() is False
            with incremental(True):
                assert incremental_enabled() is True
            assert incremental_enabled() is False
        assert incremental_enabled() is True

    def test_shard_task_carries_the_bit(self):
        from repro.llm.prompts import RepairHints
        from repro.benchmarks.faults import FaultySpec

        spec = FaultySpec(
            spec_id="tiny",
            benchmark="adhoc",
            domain="adhoc",
            model_name="tiny",
            faulty_source=FAULTY_LINKED_LIST_SPEC,
            truth_source=FAULTY_LINKED_LIST_SPEC,
            fault_description="",
            depth=0,
            hints=RepairHints(),
        )
        task = ShardTask(spec=spec, techniques=("ATR",), seed=0)
        assert task.incremental is True
        ablated = ShardTask(
            spec=spec, techniques=("ATR",), seed=0, incremental=False
        )
        assert ablated.incremental is False

    def test_cli_exposes_no_incremental(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(["table1", "--no-incremental"])
        assert args.no_incremental is True
        args = parser.parse_args(["table1"])
        assert args.no_incremental is False
        args = parser.parse_args(["repair", "spec.als", "--no-incremental"])
        assert args.no_incremental is True
        args = parser.parse_args(["serve", "--no-incremental"])
        assert args.no_incremental is True

    def test_profile_renders_candidate_throughput(self):
        from repro import obs
        from repro.obs import NULL_TRACER, MetricsRegistry
        from repro.obs.export import render_profile, trace_data_from_snapshot

        registry = MetricsRegistry()
        with obs.scope(NULL_TRACER, registry):
            obs.counter("repair.candidates", technique="ATR").inc(120)
            obs.histogram("repair.seconds", technique="ATR").observe(2.0)
        rendered = render_profile(trace_data_from_snapshot(registry.snapshot()))
        assert "cand/s" in rendered
        assert "60.0" in rendered
