"""Universe/bounds tests: scope resolution and primary-variable layout."""

import pytest

from repro.alloy.errors import ScopeError
from repro.alloy.nodes import Command, SigScope
from repro.alloy.parser import parse_module
from repro.alloy.resolver import resolve_module
from repro.analyzer.universe import Bounds, Universe, resolve_scopes
from repro.sat.circuit import TRUE, CircuitBuilder
from repro.sat.solver import SatSolver

SOURCE = """
abstract sig P {}
sig A extends P {}
sig B extends P {}
one sig Single {}
sig Free { link: set Free }
"""


@pytest.fixture
def info():
    return resolve_module(parse_module(SOURCE))


def command(default=3, scopes=()):
    return Command(
        kind="run",
        block=None,
        target=None,
        default_scope=default,
        sig_scopes=[SigScope(sig=s, bound=b, exact=e) for s, b, e in scopes],
    )


class TestResolveScopes:
    def test_default_scope_applies_to_top_level(self, info):
        scopes = resolve_scopes(info, command(default=4))
        assert scopes["P"].size == 4
        assert scopes["Free"].size == 4

    def test_one_sig_forced_to_exactly_one(self, info):
        scopes = resolve_scopes(info, command(default=5))
        assert scopes["Single"].size == 1 and scopes["Single"].exact

    def test_override(self, info):
        scopes = resolve_scopes(info, command(scopes=[("Free", 2, True)]))
        assert scopes["Free"].size == 2 and scopes["Free"].exact

    def test_subsig_scope_rejected(self, info):
        with pytest.raises(ScopeError):
            resolve_scopes(info, command(scopes=[("A", 2, False)]))

    def test_subsigs_have_no_own_pool(self, info):
        scopes = resolve_scopes(info, command())
        assert "A" not in scopes and "B" not in scopes


class TestUniverse:
    def test_atom_naming(self, info):
        universe = Universe.build(info, resolve_scopes(info, command(default=2)))
        assert universe.pools["P"] == ["P$0", "P$1"]

    def test_pool_of_subsig_is_parent_pool(self, info):
        universe = Universe.build(info, resolve_scopes(info, command(default=2)))
        assert universe.pool_of(info, "A") == universe.pools["P"]

    def test_atoms_flattened(self, info):
        universe = Universe.build(info, resolve_scopes(info, command(default=1)))
        assert len(universe.atoms) == 3  # P$0, Single$0, Free$0


class TestBounds:
    def _bounds(self, info, cmd=None):
        solver = SatSolver()
        builder = CircuitBuilder(solver)
        return Bounds(info, cmd or command(default=2), builder)

    def test_sig_vars_allocated_for_every_sig(self, info):
        bounds = self._bounds(info)
        assert set(bounds.sig_vars) == {"P", "A", "B", "Single", "Free"}

    def test_one_sig_membership_is_constant_true(self, info):
        bounds = self._bounds(info)
        assert all(h == TRUE for h in bounds.sig_vars["Single"].values())

    def test_exact_scope_pins_membership(self, info):
        bounds = self._bounds(info, command(scopes=[("Free", 2, True)]))
        assert all(h == TRUE for h in bounds.sig_vars["Free"].values())

    def test_field_tuples_span_pools(self, info):
        bounds = self._bounds(info)
        assert len(bounds.field_vars["link"]) == 4  # 2 x 2 Free atoms

    def test_primary_handles_include_sigs_and_fields(self, info):
        bounds = self._bounds(info)
        primary = bounds.primary_handles()
        assert "link" in primary and "P" in primary
        assert all(len(t) == 1 for t in primary["P"])
