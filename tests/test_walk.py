"""AST traversal/rewrite tests: paths, replacement, removal."""

import pytest

from repro.alloy.nodes import Compare, NameExpr, Not, Quantified
from repro.alloy.parser import parse_module
from repro.alloy.pretty import print_module
from repro.alloy.walk import (
    count_nodes,
    find_paths,
    get_at,
    insert_at,
    iter_paths,
    remove_at,
    replace_at,
)


@pytest.fixture
def module():
    return parse_module(
        "sig A { f: set A }\nfact F { all x: A | x in x.f some A }"
    )


class TestIterPaths:
    def test_root_has_empty_path(self, module):
        paths = list(iter_paths(module))
        assert paths[0] == ((), module)

    def test_get_at_inverts_iter_paths(self, module):
        for path, node in iter_paths(module):
            assert get_at(module, path) is node

    def test_count_nodes_matches_iter(self, module):
        assert count_nodes(module) == len(list(iter_paths(module)))

    def test_find_paths(self, module):
        name_paths = find_paths(module, lambda n: isinstance(n, NameExpr))
        assert len(name_paths) >= 4


class TestReplace:
    def test_replace_leaf(self, module):
        path = find_paths(
            module, lambda n: isinstance(n, NameExpr) and n.name == "A"
        )[-1]
        new_module = replace_at(module, path, NameExpr(name="B"))
        assert "B" in print_module(new_module)
        # Original untouched.
        assert "B" not in print_module(module)

    def test_replace_formula_with_negation(self, module):
        path = find_paths(module, lambda n: isinstance(n, Compare))[0]
        node = get_at(module, path)
        new_module = replace_at(module, path, Not(operand=node))
        replaced = get_at(new_module, path)
        assert isinstance(replaced, Not)

    def test_replace_root_returns_copy(self, module):
        other = parse_module("sig Z {}")
        result = replace_at(module, (), other)
        assert print_module(result) == print_module(other)
        assert result is not other


class TestRemoveInsert:
    def test_remove_conjunct(self, module):
        quant_path = find_paths(module, lambda n: isinstance(n, Quantified))[0]
        new_module = remove_at(module, quant_path)
        assert count_nodes(new_module) < count_nodes(module)

    def test_remove_root_rejected(self, module):
        with pytest.raises(ValueError):
            remove_at(module, ())

    def test_remove_scalar_child_rejected(self, module):
        # A quantifier body is a scalar field, not a list element.
        quant_path = find_paths(module, lambda n: isinstance(n, Quantified))[0]
        body_path = quant_path + (("body", None),)
        with pytest.raises(ValueError):
            remove_at(module, body_path)

    def test_insert_formula(self, module):
        fact_path = find_paths(
            module, lambda n: type(n).__name__ == "FactDecl"
        )[0]
        block_path = fact_path + (("body", None),)
        block = get_at(module, block_path)
        before = len(block.formulas)
        new_module = insert_at(
            module,
            block_path,
            0,
            Compare(left=NameExpr(name="A"), right=NameExpr(name="A")),
            "formulas",
        )
        new_block = get_at(new_module, block_path)
        assert len(new_block.formulas) == before + 1
