"""LLM client abstraction tests."""

from repro.llm.client import Conversation, Message, UsageStats


class TestConversation:
    def test_add_and_last_assistant(self):
        conversation = Conversation()
        conversation.add("system", "be helpful")
        conversation.add("user", "fix this")
        assert conversation.last_assistant() is None
        conversation.add("assistant", "done")
        conversation.add("user", "thanks")
        assert conversation.last_assistant() == "done"

    def test_rendered_includes_roles(self):
        conversation = Conversation(
            messages=[Message(role="user", content="hello")]
        )
        assert "[user] hello" in conversation.rendered()

    def test_rendered_order_preserved(self):
        conversation = Conversation()
        conversation.add("user", "first")
        conversation.add("assistant", "second")
        rendered = conversation.rendered()
        assert rendered.index("first") < rendered.index("second")


class TestUsageStats:
    def test_record_accumulates(self):
        stats = UsageStats()
        conversation = Conversation(
            messages=[Message(role="user", content="abcd")]
        )
        stats.record(conversation, "efg")
        stats.record(conversation, "h")
        assert stats.requests == 2
        assert stats.prompt_chars == 8
        assert stats.completion_chars == 4
