"""Trace-driven shard scheduling: ordering policies and cost sources."""

import pytest

from repro.benchmarks.faults import FaultySpec
from repro.experiments.executor import ShardTask
from repro.experiments.runner import ResultMatrix, RunConfig, SpecOutcome
from repro.experiments.schedule import (
    SCHEDULES,
    matrix_costs,
    schedule_shards,
    trace_costs,
)
from repro.llm.prompts import RepairHints
from repro.obs.export import TRACE_SCHEMA
from repro.runtime.persist import atomic_write_jsonl

from .conftest import LINKED_LIST_SPEC


def make_shard(spec_id: str, source: str = LINKED_LIST_SPEC) -> ShardTask:
    return ShardTask(
        spec=FaultySpec(
            spec_id=spec_id,
            benchmark="adhoc",
            domain="adhoc",
            model_name=spec_id,
            faulty_source=source,
            truth_source=source,
            fault_description="",
            depth=0,
            hints=RepairHints(),
        ),
        techniques=("ATR",),
        seed=0,
    )


def order(shards):
    return [shard.spec.spec_id for shard in shards]


def config(tmp_path, schedule="longest-first"):
    return RunConfig(
        benchmark="adhoc-none",
        schedule=schedule,
        trace_out=str(tmp_path / "trace.jsonl"),
    )


def empty_matrix():
    return ResultMatrix(benchmark="adhoc-none", seed=0, scale=1.0)


def cell_span(spec_id, duration):
    return {
        "type": "span",
        "name": "cell",
        "path": "cell",
        "depth": 0,
        "duration": duration,
        "attrs": {"spec": spec_id, "technique": "ATR"},
    }


class TestPolicies:
    def test_fifo_preserves_submission_order(self, tmp_path):
        shards = [make_shard(s) for s in ("a", "b", "c")]
        assert (
            order(schedule_shards(shards, config(tmp_path, "fifo"), empty_matrix()))
            == ["a", "b", "c"]
        )

    def test_runconfig_rejects_unknown_schedule(self):
        assert set(SCHEDULES) == {"fifo", "longest-first"}
        with pytest.raises(ValueError, match="schedule"):
            RunConfig(benchmark="arepair", schedule="shortest-first")

    def test_single_shard_is_left_alone(self, tmp_path):
        shards = [make_shard("only")]
        assert schedule_shards(shards, config(tmp_path), empty_matrix()) == shards


class TestCostSources:
    def test_without_history_bigger_sources_go_first(self, tmp_path):
        shards = [
            make_shard("small", LINKED_LIST_SPEC),
            make_shard("big", LINKED_LIST_SPEC * 4),
        ]
        assert order(
            schedule_shards(shards, config(tmp_path), empty_matrix())
        ) == ["big", "small"]

    def test_size_ties_keep_benchmark_order(self, tmp_path):
        shards = [make_shard(s) for s in ("a", "b", "c")]
        assert order(
            schedule_shards(shards, config(tmp_path), empty_matrix())
        ) == ["a", "b", "c"]

    def test_cached_matrix_elapsed_beats_the_size_proxy(self, tmp_path):
        # "cheap" has the bigger source but measured history says it is
        # fast; the measurement must win.
        shards = [
            make_shard("cheap", LINKED_LIST_SPEC * 4),
            make_shard("dear", LINKED_LIST_SPEC),
        ]
        matrix = empty_matrix()
        matrix.outcomes = {
            "cheap": {"ATR": _outcome("cheap", elapsed=0.1)},
            "dear": {"ATR": _outcome("dear", elapsed=9.0)},
        }
        assert matrix_costs(matrix) == {"cheap": 0.1, "dear": 9.0}
        assert order(
            schedule_shards(shards, config(tmp_path), matrix)
        ) == ["dear", "cheap"]

    def test_trace_file_beats_everything(self, tmp_path):
        cfg = config(tmp_path)
        atomic_write_jsonl(
            cfg.trace_path(),
            [
                cell_span("a", 1.0),
                cell_span("b", 5.0),
                cell_span("b", 2.0),  # per-spec costs accumulate
                {"type": "span", "name": "truth-oracle", "path": "t",
                 "depth": 0, "duration": 99.0, "attrs": {"spec": "a"}},
            ],
            schema=TRACE_SCHEMA,
        )
        assert trace_costs(cfg) == {"a": 1.0, "b": 7.0}
        shards = [make_shard("a"), make_shard("b")]
        assert order(schedule_shards(shards, cfg, empty_matrix())) == ["b", "a"]

    def test_unreadable_trace_degrades_to_no_history(self, tmp_path):
        cfg = config(tmp_path)
        cfg.trace_path().parent.mkdir(parents=True, exist_ok=True)
        cfg.trace_path().write_bytes(b"\x00not a trace\x00")
        assert trace_costs(cfg) == {}
        shards = [make_shard("a"), make_shard("b", LINKED_LIST_SPEC * 2)]
        assert order(schedule_shards(shards, cfg, empty_matrix())) == ["b", "a"]

    def test_missing_trace_is_no_history(self, tmp_path):
        assert trace_costs(config(tmp_path)) == {}


def _outcome(spec_id, elapsed):
    return SpecOutcome(
        spec_id=spec_id,
        technique="ATR",
        rep=0,
        tm=0.0,
        sm=0.0,
        status="not_fixed",
        elapsed=elapsed,
    )
