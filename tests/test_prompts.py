"""Prompt construction tests for single- and multi-round settings."""

from repro.analyzer.instance import make_instance
from repro.llm.prompts import (
    AnalyzerReport,
    CommandReport,
    FeedbackLevel,
    PromptSetting,
    RepairHints,
    initial_multi_round_prompt,
    prompt_agent_conversation,
    render_generic_feedback,
    render_no_feedback,
    single_round_prompt,
)

HINTS = RepairHints(
    location="fact 'F', constraint 1",
    fix_description="The quantifier of this constraint seems wrong.",
    passing_assertion="Safe",
)

SPEC = "sig A {}\nfact F { some A }"


def _user_text(conversation):
    return "\n".join(m.content for m in conversation.messages if m.role == "user")


class TestSingleRoundSettings:
    def test_loc_fix_includes_both(self):
        text = _user_text(single_round_prompt(SPEC, PromptSetting.LOC_FIX, HINTS))
        assert "Bug location:" in text and "Fix description:" in text
        assert "assertion" not in text.lower() or "pass" not in text

    def test_loc_only(self):
        text = _user_text(single_round_prompt(SPEC, PromptSetting.LOC, HINTS))
        assert "Bug location:" in text
        assert "Fix description:" not in text

    def test_pass_only(self):
        text = _user_text(single_round_prompt(SPEC, PromptSetting.PASS, HINTS))
        assert "'Safe' pass" in text
        assert "Bug location:" not in text

    def test_none_has_no_hints(self):
        text = _user_text(single_round_prompt(SPEC, PromptSetting.NONE, HINTS))
        assert "Bug location:" not in text
        assert "Fix description:" not in text
        assert "'Safe'" not in text

    def test_loc_pass(self):
        text = _user_text(single_round_prompt(SPEC, PromptSetting.LOC_PASS, HINTS))
        assert "Bug location:" in text and "'Safe' pass" in text

    def test_spec_embedded_in_fence(self):
        text = _user_text(single_round_prompt(SPEC, PromptSetting.NONE, HINTS))
        assert "```alloy" in text and "sig A {}" in text

    def test_system_prompt_present(self):
        conversation = single_round_prompt(SPEC, PromptSetting.NONE, HINTS)
        assert conversation.messages[0].role == "system"

    def test_missing_hints_omitted(self):
        empty = RepairHints()
        text = _user_text(single_round_prompt(SPEC, PromptSetting.LOC_FIX, empty))
        assert "Bug location:" not in text


class TestMultiRoundPrompts:
    def test_initial_prompt_has_no_hints(self):
        text = _user_text(initial_multi_round_prompt(SPEC))
        assert "Bug location:" not in text and "```alloy" in text

    def test_initial_prompt_with_pipeline_hint(self):
        text = _user_text(initial_multi_round_prompt(SPEC, HINTS))
        assert "Bug location:" in text


def _report():
    instance = make_instance({"A": {("A$0",)}})
    return AnalyzerReport(
        compiled=True,
        commands=[
            CommandReport(
                name="ok", kind="run", expected_sat=True, actual_sat=True
            ),
            CommandReport(
                name="Safe",
                kind="check",
                expected_sat=False,
                actual_sat=True,
                counterexamples=[instance],
            ),
        ],
    )


class TestFeedbackRendering:
    def test_no_feedback_binary(self):
        report = _report()
        text = render_no_feedback(report)
        assert "not correct" in text
        assert "counterexample" not in text

    def test_no_feedback_success(self):
        report = AnalyzerReport(compiled=True, commands=[])
        assert "correct" in render_no_feedback(report)

    def test_generic_feedback_lists_commands(self):
        text = render_generic_feedback(_report())
        assert "check Safe" in text and "expected UNSAT, got SAT" in text
        assert "A = {A$0}" in text  # counterexample body included

    def test_generic_feedback_compile_error(self):
        report = AnalyzerReport(compiled=False, error="syntax error at line 3")
        text = render_generic_feedback(report)
        assert "did not compile" in text and "line 3" in text

    def test_prompt_agent_conversation_structure(self):
        conversation = prompt_agent_conversation(SPEC, _report())
        assert "debugging assistant" in conversation.messages[0].content
        assert "Analyzer report" in conversation.messages[1].content

    def test_all_pass_flag(self):
        report = _report()
        assert not report.all_pass
        good = AnalyzerReport(
            compiled=True,
            commands=[
                CommandReport(
                    name="x", kind="run", expected_sat=True, actual_sat=True
                )
            ],
        )
        assert good.all_pass


class TestFeedbackLevels:
    def test_enum_values_match_paper(self):
        assert [f.value for f in FeedbackLevel] == ["None", "Generic", "Auto"]

    def test_prompt_settings_match_paper(self):
        assert [s.value for s in PromptSetting] == [
            "Loc+Fix",
            "Loc",
            "Pass",
            "None",
            "Loc+Pass",
        ]
