"""Lexer tests: token kinds, positions, comments, and error handling."""

import pytest

from repro.alloy.errors import LexError
from repro.alloy.lexer import tokenize
from repro.alloy.tokens import TokenKind


def kinds(source: str) -> list[TokenKind]:
    return [token.kind for token in tokenize(source)][:-1]  # drop EOF


class TestBasicTokens:
    def test_identifier(self):
        tokens = tokenize("hello")
        assert tokens[0].kind is TokenKind.IDENT
        assert tokens[0].text == "hello"

    def test_identifier_with_prime_and_underscore(self):
        tokens = tokenize("x_1'")
        assert tokens[0].text == "x_1'"

    def test_number(self):
        tokens = tokenize("42")
        assert tokens[0].kind is TokenKind.NUMBER
        assert tokens[0].text == "42"

    def test_keywords_are_not_identifiers(self):
        assert kinds("sig fact pred assert run check") == [
            TokenKind.SIG,
            TokenKind.FACT,
            TokenKind.PRED,
            TokenKind.ASSERT,
            TokenKind.RUN,
            TokenKind.CHECK,
        ]

    def test_keyword_prefix_is_identifier(self):
        tokens = tokenize("signature")
        assert tokens[0].kind is TokenKind.IDENT

    def test_eof_terminates_stream(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind is TokenKind.EOF


class TestOperators:
    @pytest.mark.parametrize(
        "text,kind",
        [
            ("->", TokenKind.ARROW),
            ("++", TokenKind.PLUSPLUS),
            ("=>", TokenKind.IMPLIES_OP),
            ("<=>", TokenKind.IFF_OP),
            ("&&", TokenKind.AMPAMP),
            ("||", TokenKind.BARBAR),
            ("!=", TokenKind.NEQ),
            ("!in", TokenKind.NOT_IN),
            ("<:", TokenKind.DOM_RESTRICT),
            (":>", TokenKind.RAN_RESTRICT),
            ("<=", TokenKind.LTE),
            (">=", TokenKind.GTE),
            ("=<", TokenKind.LTE),
        ],
    )
    def test_multi_char_operator(self, text, kind):
        assert kinds(text) == [kind]

    def test_maximal_munch(self):
        # `<=>` must not lex as `<=` `>`.
        assert kinds("<=>") == [TokenKind.IFF_OP]

    def test_arrow_vs_minus(self):
        assert kinds("a->b") == [TokenKind.IDENT, TokenKind.ARROW, TokenKind.IDENT]
        assert kinds("a-b") == [TokenKind.IDENT, TokenKind.MINUS, TokenKind.IDENT]

    def test_single_char_operators(self):
        assert kinds("{ } [ ] ( ) . ~ ^ * # | = & +") == [
            TokenKind.LBRACE,
            TokenKind.RBRACE,
            TokenKind.LBRACKET,
            TokenKind.RBRACKET,
            TokenKind.LPAREN,
            TokenKind.RPAREN,
            TokenKind.DOT,
            TokenKind.TILDE,
            TokenKind.CARET,
            TokenKind.STAR,
            TokenKind.HASH,
            TokenKind.BAR,
            TokenKind.EQ,
            TokenKind.AMP,
            TokenKind.PLUS,
        ]


class TestCommentsAndPositions:
    def test_line_comment_slash(self):
        assert kinds("a // comment\nb") == [TokenKind.IDENT, TokenKind.IDENT]

    def test_line_comment_dashes(self):
        assert kinds("a -- comment\nb") == [TokenKind.IDENT, TokenKind.IDENT]

    def test_block_comment(self):
        assert kinds("a /* x\ny */ b") == [TokenKind.IDENT, TokenKind.IDENT]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(LexError):
            tokenize("a /* never closed")

    def test_positions_track_lines_and_columns(self):
        tokens = tokenize("a\n  b")
        assert tokens[0].pos.line == 1 and tokens[0].pos.column == 1
        assert tokens[1].pos.line == 2 and tokens[1].pos.column == 3

    def test_unexpected_character_raises_with_position(self):
        with pytest.raises(LexError) as excinfo:
            tokenize("a\n$")
        assert excinfo.value.pos.line == 2


class TestRealisticInput:
    def test_signature_declaration(self):
        assert kinds("sig Room { keys: set Key }") == [
            TokenKind.SIG,
            TokenKind.IDENT,
            TokenKind.LBRACE,
            TokenKind.IDENT,
            TokenKind.COLON,
            TokenKind.SET,
            TokenKind.IDENT,
            TokenKind.RBRACE,
        ]

    def test_quantified_formula(self):
        observed = kinds("all r: Room | some r.keys")
        assert observed == [
            TokenKind.ALL,
            TokenKind.IDENT,
            TokenKind.COLON,
            TokenKind.IDENT,
            TokenKind.BAR,
            TokenKind.SOME,
            TokenKind.IDENT,
            TokenKind.DOT,
            TokenKind.IDENT,
        ]
