"""Relational type inference tests: the bounding-type lattice and algebra."""

import pytest

from repro.alloy.parser import parse_expr, parse_module
from repro.alloy.resolver import INT_ARITY, resolve_module
from repro.analysis import INT_TYPE, RelType, TypeInferencer, empty_type, inferencer_for, wildcard
from repro.analysis.reltypes import UNIV

HIERARCHY = """
abstract sig Node { next: set Node }
sig File extends Node {}
sig Dir extends Node { entries: set File }
sig Free {}
"""


def infer(source: str = HIERARCHY):
    info = resolve_module(parse_module(source))
    return info, TypeInferencer(info)


def type_of(ti, info, text: str) -> RelType:
    return ti.type_of(parse_expr(text))


class TestLattice:
    def test_overlaps_self_and_hierarchy(self):
        _, ti = infer()
        assert ti.overlaps("Node", "File")
        assert ti.overlaps("File", "Node")
        assert not ti.overlaps("File", "Dir")
        assert not ti.overlaps("File", "Free")
        assert ti.overlaps("File", UNIV)

    def test_meet_picks_more_specific(self):
        _, ti = infer()
        assert ti.meet("Node", "File") == "File"
        assert ti.meet("File", "Node") == "File"
        assert ti.meet("File", "File") == "File"
        assert ti.meet(UNIV, "Dir") == "Dir"
        assert ti.meet("File", "Dir") is None

    def test_abstract_sig_with_children_is_not_empty(self):
        _, ti = infer()
        assert not ti.sig_type("Node").empty

    def test_abstract_sig_without_children_is_empty(self):
        _, ti = infer("abstract sig Ghost {}\nsig A {}")
        assert ti.sig_type("Ghost").empty


class TestInference:
    def test_sig_and_field_types(self):
        info, ti = infer()
        assert type_of(ti, info, "File").products == frozenset({("File",)})
        entries = type_of(ti, info, "entries")
        assert entries.arity == 2
        assert entries.products == frozenset({("Dir", "File")})

    def test_join_through_hierarchy(self):
        info, ti = infer()
        # Dir is a Node, so Dir.next is live.
        assert not type_of(ti, info, "Dir.next").empty

    def test_disjoint_join_is_empty(self):
        info, ti = infer()
        # entries' first column is Dir; File never overlaps it.
        assert type_of(ti, info, "File.entries").empty

    def test_intersection_of_disjoint_sigs_is_empty(self):
        info, ti = infer()
        assert type_of(ti, info, "File & Dir").empty
        assert not type_of(ti, info, "File & Node").empty

    def test_difference_keeps_left_type(self):
        info, ti = infer()
        assert type_of(ti, info, "File - Dir").products == frozenset({("File",)})

    def test_transpose_reverses_columns(self):
        info, ti = infer()
        assert type_of(ti, info, "~entries").products == frozenset({("File", "Dir")})

    def test_closure_grows_to_fixpoint(self):
        info, ti = infer()
        closed = type_of(ti, info, "^next")
        assert closed.arity == 2
        assert ("Node", "Node") in closed.products

    def test_reflexive_closure_includes_identity(self):
        info, ti = infer()
        assert (UNIV, UNIV) in type_of(ti, info, "*next").products

    def test_product_concatenates(self):
        info, ti = infer()
        product = type_of(ti, info, "File -> Dir")
        assert product.arity == 2
        assert product.products == frozenset({("File", "Dir")})

    def test_restrictions_refine_columns(self):
        info, ti = infer()
        dom = type_of(ti, info, "Dir <: next")
        assert dom.products == frozenset({("Dir", "Node")})
        ran = type_of(ti, info, "next :> File")
        assert ran.products == frozenset({("Node", "File")})
        assert type_of(ti, info, "File <: entries").empty

    def test_integers(self):
        info, ti = infer()
        assert type_of(ti, info, "#File") == INT_TYPE
        assert type_of(ti, info, "1").is_int
        assert type_of(ti, info, "1 + 2") == INT_TYPE

    def test_constants(self):
        info, ti = infer()
        assert type_of(ti, info, "none").empty
        assert type_of(ti, info, "univ") == wildcard(1)
        assert type_of(ti, info, "iden") == wildcard(2)

    def test_binder_environment(self):
        info, ti = infer()
        env = {"f": ti.sig_type("File")}
        assert ti.type_of(parse_expr("f.entries"), env).empty
        assert not ti.type_of(parse_expr("f.next"), env).empty


class TestWideningAndCaps:
    def test_product_cap_widens_to_wildcard(self):
        _, ti = infer()
        big = RelType(
            arity=2,
            products=frozenset((f"S{i}", f"S{i}") for i in range(100)),
        )
        assert ti._capped(big) == wildcard(2)

    def test_empty_and_wildcard_helpers(self):
        assert empty_type(2).empty
        assert not wildcard(2).empty
        assert wildcard(3).products == frozenset({(UNIV, UNIV, UNIV)})

    def test_describe(self):
        assert INT_TYPE.describe() == "Int"
        assert empty_type(1).describe() == "{} (empty)"
        assert "File" in RelType(1, frozenset({("File",)})).describe()

    def test_int_arity_marker(self):
        assert INT_TYPE.arity == INT_ARITY
        assert INT_TYPE.is_int and not INT_TYPE.empty


class TestMemoization:
    def test_inferencer_for_is_memoized_per_info(self):
        info, _ = infer()
        assert inferencer_for(info) is inferencer_for(info)

    def test_distinct_infos_get_distinct_inferencers(self):
        info_a, _ = infer()
        info_b, _ = infer()
        assert inferencer_for(info_a) is not inferencer_for(info_b)


class TestIllArityUnaryOps:
    """Transpose/closure of a non-binary operand raises a classified
    LintError instead of crashing the closure fixpoint (candidate ASTs
    reach the inferencer without passing the resolver)."""

    def test_transpose_of_unary_raises_lint_error(self):
        from repro.analysis import LintError

        _, ti = infer()
        with pytest.raises(LintError):
            ti.type_of(parse_expr("~Node"))

    def test_closure_of_mixed_arity_union_raises_lint_error(self):
        from repro.analysis import LintError

        _, ti = infer()
        # Dir.entries + Dir unions arity 1 into an arity-2 slot: the
        # products are mixed-length, which used to IndexError inside
        # the closure walk.
        with pytest.raises(LintError):
            ti.type_of(parse_expr("^(Dir.entries + Dir)"))

    def test_lint_error_carries_source_position(self):
        from repro.analysis import LintError

        _, ti = infer()
        with pytest.raises(LintError) as excinfo:
            ti.type_of(parse_expr("~Node"))
        assert excinfo.value.pos is not None

    def test_lint_error_is_classified(self):
        from repro.analysis import LintError
        from repro.runtime.errors import classify_exception

        assert classify_exception(LintError("x")) == "spec.lint"

    def test_candidate_lint_survives_ill_arity_closure(self):
        # The lint engine's AlloyError net catches the LintError and
        # degrades the expression to a wildcard: candidate vetting stays
        # total even on ASTs a mutation made ill-typed.  The resolver
        # rejects this source, so splice the expression in after the
        # fact — exactly how a mutated candidate reaches lint.
        from repro.alloy.nodes import MultTest
        from repro.alloy.parser import parse_module
        from repro.analysis import lint_module

        module = parse_module(
            "sig A {}\nsig B { f: set A }\npred p { some B.f }\nrun p for 3\n"
        )
        info = resolve_module(module)
        [test] = [n for n in module.walk() if isinstance(n, MultTest)]
        test.operand = parse_expr("^(B.f + B)")
        lint_module(module, info)
