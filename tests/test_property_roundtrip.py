"""Property-based tests: random ASTs round-trip through print/parse.

A hypothesis strategy builds random well-formed modules over a fixed
vocabulary; printing then re-parsing must be a fixpoint, and re-parsing must
preserve the subtree-kernel fingerprint (the SM metric of a spec against
itself is exactly 1).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.alloy.parser import parse_module
from repro.alloy.pretty import print_module
from repro.alloy.resolver import resolve_module
from repro.metrics.syntax_match import syntax_match_modules

SIGS = ["A", "B"]
FIELDS = ["f", "g"]  # f: A -> set A, g: B -> lone A
VARS = ["x", "y"]


@st.composite
def unary_expr(draw, depth=2, env=()):
    choices = list(SIGS) + list(env) + ["none", "univ"]
    if depth > 0:
        kind = draw(st.sampled_from(["atom", "binop", "join"]))
    else:
        kind = "atom"
    if kind == "atom":
        return draw(st.sampled_from(choices))
    if kind == "join":
        left = draw(unary_expr(depth=depth - 1, env=env))
        field = draw(st.sampled_from(FIELDS))
        return f"({left}).{field}"
    op = draw(st.sampled_from(["+", "-", "&"]))
    left = draw(unary_expr(depth=depth - 1, env=env))
    right = draw(unary_expr(depth=depth - 1, env=env))
    return f"({left} {op} {right})"


@st.composite
def formula(draw, depth=2, env=()):
    if depth > 0:
        kind = draw(
            st.sampled_from(["cmp", "mult", "not", "bin", "quant", "card"])
        )
    else:
        kind = draw(st.sampled_from(["cmp", "mult", "card"]))
    if kind == "cmp":
        op = draw(st.sampled_from(["in", "=", "!="]))
        left = draw(unary_expr(env=env))
        right = draw(unary_expr(env=env))
        return f"{left} {op} {right}"
    if kind == "mult":
        mult = draw(st.sampled_from(["no", "some", "lone", "one"]))
        operand = draw(unary_expr(env=env))
        return f"{mult} {operand}"
    if kind == "card":
        operand = draw(unary_expr(env=env))
        bound = draw(st.integers(min_value=0, max_value=4))
        op = draw(st.sampled_from(["<", "<=", "=", ">", ">="]))
        return f"#({operand}) {op} {bound}"
    if kind == "not":
        inner = draw(formula(depth=depth - 1, env=env))
        return f"not ({inner})"
    if kind == "bin":
        op = draw(st.sampled_from(["and", "or", "implies", "iff"]))
        left = draw(formula(depth=depth - 1, env=env))
        right = draw(formula(depth=depth - 1, env=env))
        return f"({left}) {op} ({right})"
    # quant
    var = next(v for v in VARS if v not in env)
    quant = draw(st.sampled_from(["all", "some", "no", "lone", "one"]))
    bound = draw(st.sampled_from(SIGS))
    body = draw(formula(depth=depth - 1, env=env + (var,)))
    return f"{quant} {var}: {bound} | {body}"


@st.composite
def module_source(draw):
    fact_bodies = draw(st.lists(formula(), min_size=1, max_size=3))
    pred_body = draw(formula())
    assert_body = draw(formula())
    lines = [
        "sig A { f: set A }",
        "sig B { g: lone A }",
        "fact Background {",
        *[f"  {body}" for body in fact_bodies],
        "}",
        f"pred scenario {{ {pred_body} }}",
        f"assert claim {{ {assert_body} }}",
        "run scenario for 2",
        "check claim for 2",
    ]
    return "\n".join(lines)


class TestRoundTrip:
    @given(module_source())
    @settings(max_examples=80, deadline=None)
    def test_print_parse_fixpoint(self, source):
        module = parse_module(source)
        printed = print_module(module)
        reparsed = parse_module(printed)
        assert print_module(reparsed) == printed

    @given(module_source())
    @settings(max_examples=60, deadline=None)
    def test_reparse_preserves_syntax_fingerprint(self, source):
        module = parse_module(source)
        reparsed = parse_module(print_module(module))
        assert syntax_match_modules(reparsed, module) == 1.0

    @given(module_source())
    @settings(max_examples=60, deadline=None)
    def test_random_modules_resolve(self, source):
        resolve_module(parse_module(source))


class TestRandomModuleAnalysis:
    @given(module_source())
    @settings(max_examples=25, deadline=None)
    def test_analyzer_never_crashes_and_agrees_with_evaluator(self, source):
        from repro.alloy.errors import AlloyError
        from repro.analyzer.analyzer import Analyzer
        from repro.analyzer.evaluator import Evaluator

        try:
            analyzer = Analyzer(source)
            command = analyzer.info.commands[0]
            result = analyzer.run_command(command, max_instances=3)
        except AlloyError:
            return  # budget or semantic limits are acceptable outcomes
        for instance in result.instances:
            evaluator = Evaluator(analyzer.info, instance)
            assert evaluator.facts_hold()
            assert evaluator.pred_holds("scenario")
