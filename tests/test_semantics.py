"""Implicit-constraint synthesis tests (field multiplicities)."""

import pytest

from repro.alloy.errors import EvaluationError
from repro.alloy.parser import parse_module
from repro.alloy.pretty import print_formula
from repro.alloy.resolver import resolve_module
from repro.analyzer.semantics import field_constraints


def constraints_for(source: str) -> list[str]:
    info = resolve_module(parse_module(source))
    return [print_formula(f) for f in field_constraints(info)]


class TestUnaryFields:
    def test_set_field_has_no_constraint(self):
        assert constraints_for("sig A { f: set A }") == []

    def test_one_field(self):
        texts = constraints_for("sig A { f: A }")
        assert len(texts) == 1
        assert "one" in texts[0] and "this_" in texts[0]

    def test_lone_field(self):
        texts = constraints_for("sig A { f: lone A }")
        assert "lone" in texts[0]

    def test_some_field(self):
        texts = constraints_for("sig A { f: some A }")
        assert "some" in texts[0]


class TestArrowFields:
    def test_plain_arrow_no_constraints(self):
        assert constraints_for("sig A {}\nsig B { f: A -> A }") == []

    def test_right_multiplicity(self):
        texts = constraints_for("sig A {}\nsig B { f: A -> lone A }")
        assert len(texts) == 1
        assert "lone" in texts[0]

    def test_left_multiplicity(self):
        texts = constraints_for("sig A {}\nsig B { f: A one -> A }")
        assert len(texts) == 1
        assert "one" in texts[0]

    def test_both_multiplicities(self):
        texts = constraints_for("sig A {}\nsig B { f: A some -> lone A }")
        assert len(texts) == 2

    def test_nested_arrow_all_set_allowed(self):
        assert constraints_for("sig A {}\nsig B { f: A -> A -> A }") == []

    def test_nested_arrow_with_mult_rejected(self):
        with pytest.raises(EvaluationError):
            constraints_for("sig A {}\nsig B { f: A -> A -> lone A }")


class TestConstraintsAreWellFormed:
    def test_constraints_resolve_against_module(self):
        from repro.alloy.resolver import check_formula

        source = "sig A {}\none sig M { r: A -> lone A, s: some A }"
        info = resolve_module(parse_module(source))
        for formula in field_constraints(info):
            check_formula(info, formula, {})

    def test_corpus_constraints_resolve(self):
        from repro.alloy.resolver import check_formula
        from repro.benchmarks.models import all_models

        for model in all_models():
            info = resolve_module(parse_module(model.source))
            for formula in field_constraints(info):
                check_formula(info, formula, {})
