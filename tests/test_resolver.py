"""Resolver tests: symbol tables, hierarchy, and arity checking."""

import pytest

from repro.alloy.errors import AlloyTypeError, ResolutionError
from repro.alloy.parser import parse_expr, parse_formula, parse_module
from repro.alloy.resolver import INT_ARITY, arity_of, check_formula, resolve_module


def resolve(source: str):
    return resolve_module(parse_module(source))


class TestSymbolTables:
    def test_sig_hierarchy(self):
        info = resolve(
            "abstract sig A {}\nsig B extends A {}\nsig C extends A {}"
        )
        assert info.sigs["B"].parent == "A"
        assert sorted(info.sigs["A"].children) == ["B", "C"]
        assert info.root_of("B") == "A"
        assert set(info.descendants("A")) == {"A", "B", "C"}

    def test_ancestors(self):
        info = resolve("sig A {}\nsig B extends A {}\nsig C extends B {}")
        assert info.ancestors("C") == ["C", "B", "A"]

    def test_field_columns(self):
        info = resolve("sig A {}\nsig B { f: A -> lone A }")
        assert info.fields["f"].columns == ("B", "A", "A")
        assert info.fields["f"].arity == 3

    def test_top_level_sigs(self):
        info = resolve("sig A {}\nsig B extends A {}\nsig C {}")
        assert [s.name for s in info.top_level_sigs()] == ["A", "C"]


class TestResolutionErrors:
    def test_duplicate_sig(self):
        with pytest.raises(ResolutionError):
            resolve("sig A {}\nsig A {}")

    def test_unknown_parent(self):
        with pytest.raises(ResolutionError):
            resolve("sig B extends Missing {}")

    def test_cyclic_hierarchy(self):
        with pytest.raises(ResolutionError):
            resolve("sig A extends B {}\nsig B extends A {}")

    def test_duplicate_field_name(self):
        with pytest.raises(ResolutionError):
            resolve("sig A { f: A }\nsig B { f: B }")

    def test_field_shadowing_sig(self):
        with pytest.raises(ResolutionError):
            resolve("sig A {}\nsig B { A: set A }")

    def test_unknown_name_in_fact(self):
        with pytest.raises(ResolutionError):
            resolve("sig A {}\nfact { some missing }")

    def test_run_target_must_be_pred(self):
        with pytest.raises(ResolutionError):
            resolve("sig A {}\nrun missing for 3")

    def test_check_target_must_be_assert(self):
        with pytest.raises(ResolutionError):
            resolve("sig A {}\ncheck missing for 3")

    def test_run_target_with_params_rejected(self):
        with pytest.raises(ResolutionError):
            resolve("sig A {}\npred p[x: A] { some x }\nrun p for 3")

    def test_scope_on_unknown_sig(self):
        with pytest.raises(ResolutionError):
            resolve("sig A {}\npred p { some A }\nrun p for 3 but 2 Missing")


class TestArity:
    @pytest.fixture
    def info(self):
        return resolve(
            "sig A { f: set A, r: A -> set A }\npred helper { some A }"
        )

    def test_sig_arity(self, info):
        assert arity_of(info, parse_expr("A"), {}) == 1

    def test_field_arities(self, info):
        assert arity_of(info, parse_expr("f"), {}) == 2
        assert arity_of(info, parse_expr("r"), {}) == 3

    def test_join_arity(self, info):
        assert arity_of(info, parse_expr("A.f"), {}) == 1
        assert arity_of(info, parse_expr("f.f"), {}) == 2

    def test_product_arity(self, info):
        assert arity_of(info, parse_expr("A -> A"), {}) == 2

    def test_cardinality_is_int(self, info):
        assert arity_of(info, parse_expr("#A"), {}) == INT_ARITY

    def test_int_addition(self, info):
        assert arity_of(info, parse_expr("#A + 2"), {}) == INT_ARITY

    def test_env_variables(self, info):
        assert arity_of(info, parse_expr("x.f"), {"x": 1}) == 1

    def test_transpose_requires_binary(self, info):
        with pytest.raises(AlloyTypeError):
            arity_of(info, parse_expr("~A"), {})

    def test_union_arity_mismatch(self, info):
        with pytest.raises(AlloyTypeError):
            arity_of(info, parse_expr("A + f"), {})

    def test_join_unary_unary_rejected(self, info):
        with pytest.raises(AlloyTypeError):
            arity_of(info, parse_expr("A.A"), {})

    def test_mixed_int_relation_rejected(self, info):
        with pytest.raises(AlloyTypeError):
            arity_of(info, parse_expr("#A + A"), {})

    def test_comprehension_arity(self, info):
        assert arity_of(info, parse_expr("{ x, y: A | x in y.f }"), {}) == 2


class TestFormulaChecking:
    @pytest.fixture
    def info(self):
        return resolve("sig A { f: set A }\npred p[x: A] { some x.f }")

    def test_in_requires_same_arity(self, info):
        with pytest.raises(AlloyTypeError):
            check_formula(info, parse_formula("A in f"), {})

    def test_int_compare_requires_ints(self, info):
        with pytest.raises(AlloyTypeError):
            check_formula(info, parse_formula("A < 3"), {})

    def test_pred_call_arity_checked(self, info):
        with pytest.raises(AlloyTypeError):
            check_formula(info, parse_formula("p[A, A]"), {})

    def test_unknown_pred(self, info):
        with pytest.raises(ResolutionError):
            check_formula(info, parse_formula("q[A]"), {})

    def test_valid_quantified(self, info):
        check_formula(info, parse_formula("all x: A | some x.f"), {})

    def test_eq_int_vs_relation_rejected(self, info):
        with pytest.raises(AlloyTypeError):
            check_formula(info, parse_formula("#A = A"), {})

    def test_fun_body_arity_must_match(self):
        with pytest.raises(AlloyTypeError):
            resolve("sig A { f: set A }\nfun g: set A { f }")


class TestArityEdgeCases:
    """Edge cases of the arity pass the static-analysis layer builds upon."""

    @pytest.fixture
    def info(self):
        return resolve("sig A { f: set A }")

    def test_let_bound_to_integer_expression(self, info):
        # The binder inherits INT_ARITY and composes with int comparisons...
        check_formula(info, parse_formula("let n = #A | n > 0"), {})
        # ...and is rejected where a relation is required.
        with pytest.raises(AlloyTypeError):
            check_formula(info, parse_formula("let n = #A | some n.f"), {})

    def test_let_bound_integer_cannot_take_cardinality(self, info):
        with pytest.raises(AlloyTypeError, match="cardinality of an integer"):
            check_formula(info, parse_formula("let n = #A | #n > 0"), {})

    def test_comprehension_multi_column_decl_rejected(self, info):
        with pytest.raises(
            AlloyTypeError, match="comprehension binders must range over unary"
        ):
            arity_of(info, parse_expr("{ p: A -> A | some p }"), {})

    def test_comprehension_multi_name_decls_sum_arity(self, info):
        assert arity_of(info, parse_expr("{ x: A, y: A | x in y.f }"), {}) == 2
        assert (
            arity_of(info, parse_expr("{ x, y: A, z: A | x in y.f }"), {}) == 3
        )

    def test_card_of_integer_reports_card_position(self, info):
        expr = parse_expr("#(#A)")
        with pytest.raises(AlloyTypeError) as exc:
            arity_of(info, expr, {})
        assert exc.value.pos == expr.pos

    def test_card_of_relation_is_int(self, info):
        assert arity_of(info, parse_expr("#f"), {}) == INT_ARITY


class TestSigLattice:
    """The overlap/meet queries exposed for the bounding-type inference."""

    @pytest.fixture
    def info(self):
        return resolve(
            "abstract sig A {}\nsig B extends A {}\nsig C extends A {}\nsig D {}"
        )

    def test_overlapping(self, info):
        assert info.overlapping("A", "B")
        assert info.overlapping("B", "A")
        assert info.overlapping("B", "B")
        assert not info.overlapping("B", "C")
        assert not info.overlapping("A", "D")

    def test_meet_sigs(self, info):
        assert info.meet_sigs("A", "B") == "B"
        assert info.meet_sigs("B", "A") == "B"
        assert info.meet_sigs("B", "B") == "B"
        assert info.meet_sigs("B", "C") is None
        assert info.meet_sigs("A", "D") is None
