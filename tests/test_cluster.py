"""Cluster-tier tests: fenced leases, the job ledger, durable quotas,
client failover, and two in-process replicas handing work over.

The subprocess ``kill -9`` failover path lives in ``repro chaos
--cluster``; these tests pin the component contracts with fake clocks
(lease expiry, quota refill) and deterministic thread races so every
assertion reproduces.
"""

import tempfile
import threading
import time
from pathlib import Path

import pytest

from repro.experiments.executor import ShardTask, execute_shard
from repro.service.admission import QuotaStore, SharedTokenBucket
from repro.service.client import ServiceClient
from repro.service.daemon import ReproService, ServiceConfig, ServiceHandle
from repro.service.ledger import (
    ClusterFold,
    ClusterStore,
    DuplicateCommitError,
    JobLedger,
    StaleWriterError,
)
from repro.service.lease import (
    HeartbeatLoop,
    LeaseError,
    LeaseLostError,
    LeaseManager,
)
from repro.service.protocol import JobSpec, ServiceError


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    return tmp_path / "cache"


@pytest.fixture
def socket_dir():
    # Unix socket paths are length-limited (~108 bytes); a short /tmp dir
    # keeps the tests independent of how deep pytest's tmp_path nests.
    with tempfile.TemporaryDirectory(prefix="repro-clu-") as path:
        yield path


def _wait(predicate, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return False


class _Clock:
    def __init__(self, start=100.0):
        self.now = start

    def __call__(self):
        return self.now


RECIPE = {"b": "arepair", "s": 0}


class TestLeaseManager:
    def test_expiry_is_boundary_inclusive(self, tmp_path):
        clock = _Clock()
        manager = LeaseManager(tmp_path, "r1", ttl=5.0, clock=clock)
        lease = manager.acquire("job-1")
        assert not manager.is_expired(lease, lease.expires_at - 1e-6)
        assert manager.is_expired(lease, lease.expires_at)

    def test_expiry_exactly_at_heartbeat_boundary(self, tmp_path):
        # A replica that renews at exactly expires_at has already lost:
        # an adopter observing the same instant wins first.
        clock = _Clock()
        m1 = LeaseManager(tmp_path, "r1", ttl=3.0, clock=clock)
        m2 = LeaseManager(tmp_path, "r2", ttl=3.0, clock=clock)
        lease = m1.acquire("job-1")
        clock.now = lease.expires_at
        adopted = m2.adopt("job-1")
        assert adopted.token > lease.token
        with pytest.raises(LeaseLostError):
            m1.renew(lease)
        assert m1.lost == 1

    def test_two_replicas_racing_to_adopt_one_wins(self, tmp_path):
        clock = _Clock()
        owner = LeaseManager(tmp_path, "r0", ttl=1.0, clock=clock)
        lease = owner.acquire("job-1")
        clock.now = lease.expires_at + 1.0
        managers = [
            LeaseManager(tmp_path, f"r{i}", ttl=30.0, clock=clock)
            for i in (1, 2)
        ]
        outcomes: list = [None, None]
        barrier = threading.Barrier(2)

        def race(index):
            barrier.wait()
            try:
                outcomes[index] = managers[index].adopt("job-1")
            except LeaseError as error:
                outcomes[index] = error

        threads = [
            threading.Thread(target=race, args=(i,)) for i in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        winners = [o for o in outcomes if not isinstance(o, Exception)]
        losers = [o for o in outcomes if isinstance(o, LeaseError)]
        assert len(winners) == 1 and len(losers) == 1
        assert winners[0].token > lease.token

    def test_renewal_extends_and_keeps_the_token(self, tmp_path):
        clock = _Clock()
        manager = LeaseManager(tmp_path, "r1", ttl=5.0, clock=clock)
        lease = manager.acquire("job-1")
        clock.now += 4.0
        renewed = manager.renew(lease)
        assert renewed.token == lease.token
        assert renewed.expires_at == clock.now + 5.0

    def test_corrupt_fence_counter_never_reuses_a_token(self, tmp_path):
        clock = _Clock()
        manager = LeaseManager(tmp_path, "r1", ttl=5.0, clock=clock)
        high = max(manager.acquire(f"job-{i}").token for i in range(3))
        manager._fence_path.write_text("scrambled")
        fresh = manager.acquire("job-9")
        assert fresh.token > high

    def test_heartbeat_jitter_is_deterministic_and_bounded(self, tmp_path):
        manager = LeaseManager(tmp_path, "r1", ttl=6.0, jitter_seed=7)
        twin = LeaseManager(tmp_path, "r1", ttl=6.0, jitter_seed=7)
        other = LeaseManager(tmp_path, "r2", ttl=6.0, jitter_seed=7)
        delays = [manager.heartbeat_delay(beat) for beat in range(8)]
        assert delays == [twin.heartbeat_delay(beat) for beat in range(8)]
        assert delays != [other.heartbeat_delay(beat) for beat in range(8)]
        base = manager.heartbeat
        assert all(base * 0.5 <= d < base for d in delays)

    def test_heartbeat_loop_reports_a_lost_lease(self, tmp_path):
        manager = LeaseManager(tmp_path, "r1", ttl=0.4, heartbeat=0.05)
        rival = LeaseManager(tmp_path, "r2", ttl=30.0)
        lease = manager.acquire("job-1")
        lost: list[str] = []
        loop = HeartbeatLoop(manager, on_lost=lost.append)
        loop.start()
        try:
            time.sleep(0.5)  # let the lease lapse without pausing renewals
        finally:
            loop.stop()
        # Renewals kept it alive the whole time; now fence it out.
        current = manager.current("job-1")
        assert current is not None and current.token == lease.token
        time.sleep(0.45)
        rival.adopt("job-1")
        loop2 = HeartbeatLoop(manager, on_lost=lost.append)
        loop2.start()
        try:
            assert _wait(lambda: lost == ["job-1"], timeout=5.0)
        finally:
            loop2.stop()


class TestJobLedger:
    def test_torn_tail_is_one_skippable_line(self, tmp_path):
        ledger = JobLedger(tmp_path / "l.jsonl", tmp_path / ".lock")
        ledger.append({"event": "submitted", "job_id": "a", "ts": 1})
        with ledger.path.open("ab") as handle:
            handle.write(b'{"event":"done","job_id":"a","outco')
        reader = JobLedger(ledger.path, ledger.lock_path)
        records = reader.replay()
        assert [r["event"] for r in records] == ["submitted"]
        assert reader.corrupt_lines == 1
        # The next append's leading newline seals the junk off.
        ledger.append({"event": "running", "job_id": "a", "ts": 2})
        healed = JobLedger(ledger.path, ledger.lock_path)
        assert [r["event"] for r in healed.replay()] == [
            "submitted",
            "running",
        ]
        assert healed.corrupt_lines == 1

    def test_poll_consumes_only_complete_lines(self, tmp_path):
        ledger = JobLedger(tmp_path / "l.jsonl", tmp_path / ".lock")
        ledger.append({"event": "submitted", "job_id": "a", "ts": 1})
        reader = JobLedger(ledger.path, ledger.lock_path)
        assert [r["event"] for r in reader.poll()] == ["submitted"]
        assert reader.poll() == []
        ledger.append({"event": "done", "job_id": "a", "ts": 2})
        assert [r["event"] for r in reader.poll()] == ["done"]

    def test_fold_first_terminal_record_wins(self, tmp_path):
        fold = ClusterFold()
        fold.apply({"event": "submitted", "job_id": "a", "spec": {}, "ts": 1})
        fold.apply({"event": "leased", "job_id": "a", "token": 1, "ts": 1})
        fold.apply(
            {
                "event": "done",
                "job_id": "a",
                "outcomes": {"ATR": {"status": "correct"}},
                "executed": True,
                "ts": 2,
            }
        )
        fold.apply({"event": "failed", "job_id": "a", "error": "late", "ts": 3})
        view = fold.jobs["a"]
        assert view.state == "done"
        assert view.error is None
        assert fold.double_committed() == ["a"]


class TestClusterStore:
    def test_stale_writer_is_fenced_and_store_untouched(self, tmp_path):
        clock = _Clock()
        cs1 = ClusterStore(tmp_path, "r1", RECIPE, ttl=2.0, clock=clock)
        cs2 = ClusterStore(tmp_path, "r2", RECIPE, ttl=2.0, clock=clock)
        stale = cs1.register("job-1", {"spec_id": "S1"})
        clock.now += 2.0
        ((job_id, payload, fresh),) = cs2.adopt_orphans()
        assert (job_id, payload) == ("job-1", {"spec_id": "S1"})
        cell = {"rep": 1, "tm": 0.1, "sm": 0.2, "status": "correct"}
        with pytest.raises(StaleWriterError):
            cs1.commit("job-1", "S1", {"ATR": cell}, stale.token)
        assert cs1.lookup("S1") == {}
        assert cs1.fencing_rejections == 1
        cs2.commit("job-1", "S1", {"ATR": cell}, fresh.token)
        assert cs2.lookup("S1") == {"ATR": cell}
        fold = ClusterFold()
        for record in cs2.ledger.replay():
            fold.apply(record)
        assert fold.fenced_commits == 1
        assert fold.double_committed() == []
        assert fold.tokens_monotonic()

    def test_commit_after_terminal_is_a_duplicate(self, tmp_path):
        clock = _Clock()
        store = ClusterStore(tmp_path, "r1", RECIPE, ttl=5.0, clock=clock)
        lease = store.register("job-1", {"spec_id": "S1"})
        store.commit("job-1", "S1", {}, lease.token)
        with pytest.raises(DuplicateCommitError):
            store.commit_failed("job-1", lease.token + 1, "late failure")
        assert store.duplicate_commits == 1

    def test_drained_jobs_are_adoptable_immediately(self, tmp_path):
        clock = _Clock()
        cs1 = ClusterStore(tmp_path, "r1", RECIPE, ttl=60.0, clock=clock)
        cs2 = ClusterStore(tmp_path, "r2", RECIPE, ttl=60.0, clock=clock)
        cs1.register("job-1", {"spec_id": "S1"})
        cs1.drain(["job-1"])
        adopted = cs2.adopt_orphans()
        assert [job_id for job_id, _, _ in adopted] == ["job-1"]

    def test_torn_submission_gets_a_grace_window(self, tmp_path):
        # A journaled job with no lease yet (the submitter died between
        # the two appends) is only adoptable after one TTL.
        clock = _Clock()
        store = ClusterStore(tmp_path, "r2", RECIPE, ttl=10.0, clock=clock)
        store.ledger.append(
            {
                "event": "submitted",
                "job_id": "job-torn",
                "spec": {"spec_id": "S1"},
                "replica": "r1",
                "ts": clock.now,
            }
        )
        assert store.adopt_orphans() == []
        clock.now += 10.0
        assert [j for j, _, _ in store.adopt_orphans()] == ["job-torn"]

    def test_corrupt_store_mirror_is_a_miss(self, tmp_path):
        clock = _Clock()
        store = ClusterStore(tmp_path, "r1", RECIPE, ttl=5.0, clock=clock)
        lease = store.register("job-1", {"spec_id": "S1"})
        cell = {"rep": 1, "tm": 0.1, "sm": 0.2, "status": "correct"}
        store.commit("job-1", "S1", {"ATR": cell}, lease.token)
        store.store_path.write_text("{scrambled")
        assert store.lookup("S1") == {}
        assert store.missing("S1", ("ATR",)) == ("ATR",)


class TestDurableQuotas:
    def test_balance_survives_a_controller_restart(self, tmp_path):
        clock = _Clock()
        first = QuotaStore(tmp_path, clock=clock)
        assert first.debit("t1", 3.0, capacity=4.0, refill_rate=0.0) == 0.0
        reborn = QuotaStore(tmp_path, clock=clock)
        assert reborn.available("t1", capacity=4.0) == 1.0
        assert reborn.debit("t1", 2.0, capacity=4.0, refill_rate=0.0) > 0.0

    def test_refill_uses_the_shared_wall_clock(self, tmp_path):
        clock = _Clock()
        store = QuotaStore(tmp_path, clock=clock)
        assert store.debit("t1", 4.0, capacity=4.0, refill_rate=2.0) == 0.0
        wait = store.debit("t1", 4.0, capacity=4.0, refill_rate=2.0)
        assert wait == pytest.approx(2.0)
        clock.now += 2.0
        assert store.debit("t1", 4.0, capacity=4.0, refill_rate=2.0) == 0.0

    def test_corruption_resets_to_full_buckets(self, tmp_path):
        clock = _Clock()
        store = QuotaStore(tmp_path, clock=clock)
        store.debit("t1", 4.0, capacity=4.0, refill_rate=0.0)
        store.path.write_text("junk")
        assert store.debit("t1", 4.0, capacity=4.0, refill_rate=0.0) == 0.0
        assert store.resets == 1

    def test_shared_bucket_has_the_token_bucket_contract(self, tmp_path):
        clock = _Clock()
        bucket = SharedTokenBucket(
            QuotaStore(tmp_path, clock=clock), "t1", 2.0, 0.0
        )
        assert bucket.acquire(2.0) == 0.0
        assert bucket.acquire(1.0) > 0.0
        assert bucket.available == 0.0


def _cluster_config(socket_dir, cluster_dir, replica, **overrides):
    defaults = dict(
        socket=str(Path(socket_dir) / f"{replica}.sock"),
        benchmark="arepair",
        scale=0.1,
        seed=0,
        workers=1,
        job_timeout=None,
        cluster_dir=str(cluster_dir),
        replica_id=replica,
        lease_ttl=5.0,
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


class TestClusterDaemon:
    def test_drained_replicas_jobs_are_adopted_and_finished(
        self, socket_dir, tmp_path
    ):
        cluster_dir = tmp_path / "cluster"
        handle_a = ServiceHandle.start(
            _cluster_config(socket_dir, cluster_dir, "rA")
        )
        handle_b = ServiceHandle.start(
            _cluster_config(socket_dir, cluster_dir, "rB")
        )
        service_b = handle_b.service
        try:
            spec_id = sorted(handle_a.service.jobs_corpus_ids())[0]
            job = JobSpec(
                benchmark="arepair", spec_id=spec_id, techniques=("ATR",)
            )
            handle_a.service.pool.pause()
            outcome = ServiceClient(handle_a.socket).submit(job, watch=False)
            assert outcome.accepted
            job_id = outcome.job_id
            assert job_id.startswith("job-rA-")
            handle_a.drain(grace=0.0)

            assert _wait(
                lambda: job_id in service_b.jobs
                and service_b.jobs[job_id].terminal
            )
            record = service_b.jobs[job_id]
            assert record.adopted is True
            assert record.state.value == "done"
            assert service_b.adopted_jobs == 1

            direct = execute_shard(
                ShardTask(
                    spec=service_b._specs[spec_id],
                    techniques=("ATR",),
                    seed=0,
                )
            )
            cell = record.outcomes["ATR"]
            direct_cell = direct.outcomes["ATR"]
            assert (cell["rep"], cell["status"]) == (
                direct_cell.rep,
                direct_cell.status,
            )

            status = ServiceClient(handle_b.socket).status(job_id)
            assert status["state"] == "done"
            assert status["adopted"] is True

            stats = ServiceClient(handle_b.socket).stats()
            assert stats["cluster"]["adopted_jobs"] == 1
            assert stats["cluster"]["replica"] == "rB"

            fold = ClusterFold()
            for rec in service_b.cluster.ledger.replay():
                fold.apply(rec)
            assert fold.double_committed() == []
            assert fold.tokens_monotonic()
            assert fold.jobs[job_id].adoptions == 1
        finally:
            handle_b.drain(grace=5.0)

    def test_second_replica_serves_committed_cells_from_the_mirror(
        self, socket_dir, tmp_path
    ):
        cluster_dir = tmp_path / "cluster"
        handle_a = ServiceHandle.start(
            _cluster_config(socket_dir, cluster_dir, "rA")
        )
        handle_b = ServiceHandle.start(
            _cluster_config(socket_dir, cluster_dir, "rB")
        )
        try:
            spec_id = sorted(handle_a.service.jobs_corpus_ids())[0]
            job = JobSpec(
                benchmark="arepair", spec_id=spec_id, techniques=("ATR",)
            )
            first = ServiceClient(handle_a.socket).submit_retrying(job)
            assert first.state == "done" and not first.from_store
            second = ServiceClient(handle_b.socket).submit_retrying(job)
            assert second.state == "done"
            assert second.from_store is True
            assert second.outcomes == first.outcomes
            assert handle_b.service.pool.executed == 0
        finally:
            handle_b.drain(grace=5.0)
            handle_a.drain(grace=5.0)

    def test_ledger_answers_status_for_foreign_jobs(
        self, socket_dir, tmp_path
    ):
        cluster_dir = tmp_path / "cluster"
        handle_a = ServiceHandle.start(
            _cluster_config(socket_dir, cluster_dir, "rA")
        )
        handle_b = ServiceHandle.start(
            _cluster_config(socket_dir, cluster_dir, "rB")
        )
        try:
            spec_id = sorted(handle_a.service.jobs_corpus_ids())[0]
            outcome = ServiceClient(handle_a.socket).submit_retrying(
                JobSpec(
                    benchmark="arepair", spec_id=spec_id, techniques=("ATR",)
                )
            )
            assert outcome.state == "done"
            # rB never saw the job; it answers from the shared ledger.
            status = ServiceClient(handle_b.socket).status(outcome.job_id)
            assert status["state"] == "done"
            assert status["from_ledger"] is True
            assert set(status["outcomes"]) == {"ATR"}
        finally:
            handle_b.drain(grace=5.0)
            handle_a.drain(grace=5.0)


class TestClientFailover:
    def test_client_rotates_to_a_live_replica(self, socket_dir):
        config = ServiceConfig(
            socket=str(Path(socket_dir) / "svc.sock"),
            benchmark="arepair",
            scale=0.1,
            seed=0,
            workers=1,
            job_timeout=None,
        )
        handle = ServiceHandle.start(config)
        try:
            dead = str(Path(socket_dir) / "dead.sock")
            client = ServiceClient([dead, handle.socket])
            assert client.ping()["type"] == "pong"
            assert client.failovers == 1
            assert client.socket_path == handle.socket
        finally:
            handle.drain(grace=5.0)

    def test_reconnect_backoff_is_seeded_and_bounded(self, socket_dir):
        sleeps: list[float] = []
        client = ServiceClient(
            str(Path(socket_dir) / "nobody.sock"),
            retry_seed=3,
            reconnect_attempts=6,
            sleep=sleeps.append,
        )
        with pytest.raises(ServiceError) as err:
            client.ping()
        assert "6 attempts" in str(err.value)
        assert sleeps == [client._backoff(i) for i in range(6)]
        assert all(0.0 < s <= 1.0 for s in sleeps)
        twin = ServiceClient("x.sock", retry_seed=3)
        assert [twin._backoff(i) for i in range(6)] == sleeps

    def test_watch_stream_death_recovers_via_status_polls(
        self, socket_dir, tmp_path
    ):
        # Submit against rA with a watcher, drain rA mid-watch (the
        # stream dies), and let the client recover the terminal outcome
        # by polling status across the ring — served by rB.
        cluster_dir = tmp_path / "cluster"
        handle_a = ServiceHandle.start(
            _cluster_config(socket_dir, cluster_dir, "rA")
        )
        handle_b = ServiceHandle.start(
            _cluster_config(socket_dir, cluster_dir, "rB")
        )
        try:
            spec_id = sorted(handle_a.service.jobs_corpus_ids())[0]
            client = ServiceClient(
                [handle_a.socket, handle_b.socket], reconnect_attempts=240
            )
            handle_a.service.pool.pause()
            result: dict = {}

            def submit():
                result["outcome"] = client.submit(
                    JobSpec(
                        benchmark="arepair",
                        spec_id=spec_id,
                        techniques=("ATR",),
                    ),
                    watch=True,
                )

            thread = threading.Thread(target=submit, daemon=True)
            thread.start()
            assert _wait(lambda: len(handle_a.service.jobs) == 1)
            handle_a.drain(grace=0.0)
            thread.join(timeout=120.0)
            assert not thread.is_alive()
            outcome = result["outcome"]
            assert outcome.state == "done"
            assert outcome.reconnected is True
            assert client.reconnects == 1
        finally:
            handle_b.drain(grace=5.0)


class TestCorruptDrainState:
    def test_corrupt_checkpoint_is_recorded_not_fatal(self, socket_dir):
        config = ServiceConfig(
            socket=str(Path(socket_dir) / "svc.sock"),
            benchmark="arepair",
            scale=0.1,
            seed=0,
            workers=1,
            job_timeout=None,
        )
        config.resolved_state_path().write_text('{"schema": "junk"}')
        service = ReproService(config)
        try:
            service._resume_from_checkpoint()
            assert service.resumed_jobs == 0
            assert service.state_corruptions == 1
            (failure,) = service.state_failures
            assert failure["where"] == "service.resume"
            assert failure["code"] == "cache.corrupt"
            assert not config.resolved_state_path().exists()
            stats = service.stats()
            assert stats["state_corruptions"] == 1
            assert stats["state_failures"][0]["where"] == "service.resume"
        finally:
            service.pool.stop()
