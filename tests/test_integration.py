"""End-to-end integration: fault injection -> all 12 techniques -> metrics.

A miniature version of the full study pipeline over one injected fault per
benchmark family, asserting the cross-cutting invariants every run must
satisfy.
"""

import pytest

from repro.benchmarks.faults import FaultInjector, InjectionConfig
from repro.benchmarks.models import get_model
from repro.experiments.runner import ALL_TECHNIQUES, run_spec
from repro.metrics.rep import rep


@pytest.fixture(scope="module")
def injected_spec():
    model = get_model("classroom_a")
    injector = FaultInjector(
        model_name=model.name,
        benchmark="alloy4fun",
        domain="classroom",
        truth_source=model.source,
        config=InjectionConfig(depth_weights={1: 1.0}, vague_hint_rate=0.0),
        seed=123,
    )
    return injector.generate(1)[0]


@pytest.fixture(scope="module")
def all_outcomes(injected_spec):
    return {
        technique: run_spec(injected_spec, technique, seed=0)
        for technique in ALL_TECHNIQUES
    }


class TestPipeline:
    def test_injected_fault_is_real(self, injected_spec):
        assert rep(injected_spec.faulty_source, injected_spec.truth_source) == 0

    def test_all_techniques_produce_outcomes(self, all_outcomes):
        assert set(all_outcomes) == set(ALL_TECHNIQUES)
        for technique, outcome in all_outcomes.items():
            assert outcome.rep in (0, 1), technique
            assert 0.0 <= outcome.tm <= 1.0
            assert 0.0 <= outcome.sm <= 1.0
            assert outcome.status in ("fixed", "not_fixed", "error")

    def test_someone_repairs_a_simple_fault(self, all_outcomes):
        assert any(outcome.rep == 1 for outcome in all_outcomes.values())

    def test_repaired_candidates_have_high_similarity(self, all_outcomes):
        for technique, outcome in all_outcomes.items():
            if outcome.rep == 1:
                assert outcome.sm > 0.5, technique

    def test_outcomes_are_reproducible(self, injected_spec, all_outcomes):
        again = run_spec(injected_spec, "BeAFix", seed=0)
        assert again.rep == all_outcomes["BeAFix"].rep
        assert again.tm == all_outcomes["BeAFix"].tm
