"""Translator tests: the SAT path must agree with the evaluator.

The central property: every instance the analyzer produces satisfies the
facts and target per the (independent) evaluator, and enumeration counts
match brute-force expectations on small models.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.alloy.parser import parse_module
from repro.analyzer.analyzer import Analyzer
from repro.analyzer.evaluator import Evaluator


def enumerate_all(source: str, command_index: int = 0, limit: int = 200):
    analyzer = Analyzer(source)
    command = analyzer.info.commands[command_index]
    return analyzer, list(analyzer.run_command(command, max_instances=limit).instances)


class TestSolverEvaluatorAgreement:
    @pytest.mark.parametrize(
        "body",
        [
            "some Node",
            "all n: Node | lone n.next",
            "some n: Node | n.next = n",
            "no n: Node | n in n.^next",
            "#Node = 2",
            "#Node > #Edge",
            "some disj a, b: Node | a.next = b",
            "all n: Node | some n.next implies n not in n.next",
            "some { n: Node | no n.next }",
            "Node.next in Node",
            "next.next in next implies some next",
            "lone n: Node | some n.next",
        ],
    )
    def test_every_instance_satisfies_target(self, body):
        source = (
            "sig Node { next: set Node }\nsig Edge {}\n"
            f"pred target {{ {body} }}\nrun target for 2\n"
        )
        analyzer, instances = enumerate_all(source, limit=64)
        assert instances, f"expected at least one instance for {body!r}"
        for instance in instances:
            evaluator = Evaluator(analyzer.info, instance)
            assert evaluator.pred_holds("target"), instance.describe()

    def test_facts_hold_in_every_instance(self):
        source = (
            "sig A { r: set A }\n"
            "fact F { all a: A | a not in a.r  some A }\n"
            "pred t { some r }\nrun t for 3\n"
        )
        analyzer, instances = enumerate_all(source, limit=64)
        for instance in instances:
            assert Evaluator(analyzer.info, instance).facts_hold()

    def test_check_counterexample_violates_assertion(self):
        source = (
            "sig A { r: set A }\n"
            "assert X { all a: A | a not in a.r }\n"
            "check X for 2\n"
        )
        analyzer, instances = enumerate_all(source, limit=5)
        assert instances
        for instance in instances:
            assert not Evaluator(analyzer.info, instance).assertion_holds("X")


class TestEnumerationCounts:
    def test_subset_count(self):
        # One sig of exactly 2 atoms, one unary predicate set: 4 subsets of S.
        source = (
            "sig S {}\nsig P {}\n"
            "pred t { P in P }\n"
            "run t for exactly 2 S, 0 P\n"
        )
        analyzer, instances = enumerate_all(source, limit=100)
        assert len(instances) == 1  # P empty, S fixed: unique instance

    def test_function_count(self):
        # f: S -> one S with exactly 2 S atoms: 4 total functions.
        source = (
            "sig S { f: S }\npred t { some S }\nrun t for exactly 2 S\n"
        )
        analyzer, instances = enumerate_all(source, limit=100)
        assert len(instances) == 4

    def test_lone_field_count(self):
        # f: lone S over exactly 2 atoms: each atom maps to 0..2 -> 9 options.
        source = (
            "sig S { f: lone S }\npred t { some S }\nrun t for exactly 2 S\n"
        )
        analyzer, instances = enumerate_all(source, limit=100)
        assert len(instances) == 9

    def test_symmetry_breaking_reduces_presence_patterns(self):
        # Without exact scope, sig sizes 0..2; presence is downward closed,
        # so sizes {0,1,2} — three patterns, not four.
        source = "sig S {}\npred t { no none }\nrun t for 2\n"
        analyzer, instances = enumerate_all(source, limit=100)
        sizes = sorted(len(i.relation("S")) for i in instances)
        assert sizes == [0, 1, 2]

    def test_unsat_run(self):
        source = "sig S {}\npred t { some S and no S }\nrun t for 3\n"
        analyzer, instances = enumerate_all(source, limit=5)
        assert instances == []


class TestHierarchyConstraints:
    def test_abstract_sig_fully_partitioned(self):
        source = (
            "abstract sig P {}\nsig A extends P {}\nsig B extends P {}\n"
            "pred t { some P }\nrun t for 3\n"
        )
        analyzer, instances = enumerate_all(source, limit=64)
        for instance in instances:
            parent = instance.relation("P")
            assert parent == instance.relation("A") | instance.relation("B")
            assert not (instance.relation("A") & instance.relation("B"))

    def test_one_sig_has_exactly_one_atom(self):
        source = "one sig S {}\nsig T {}\npred t { some T }\nrun t for 3\n"
        analyzer, instances = enumerate_all(source, limit=64)
        for instance in instances:
            assert len(instance.relation("S")) == 1

    def test_field_tuples_respect_column_sigs(self):
        source = (
            "abstract sig P {}\nsig A extends P { f: set B }\n"
            "sig B extends P {}\npred t { some f }\nrun t for 3\n"
        )
        analyzer, instances = enumerate_all(source, limit=64)
        assert instances
        for instance in instances:
            a_atoms = {t[0] for t in instance.relation("A")}
            b_atoms = {t[0] for t in instance.relation("B")}
            for owner, target in instance.relation("f"):
                assert owner in a_atoms and target in b_atoms

    def test_field_multiplicity_one_enforced(self):
        source = "sig S { f: S }\npred t { some S }\nrun t for 3\n"
        analyzer, instances = enumerate_all(source, limit=200)
        for instance in instances:
            atoms = {t[0] for t in instance.relation("S")}
            for atom in atoms:
                images = [t for t in instance.relation("f") if t[0] == atom]
                assert len(images) == 1

    def test_arrow_multiplicity_lone(self):
        source = (
            "sig A {}\none sig M { r: A -> lone A }\n"
            "pred t { some M.r }\nrun t for 2\n"
        )
        analyzer, instances = enumerate_all(source, limit=200)
        assert instances
        for instance in instances:
            for left in {t[1] for t in instance.relation("r")}:
                images = {
                    t[2] for t in instance.relation("r") if t[1] == left
                }
                assert len(images) <= 1


@st.composite
def small_formula(draw):
    """Random formulas over a fixed two-relation vocabulary."""
    atoms = ["A", "B", "A.r", "B.r", "r.A", "A + B", "A - B", "A & B"]
    left = draw(st.sampled_from(atoms))
    right = draw(st.sampled_from(atoms))
    op = draw(st.sampled_from(["in", "=", "!="]))
    shape = draw(st.sampled_from(["cmp", "some", "no", "all"]))
    if shape == "cmp":
        return f"{left} {op} {right}"
    if shape == "some":
        return f"some {left}"
    if shape == "no":
        return f"no {left} & {right}"
    return f"all x: A | x in {left} + B"


class TestPropertySolverVsEvaluator:
    @given(small_formula())
    @settings(max_examples=40, deadline=None)
    def test_instances_always_satisfy_random_targets(self, body):
        source = (
            "sig A { r: set B }\nsig B {}\n"
            f"pred target {{ {body} }}\nrun target for 2\n"
        )
        analyzer = Analyzer(source)
        command = analyzer.info.commands[0]
        result = analyzer.run_command(command, max_instances=8)
        for instance in result.instances:
            evaluator = Evaluator(analyzer.info, instance)
            assert evaluator.pred_holds("target"), (body, instance.describe())
