"""Dynamic technique selection tests (the paper's future-work extension)."""

import pytest

from repro.benchmarks.models import get_model
from repro.llm.mock_gpt import GPT4_PROFILE, MockGPT
from repro.metrics.rep import rep
from repro.repair.base import RepairTask
from repro.repair.selector import DynamicSelector, FaultProfile, characterize

TRUTH = get_model("graphs_a").source
FAULTY_UNDER = TRUTH.replace("n not in n.^adj", "n not in n.adj", 1)
FAULTY_OVER = TRUTH.replace(
    "pred connectedPair { some disj a, b: Node | b in a.adj }",
    "pred connectedPair { some disj a, b: Node | b in a.adj and no Node }",
)


class TestCharacterize:
    def test_underconstrained_fault_profile(self):
        profile = characterize(RepairTask.from_source(FAULTY_UNDER))
        assert profile.failing_commands >= 1
        assert profile.has_counterexamples
        assert profile.looks_underconstrained

    def test_overconstrained_fault_profile(self):
        profile = characterize(RepairTask.from_source(FAULTY_OVER))
        assert profile.failing_commands >= 1
        assert profile.looks_overconstrained

    def test_correct_spec_profile(self):
        profile = characterize(RepairTask.from_source(TRUTH))
        assert profile.failing_commands == 0
        assert profile.spec_size > 10


class TestPlanning:
    def test_concentrated_underconstraint_prefers_beafix(self):
        selector = DynamicSelector(MockGPT(seed=0, profile=GPT4_PROFILE))
        profile = FaultProfile(
            failing_commands=1,
            has_counterexamples=True,
            top_location_score=1.0,
            location_concentration=0.8,
            spec_size=40,
        )
        plan = selector.plan(profile)
        assert plan[0].name == "BeAFix"

    def test_diffuse_underconstraint_prefers_atr(self):
        selector = DynamicSelector(MockGPT(seed=0, profile=GPT4_PROFILE))
        profile = FaultProfile(
            failing_commands=2,
            has_counterexamples=True,
            top_location_score=0.5,
            location_concentration=0.3,
            spec_size=40,
        )
        assert selector.plan(profile)[0].name == "ATR"

    def test_evidence_poor_fault_prefers_llm(self):
        selector = DynamicSelector(MockGPT(seed=0, profile=GPT4_PROFILE))
        profile = FaultProfile(
            failing_commands=1,
            has_counterexamples=False,
            top_location_score=0.0,
            location_concentration=0.0,
            spec_size=40,
        )
        assert selector.plan(profile)[0].name.startswith("Multi-Round")


class TestEndToEnd:
    def test_selector_repairs_underconstraint(self):
        selector = DynamicSelector(MockGPT(seed=1, profile=GPT4_PROFILE))
        task = RepairTask.from_source(FAULTY_UNDER)
        result = selector.repair(task)
        assert result.fixed
        assert rep(result.final_source(task), TRUTH) == 1
        assert result.technique == "Dynamic-Selector"

    def test_selector_reports_chain(self):
        selector = DynamicSelector(MockGPT(seed=1, profile=GPT4_PROFILE))
        result = selector.repair(RepairTask.from_source(FAULTY_UNDER))
        assert "chain:" in result.detail
