"""Hybrid analysis tests, including the pipeline hybrid extension."""

import pytest

from repro.benchmarks.faults import FaultySpec
from repro.benchmarks.models import get_model
from repro.experiments.hybrid import sequential_hybrid
from repro.llm.prompts import RepairHints
from repro.metrics.rep import rep
from repro.repair.base import RepairTask


@pytest.fixture
def spec():
    truth = get_model("graphs_a").source
    faulty = truth.replace("n not in n.^adj", "n not in n.adj", 1)
    return FaultySpec(
        spec_id="graphs_a#test",
        benchmark="alloy4fun",
        domain="graphs",
        model_name="graphs_a",
        faulty_source=faulty,
        truth_source=truth,
        fault_description="closure dropped",
        depth=1,
        hints=RepairHints(),
    )


class TestSequentialHybrid:
    def test_returns_repair_result(self, spec):
        result = sequential_hybrid(spec, seed=0)
        assert result.technique.startswith("Pipeline-Hybrid")

    def test_usually_repairs_the_fault(self, spec):
        wins = 0
        for seed in range(5):
            result = sequential_hybrid(spec, seed=seed)
            text = result.final_source(RepairTask.from_source(spec.faulty_source))
            wins += rep(text, spec.truth_source)
        assert wins >= 2  # localization + GPT-4 profile should mostly succeed

    def test_feedback_level_configurable(self, spec):
        result = sequential_hybrid(spec, seed=0, feedback_value="None")
        assert result.technique == "Pipeline-Hybrid_None"
