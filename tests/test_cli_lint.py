"""CLI tests for `repro lint` and the --no-static-prune flag."""

from pathlib import Path

import pytest

from repro.cli import EXIT_FAILURE, EXIT_INPUT, EXIT_OK, EXIT_USAGE, build_parser, main

FIXTURE = Path(__file__).parent / "fixtures" / "lint_demo.als"

CLEAN = """
sig Node { next: set Node }
pred hasNext { some n: Node | some n.next }
run hasNext for 3
"""


@pytest.fixture
def clean_file(tmp_path):
    path = tmp_path / "clean.als"
    path.write_text(CLEAN)
    return str(path)


class TestLintCommand:
    def test_fixture_reports_required_rules_with_positions(self, capsys):
        assert main(["lint", str(FIXTURE)]) == EXIT_FAILURE
        out = capsys.readouterr().out
        # The acceptance triple: disjoint-join, vacuous-quantifier, unused-decl.
        assert "A201" in out and "A203" in out and "A401" in out
        for line in out.splitlines():
            if line.startswith("A"):
                code, _severity, pos = line.split()[:3]
                line_no, column = pos.split(":")
                assert int(line_no) > 0 and int(column) > 0

    def test_clean_file_exits_zero(self, clean_file, capsys):
        assert main(["lint", clean_file]) == EXIT_OK
        assert "no findings" in capsys.readouterr().out

    def test_fail_on_threshold(self, capsys):
        # The fixture has errors, so even the laxest threshold fails ...
        assert main(["lint", str(FIXTURE), "--fail-on", "error"]) == EXIT_FAILURE
        capsys.readouterr()
        # ... and a spec with only INFO findings passes at `error`.

    def test_info_findings_pass_default_threshold(self, tmp_path, capsys):
        path = tmp_path / "hygiene.als"
        path.write_text(
            "sig A {}\nsig Orphan {}\npred p { some A }\nrun p for 3"
        )
        assert main(["lint", str(path)]) == EXIT_OK
        assert main(["lint", str(path), "--fail-on", "info"]) == EXIT_FAILURE
        capsys.readouterr()

    def test_registered_model_by_name(self, capsys):
        from repro.benchmarks.models.registry import all_models

        name = all_models()[0].name
        code = main(["lint", name])
        assert code in (EXIT_OK, EXIT_FAILURE)
        assert f"== {name}" in capsys.readouterr().out

    def test_all_models_lints_whole_corpus(self, capsys):
        from repro.benchmarks.models.registry import all_models

        # classroom_a's pinned disjoint-join finding (see test_corpus_lint)
        # makes the default error threshold fail; info obviously fails too.
        assert main(["lint", "--all-models"]) == EXIT_FAILURE
        out = capsys.readouterr().out
        assert out.count("== ") == len(all_models())

    def test_unknown_target(self, capsys):
        assert main(["lint", "definitely-not-a-model"]) == EXIT_INPUT

    def test_no_targets_is_usage_error(self, capsys):
        assert main(["lint"]) == EXIT_USAGE


class TestNoStaticPruneFlag:
    def test_experiment_args_accept_flag(self):
        args = build_parser().parse_args(["table1", "--no-static-prune"])
        assert args.no_static_prune
        args = build_parser().parse_args(["table1"])
        assert not args.no_static_prune

    def test_repair_accepts_flag(self):
        args = build_parser().parse_args(
            ["repair", "x.als", "--no-static-prune"]
        )
        assert args.no_static_prune

    def test_lint_parser_defaults(self):
        args = build_parser().parse_args(["lint", "x.als"])
        assert args.fail_on == "error" and not args.all_models
