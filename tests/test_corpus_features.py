"""Tests over the enriched ground-truth corpus: feature coverage and the
behaviours the study's findings depend on."""

import pytest

from repro.alloy.nodes import FunDecl, PredDecl
from repro.alloy.parser import parse_module
from repro.analyzer.analyzer import Analyzer
from repro.benchmarks.models import all_models, get_model


class TestFeatureCoverage:
    """The corpus should exercise the dialect's feature surface, so repair
    tools and the analyzer face realistic constructs."""

    def _all_sources(self):
        return [m.source for m in all_models()]

    def test_corpus_uses_closures(self):
        assert any("^" in s for s in self._all_sources())

    def test_corpus_uses_reflexive_closure(self):
        assert any("*" in s for s in self._all_sources())

    def test_corpus_uses_cardinality(self):
        assert any("#" in s for s in self._all_sources())

    def test_corpus_uses_transpose(self):
        assert any("~" in s for s in self._all_sources())

    def test_corpus_uses_comprehensions(self):
        assert any("{ s: State" in s or "| some e:" in s for s in self._all_sources())

    def test_corpus_uses_disj_quantifiers(self):
        assert any("disj" in s for s in self._all_sources())

    def test_corpus_uses_functions(self):
        count = sum(
            1
            for m in all_models()
            if any(isinstance(p, FunDecl) for p in parse_module(m.source).paragraphs)
        )
        assert count >= 4

    def test_corpus_uses_ternary_fields(self):
        assert any("Event -> State" in s for s in self._all_sources())

    def test_corpus_uses_signature_hierarchies(self):
        assert any("extends" in s for s in self._all_sources())

    def test_corpus_has_multiple_preds_per_model(self):
        rich = sum(
            1
            for m in all_models()
            if sum(
                isinstance(p, PredDecl)
                for p in parse_module(m.source).paragraphs
            )
            >= 2
        )
        assert rich >= 10


class TestModelSizes:
    def test_models_are_non_trivial(self):
        for model in all_models():
            lines = [l for l in model.source.splitlines() if l.strip()]
            assert len(lines) >= 10, model.name

    def test_enriched_a4f_models_have_search_surface(self):
        """Repair-tool differentials need enough mutation points."""
        from repro.alloy.resolver import resolve_module
        from repro.repair.mutation import mutation_points

        for model in all_models():
            if model.benchmark != "alloy4fun":
                continue
            module = parse_module(model.source)
            points = mutation_points(module)
            assert len(points) >= 20, model.name


class TestSpecificModels:
    def test_farmer_requires_four_objects(self):
        analyzer = Analyzer(get_model("farmer").source)
        result = analyzer.execute_all()[0]
        assert result.sat
        assert len(result.instance.relation("Object")) == 4

    def test_dll_inverse_assertion_holds(self):
        analyzer = Analyzer(get_model("dll").source)
        results = {r.name: r for r in analyzer.execute_all()}
        assert not results["Inverse"].sat  # no counterexample

    def test_lts_reachability_constrains_instances(self):
        analyzer = Analyzer(get_model("lts_a").source)
        result = analyzer.execute_all()[0]
        assert result.sat
