"""Pretty-printer tests: round-tripping and output stability."""

import pytest

from repro.alloy.parser import parse_expr, parse_formula, parse_module
from repro.alloy.pretty import print_expr, print_formula, print_module
from repro.benchmarks.models import all_models


def round_trip_module(source: str) -> None:
    module = parse_module(source)
    text = print_module(module)
    reparsed = parse_module(text)
    assert print_module(reparsed) == text, "printing must be a fixpoint"


class TestExprPrinting:
    @pytest.mark.parametrize(
        "source",
        [
            "a + b",
            "a - b & c",
            "(a + b) & c",
            "a.b.c",
            "a -> b -> c",
            "~r",
            "^r + *r",
            "#a",
            "a ++ b",
            "a <: r",
            "r :> a",
            "{ x: A | some x }",
            "none + univ",
            "iden & r",
        ],
    )
    def test_expr_round_trip(self, source):
        expr = parse_expr(source)
        text = print_expr(expr)
        assert print_expr(parse_expr(text)) == text

    def test_parentheses_preserved_when_needed(self):
        expr = parse_expr("(a + b) & c")
        text = print_expr(expr)
        reparsed = parse_expr(text)
        # Structure must match: intersection at the top.
        assert reparsed.op.value == "&"


class TestFormulaPrinting:
    @pytest.mark.parametrize(
        "source",
        [
            "a in b",
            "a !in b",
            "no a.b",
            "some x: A | x in b",
            "all disj x, y: A | x != y",
            "a in b and c in d or e in f",
            "a in b implies c in d else d in c",
            "let x = a | some x",
            "p[a, b]",
            "not (a in b)",
            "#a < 3",
            "#a = #b",
        ],
    )
    def test_formula_round_trip(self, source):
        formula = parse_formula(source)
        text = print_formula(formula)
        reparsed = parse_formula(text)
        assert print_formula(reparsed) == text


class TestModulePrinting:
    def test_marriage_round_trip(self, marriage_spec):
        round_trip_module(marriage_spec)

    def test_hotel_round_trip(self, hotel_spec):
        round_trip_module(hotel_spec)

    def test_whole_corpus_round_trips(self):
        for model in all_models():
            round_trip_module(model.source)

    def test_print_is_deterministic(self, marriage_spec):
        module = parse_module(marriage_spec)
        assert print_module(module) == print_module(module)

    def test_module_header_printed(self):
        module = parse_module("module hotel\nsig A {}")
        assert print_module(module).startswith("module hotel")

    def test_empty_sig_body(self):
        module = parse_module("sig A {}")
        assert "sig A {}" in print_module(module)
