"""Ablation driver tests (on a tiny spec sample)."""

import pytest

from repro.benchmarks.faults import FaultInjector, InjectionConfig
from repro.benchmarks.models import get_model
from repro.experiments.ablations import (
    beafix_pruning_ablation,
    icebar_budget_ablation,
    multi_round_budget_ablation,
    suite_size_ablation,
)


@pytest.fixture(scope="module")
def sample_specs():
    model = get_model("graphs_a")
    injector = FaultInjector(
        model_name=model.name,
        benchmark="alloy4fun",
        domain="graphs",
        truth_source=model.source,
        config=InjectionConfig(depth_weights={1: 1.0}),
        seed=99,
    )
    return injector.generate(3)


class TestAblations:
    def test_beafix_pruning(self, sample_specs):
        sweep = beafix_pruning_ablation(sample_specs)
        assert len(sweep.points) == 2
        pruned, unpruned = sweep.points
        # Pruning must not spend more oracle queries than no pruning.
        assert pruned.oracle_queries <= unpruned.oracle_queries
        assert "prune=True" in sweep.render()

    def test_icebar_budget(self, sample_specs):
        sweep = icebar_budget_ablation(sample_specs, budgets=(1, 3))
        assert [p.label for p in sweep.points] == [
            "max_refinements=1",
            "max_refinements=3",
        ]
        # More refinements can only help (same seeds, superset behaviour
        # holds for this sample).
        assert sweep.points[1].repaired >= sweep.points[0].repaired - 1

    def test_multi_round_budget(self, sample_specs):
        sweep = multi_round_budget_ablation(sample_specs, rounds=(1, 3))
        assert sweep.points[1].repaired >= sweep.points[0].repaired

    def test_suite_size(self, sample_specs):
        sweep = suite_size_ablation(sample_specs, sizes=(1, 4))
        assert all(0 <= p.repaired <= len(sample_specs) for p in sweep.points)
        assert "ARepair" in sweep.render()
