"""CLI tests for the stats and parser-level experiment arguments."""

import pytest

from repro.cli import build_parser, main


class TestStatsCommand:
    def test_stats_arepair(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["stats", "arepair"]) == 0
        out = capsys.readouterr().out
        assert "arepair benchmark" in out
        assert "per fault class:" in out

    def test_stats_requires_known_benchmark(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["stats", "unknown"])


class TestParserShape:
    def test_ablations_args(self):
        args = build_parser().parse_args(["ablations", "--samples", "3"])
        assert args.samples == 3

    def test_all_command_args(self):
        args = build_parser().parse_args(["all", "--no-cache"])
        assert args.no_cache is True
