"""Cross-cutting properties of injected faults and the metric stack."""

import pytest

from repro.benchmarks.faults import FaultInjector, InjectionConfig
from repro.benchmarks.models import get_model
from repro.metrics.bleu import token_match
from repro.metrics.rep import rep, rep_outcome
from repro.metrics.syntax_match import syntax_match


@pytest.fixture(scope="module")
def fault_sample():
    specs = []
    for model_name in ("graphs_b", "trash_b", "cv_b"):
        model = get_model(model_name)
        injector = FaultInjector(
            model_name=model.name,
            benchmark="alloy4fun",
            domain=model.domain,
            truth_source=model.source,
            config=InjectionConfig(
                depth_weights={1: 0.6, 2: 0.4}, removal_bias=0.3
            ),
            seed=7,
        )
        specs.extend(injector.generate(3))
    return specs


class TestFaultMetricProperties:
    def test_truth_is_its_own_repair(self, fault_sample):
        for spec in fault_sample:
            assert rep(spec.truth_source, spec.truth_source) == 1

    def test_fault_is_not_a_repair(self, fault_sample):
        for spec in fault_sample:
            assert rep(spec.faulty_source, spec.truth_source) == 0

    def test_fault_similarity_below_identity(self, fault_sample):
        for spec in fault_sample:
            assert token_match(spec.faulty_source, spec.truth_source) < 1.0
            assert syntax_match(spec.faulty_source, spec.truth_source) < 1.0

    def test_fault_similarity_still_high(self, fault_sample):
        """Injected faults are small edits: similarity stays substantial."""
        for spec in fault_sample:
            assert syntax_match(spec.faulty_source, spec.truth_source) > 0.3

    def test_rep_outcome_names_a_mismatched_command(self, fault_sample):
        for spec in fault_sample:
            outcome = rep_outcome(spec.faulty_source, spec.truth_source)
            assert outcome.compiled
            assert outcome.mismatched_commands or outcome.error

    def test_hints_reference_existing_paragraphs(self, fault_sample):
        from repro.alloy.parser import parse_module

        for spec in fault_sample:
            location = spec.hints.location
            assert location
            module = parse_module(spec.truth_source)
            names = set()
            for paragraph in module.paragraphs:
                name = getattr(paragraph, "name", None)
                if name:
                    names.add(name)
                for sig_name in getattr(paragraph, "names", []) or []:
                    names.add(sig_name)
            assert any(f"'{name}'" in location for name in names), location

    def test_passing_assertion_exists_in_truth(self, fault_sample):
        from repro.alloy.parser import parse_module
        from repro.alloy.resolver import resolve_module

        for spec in fault_sample:
            if spec.hints.passing_assertion is None:
                continue
            info = resolve_module(parse_module(spec.truth_source))
            assert spec.hints.passing_assertion in info.asserts
