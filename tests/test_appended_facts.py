"""Appended signature facts: parsing, desugaring, and semantics."""

import pytest

from repro.alloy.parser import parse_module
from repro.alloy.pretty import print_module
from repro.alloy.resolver import resolve_module
from repro.analyzer.analyzer import Analyzer


class TestParsing:
    def test_appended_block_parsed(self):
        module = parse_module("sig A { f: set A } { some f }")
        assert module.sigs[0].appended is not None

    def test_no_appended_block(self):
        module = parse_module("sig A { f: set A }")
        assert module.sigs[0].appended is None

    def test_round_trip(self):
        source = "sig A { f: set A } { some f this not in f }"
        module = parse_module(source)
        printed = print_module(module)
        assert print_module(parse_module(printed)) == printed

    def test_raw_reference_round_trips(self):
        module = parse_module("sig A { f: lone A } { some f.@f }")
        printed = print_module(module)
        assert "@f" in printed
        assert print_module(parse_module(printed)) == printed


class TestDesugaring:
    def test_synthesized_fact_present(self):
        info = resolve_module(parse_module("sig A { f: set A } { some f }"))
        names = [fact.name for fact in info.facts]
        assert "A_appended" in names

    def test_field_gets_receiver_join(self):
        from repro.alloy.pretty import print_formula

        info = resolve_module(parse_module("sig A { f: set A } { some f }"))
        fact = next(f for f in info.facts if f.name == "A_appended")
        text = print_formula(fact.body)
        assert "this.f" in text and "all this: A" in text

    def test_raw_reference_not_joined(self):
        from repro.alloy.pretty import print_formula

        info = resolve_module(
            parse_module("sig A { f: lone A } { some f.@f }")
        )
        fact = next(f for f in info.facts if f.name == "A_appended")
        text = print_formula(fact.body)
        assert "(this.f).f" in text or "this.f.f" in text.replace("@", "")

    def test_binder_shadowing_respected(self):
        from repro.alloy.pretty import print_formula

        info = resolve_module(
            parse_module(
                "sig T {}\nsig A { f: set A } { all f: T | f = f }"
            )
        )
        fact = next(fa for fa in info.facts if fa.name == "A_appended")
        text = print_formula(fact.body)
        assert "this.f = this.f" not in text

    def test_inherited_fields_joined(self):
        from repro.alloy.pretty import print_formula

        info = resolve_module(
            parse_module(
                "sig P { g: set P }\nsig C extends P {} { some g }"
            )
        )
        fact = next(fa for fa in info.facts if fa.name == "C_appended")
        assert "this.g" in print_formula(fact.body)


class TestSemantics:
    def test_appended_fact_constrains_instances(self):
        source = (
            "sig Node { next: lone Node } { this not in next }\n"
            "pred p { some next }\nrun p for 3\n"
        )
        analyzer = Analyzer(source)
        result = analyzer.run_command(analyzer.info.commands[0], max_instances=40)
        assert result.sat
        for instance in result.instances:
            assert all(a != b for a, b in instance.relation("next"))

    def test_appended_fact_checked_by_oracle(self):
        source = (
            "sig Node { next: lone Node } { this not in next }\n"
            "assert NoSelf { all n: Node | n not in n.next }\n"
            "pred p { some Node }\n"
            "run p for 3 expect 1\ncheck NoSelf for 3 expect 0\n"
        )
        results = Analyzer(source).execute_all()
        assert results[0].sat and not results[1].sat

    def test_evaluator_sees_appended_fact(self):
        from repro.analyzer.evaluator import Evaluator
        from repro.analyzer.instance import make_instance

        info = resolve_module(
            parse_module("sig Node { next: lone Node } { this not in next }")
        )
        looped = make_instance(
            {"Node": {("N0",)}, "next": {("N0", "N0")}}
        )
        clean = make_instance({"Node": {("N0",)}, "next": set()})
        assert not Evaluator(info, looped).facts_hold()
        assert Evaluator(info, clean).facts_hold()
