"""Smoke tests: every example script runs to completion."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, timeout: int = 420) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


class TestExamples:
    def test_quickstart(self):
        result = run_example("quickstart.py")
        assert result.returncode == 0, result.stderr
        assert "REP vs ground truth: 1" in result.stdout

    def test_hotel_locking(self):
        result = run_example("hotel_locking.py")
        assert result.returncode == 0, result.stderr
        assert "check KeysPartitioned: SAT" in result.stdout

    def test_llm_conversation(self):
        result = run_example("llm_conversation.py")
        assert result.returncode == 0, result.stderr
        assert "FEEDBACK LEVEL: Auto" in result.stdout
        assert "Repair Agent replies" in result.stdout

    @pytest.mark.slow
    def test_benchmark_survey(self):
        result = run_example("benchmark_survey.py")
        assert result.returncode == 0, result.stderr
        assert "per fault class:" in result.stdout
