"""MockGPT edge cases and derived-counterexample reasoning."""

import pytest

from repro.analyzer.instance import make_instance
from repro.llm.client import Conversation
from repro.llm.mock_gpt import GPT4_PROFILE, CapabilityProfile, MockGPT
from repro.alloy.parser import parse_module

SPEC = """
sig Node { next: lone Node }
fact Acyclic { all n: Node | n in n.next }
pred show { some Node }
assert NoSelf { no n: Node | n in n.next }
run show for 2 expect 1
check NoSelf for 2 expect 0
"""


class TestDerivedCounterexamples:
    def test_derives_counterexample_for_named_assertion(self):
        gpt = MockGPT(seed=0, profile=GPT4_PROFILE)
        module = parse_module(SPEC)
        instances = gpt._derive_counterexamples(module, "NoSelf")
        assert instances
        # every derived instance violates the assertion: a self-loop exists
        for instance in instances:
            assert any(a == b for a, b in instance.relation("next"))

    def test_unknown_assertion_falls_back_to_all_checks(self):
        gpt = MockGPT(seed=0, profile=GPT4_PROFILE)
        module = parse_module(SPEC)
        instances = gpt._derive_counterexamples(module, "NotThere")
        assert instances  # falls back to the spec's own check commands

    def test_refutes_fraction(self):
        module = parse_module(
            "sig Node { next: lone Node }\n"
            "fact F { no next }\n"
        )
        looped = make_instance({"Node": {("N0",)}, "next": {("N0", "N0")}})
        assert MockGPT._refutes(module, [looped]) == 1.0
        empty = make_instance({"Node": {("N0",)}, "next": set()})
        assert MockGPT._refutes(module, [empty]) == 0.0


class TestInsightComposition:
    def _conv(self, text: str) -> Conversation:
        conversation = Conversation()
        conversation.add("user", text)
        return conversation

    def test_more_hints_raise_insight(self):
        gpt = MockGPT(seed=0)
        base = gpt._insight_probability({}, self._conv("x"), None)
        with_loc = gpt._insight_probability(
            {"loc": "fact 'F'"}, self._conv("x"), None
        )
        with_both = gpt._insight_probability(
            {"loc": "fact 'F'", "fix": "The quantifier seems wrong."},
            self._conv("x"),
            None,
        )
        assert base < with_loc < with_both

    def test_vague_fix_hint_penalized(self):
        gpt = MockGPT(seed=0)
        sharp = gpt._insight_probability(
            {"fix": "The quantifier of this constraint seems wrong."},
            self._conv("x"),
            None,
        )
        vague = gpt._insight_probability(
            {"fix": "Something may be off somewhere."}, self._conv("x"), None
        )
        assert vague < sharp

    def test_loc_pass_interference(self):
        profile = CapabilityProfile(
            insight_loc=0.8, insight_pass=0.8, loc_pass_interference=0.3
        )
        gpt = MockGPT(seed=0, profile=profile)
        combined = gpt._insight_probability(
            {"loc": "fact 'F'", "pass": "X"}, self._conv("x"), None
        )
        loc_only = gpt._insight_probability(
            {"loc": "fact 'F'"}, self._conv("x"), None
        )
        assert combined < loc_only


class TestMalformedEmission:
    def test_high_malformed_rate_produces_unparseable(self):
        from repro.llm.extract import try_extract_module
        from repro.llm.prompts import (
            PromptSetting,
            RepairHints,
            single_round_prompt,
        )

        profile = CapabilityProfile(malformed_rate=1.0)
        failures = 0
        for seed in range(6):
            gpt = MockGPT(seed=seed, profile=profile)
            response = gpt.complete(
                single_round_prompt(SPEC, PromptSetting.NONE, RepairHints())
            )
            module, _ = try_extract_module(response)
            # Truncated emissions may still accidentally parse as a prefix;
            # count genuine failures.
            if module is None or not module.commands:
                failures += 1
        assert failures >= 3
