"""Whole-spec dependency graph and slicing."""

import pytest

from repro.alloy.parser import parse_module
from repro.alloy.resolver import resolve_module
from repro.analysis import (
    DepNode,
    backward_slice,
    build_depgraph,
    forward_slice,
    slice_for,
)
from repro.analysis.slice import render_slice

SPEC = """
abstract sig Node { next: lone Node }
one sig Root extends Node {}
sig Leaf extends Node {}
fact acyclic { no n: Node | n in n.^next }
pred nonEmpty { some Node }
fun roots: set Node { Node - Node.next }
assert NoSelf { all n: Node | n not in n.next }
run nonEmpty for 3
check NoSelf for 3
"""

RECURSIVE = """
sig Node { next: lone Node }
pred even[n: Node] { no n.next or odd[n.next] }
pred odd[n: Node] { some n.next and even[n.next] }
pred self { some n: Node | self2[n] }
pred self2[n: Node] { some n.next implies self2[n.next] else some n }
run self for 3
"""


def graph_for(source):
    module = parse_module(source)
    info = resolve_module(module)
    return build_depgraph(module, info)


class TestBuildDepgraph:
    def test_one_node_per_paragraph(self):
        graph = graph_for(SPEC)
        kinds = {}
        for node in graph.nodes:
            kinds[node.kind] = kinds.get(node.kind, 0) + 1
        assert kinds == {
            "sig": 3,
            "field": 1,
            "fact": 1,
            "pred": 1,
            "fun": 1,
            "assert": 1,
            "command": 2,
        }

    def test_sig_depends_on_parent(self):
        graph = graph_for(SPEC)
        root = graph.node("sig", "Root")
        assert graph.node("sig", "Node") in graph.dependencies(root)

    def test_field_depends_on_owner_and_columns(self):
        graph = graph_for(SPEC)
        deps = graph.dependencies(graph.node("field", "next"))
        assert graph.node("sig", "Node") in deps

    def test_command_depends_on_every_fact(self):
        graph = graph_for(SPEC)
        run = graph.node("command", "run nonEmpty")
        assert graph.node("fact", "acyclic") in graph.dependencies(run)

    def test_check_targets_its_assertion(self):
        graph = graph_for(SPEC)
        check = graph.node("command", "check NoSelf")
        assert graph.node("assert", "NoSelf") in graph.dependencies(check)

    def test_node_lookup_raises_on_unknown(self):
        graph = graph_for(SPEC)
        with pytest.raises(KeyError):
            graph.node("pred", "nope")

    def test_find_orders_sig_first(self):
        module = parse_module("sig a {}\npred a2 { some a }\nrun a2 for 3")
        graph = build_depgraph(module, resolve_module(module))
        hits = graph.find("a")
        assert hits and hits[0].kind == "sig"

    def test_stats_shape(self):
        stats = graph_for(SPEC).stats()
        assert stats["sig"] == 3
        assert stats["command"] == 2
        assert stats["edges"] > 0
        assert stats["recursion_groups"] == 0


class TestRecursionGroups:
    def test_mutual_recursion_is_one_group(self):
        graph = graph_for(RECURSIVE)
        groups = graph.recursion_groups()
        members = {frozenset(group) for group in groups}
        assert (
            frozenset({DepNode("pred", "even"), DepNode("pred", "odd")})
            in members
        )

    def test_self_loop_is_a_group(self):
        graph = graph_for(RECURSIVE)
        members = {frozenset(group) for group in graph.recursion_groups()}
        assert frozenset({DepNode("pred", "self2")}) in members

    def test_sccs_are_reverse_topological(self):
        graph = graph_for(SPEC)
        position = {}
        for index, component in enumerate(graph.sccs()):
            for node in component:
                position[node] = index
        for source, targets in graph.edges.items():
            for target in targets:
                assert position[target] < position[source]


class TestSlicing:
    def test_backward_slice_of_command_is_its_cone(self):
        graph = graph_for(SPEC)
        cone = backward_slice(graph, graph.node("command", "run nonEmpty"))
        assert graph.node("fact", "acyclic") in cone
        assert graph.node("sig", "Node") in cone
        # The other command is never part of this command's cone.
        assert graph.node("command", "check NoSelf") not in cone

    def test_forward_slice_of_sig_reaches_commands(self):
        graph = graph_for(SPEC)
        impact = forward_slice(graph, graph.node("sig", "Node"))
        assert graph.node("command", "run nonEmpty") in impact
        assert graph.node("command", "check NoSelf") in impact

    def test_slice_for_unknown_name_raises(self):
        graph = graph_for(SPEC)
        with pytest.raises(KeyError):
            slice_for(graph, "nothing")

    def test_slice_for_directions_differ(self):
        graph = graph_for(SPEC)
        back = slice_for(graph, "acyclic")
        fwd = slice_for(graph, "acyclic", direction="forward")
        assert graph.node("command", "run nonEmpty") in fwd
        assert graph.node("command", "run nonEmpty") not in back

    def test_render_slice_sorted_and_root_excluded(self):
        graph = graph_for(SPEC)
        root = graph.node("command", "run nonEmpty")
        rendered = render_slice(backward_slice(graph, root), root=root)
        assert "command run nonEmpty" not in rendered
        assert rendered.index("sig Node") < rendered.index("fact acyclic")

    def test_render_empty_slice(self):
        assert render_slice(frozenset()) == "(nothing)"
