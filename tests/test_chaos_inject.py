"""The injection runtime: scopes, firing semantics, fault factories."""

import json
import threading

from repro import chaos
from repro.chaos.inject import (
    CRASH_CODES,
    crash_exception,
    garbled_completion,
    mangle_bytes,
    truncated_completion,
)
from repro.chaos.plan import FaultPlan, SiteConfig
from repro.runtime.errors import classify_exception


def always(site):
    return FaultPlan.for_sites(0, [site])


class TestScope:
    def test_fire_outside_scope_is_none(self):
        assert chaos.fire("repair.crash") is None

    def test_install_none_is_noop(self):
        with chaos.install(None) as scope:
            assert scope is None
            assert chaos.fire("repair.crash") is None

    def test_unconfigured_site_never_fires(self):
        with chaos.install(always("sat.budget")):
            assert chaos.fire("sat.flip") is None

    def test_probability_one_fires_every_trigger(self):
        with chaos.install(always("sat.budget")) as scope:
            events = [chaos.fire("sat.budget") for _ in range(3)]
        assert all(event is not None for event in events)
        assert [event.index for event in events] == [0, 1, 2]
        assert scope.events == events

    def test_probability_zero_never_fires_but_counts_triggers(self):
        plan = FaultPlan(seed=0, sites={"sat.budget": SiteConfig(probability=0.0)})
        with chaos.install(plan) as scope:
            assert chaos.fire("sat.budget") is None
            assert chaos.fire("sat.budget") is None
        assert scope.triggers["sat.budget"] == 2
        assert scope.events == []

    def test_max_fires_bounds_total(self):
        plan = FaultPlan(seed=0, sites={"sat.budget": SiteConfig(max_fires=2)})
        with chaos.install(plan) as scope:
            fired = [chaos.fire("sat.budget") for _ in range(5)]
        assert sum(event is not None for event in fired) == 2
        assert scope.fires["sat.budget"] == 2

    def test_start_after_skips_early_triggers(self):
        plan = FaultPlan(seed=0, sites={"sat.budget": SiteConfig(start_after=2)})
        with chaos.install(plan) as scope:
            fired = [chaos.fire("sat.budget") for _ in range(4)]
        assert [event is not None for event in fired] == [False, False, True, True]
        assert scope.events[0].index == 2

    def test_nested_install_restores_previous(self):
        outer_plan = always("sat.budget")
        inner_plan = always("sat.flip")
        with chaos.install(outer_plan) as outer:
            with chaos.install(inner_plan):
                assert chaos.fire("sat.budget") is None
                assert chaos.fire("sat.flip") is not None
            assert chaos.fire("sat.budget") is not None
            assert chaos.fire("sat.flip") is None
        assert len(outer.events) == 1

    def test_scope_is_thread_local(self):
        seen: list = []
        with chaos.install(always("sat.budget")):
            thread = threading.Thread(
                target=lambda: seen.append(chaos.fire("sat.budget"))
            )
            thread.start()
            thread.join()
        assert seen == [None]

    def test_salt_changes_schedule_not_determinism(self):
        plan = FaultPlan(
            seed=0, sites={"repair.crash": SiteConfig(probability=0.5)}
        )

        def fired_pattern(salt):
            with chaos.install(plan, salt=salt):
                return [chaos.fire("repair.crash") is not None for _ in range(32)]

        assert fired_pattern("spec-a") == fired_pattern("spec-a")
        assert fired_pattern("spec-a") != fired_pattern("spec-b")

    def test_event_info_and_json(self):
        with chaos.install(always("sat.budget")):
            event = chaos.fire("sat.budget", conflicts=7)
        data = event.to_json()
        assert data["site"] == "sat.budget"
        assert data["info"] == {"conflicts": 7}
        json.dumps(data)  # must be JSON-safe as recorded


class TestFaultFactories:
    def test_crash_exception_matches_taxonomy(self):
        for payload, expected in enumerate(CRASH_CODES):
            code, error = crash_exception(payload)
            assert code == expected
            assert classify_exception(error) == expected

    def test_garbled_completion_is_deterministic_text(self):
        assert garbled_completion(11) == garbled_completion(11)
        assert "chaos marker" in garbled_completion(11)

    def test_truncated_completion_never_blank(self):
        text = "```alloy\nsig A { f: set A }\nfact F { some f }\n```"
        for payload in range(16):
            cut = truncated_completion(text, payload)
            assert cut.strip()
            assert len(cut) < len(text)
            assert text.startswith(cut)
        assert truncated_completion("   ", 0) == "```"

    def test_truncate_mangle_stays_mid_line(self):
        data = b"".join(
            json.dumps({"row": i, "pad": "x" * 20}).encode() + b"\n"
            for i in range(8)
        )
        for payload in range(8):
            cut = mangle_bytes(data, "persist.truncate", payload)
            assert 0 < len(cut) < len(data)
            # The torn tail must not parse: the cut never lands on a
            # record boundary, so the last line is always damaged.
            last = cut.split(b"\n")[-1]
            assert last != b""
            try:
                json.loads(last)
                raise AssertionError("torn tail parsed as valid JSON")
            except json.JSONDecodeError:
                pass

    def test_corrupt_mangle_breaks_json(self):
        data = json.dumps({"schema": "x/1", "data": [1, 2, 3]}).encode()
        for payload in (0, 5, 97, 2**31):
            mangled = mangle_bytes(data, "persist.corrupt", payload)
            assert b"\x00" in mangled
            assert len(mangled) > len(data)
            try:
                json.loads(mangled)
                raise AssertionError("corrupted bytes parsed as valid JSON")
            except (json.JSONDecodeError, UnicodeDecodeError):
                pass
