"""CLI tests: argument parsing and the analyze/repair/validate commands."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture
def spec_file(tmp_path, linked_list_spec):
    path = tmp_path / "model.als"
    path.write_text(linked_list_spec)
    return str(path)


@pytest.fixture
def faulty_file(tmp_path, faulty_linked_list_spec):
    path = tmp_path / "faulty.als"
    path.write_text(faulty_linked_list_spec)
    return str(path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_experiment_args(self):
        args = build_parser().parse_args(["table1", "--scale", "0.1", "--seed", "2"])
        assert args.scale == 0.1 and args.seed == 2

    def test_repair_args(self):
        args = build_parser().parse_args(["repair", "x.als", "--technique", "BeAFix"])
        assert args.technique == "BeAFix"


class TestAnalyzeCommand:
    def test_analyze_prints_outcomes(self, spec_file, capsys):
        assert main(["analyze", spec_file]) == 0
        out = capsys.readouterr().out
        assert "run nonEmpty: SAT" in out
        assert "check NoCycle: UNSAT" in out

    def test_analyze_flags_unexpected(self, faulty_file, capsys):
        main(["analyze", faulty_file])
        out = capsys.readouterr().out
        assert "UNEXPECTED" in out

    def test_analyze_renders_static_section(self, spec_file, capsys):
        assert main(["analyze", spec_file]) == 0
        out = capsys.readouterr().out
        assert "dependency graph:" in out
        assert "slice[run nonEmpty]:" in out
        assert "cardinality findings: none" in out

    def test_analyze_accepts_model_name(self, capsys):
        assert main(["analyze", "addr"]) == 0
        out = capsys.readouterr().out
        assert "dependency graph:" in out

    def test_analyze_all_models_is_static_only(self, capsys):
        assert main(["analyze", "--all-models"]) == 0
        out = capsys.readouterr().out
        assert "== addr" in out
        assert "SAT" not in out

    def test_analyze_without_target_is_usage_error(self, capsys):
        assert main(["analyze"]) == 2

    def test_analyze_unknown_target_is_input_error(self, capsys):
        assert main(["analyze", "no-such-model"]) == 3
        assert "no such file" in capsys.readouterr().err


class TestRepairCommand:
    def test_repair_with_beafix(self, faulty_file, capsys):
        assert main(["repair", faulty_file, "--technique", "BeAFix"]) == 0
        out = capsys.readouterr().out
        assert "status:" in out

    def test_repair_with_multi_round(self, faulty_file, capsys):
        assert main(["repair", faulty_file, "--technique", "Multi-Round_None"]) == 0
        assert "status:" in capsys.readouterr().out

    def test_repair_unknown_technique(self, faulty_file, capsys):
        assert main(["repair", faulty_file, "--technique", "Nope"]) == 2


class TestValidateCorpus:
    def test_corpus_is_valid(self, capsys):
        assert main(["validate-corpus"]) == 0
        assert "corpus OK" in capsys.readouterr().out
