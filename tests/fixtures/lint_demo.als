// Purpose-built lint fixture: every class of diagnostic fires at least once.
// Used by tests/test_cli_lint.py and the CI lint smoke step.

abstract sig Node {
  next: set Node
}

sig File extends Node {}

sig Dir extends Node {
  entries: set File
}

// A401: never referenced by any field, fact, pred, fun, or command.
sig Orphan {}

fact Wellformed {
  // A201: File and Dir are disjoint subsigs, so the join is always empty.
  some entries.(File <: next) implies some File.entries
}

pred vacuous {
  // A203: quantifying over a provably empty domain.
  all f: File & Dir | f in Node
}

pred contradictoryMult {
  // A204: `some` over a statically empty expression.
  some File & Dir
}

pred trivial {
  // A301: both sides of the comparison are the same expression.
  File = File
}

pred shadowed {
  // A303: the inner binder reuses the outer binder's name.
  all n: Node | all n: File | n in Node
}

run vacuous for 3
run contradictoryMult for 3
run trivial for 3
run shadowed for 3
