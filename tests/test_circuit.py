"""Circuit builder tests: simplification, Tseitin encoding, cardinality."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sat.circuit import FALSE, TRUE, CircuitBuilder
from repro.sat.solver import SatSolver


@pytest.fixture
def builder():
    return CircuitBuilder(SatSolver())


class TestSimplification:
    def test_and_with_false(self, builder):
        x = builder.fresh_var()
        assert builder.and_([x, FALSE]) == FALSE

    def test_and_with_true(self, builder):
        x = builder.fresh_var()
        assert builder.and_([x, TRUE]) == x

    def test_and_of_nothing_is_true(self, builder):
        assert builder.and_([]) == TRUE

    def test_and_contradiction(self, builder):
        x = builder.fresh_var()
        assert builder.and_([x, -x]) == FALSE

    def test_or_with_true(self, builder):
        x = builder.fresh_var()
        assert builder.or_([x, TRUE]) == TRUE

    def test_hash_consing_shares_nodes(self, builder):
        x, y = builder.fresh_var(), builder.fresh_var()
        assert builder.and_([x, y]) == builder.and_([y, x])

    def test_double_negation(self, builder):
        x = builder.fresh_var()
        assert builder.not_(builder.not_(x)) == x

    def test_implies_truth_table_constants(self, builder):
        x = builder.fresh_var()
        assert builder.implies(FALSE, x) == TRUE
        assert builder.implies(x, TRUE) == TRUE


class TestEncoding:
    def _count_models(self, builder, handle, free_vars):
        solver = builder.solver
        builder.assert_true(handle)
        count = 0
        while solver.solve():
            count += 1
            blocking = []
            for v in free_vars:
                lit = builder.to_literal(v)
                blocking.append(-lit if lit in solver.model() else lit)
            solver.add_clause(blocking)
        return count

    def test_xor_model_count(self, builder):
        x, y = builder.fresh_var(), builder.fresh_var()
        xor = builder.and_([builder.or_([x, y]), -builder.and_([x, y])])
        assert self._count_models(builder, xor, [x, y]) == 2

    def test_iff_model_count(self, builder):
        x, y = builder.fresh_var(), builder.fresh_var()
        assert self._count_models(builder, builder.iff(x, y), [x, y]) == 2

    def test_ite_semantics(self, builder):
        c, t, e = (builder.fresh_var() for _ in range(3))
        ite = builder.ite(c, t, e)
        builder.assert_true(ite)
        builder.assert_true(c)
        builder.assert_true(-t)
        assert not builder.solver.solve()

    def test_assert_false_makes_unsat(self, builder):
        builder.assert_true(FALSE)
        assert not builder.solver.solve()

    def test_assert_true_noop(self, builder):
        builder.assert_true(TRUE)
        assert builder.solver.solve()

    def test_evaluate_matches_solver(self, builder):
        x, y, z = (builder.fresh_var() for _ in range(3))
        formula = builder.or_([builder.and_([x, -y]), z])
        builder.assert_true(formula)
        solver = builder.solver
        assert solver.solve()
        true_lits = solver.model()
        assert builder.evaluate(formula, true_lits)


class TestCardinality:
    @pytest.mark.parametrize("n,k,expected", [(4, 2, 6), (5, 0, 1), (3, 3, 1)])
    def test_exactly_model_counts(self, n, k, expected):
        builder = CircuitBuilder(SatSolver())
        xs = [builder.fresh_var() for _ in range(n)]
        builder.assert_true(builder.exactly(xs, k))
        solver = builder.solver
        count = 0
        while solver.solve():
            count += 1
            blocking = []
            for v in xs:
                lit = builder.to_literal(v)
                blocking.append(-lit if lit in solver.model() else lit)
            solver.add_clause(blocking)
        assert count == expected

    def test_at_least_boundary(self):
        builder = CircuitBuilder(SatSolver())
        xs = [builder.fresh_var() for _ in range(3)]
        assert builder.at_least(xs, 0) == TRUE
        assert builder.at_least(xs, 4) == FALSE

    @given(st.integers(min_value=0, max_value=5), st.integers(min_value=0, max_value=31))
    @settings(max_examples=60, deadline=None)
    def test_count_compare_matches_popcount(self, k, assignment_bits):
        builder = CircuitBuilder(SatSolver())
        xs = [builder.fresh_var() for _ in range(5)]
        true_lits = set()
        popcount = 0
        for index, x in enumerate(xs):
            lit = builder.to_literal(x)
            if assignment_bits & (1 << index):
                true_lits.add(lit)
                popcount += 1
        for op, check in [
            ("=", popcount == k),
            ("<", popcount < k),
            ("<=", popcount <= k),
            (">", popcount > k),
            (">=", popcount >= k),
            ("!=", popcount != k),
        ]:
            handle = builder.count_compare(xs, op, k)
            assert builder.evaluate(handle, true_lits) == check, (op, k, popcount)

    def test_unknown_comparison_rejected(self):
        builder = CircuitBuilder(SatSolver())
        with pytest.raises(ValueError):
            builder.count_compare([], "~", 1)
