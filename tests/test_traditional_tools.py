"""Integration tests for the four traditional repair tools."""

import pytest

from repro.analyzer.analyzer import Analyzer
from repro.metrics.rep import rep
from repro.repair.arepair import ARepair, ARepairConfig
from repro.repair.atr import Atr, AtrConfig
from repro.repair.base import (
    PropertyOracle,
    RepairStatus,
    RepairTask,
)
from repro.repair.beafix import BeAFix, BeAFixConfig
from repro.repair.icebar import Icebar, IcebarConfig
from repro.testing.generation import generate_suite

TRUTH = """
sig Node { next: lone Node }

fact Acyclic {
  all n: Node | n not in n.^next
}

pred nonEmpty { some Node }
assert NoCycle { no n: Node | n in n.^next }

run nonEmpty for 3 expect 1
check NoCycle for 3 expect 0
"""

FAULTY_OPERATOR = TRUTH.replace("n not in n.^next", "n not in n.next")
FAULTY_DROPPED = TRUTH.replace("  all n: Node | n not in n.^next\n", "  some Node\n")


@pytest.fixture
def operator_task():
    return RepairTask.from_source(FAULTY_OPERATOR)


@pytest.fixture
def dropped_task():
    return RepairTask.from_source(FAULTY_DROPPED)


class TestPropertyOracle:
    def test_truth_meets_oracle(self):
        task = RepairTask.from_source(TRUTH)
        oracle = PropertyOracle(task)
        ok, results = oracle.evaluate_module(task.module)
        assert ok and len(results) == 2

    def test_faulty_fails_oracle(self, operator_task):
        oracle = PropertyOracle(operator_task)
        ok, _ = oracle.evaluate_module(operator_task.module)
        assert not ok

    def test_failing_evidence_collected(self, operator_task):
        oracle = PropertyOracle(operator_task)
        evidence = oracle.failing_evidence(operator_task.module)
        assert evidence  # counterexamples to the check

    def test_oracle_counts_queries(self, operator_task):
        oracle = PropertyOracle(operator_task)
        oracle.evaluate_module(operator_task.module)
        assert oracle.queries == 1


class TestBeAFix:
    def test_repairs_operator_fault(self, operator_task):
        result = BeAFix().repair(operator_task)
        assert result.fixed
        assert rep(result.candidate_source, TRUTH) == 1

    def test_cannot_repair_dropped_constraint(self, dropped_task):
        # Pure mutation search cannot re-synthesize a deleted constraint.
        result = BeAFix().repair(dropped_task)
        assert not result.fixed

    def test_pruning_reduces_oracle_queries(self, operator_task):
        pruned = BeAFix(BeAFixConfig(prune=True)).repair(operator_task)
        unpruned = BeAFix(
            BeAFixConfig(prune=False, max_oracle_queries=10_000)
        ).repair(operator_task)
        assert pruned.oracle_queries <= unpruned.oracle_queries

    def test_candidate_meets_own_oracle(self, operator_task):
        result = BeAFix().repair(operator_task)
        oracle = PropertyOracle(operator_task)
        ok, _ = oracle.evaluate_module(result.candidate)
        assert ok


class TestAtr:
    def test_repairs_operator_fault(self, operator_task):
        result = Atr().repair(operator_task)
        assert result.fixed
        assert rep(result.candidate_source, TRUTH) == 1

    def test_repairs_dropped_constraint_via_strengthening(self, dropped_task):
        result = Atr().repair(dropped_task)
        assert result.fixed
        assert "strengthen" in result.detail

    def test_budget_bounded(self, operator_task):
        config = AtrConfig(max_oracle_queries=1, max_candidates=5)
        result = Atr(config).repair(operator_task)
        assert result.oracle_queries <= 2  # one query may complete in flight


class TestARepair:
    def test_repairs_with_discriminating_suite(self, operator_task):
        suite = generate_suite(
            Analyzer(TRUTH), positives=4, negatives=4, seed=5
        )
        result = ARepair(suite).repair(operator_task)
        # ARepair either fixes it or stalls; when fixed, all tests pass.
        if result.fixed:
            from repro.alloy.resolver import resolve_module

            assert suite.all_pass(resolve_module(result.candidate))

    def test_trivially_passing_suite_returns_input(self, operator_task):
        from repro.testing.aunit import TestSuite

        result = ARepair(TestSuite(tests=[])).repair(operator_task)
        assert result.fixed
        # Overfit: "fixed" by its own oracle but wrong per ground truth.
        assert rep(result.final_source(operator_task), TRUTH) == 0

    def test_iteration_budget(self, operator_task):
        suite = generate_suite(Analyzer(TRUTH), positives=4, negatives=4, seed=5)
        config = ARepairConfig(max_iterations=1)
        result = ARepair(suite, config).repair(operator_task)
        assert result.iterations <= 1


class TestIcebar:
    def test_validates_against_property_oracle(self, operator_task):
        suite = generate_suite(Analyzer(TRUTH), positives=3, negatives=3, seed=2)
        result = Icebar(suite).repair(operator_task)
        if result.fixed:
            oracle = PropertyOracle(operator_task)
            ok, _ = oracle.evaluate_module(result.candidate)
            assert ok

    def test_outperforms_bare_arepair_on_overfit(self, operator_task):
        """With an empty suite ARepair 'fixes' nothing; ICEBAR detects the
        oracle violation and refines."""
        from repro.testing.aunit import TestSuite

        arepair_result = ARepair(TestSuite(tests=[])).repair(operator_task)
        icebar_result = Icebar(TestSuite(tests=[])).repair(operator_task)
        arepair_rep = rep(arepair_result.final_source(operator_task), TRUTH)
        icebar_rep = rep(icebar_result.final_source(operator_task), TRUTH)
        assert icebar_rep >= arepair_rep

    def test_refinement_budget_respected(self, operator_task):
        from repro.testing.aunit import TestSuite

        config = IcebarConfig(max_refinements=1)
        result = Icebar(TestSuite(tests=[]), config).repair(operator_task)
        assert result.iterations <= 1


class TestRepairResult:
    def test_final_source_falls_back_to_input(self, operator_task):
        from repro.repair.base import RepairResult

        result = RepairResult(status=RepairStatus.ERROR, technique="x")
        assert result.final_source(operator_task) == operator_task.source

    def test_error_status_from_bad_input(self):
        task = RepairTask.from_source(TRUTH)  # fine input
        result = BeAFix().repair(task)
        # A correct spec yields no failing evidence; search finds nothing.
        assert result.status in (RepairStatus.NOT_FIXED, RepairStatus.FIXED)
