"""Single-round and multi-round LLM repair pipeline tests."""

import pytest

from repro.llm.client import Conversation
from repro.llm.mock_gpt import GPT4_PROFILE, MockGPT
from repro.llm.prompts import FeedbackLevel, PromptSetting, RepairHints
from repro.repair.base import RepairStatus, RepairTask
from repro.repair.multi_round import MultiRoundConfig, MultiRoundLLM
from repro.repair.single_round import SingleRoundLLM

TRUTH = """
sig Node { next: lone Node }
fact Acyclic { all n: Node | n not in n.^next }
pred show { some Node }
assert NoCycle { no n: Node | n in n.^next }
run show for 3 expect 1
check NoCycle for 3 expect 0
"""
FAULTY = TRUTH.replace("n not in n.^next", "n not in n.next")

HINTS = RepairHints(
    location="fact 'Acyclic', constraint 1",
    fix_description="A transitive closure seems to be misused here.",
    passing_assertion="NoCycle",
)


@pytest.fixture
def task():
    return RepairTask.from_source(FAULTY)


class _ScriptedClient:
    """A canned-response client for protocol-level tests."""

    def __init__(self, responses):
        self._responses = list(responses)
        self.conversations = []

    def complete(self, conversation: Conversation) -> str:
        self.conversations.append(
            [m.content for m in conversation.messages]
        )
        return self._responses.pop(0)


class TestSingleRound:
    def test_technique_name_includes_setting(self):
        tool = SingleRoundLLM(MockGPT(seed=0), PromptSetting.LOC, HINTS)
        assert tool.name == "Single-Round_Loc"

    def test_unparseable_response_is_error(self, task):
        client = _ScriptedClient(["Sorry, I can't help with that."])
        tool = SingleRoundLLM(client, PromptSetting.NONE, HINTS)
        result = tool.repair(task)
        assert result.status is RepairStatus.ERROR

    def test_correct_canned_fix_is_fixed(self, task):
        client = _ScriptedClient([f"```alloy\n{TRUTH}\n```"])
        tool = SingleRoundLLM(client, PromptSetting.NONE, HINTS)
        result = tool.repair(task)
        assert result.fixed

    def test_wrong_canned_fix_not_fixed(self, task):
        client = _ScriptedClient([f"```alloy\n{FAULTY}\n```"])
        tool = SingleRoundLLM(client, PromptSetting.NONE, HINTS)
        result = tool.repair(task)
        assert result.status is RepairStatus.NOT_FIXED
        assert result.candidate_source is not None

    def test_single_request_only(self, task):
        client = _ScriptedClient([f"```alloy\n{FAULTY}\n```"])
        SingleRoundLLM(client, PromptSetting.NONE, HINTS).repair(task)
        assert len(client.conversations) == 1

    def test_hints_reach_prompt(self, task):
        client = _ScriptedClient([f"```alloy\n{TRUTH}\n```"])
        SingleRoundLLM(client, PromptSetting.LOC_FIX, HINTS).repair(task)
        prompt_text = "\n".join(client.conversations[0])
        assert "Bug location:" in prompt_text


class TestMultiRound:
    def test_stops_on_success(self, task):
        client = _ScriptedClient([f"```alloy\n{TRUTH}\n```"])
        tool = MultiRoundLLM(client, FeedbackLevel.NONE)
        result = tool.repair(task)
        assert result.fixed and result.iterations == 1

    def test_retries_up_to_budget(self, task):
        bad = f"```alloy\n{FAULTY}\n```"
        client = _ScriptedClient([bad, bad, bad])
        tool = MultiRoundLLM(
            client, FeedbackLevel.NONE, config=MultiRoundConfig(max_rounds=3)
        )
        result = tool.repair(task)
        assert not result.fixed
        assert len(client.conversations) == 3

    def test_second_round_fixes(self, task):
        client = _ScriptedClient(
            [f"```alloy\n{FAULTY}\n```", f"```alloy\n{TRUTH}\n```"]
        )
        tool = MultiRoundLLM(client, FeedbackLevel.NONE)
        result = tool.repair(task)
        assert result.fixed and result.iterations == 2

    def test_no_feedback_is_binary(self, task):
        bad = f"```alloy\n{FAULTY}\n```"
        client = _ScriptedClient([bad, bad, bad])
        MultiRoundLLM(client, FeedbackLevel.NONE).repair(task)
        second_prompt = "\n".join(client.conversations[1])
        assert "not correct" in second_prompt
        assert "counterexample" not in second_prompt

    def test_generic_feedback_contains_counterexamples(self, task):
        bad = f"```alloy\n{FAULTY}\n```"
        client = _ScriptedClient([bad, bad, bad])
        MultiRoundLLM(client, FeedbackLevel.GENERIC).repair(task)
        second_prompt = "\n".join(client.conversations[1])
        assert "expected UNSAT, got SAT" in second_prompt

    def test_auto_feedback_calls_prompt_agent(self, task):
        bad = f"```alloy\n{FAULTY}\n```"
        repair_client = _ScriptedClient([bad, bad, bad])
        prompt_client = _ScriptedClient(
            ["Check the closure in fact 'Acyclic'.", "Look again.", "Hmm."]
        )
        MultiRoundLLM(
            repair_client, FeedbackLevel.AUTO, prompt_client=prompt_client
        ).repair(task)
        assert prompt_client.conversations  # the second agent was consulted
        second_prompt = "\n".join(repair_client.conversations[1])
        assert "closure" in second_prompt

    def test_unparseable_round_reports_compile_error(self, task):
        client = _ScriptedClient(["garbage", f"```alloy\n{TRUTH}\n```"])
        tool = MultiRoundLLM(client, FeedbackLevel.GENERIC)
        result = tool.repair(task)
        assert result.fixed
        second_prompt = "\n".join(client.conversations[1])
        assert "did not compile" in second_prompt

    def test_mock_gpt_end_to_end_multiround(self, task):
        wins = 0
        for seed in range(6):
            tool = MultiRoundLLM(
                MockGPT(seed=seed, profile=GPT4_PROFILE), FeedbackLevel.GENERIC
            )
            wins += tool.repair(task).fixed
        assert wins >= 3  # the calibrated GPT-4 profile usually repairs this
