"""Mutation operator tests: validity, coverage, and higher-order search."""

import pytest

from repro.alloy.parser import parse_module
from repro.alloy.pretty import print_module
from repro.alloy.resolver import resolve_module
from repro.repair.mutation import (
    Mutator,
    body_paragraph_paths,
    higher_order_mutants,
    mutation_points,
    scope_env_at,
)

SPEC = """
sig Node { next: lone Node, tags: set Tag }
sig Tag {}

fact Shape {
  all n: Node | n not in n.^next
  some Node
}

pred busy[n: Node] { some n.tags }

assert NoSelf { no n: Node | n = n.next }

run { some Node } for 2
check NoSelf for 2
"""


@pytest.fixture
def module():
    return parse_module(SPEC)


@pytest.fixture
def info(module):
    return resolve_module(module)


@pytest.fixture
def mutator(module, info):
    return Mutator(module, info)


class TestMutationPoints:
    def test_asserts_are_not_repairable(self, module):
        paths = body_paragraph_paths(module)
        paragraphs = [module.paragraphs[p[0][1]] for p in paths]
        names = [type(p).__name__ for p in paragraphs]
        assert "AssertDecl" not in names
        assert "FactDecl" in names and "PredDecl" in names

    def test_points_cover_fields(self, module):
        points = mutation_points(module)
        field_points = [p for p in points if any(s[0] == "fields" for s in p)]
        assert field_points  # field multiplicity mutations available

    def test_points_nonempty(self, module):
        assert len(mutation_points(module)) > 10


class TestScopeEnv:
    def test_quantifier_binder_visible(self, module, info):
        points = mutation_points(module)
        # Find a point inside the quantified body.
        deep = max(points, key=len)
        env = scope_env_at(module, info, deep)
        assert "n" in env or env == {}  # binder visible at deep points

    def test_pred_params_visible(self, module, info):
        for index, paragraph in enumerate(module.paragraphs):
            if type(paragraph).__name__ == "PredDecl":
                path = (("paragraphs", index), ("body", None), ("formulas", 0))
                env = scope_env_at(module, info, path)
                assert env.get("n") == 1


class TestMutants:
    def test_all_mutants_resolve(self, mutator):
        count = 0
        for mutant in mutator.all_mutants(limit=300):
            resolve_module(mutant.module)  # must not raise
            count += 1
        assert count > 20

    def test_mutants_are_distinct_texts(self, mutator):
        texts = [print_module(m.module) for m in mutator.all_mutants(limit=300)]
        assert len(texts) == len(set(texts))

    def test_mutants_differ_from_original(self, module, mutator):
        original = print_module(module)
        for mutant in mutator.all_mutants(limit=100):
            assert print_module(mutant.module) != original

    def test_quantifier_swap_present(self, mutator):
        descriptions = [m.description for m in mutator.all_mutants(limit=300)]
        assert any("quantifier" in d for d in descriptions)

    def test_closure_mutations_present(self, mutator):
        descriptions = [m.description for m in mutator.all_mutants(limit=300)]
        assert any("closure" in d or "^ -> *" in d for d in descriptions)

    def test_field_multiplicity_mutations_present(self, mutator):
        descriptions = [m.description for m in mutator.all_mutants(limit=300)]
        assert any("field" in d for d in descriptions)

    def test_original_module_untouched(self, module, info):
        before = print_module(module)
        mutator = Mutator(module, info)
        list(mutator.all_mutants(limit=100))
        assert print_module(module) == before


class TestHigherOrder:
    def test_depth_two_produces_combined_descriptions(self, module, info):
        paths = mutation_points(module)[:4]
        combined = [
            m
            for m in higher_order_mutants(module, info, paths, depth=2, limit=500)
            if ";" in m.description
        ]
        assert combined

    def test_limit_respected(self, module, info):
        paths = mutation_points(module)
        mutants = list(
            higher_order_mutants(module, info, paths, depth=2, limit=50)
        )
        assert len(mutants) == 50

    def test_all_higher_order_mutants_resolve(self, module, info):
        paths = mutation_points(module)[:5]
        for mutant in higher_order_mutants(module, info, paths, depth=2, limit=120):
            resolve_module(mutant.module)
