"""Experiment engine tests on a miniature benchmark slice."""

import pytest

from repro.benchmarks.faults import FaultySpec
from repro.benchmarks.models import get_model
from repro.experiments.figure2 import compute_figure2, render_figure2
from repro.experiments.figure3 import compute_figure3, render_figure3
from repro.experiments.hybrid import compute_hybrid, render_figure4, render_table2
from repro.experiments.paper_values import (
    PAPER_TABLE1_A4F,
    PAPER_TABLE2,
    TECHNIQUE_ORDER,
)
from repro.experiments.runner import (
    ALL_TECHNIQUES,
    ResultMatrix,
    SpecOutcome,
    run_spec,
)
from repro.experiments.table1 import compute_table1, render_table1
from repro.llm.prompts import RepairHints


def _spec(spec_id="graphs_a#0000"):
    truth = get_model("graphs_a").source
    faulty = truth.replace("n not in n.^adj", "n not in n.adj", 1)
    return FaultySpec(
        spec_id=spec_id,
        benchmark="alloy4fun",
        domain="graphs",
        model_name="graphs_a",
        faulty_source=faulty,
        truth_source=truth,
        fault_description="closure of adj dropped",
        depth=1,
        hints=RepairHints(
            location="fact 'Acyclic', constraint 1",
            fix_description="A transitive closure seems to be misused here.",
            passing_assertion="NoCycle",
        ),
    )


def _matrix(rep_by_technique: dict[str, list[int]]) -> ResultMatrix:
    """Build a synthetic matrix: each technique gets a rep vector."""
    num_specs = len(next(iter(rep_by_technique.values())))
    specs = []
    for index in range(num_specs):
        spec = _spec(f"s#{index}")
        specs.append(spec)
    matrix = ResultMatrix(benchmark="alloy4fun", seed=0, scale=1.0, specs=specs)
    for index, spec in enumerate(specs):
        row = {}
        for technique, reps in rep_by_technique.items():
            rep_value = reps[index]
            row[technique] = SpecOutcome(
                spec_id=spec.spec_id,
                technique=technique,
                rep=rep_value,
                tm=0.5 + 0.4 * rep_value + 0.01 * index,
                sm=0.6 + 0.3 * rep_value + 0.01 * index,
                status="fixed" if rep_value else "not_fixed",
                elapsed=0.01,
            )
        matrix.outcomes[spec.spec_id] = row
    return matrix


@pytest.fixture
def synthetic_matrices():
    vectors = {}
    base = [1, 0, 1, 1, 0, 1, 0, 0, 1, 1]
    for offset, technique in enumerate(TECHNIQUE_ORDER):
        rotated = base[offset % len(base) :] + base[: offset % len(base)]
        vectors[technique] = rotated
    return [_matrix(vectors)]


class TestRunSpec:
    def test_run_spec_traditional(self):
        outcome = run_spec(_spec(), "BeAFix", seed=0)
        assert outcome.technique == "BeAFix"
        assert outcome.rep in (0, 1)
        assert 0.0 <= outcome.tm <= 1.0
        assert 0.0 <= outcome.sm <= 1.0

    def test_run_spec_llm(self):
        outcome = run_spec(_spec(), "Single-Round_Loc+Fix", seed=0)
        assert outcome.rep in (0, 1)

    def test_run_spec_deterministic(self):
        first = run_spec(_spec(), "Multi-Round_None", seed=3)
        second = run_spec(_spec(), "Multi-Round_None", seed=3)
        assert first.rep == second.rep and first.tm == second.tm

    def test_unknown_technique_rejected(self):
        with pytest.raises(ValueError):
            run_spec(_spec(), "Quantum-Repair", seed=0)

    def test_all_techniques_enumerated(self):
        assert len(ALL_TECHNIQUES) == 12
        assert ALL_TECHNIQUES == TECHNIQUE_ORDER


class TestMatrixProjections:
    def test_rep_count(self, synthetic_matrices):
        matrix = synthetic_matrices[0]
        assert matrix.rep_count("ARepair") == 6

    def test_similarity_series_aligned(self, synthetic_matrices):
        matrix = synthetic_matrices[0]
        series = matrix.similarity_series("ATR", "tm")
        assert len(series) == 10

    def test_repaired_ids(self, synthetic_matrices):
        matrix = synthetic_matrices[0]
        ids = matrix.repaired_ids("ARepair")
        assert len(ids) == 6


class TestRenderers:
    def test_table1_renders(self, synthetic_matrices):
        table = compute_table1(synthetic_matrices[0], synthetic_matrices[0])
        text = render_table1(table)
        assert "Table I" in text and "SUMMARY" in text
        assert "paper(scaled)" in text

    def test_figure2_renders(self, synthetic_matrices):
        figure = compute_figure2(synthetic_matrices)
        text = render_figure2(figure)
        assert "Figure 2" in text and "ATR" in text
        for technique in TECHNIQUE_ORDER:
            assert 0.0 <= figure.tm[technique] <= 1.0

    def test_figure3_renders(self, synthetic_matrices):
        figure = compute_figure3(synthetic_matrices)
        text = render_figure3(figure)
        assert "Pearson" in text
        assert figure.r("ATR", "ATR") == pytest.approx(1.0)

    def test_hybrid_analysis(self, synthetic_matrices):
        analysis = compute_hybrid(synthetic_matrices)
        assert len(analysis.cells) == 32
        cell = analysis.cells[("ATR", "Multi-Round_None")]
        assert cell.union == (
            cell.traditional_repairs + cell.llm_repairs - cell.overlap
        )
        assert cell.unique_traditional >= 0 and cell.unique_llm >= 0

    def test_hybrid_renders(self, synthetic_matrices):
        analysis = compute_hybrid(synthetic_matrices)
        assert "Table II" in render_table2(analysis)
        assert "Venn" in render_figure4(analysis)

    def test_hybrid_union_never_below_parts(self, synthetic_matrices):
        analysis = compute_hybrid(synthetic_matrices)
        for cell in analysis.cells.values():
            assert cell.union >= cell.traditional_repairs
            assert cell.union >= cell.llm_repairs


class TestPaperValues:
    def test_a4f_totals_consistent(self):
        assert sum(
            row["total"]
            for row in __import__(
                "repro.experiments.paper_values", fromlist=["x"]
            ).PAPER_TABLE1_A4F_DOMAINS.values()
        ) == 1936

    def test_table2_unions_consistent(self):
        for (trad, llm), (t, l, o, u) in PAPER_TABLE2.items():
            assert u == t + l - o, (trad, llm)

    def test_technique_names_cover_table1(self):
        assert set(PAPER_TABLE1_A4F) == set(TECHNIQUE_ORDER)
