"""Static candidate pruning: the filter, the ambient switch, the wiring."""

from repro import obs
from repro.alloy.parser import parse_module
from repro.alloy.resolver import resolve_module
from repro.analysis import CandidateFilter, pruning, pruning_enabled
from repro.analysis.prune import record_pruned
from repro.repair.mutation import Mutator

FAULTY = """
sig A {}
sig B { f: set A }
pred p { some A.f }
run p for 3
"""

DEAD_CANDIDATE = """
sig A {}
sig B { f: set A }
pred p { some A.f }
pred q { some A & B }
run p for 3
run q for 3
"""
"""Introduces dead constructs (A202/A204) — reported, but NOT veto
grounds: a repair can carry a dead paragraph and still pass the oracle."""

INFEASIBLE_CANDIDATE = """
sig A {}
sig B { f: set A }
pred p { some B.f }
run p for 3
fact bogus { #A < 0 }
"""
"""Introduces a statically unsatisfiable fact (A501/A504): no instances
under any scope, so the candidate can never meet a run expectation."""

CLEAN = """
sig A {}
sig B { f: set A }
pred p { some B.f }
run p for 3
"""


def modinfo(source: str):
    module = parse_module(source)
    return module, resolve_module(module)


class TestCandidateFilter:
    def test_preexisting_findings_never_veto(self):
        module, info = modinfo(FAULTY)
        filt = CandidateFilter(module, info)
        # The baseline module itself (A201/A204 and all) passes untouched.
        assert filt.veto(module, info) is None

    def test_new_infeasibility_vetoes(self):
        module, info = modinfo(CLEAN)
        filt = CandidateFilter(module, info)
        candidate, candidate_info = modinfo(INFEASIBLE_CANDIDATE)
        diagnostic = filt.veto(candidate, candidate_info)
        assert diagnostic is not None
        assert diagnostic.rule.prunes
        assert diagnostic.code.startswith("A5")

    def test_new_dead_construct_does_not_veto(self):
        # A202/A204 findings are heuristic: the candidate might still be
        # the repair the oracle would select (observed on ARepair), so
        # they must never prune.
        module, info = modinfo(CLEAN)
        filt = CandidateFilter(module, info)
        candidate, candidate_info = modinfo(DEAD_CANDIDATE)
        assert filt.veto(candidate, candidate_info) is None

    def test_info_findings_never_veto(self):
        module, info = modinfo(CLEAN)
        filt = CandidateFilter(module, info)
        candidate, candidate_info = modinfo(
            CLEAN + "\nsig Orphan {}"  # A401 only: hygiene, not dead
        )
        assert filt.veto(candidate, candidate_info) is None

    def test_ambient_switch_disables_veto(self):
        module, info = modinfo(CLEAN)
        filt = CandidateFilter(module, info)
        candidate, candidate_info = modinfo(INFEASIBLE_CANDIDATE)
        with pruning(False):
            assert filt.veto(candidate, candidate_info) is None
        assert filt.veto(candidate, candidate_info) is not None

    def test_pruning_context_nests_and_restores(self):
        assert pruning_enabled()
        with pruning(False):
            assert not pruning_enabled()
            with pruning(True):
                assert pruning_enabled()
            assert not pruning_enabled()
        assert pruning_enabled()

    def test_record_pruned_counts_by_rule(self):
        module, info = modinfo(CLEAN)
        filt = CandidateFilter(module, info)
        candidate, candidate_info = modinfo(INFEASIBLE_CANDIDATE)
        diagnostic = filt.veto(candidate, candidate_info)
        registry = obs.MetricsRegistry()
        with obs.scope(obs.Tracer(), registry):
            record_pruned(diagnostic)
        snapshot = registry.snapshot()
        key = f"analysis.pruned_typed{{rule={diagnostic.rule.name}}}"
        assert snapshot["counters"][key] == 1


class TestMutatorPruning:
    def test_pruned_stream_is_subset_of_unpruned(self):
        module, info = modinfo(CLEAN)
        unpruned = {
            m.description for m in Mutator(module, info).all_mutants()
        }
        pruned = {
            m.description
            for m in Mutator(module, info, prune=True).all_mutants()
        }
        assert pruned <= unpruned

    def test_pruned_mutants_introduce_no_new_dead_findings(self):
        module, info = modinfo(CLEAN)
        filt = CandidateFilter(module, info)
        for mutant in Mutator(module, info, prune=True).all_mutants():
            assert filt.veto(mutant.module) is None

    def test_ambient_off_restores_full_stream(self):
        module, info = modinfo(CLEAN)
        unpruned = [
            m.description for m in Mutator(module, info).all_mutants()
        ]
        with pruning(False):
            gated = [
                m.description
                for m in Mutator(module, info, prune=True).all_mutants()
            ]
        assert gated == unpruned


class TestExecutorPropagation:
    def test_shard_task_carries_static_prune_bit(self, monkeypatch):
        from repro.benchmarks.faults import FaultySpec
        from repro.experiments import runner
        from repro.experiments.executor import ShardTask, execute_shard
        from repro.llm.prompts import RepairHints

        spec = FaultySpec(
            spec_id="s",
            benchmark="adhoc",
            domain="adhoc",
            model_name="s",
            faulty_source=CLEAN,
            truth_source=CLEAN,
            fault_description="",
            depth=0,
            hints=RepairHints(),
        )
        observed = {}

        def fake_run_spec(spec, technique, seed, truth):
            observed[technique] = pruning_enabled()
            return runner._crashed_outcome(spec, technique)

        monkeypatch.setattr(runner, "run_spec", fake_run_spec)
        execute_shard(
            ShardTask(spec=spec, techniques=("T1",), seed=0, static_prune=False)
        )
        execute_shard(
            ShardTask(spec=spec, techniques=("T2",), seed=0, static_prune=True)
        )
        assert observed == {"T1": False, "T2": True}
