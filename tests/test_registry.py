"""The public technique registry behind the experiment engine."""

import pytest

from repro.benchmarks.faults import FaultySpec
from repro.experiments.paper_values import TECHNIQUE_ORDER
from repro.llm.prompts import RepairHints
from repro.repair import registry
from repro.repair.arepair import ARepair
from repro.repair.atr import Atr
from repro.repair.beafix import BeAFix
from repro.repair.icebar import Icebar
from repro.repair.multi_round import MultiRoundLLM
from repro.repair.selector import DynamicSelector
from repro.repair.single_round import SingleRoundLLM

from .conftest import LINKED_LIST_SPEC


def _spec(spec_id="reg-test", benchmark="adhoc") -> FaultySpec:
    return FaultySpec(
        spec_id=spec_id,
        benchmark=benchmark,
        domain="adhoc",
        model_name=spec_id,
        faulty_source=LINKED_LIST_SPEC,
        truth_source=LINKED_LIST_SPEC,
        fault_description="",
        depth=0,
        hints=RepairHints(),
    )


class TestBuiltins:
    def test_standard_techniques_are_the_papers_twelve(self):
        assert registry.all_techniques() == TECHNIQUE_ORDER
        assert len(registry.all_techniques()) == 12
        assert registry.all_techniques() == (
            registry.TRADITIONAL + registry.SINGLE_ROUND + registry.MULTI_ROUND
        )

    def test_dynamic_is_addressable_but_not_standard(self):
        assert registry.is_registered("Dynamic")
        assert "Dynamic" in registry.names()
        assert "Dynamic" not in registry.all_techniques()

    @pytest.mark.parametrize(
        ("name", "expected_type"),
        [
            ("ARepair", ARepair),
            ("ICEBAR", Icebar),
            ("BeAFix", BeAFix),
            ("ATR", Atr),
            ("Single-Round_Loc", SingleRoundLLM),
            ("Multi-Round_Auto", MultiRoundLLM),
            ("Dynamic", DynamicSelector),
        ],
    )
    def test_create_builds_the_right_tool(self, name, expected_type):
        tool = registry.create(name, _spec(), seed=0)
        assert isinstance(tool, expected_type)

    def test_create_builds_a_fresh_tool_per_call(self):
        spec = _spec()
        assert registry.create("ATR", spec, 0) is not registry.create(
            "ATR", spec, 0
        )

    def test_unknown_technique_raises(self):
        with pytest.raises(ValueError, match="unknown technique 'NoSuchTool'"):
            registry.create("NoSuchTool", _spec(), seed=0)


class TestRegistration:
    @pytest.fixture
    def scratch_name(self):
        name = "ScratchTechnique"
        yield name
        registry.unregister(name)

    def test_register_and_create(self, scratch_name):
        built = []

        def factory(spec, seed):
            built.append((spec.spec_id, seed))
            return Atr()

        registry.register(scratch_name, factory)
        tool = registry.create(scratch_name, _spec(), seed=3)
        assert isinstance(tool, Atr)
        assert built == [
            ("reg-test", registry.cell_seed(_spec(), scratch_name, 3))
        ]

    def test_duplicate_registration_raises(self, scratch_name):
        registry.register(scratch_name, lambda spec, seed: Atr())
        with pytest.raises(ValueError, match="already registered"):
            registry.register(scratch_name, lambda spec, seed: Atr())

    def test_replace_is_the_escape_hatch(self, scratch_name):
        registry.register(scratch_name, lambda spec, seed: Atr())
        registry.register(
            scratch_name, lambda spec, seed: BeAFix(), replace=True
        )
        assert isinstance(registry.create(scratch_name, _spec(), 0), BeAFix)

    def test_unregister(self, scratch_name):
        registry.register(scratch_name, lambda spec, seed: Atr())
        registry.unregister(scratch_name)
        assert not registry.is_registered(scratch_name)
        registry.unregister(scratch_name)  # idempotent

    def test_non_standard_registration_keeps_the_matrix_shape(
        self, scratch_name
    ):
        registry.register(scratch_name, lambda spec, seed: Atr())
        assert scratch_name not in registry.all_techniques()
        assert scratch_name in registry.names()


class TestCellSeed:
    def test_deterministic(self):
        spec = _spec()
        assert registry.cell_seed(spec, "ATR", 0) == registry.cell_seed(
            spec, "ATR", 0
        )

    def test_independent_streams(self):
        spec = _spec()
        seeds = {
            registry.cell_seed(spec, "ATR", 0),
            registry.cell_seed(spec, "BeAFix", 0),
            registry.cell_seed(spec, "ATR", 1),
            registry.cell_seed(_spec(spec_id="other"), "ATR", 0),
        }
        assert len(seeds) == 4

    def test_fits_a_32_bit_seed(self):
        value = registry.cell_seed(_spec(), "ATR", 0)
        assert 0 <= value < 2**32
