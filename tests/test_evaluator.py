"""Evaluator tests: relational semantics against hand-computed values."""

import pytest

from repro.alloy.errors import EvaluationError
from repro.alloy.parser import parse_expr, parse_formula, parse_module
from repro.alloy.resolver import resolve_module
from repro.analyzer.evaluator import Evaluator
from repro.analyzer.instance import make_instance

SPEC = """
sig Node { next: lone Node, tags: set Tag }
sig Tag {}
pred hasNext[n: Node] { some n.next }
fun successors[n: Node]: set Node { n.next }
fact Linked { some next }
"""


@pytest.fixture
def info():
    return resolve_module(parse_module(SPEC))


@pytest.fixture
def instance():
    return make_instance(
        {
            "Node": {("N0",), ("N1",), ("N2",)},
            "Tag": {("T0",)},
            "next": {("N0", "N1"), ("N1", "N2")},
            "tags": {("N0", "T0")},
        }
    )


@pytest.fixture
def ev(info, instance):
    return Evaluator(info, instance)


def rel(ev, text, env=None):
    return ev.expr(parse_expr(text), env)


def truth(ev, text, env=None):
    return ev.formula(parse_formula(text), env)


class TestExpressions:
    def test_sig_lookup(self, ev):
        assert rel(ev, "Node") == frozenset({("N0",), ("N1",), ("N2",)})

    def test_none_and_univ(self, ev):
        assert rel(ev, "none") == frozenset()
        assert rel(ev, "univ") == frozenset({("N0",), ("N1",), ("N2",), ("T0",)})

    def test_iden(self, ev):
        assert ("N0", "N0") in rel(ev, "iden")
        assert ("T0", "T0") in rel(ev, "iden")

    def test_union_diff_intersect(self, ev):
        assert rel(ev, "Node + Tag") == rel(ev, "univ")
        assert rel(ev, "Node - Node") == frozenset()
        assert rel(ev, "Node & Node") == rel(ev, "Node")

    def test_join(self, ev):
        assert rel(ev, "Node.next") == frozenset({("N1",), ("N2",)})
        assert rel(ev, "next.next") == frozenset({("N0", "N2")})

    def test_transpose(self, ev):
        assert rel(ev, "~next") == frozenset({("N1", "N0"), ("N2", "N1")})

    def test_closure(self, ev):
        closure = rel(ev, "^next")
        assert closure == frozenset(
            {("N0", "N1"), ("N1", "N2"), ("N0", "N2")}
        )

    def test_reflexive_closure_includes_all_atoms(self, ev):
        rclosure = rel(ev, "*next")
        assert ("T0", "T0") in rclosure
        assert ("N0", "N2") in rclosure

    def test_product(self, ev):
        assert len(rel(ev, "Tag -> Node")) == 3

    def test_override(self, ev):
        result = rel(ev, "next ++ N0placeholder", env=None) if False else None
        # Override with an env-bound relation instead.
        env = {"patch": frozenset({("N0", "N0")})}
        result = rel(ev, "next ++ patch", env)
        assert ("N0", "N0") in result and ("N0", "N1") not in result
        assert ("N1", "N2") in result

    def test_restrictions(self, ev):
        env = {"s": frozenset({("N0",)})}
        assert rel(ev, "s <: next", env) == frozenset({("N0", "N1")})
        assert rel(ev, "next :> s", env) == frozenset()

    def test_cardinality(self, ev):
        assert rel(ev, "#Node") == 3
        assert rel(ev, "#next + 1") == 3

    def test_comprehension(self, ev):
        result = rel(ev, "{ n: Node | no n.next }")
        assert result == frozenset({("N2",)})

    def test_fun_call(self, ev):
        env = {"m": frozenset({("N0",)})}
        assert rel(ev, "successors[m]", env) == frozenset({("N1",)})

    def test_box_join_sugar_on_field(self, ev):
        env = {"m": frozenset({("N0",)})}
        assert rel(ev, "next[m]", env) == frozenset({("N1",)})

    def test_unknown_name_raises(self, ev):
        with pytest.raises(EvaluationError):
            rel(ev, "missing")


class TestFormulas:
    def test_in(self, ev):
        assert truth(ev, "Node.next in Node")
        assert not truth(ev, "Node in Node.next")

    def test_equality(self, ev):
        assert truth(ev, "Node & Tag = none")

    def test_multiplicity_tests(self, ev):
        assert truth(ev, "some next")
        assert truth(ev, "lone N2next", {"N2next": frozenset()})
        assert truth(ev, "no Tag.tags") is False or True  # tags: Node->Tag

    def test_quantifier_all(self, ev):
        assert truth(ev, "all n: Node | lone n.next")

    def test_quantifier_some_no(self, ev):
        assert truth(ev, "some n: Node | no n.next")
        assert truth(ev, "no n: Node | n in n.next")

    def test_quantifier_one_lone(self, ev):
        assert truth(ev, "one n: Node | no n.next")
        assert truth(ev, "lone n: Node | n = N2var", {"N2var": frozenset({("N2",)})})

    def test_disj_quantifier(self, ev):
        assert truth(ev, "some disj a, b: Node | b in a.next")
        assert not truth(ev, "some disj a, b: Tag | a != b")

    def test_implies_else(self, ev):
        assert truth(ev, "some Tag implies some Node else no Node")

    def test_let(self, ev):
        assert truth(ev, "let x = Node.next | x in Node")

    def test_pred_call(self, ev):
        env = {"m": frozenset({("N0",)})}
        assert truth(ev, "hasNext[m]", env)
        env = {"m": frozenset({("N2",)})}
        assert not truth(ev, "hasNext[m]", env)

    def test_int_comparisons(self, ev):
        assert truth(ev, "#Node > #Tag")
        assert truth(ev, "#Node = 3")
        assert truth(ev, "#next <= 2")

    def test_facts_hold(self, ev):
        assert ev.facts_hold()

    def test_facts_fail_on_empty_instance(self, info):
        empty = make_instance({"Node": set(), "Tag": set(), "next": set(), "tags": set()})
        assert not Evaluator(info, empty).facts_hold()
