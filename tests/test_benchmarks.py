"""Benchmark corpus and fault-injection tests."""

import pytest

from repro.analyzer.analyzer import Analyzer
from repro.benchmarks.faults import (
    FaultInjector,
    InjectionConfig,
    describe_fix,
    describe_location,
)
from repro.benchmarks.models import all_models, domains, get_model, models_for_domain
from repro.benchmarks.suite import (
    ALLOY4FUN_COUNTS,
    AREPAIR_COUNTS,
    build_arepair,
    scaled_counts,
    validate_corpus,
)
from repro.metrics.rep import rep


class TestCorpus:
    def test_corpus_validates(self):
        assert validate_corpus() == []

    def test_expected_domains(self):
        assert set(domains("alloy4fun")) == set(ALLOY4FUN_COUNTS)
        assert set(domains("arepair")) == set(AREPAIR_COUNTS)

    def test_each_model_has_run_and_check(self):
        for model in all_models():
            analyzer = Analyzer(model.source)
            kinds = {c.kind for c in analyzer.info.commands}
            assert "run" in kinds and "check" in kinds, model.name

    def test_every_command_annotated(self):
        for model in all_models():
            analyzer = Analyzer(model.source)
            assert all(c.expect is not None for c in analyzer.info.commands)

    def test_classroom_has_multiple_submodels(self):
        assert len(models_for_domain("alloy4fun", "classroom")) >= 2

    def test_get_model(self):
        assert get_model("farmer").domain == "farmer"


class TestFaultInjection:
    @pytest.fixture
    def injector(self):
        model = get_model("graphs_a")
        return FaultInjector(
            model_name=model.name,
            benchmark="alloy4fun",
            domain="graphs",
            truth_source=model.source,
            config=InjectionConfig(),
            seed=42,
        )

    def test_injected_faults_have_rep_zero(self, injector):
        for spec in injector.generate(5):
            assert rep(spec.faulty_source, spec.truth_source) == 0

    def test_injected_faults_compile(self, injector):
        for spec in injector.generate(5):
            Analyzer(spec.faulty_source)  # must not raise

    def test_faults_are_distinct(self, injector):
        specs = injector.generate(8)
        assert len({s.faulty_source for s in specs}) == 8

    def test_generation_deterministic(self):
        model = get_model("graphs_a")

        def build():
            return FaultInjector(
                model.name, "alloy4fun", "graphs", model.source,
                InjectionConfig(), seed=7,
            ).generate(4)

        first = build()
        second = build()
        assert [s.faulty_source for s in first] == [s.faulty_source for s in second]

    def test_hints_populated(self, injector):
        for spec in injector.generate(5):
            assert spec.hints.location
            assert spec.hints.fix_description

    def test_depth_mix_obeys_config(self):
        model = get_model("classroom_a")
        config = InjectionConfig(depth_weights={2: 1.0})
        injector = FaultInjector(
            model.name, "alloy4fun", "classroom", model.source, config, seed=3
        )
        for spec in injector.generate(3):
            assert spec.depth == 2

    def test_spec_ids_unique(self, injector):
        specs = injector.generate(6)
        assert len({s.spec_id for s in specs}) == 6


class TestDescriptions:
    def test_describe_location_fact(self):
        from repro.alloy.parser import parse_module
        from repro.repair.mutation import mutation_points

        module = parse_module(get_model("graphs_a").source)
        points = mutation_points(module)
        text = describe_location(module, points[0])
        assert "'" in text  # names the paragraph

    def test_describe_fix_maps_quantifier(self):
        import random

        config = InjectionConfig(vague_hint_rate=0.0, misleading_hint_rate=0.0)
        text = describe_fix("quantifier all -> some", random.Random(0), config)
        assert "quantifier" in text.lower()

    def test_describe_fix_vague_when_configured(self):
        import random

        config = InjectionConfig(vague_hint_rate=1.0, misleading_hint_rate=0.0)
        text = describe_fix("quantifier all -> some", random.Random(0), config)
        assert "may" in text.lower()


class TestSuiteBuilders:
    def test_arepair_counts_exact(self):
        specs = build_arepair(seed=0)
        assert len(specs) == 38
        by_domain = {}
        for spec in specs:
            by_domain[spec.domain] = by_domain.get(spec.domain, 0) + 1
        assert by_domain == AREPAIR_COUNTS

    def test_scaled_counts(self):
        scaled = scaled_counts(ALLOY4FUN_COUNTS, 0.01)
        assert scaled["production"] == 1  # floor at 1
        assert scaled["classroom"] == 10

    def test_scaled_counts_validates_range(self):
        with pytest.raises(ValueError):
            scaled_counts(ALLOY4FUN_COUNTS, 0.0)

    def test_cache_round_trip(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        from repro.benchmarks.cache import load_benchmark

        first = load_benchmark("arepair", seed=1)
        second = load_benchmark("arepair", seed=1)  # from cache
        assert [s.spec_id for s in first] == [s.spec_id for s in second]
        assert first[0].hints.location == second[0].hints.location
        assert list(tmp_path.glob("*.json"))
