"""Analyzer API tests: command execution, expectations, budget handling."""

import pytest

from repro.alloy.errors import AlloyError, ScopeError
from repro.alloy.nodes import Block, Command
from repro.alloy.parser import parse_formula, parse_module
from repro.analyzer.analyzer import Analyzer, analyze_source, try_analyze


class TestCommands:
    def test_run_and_check(self, marriage_spec):
        results = analyze_source(marriage_spec)
        assert [r.kind for r in results] == ["run", "check"]
        assert results[0].sat and not results[1].sat
        assert all(r.meets_expectation for r in results)

    def test_passed_property(self, marriage_spec):
        results = analyze_source(marriage_spec)
        assert results[0].passed  # run found an instance
        assert results[1].passed  # check found no counterexample

    def test_counterexample_surfaced(self, faulty_linked_list_spec):
        analyzer = Analyzer(faulty_linked_list_spec)
        result = analyzer.check_assertion("NoCycle", scope=3)
        assert result.sat  # counterexample exists
        assert result.instance is not None

    def test_expectation_mismatch_detected(self):
        source = "sig A {}\npred p { no A and some A }\nrun p for 2 expect 1"
        results = analyze_source(source)
        assert not results[0].meets_expectation

    def test_multiple_instances_are_distinct(self, linked_list_spec):
        analyzer = Analyzer(linked_list_spec)
        command = analyzer.info.commands[0]
        result = analyzer.run_command(command, max_instances=10)
        keys = {i.canonical_key() for i in result.instances}
        assert len(keys) == len(result.instances) > 1

    def test_run_pred_helper(self, marriage_spec):
        analyzer = Analyzer(marriage_spec)
        assert analyzer.run_pred("someMarried").sat

    def test_is_consistent(self, marriage_spec):
        assert Analyzer(marriage_spec).is_consistent()

    def test_inconsistent_facts(self):
        source = "sig A {}\nfact { some A }\nfact { no A }\npred p { no none }\nrun p"
        assert not Analyzer(source).is_consistent()

    def test_extra_formulas_constrain_solutions(self, linked_list_spec):
        analyzer = Analyzer(linked_list_spec)
        command = analyzer.info.commands[0]
        extra = [parse_formula("#Node = 3")]
        for instance in analyzer.solutions(command, extra_formulas=extra):
            assert len(instance.relation("Node")) == 3
            break

    def test_anonymous_run_block(self):
        source = "sig A {}\nrun { some A } for 2"
        results = analyze_source(source)
        assert results[0].sat

    def test_unknown_assertion_in_foreign_command(self, marriage_spec):
        analyzer = Analyzer(marriage_spec)
        foreign = Command(kind="check", target="NotThere", default_scope=2)
        with pytest.raises(AlloyError):
            analyzer.run_command(foreign)


class TestScopes:
    def test_scope_zero_sig(self):
        source = "sig A {}\nsig B {}\npred p { some B }\nrun p for 3 but 0 A"
        results = analyze_source(source)
        assert results[0].sat

    def test_scope_on_subsig_rejected(self):
        source = (
            "sig A {}\nsig B extends A {}\npred p { some B }\n"
            "run p for 3 but 2 B"
        )
        analyzer = Analyzer(source)
        with pytest.raises(ScopeError):
            analyzer.execute_all()

    def test_one_sig_forced_to_one(self):
        source = "one sig S {}\npred p { some S }\nrun p for 3"
        analyzer = Analyzer(source)
        result = analyzer.execute_all()[0]
        assert len(result.instance.relation("S")) == 1

    def test_exactly_scope(self):
        source = "sig A {}\npred p { no none }\nrun p for exactly 3 A"
        analyzer = Analyzer(source)
        result = analyzer.execute_all()[0]
        assert len(result.instance.relation("A")) == 3


class TestTryAnalyze:
    def test_success_path(self, marriage_spec):
        results, error = try_analyze(marriage_spec)
        assert error is None and results is not None

    def test_parse_error_reported(self):
        results, error = try_analyze("sig A {")
        assert results is None and error

    def test_resolve_error_reported(self):
        results, error = try_analyze("sig A {}\nfact { some missing }")
        assert results is None and "missing" in error


class TestBudget:
    def test_budget_error_is_alloy_error(self):
        from repro.alloy.errors import AnalysisBudgetError

        assert issubclass(AnalysisBudgetError, AlloyError)

    def test_tiny_budget_trips(self):
        # A model requiring some search with an absurdly small budget.
        source = (
            "sig A { f: A, g: A }\n"
            "fact { all a: A | a.f != a.g  all a: A | some b: A | b.f = a }\n"
            "pred p { #A = 3 }\nrun p for 3\n"
        )
        from repro.alloy.errors import AnalysisBudgetError

        analyzer = Analyzer(source, conflict_limit=1)
        try:
            analyzer.execute_all()
        except AnalysisBudgetError:
            return  # expected on most solver paths
        # If the instance was found without conflicts, that is fine too.
