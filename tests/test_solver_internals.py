"""White-box solver tests: watched-literal invariants, model completeness."""

import random

import pytest

from repro.sat.solver import SatSolver


def make_solver(num_vars, clauses):
    solver = SatSolver()
    for _ in range(num_vars):
        solver.new_var()
    for clause in clauses:
        solver.add_clause(clause)
    return solver


class TestModelCompleteness:
    def test_model_assigns_every_variable(self):
        solver = make_solver(6, [[1, 2], [-3, 4]])
        assert solver.solve()
        model_list = solver.model_list()
        assert len(model_list) == 6
        assert {abs(l) for l in model_list} == set(range(1, 7))

    def test_model_list_consistent_with_model_set(self):
        solver = make_solver(4, [[1], [-2], [3, 4]])
        assert solver.solve()
        trues = solver.model()
        for lit in solver.model_list():
            assert (abs(lit) in trues) == (lit > 0)


class TestWatchInvariant:
    def test_every_clause_watched_twice(self):
        rng = random.Random(3)
        clauses = [
            [rng.choice([1, -1]) * rng.randint(1, 8) for _ in range(3)]
            for _ in range(30)
        ]
        solver = make_solver(8, clauses)
        solver.solve()
        watch_counts: dict[int, int] = {}
        for lit, indices in solver._watches.items():
            for index in indices:
                watch_counts[index] = watch_counts.get(index, 0) + 1
        for index, clause in enumerate(solver._clauses):
            if len(clause) >= 2:
                assert watch_counts.get(index, 0) == 2, (index, clause)

    def test_watched_literals_are_clause_prefix(self):
        solver = make_solver(5, [[1, 2, 3], [-1, -2, 4], [2, 3, 5]])
        solver.solve()
        for index, clause in enumerate(solver._clauses):
            if len(clause) < 2:
                continue
            watchers = [
                lit for lit, idxs in solver._watches.items() if index in idxs
            ]
            assert set(watchers) == {clause[0], clause[1]}


class TestIncrementalStress:
    def test_many_solve_cycles(self):
        rng = random.Random(11)
        solver = SatSolver()
        for _ in range(10):
            solver.new_var()
        for round_index in range(40):
            clause = [
                rng.choice([1, -1]) * rng.randint(1, 10) for _ in range(3)
            ]
            solver.add_clause(clause)
            result = solver.solve()
            if not result:
                break
        # Whatever happened, the solver must stay usable.
        solver.add_clause([1, -1])  # tautology is dropped
        solver.solve()

    def test_unsat_is_sticky(self):
        solver = make_solver(1, [[1], [-1]])
        assert not solver.solve()
        assert not solver.solve()
        solver.add_clause([1])
        assert not solver.solve()
