"""Metric tests: REP, TM (BLEU), SM (subtree kernel), Pearson."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.bleu import modified_precision, sentence_bleu, token_match, tokenize
from repro.metrics.pearson import correlation_matrix, pearson
from repro.metrics.rep import rep, rep_outcome, truth_command_outcomes
from repro.metrics.syntax_match import subtree_multiset, syntax_match

TRUTH = """
sig Node { next: lone Node }
fact Acyclic { all n: Node | n not in n.^next }
pred show { some Node }
assert NoCycle { no n: Node | n in n.^next }
run show for 3 expect 1
check NoCycle for 3 expect 0
"""
FAULTY = TRUTH.replace("n not in n.^next", "n not in n.next")


class TestBleu:
    def test_identical_texts_score_one(self):
        assert sentence_bleu("a b c d e", "a b c d e") == pytest.approx(1.0)

    def test_disjoint_texts_score_zero(self):
        assert sentence_bleu("a b c d", "w x y z") == 0.0

    def test_partial_overlap_between_zero_and_one(self):
        score = sentence_bleu("a b c d e f", "a b c d x y")
        assert 0.0 < score < 1.0

    def test_symmetry_not_required(self):
        # BLEU is directional (candidate vs reference).
        forward = sentence_bleu("a b", "a b c d e f g h")
        backward = sentence_bleu("a b c d e f g h", "a b")
        assert forward != backward

    def test_brevity_penalty_applies(self):
        short = sentence_bleu("a b c d", "a b c d e f g h")
        assert short < 1.0

    def test_empty_candidate(self):
        assert sentence_bleu("", "a b") == 0.0
        assert sentence_bleu("", "") == 1.0

    def test_modified_precision_clipping(self):
        matches, total = modified_precision(
            tokenize("the the the"), tokenize("the cat"), 1
        )
        assert matches == 1 and total == 3

    def test_token_match_on_specs(self):
        assert token_match(TRUTH, TRUTH) == pytest.approx(1.0)
        assert 0.5 < token_match(FAULTY, TRUTH) < 1.0

    @given(st.lists(st.sampled_from("abcdef"), min_size=1, max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_bleu_bounded(self, tokens):
        text = " ".join(tokens)
        score = sentence_bleu(text, "a b c d e f")
        assert 0.0 <= score <= 1.0


class TestSyntaxMatch:
    def test_identical_specs_score_one(self):
        assert syntax_match(TRUTH, TRUTH) == pytest.approx(1.0)

    def test_single_edit_reduces_score(self):
        assert 0.0 < syntax_match(FAULTY, TRUTH) < 1.0

    def test_whitespace_irrelevant(self):
        reformatted = TRUTH.replace("\n", "\n\n").replace("{ ", "{\n")
        assert syntax_match(reformatted, TRUTH) == pytest.approx(1.0)

    def test_unparseable_candidate_scores_zero(self):
        assert syntax_match("not a spec at all", TRUTH) == 0.0

    def test_unparseable_reference_rejected(self):
        with pytest.raises(ValueError):
            syntax_match(TRUTH, "garbage ::")

    def test_disjoint_specs_score_low(self):
        other = "sig Zebra { stripes: set Zebra }"
        assert syntax_match(other, TRUTH) < 0.5

    def test_subtree_multiset_counts(self):
        from repro.alloy.parser import parse_module

        counts = subtree_multiset(parse_module("sig A {}\nsig B {}"))
        assert sum(counts.values()) >= 3

    def test_more_similar_scores_higher(self):
        barely_changed = TRUTH.replace("some Node", "no Node")
        heavily_changed = TRUTH.replace(
            "all n: Node | n not in n.^next", "some Node"
        )
        assert syntax_match(barely_changed, TRUTH) > syntax_match(
            heavily_changed, TRUTH
        )


class TestRep:
    def test_truth_scores_one(self):
        assert rep(TRUTH, TRUTH) == 1

    def test_fault_scores_zero(self):
        assert rep(FAULTY, TRUTH) == 0

    def test_uncompilable_candidate_scores_zero(self):
        outcome = rep_outcome("sig A {", TRUTH)
        assert outcome.rep == 0 and not outcome.compiled

    def test_mismatched_commands_reported(self):
        outcome = rep_outcome(FAULTY, TRUTH)
        assert "NoCycle" in outcome.mismatched_commands

    def test_cached_truth_outcomes(self):
        cached = truth_command_outcomes(TRUTH)
        outcome = rep_outcome(TRUTH, TRUTH, cached)
        assert outcome.rep == 1

    def test_semantically_equivalent_variant_scores_one(self):
        variant = TRUTH.replace(
            "all n: Node | n not in n.^next",
            "no n: Node | n in n.^next",
        )
        assert rep(variant, TRUTH) == 1

    def test_truth_without_commands_rejected(self):
        with pytest.raises(ValueError):
            rep(TRUTH, "sig A {}")

    def test_candidate_missing_assertion_scores_zero(self):
        candidate = TRUTH.replace("NoCycle", "Renamed")
        assert rep(candidate, TRUTH) == 0


class TestPearson:
    def test_perfect_positive(self):
        result = pearson([1, 2, 3, 4], [2, 4, 6, 8])
        assert result.r == pytest.approx(1.0)
        assert result.p_value == pytest.approx(0.0)

    def test_perfect_negative(self):
        assert pearson([1, 2, 3], [3, 2, 1]).r == pytest.approx(-1.0)

    def test_constant_series_is_zero(self):
        result = pearson([1, 1, 1], [1, 2, 3])
        assert result.r == 0.0 and result.p_value == 1.0

    def test_matches_scipy(self):
        import scipy.stats

        xs = [0.1, 0.4, 0.35, 0.8, 0.6, 0.9, 0.2, 0.5]
        ys = [0.2, 0.5, 0.3, 0.7, 0.65, 0.8, 0.25, 0.45]
        ours = pearson(xs, ys)
        theirs = scipy.stats.pearsonr(xs, ys)
        assert ours.r == pytest.approx(theirs.statistic, abs=1e-9)
        assert ours.p_value == pytest.approx(theirs.pvalue, abs=1e-6)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            pearson([1, 2], [1, 2, 3])

    def test_too_few_points_rejected(self):
        with pytest.raises(ValueError):
            pearson([1, 2], [3, 4])

    def test_correlation_matrix_symmetric(self):
        series = {"a": [1.0, 2.0, 3.0, 2.5], "b": [2.0, 2.5, 3.5, 3.0]}
        matrix = correlation_matrix(series)
        assert matrix[("a", "b")].r == matrix[("b", "a")].r
        assert matrix[("a", "a")].r == pytest.approx(1.0)

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=1),
                st.floats(min_value=0, max_value=1),
            ),
            min_size=3,
            max_size=40,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_r_bounded(self, pairs):
        xs = [p[0] for p in pairs]
        ys = [p[1] for p in pairs]
        result = pearson(xs, ys)
        assert -1.0 <= result.r <= 1.0
        assert 0.0 <= result.p_value <= 1.0
