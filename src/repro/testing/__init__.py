"""AUnit-style testing of Alloy specifications (the ARepair test substrate)."""

from repro.testing.aunit import FACTS_TARGET, AUnitTest, TestSuite
from repro.testing.generation import (
    counterexample_test,
    generate_suite,
    witness_test,
)

__all__ = [
    "AUnitTest",
    "FACTS_TARGET",
    "TestSuite",
    "counterexample_test",
    "generate_suite",
    "witness_test",
]
