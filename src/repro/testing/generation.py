"""Test-suite generation from a reference (oracle) specification.

In the study's setting, AUnit suites for the ARepair benchmark were written
by the tool authors against the intended semantics.  We regenerate that
setup mechanically: instances satisfying the *oracle* specification's facts
become positive tests; near-miss instances violating them become negative
tests.  The suite's size and diversity control how much ARepair can overfit,
which is exactly the failure mode the paper attributes to it.
"""

from __future__ import annotations

import random

from repro.alloy.nodes import Block, Command, Not
from repro.analyzer.analyzer import Analyzer
from repro.analyzer.instance import Instance
from repro.testing.aunit import FACTS_TARGET, AUnitTest, TestSuite


def generate_suite(
    oracle: Analyzer,
    scope: int = 3,
    positives: int = 4,
    negatives: int = 4,
    seed: int = 0,
) -> TestSuite:
    """Build an AUnit suite from an oracle specification.

    Positive tests are instances of the oracle's facts; negative tests are
    instances of their negation (valuations the oracle rejects).  Both kinds
    are sampled deterministically from the analyzer's enumeration order,
    shuffled by ``seed`` so different suites stress different corners.
    """
    rng = random.Random(seed)
    tests: list[AUnitTest] = []

    sat_command = Command(kind="run", block=Block(), default_scope=scope)
    found_positive = _sample_instances(oracle, sat_command, positives * 3, rng)
    for index, instance in enumerate(found_positive[:positives]):
        tests.append(
            AUnitTest(
                name=f"pos{index}",
                instance=instance,
                expect=True,
                target=FACTS_TARGET,
            )
        )

    # Negative tests: valuations that violate at least one fact.  We solve
    # for "not (all facts)" with no facts asserted, by checking the block of
    # facts as a pseudo-assertion.
    fact_formulas = [f for fact in oracle.info.facts for f in fact.body.formulas]
    if fact_formulas:
        neg_command = Command(
            kind="run",
            block=Block(formulas=[Not(operand=Block(formulas=fact_formulas))]),
            default_scope=scope,
        )
        found_negative = _sample_negative_instances(
            oracle, neg_command, negatives * 3, rng
        )
        for index, instance in enumerate(found_negative[:negatives]):
            tests.append(
                AUnitTest(
                    name=f"neg{index}",
                    instance=instance,
                    expect=False,
                    target=FACTS_TARGET,
                )
            )

    rng.shuffle(tests)
    return TestSuite(tests=tests)


def _sample_instances(
    analyzer: Analyzer, command: Command, limit: int, rng: random.Random
) -> list[Instance]:
    instances: list[Instance] = []
    for instance in analyzer.solutions(command):
        instances.append(instance)
        if len(instances) >= limit:
            break
    rng.shuffle(instances)
    return instances


def _sample_negative_instances(
    analyzer: Analyzer, command: Command, limit: int, rng: random.Random
) -> list[Instance]:
    """Instances violating the oracle's facts.

    The command's block already encodes the negation; facts are *not*
    asserted during this solve because :meth:`Analyzer.solutions` always
    asserts them — so we solve on a shadow module without facts.
    """
    import copy

    from repro.alloy.nodes import FactDecl

    shadow_module = copy.deepcopy(analyzer.module)
    shadow_module.paragraphs = [
        p for p in shadow_module.paragraphs if not isinstance(p, FactDecl)
    ]
    shadow = Analyzer(shadow_module)
    return _sample_instances(shadow, command, limit, rng)


def counterexample_test(instance: Instance, name: str) -> AUnitTest:
    """Wrap an analyzer counterexample as a failing-expectation test.

    This is the test ICEBAR derives from each counterexample: the valuation
    must *not* satisfy the repaired specification's facts."""
    return AUnitTest(name=name, instance=instance, expect=False, target=FACTS_TARGET)


def witness_test(instance: Instance, name: str) -> AUnitTest:
    """Wrap a satisfying instance as a passing-expectation test."""
    return AUnitTest(name=name, instance=instance, expect=True, target=FACTS_TARGET)
