"""AUnit-style unit tests for Alloy specifications.

Following Sullivan et al.'s AUnit framework (the test format consumed by
ARepair), a test pairs a concrete *valuation* — an :class:`Instance` — with
an expectation about the specification: either that the facts (and optionally
a predicate) hold in the valuation, or that they do not.

ARepair searches for a specification under which every test passes; ICEBAR
grows the suite with counterexample-derived tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.alloy.errors import AlloyError
from repro.alloy.resolver import ModuleInfo
from repro.analyzer.evaluator import Evaluator
from repro.analyzer.instance import Instance

FACTS_TARGET = "<facts>"
"""Pseudo-target meaning "the conjunction of all facts"."""


@dataclass(frozen=True)
class AUnitTest:
    """One AUnit-style test case."""

    name: str
    instance: Instance
    expect: bool
    target: str = FACTS_TARGET
    """Either :data:`FACTS_TARGET` or the name of a zero-argument predicate
    (which is checked in conjunction with the facts, as AUnit commands do)."""

    def passes(self, info: ModuleInfo) -> bool:
        """Whether the test passes against the given (resolved) module."""
        evaluator = Evaluator(info, self.instance)
        try:
            actual = evaluator.facts_hold()
            if actual and self.target != FACTS_TARGET:
                actual = evaluator.pred_holds(self.target)
        except AlloyError:
            # A valuation the candidate cannot even evaluate counts as a
            # failure, mirroring AUnit's treatment of runtime errors.
            return False
        return actual == self.expect


@dataclass
class TestSuite:
    """An ordered collection of AUnit tests."""

    __test__ = False  # not a pytest class, despite the name

    tests: list[AUnitTest]

    def __len__(self) -> int:
        return len(self.tests)

    def __iter__(self):
        return iter(self.tests)

    def passing(self, info: ModuleInfo) -> list[AUnitTest]:
        return [test for test in self.tests if test.passes(info)]

    def failing(self, info: ModuleInfo) -> list[AUnitTest]:
        return [test for test in self.tests if not test.passes(info)]

    def all_pass(self, info: ModuleInfo) -> bool:
        return not self.failing(info)

    def score(self, info: ModuleInfo) -> float:
        """Fraction of tests passing (1.0 for an empty suite)."""
        if not self.tests:
            return 1.0
        return len(self.passing(info)) / len(self.tests)

    def add(self, test: AUnitTest) -> None:
        self.tests.append(test)

    def merged_with(self, other: "TestSuite") -> "TestSuite":
        """A new suite with this suite's tests followed by unseen tests of
        ``other`` (deduplicated by valuation and expectation)."""
        seen = {(t.instance.canonical_key(), t.target, t.expect) for t in self.tests}
        merged = list(self.tests)
        for test in other.tests:
            key = (test.instance.canonical_key(), test.target, test.expect)
            if key not in seen:
                merged.append(test)
                seen.add(key)
        return TestSuite(tests=merged)
