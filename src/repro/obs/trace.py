"""Hierarchical spans: the tracing half of the observability subsystem.

A :class:`Tracer` produces nested :class:`Span` records via the
``span(name, **attrs)`` context manager.  Design constraints, in order:

- **zero dependencies** — plain stdlib, picklable span payloads;
- **cheap when disabled** — the default tracer is :data:`NULL_TRACER`,
  whose ``span`` call returns a shared no-op context manager, so
  instrumented hot paths (every solver call is one) pay only a method
  call and a kwargs dict when tracing is off;
- **thread-safe** — each thread keeps its own open-span stack in a
  ``threading.local``; only the finished-roots list is shared (and
  locked), so shards running on a thread pool can share one tracer
  without interleaving their span trees.

Timing uses ``time.perf_counter`` (monotonic); spans record durations,
never wall-clock timestamps, so traces from different workers compare.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any


@dataclass
class Span:
    """One timed, attributed region of work; children nest inside it."""

    name: str
    attrs: dict[str, Any] = field(default_factory=dict)
    duration: float = 0.0
    children: list["Span"] = field(default_factory=list)

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes after entry (e.g. counts known only at exit)."""
        self.attrs.update(attrs)
        return self

    def to_json(self) -> dict:
        payload: dict[str, Any] = {"name": self.name, "duration": self.duration}
        if self.attrs:
            payload["attrs"] = dict(self.attrs)
        if self.children:
            payload["children"] = [child.to_json() for child in self.children]
        return payload

    @classmethod
    def from_json(cls, payload: dict) -> "Span":
        return cls(
            name=payload["name"],
            attrs=dict(payload.get("attrs", {})),
            duration=payload["duration"],
            children=[cls.from_json(c) for c in payload.get("children", [])],
        )


class _ActiveSpan:
    """The context manager returned by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_span", "_start")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span
        self._start = 0.0

    def __enter__(self) -> Span:
        self._start = time.perf_counter()
        self._tracer._push(self._span)
        return self._span

    def __exit__(self, *exc_info) -> None:
        # Always closes, including on exceptions (UNSAT-by-assumption,
        # budget overruns): the duration is whatever elapsed until unwind.
        self._span.duration = time.perf_counter() - self._start
        self._tracer._pop(self._span)


class Tracer:
    """Collects span trees; one instance per traced unit of work."""

    enabled = True

    def __init__(self) -> None:
        self._roots: list[Span] = []
        self._lock = threading.Lock()
        self._local = threading.local()

    def span(self, name: str, /, **attrs: Any) -> _ActiveSpan:
        """Open a span nested under the current thread's innermost span."""
        return _ActiveSpan(self, Span(name=name, attrs=attrs))

    def current(self) -> Span | None:
        """The innermost open span on the calling thread, if any."""
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    def roots(self) -> list[Span]:
        """Finished top-level spans, in completion order."""
        with self._lock:
            return list(self._roots)

    def adopt(self, spans: list[Span]) -> None:
        """Append already-finished root spans (merging worker traces)."""
        with self._lock:
            self._roots.extend(spans)

    # -- stack management (called by _ActiveSpan) --------------------------

    def _push(self, span: Span) -> None:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = self._local.stack
        assert stack and stack[-1] is span, "span stack corrupted"
        stack.pop()
        if stack:
            stack[-1].children.append(span)
        else:
            with self._lock:
                self._roots.append(span)


class NullSpan:
    """The span handed out when tracing is off; absorbs everything."""

    __slots__ = ()
    name = ""
    attrs: dict[str, Any] = {}
    duration = 0.0
    children: list[Span] = []

    def set(self, **attrs: Any) -> "NullSpan":
        return self


class _NullActiveSpan:
    __slots__ = ()

    def __enter__(self) -> NullSpan:
        return NULL_SPAN

    def __exit__(self, *exc_info) -> None:
        pass


class NullTracer:
    """The disabled tracer: every call is a constant-time no-op."""

    enabled = False

    def span(self, name: str, /, **attrs: Any) -> _NullActiveSpan:
        return _NULL_ACTIVE_SPAN

    def current(self) -> None:
        return None

    def roots(self) -> list[Span]:
        return []

    def adopt(self, spans: list[Span]) -> None:
        pass


NULL_SPAN = NullSpan()
_NULL_ACTIVE_SPAN = _NullActiveSpan()
NULL_TRACER = NullTracer()
