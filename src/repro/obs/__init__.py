"""``repro.obs`` — tracing, metrics, and profiling for the whole stack.

The instrumented layers (SAT solver, analyzer, repair tools, LLM client)
never receive a tracer explicitly; they ask this module for the *active*
observability scope:

    with obs.scope(Tracer(), MetricsRegistry()):
        ...            # everything on this thread records spans/metrics

    obs.span("sat.solve")              # context manager; no-op outside a scope
    obs.counter("llm.requests").inc()  # ditto

The scope is **thread-local**: each experiment shard installs its own
tracer/registry inside its worker (thread or forked process), so parallel
shards never interleave, and code outside any scope — the default for
every library caller and the whole tier-1 suite — hits the shared
:data:`~repro.obs.trace.NULL_TRACER` / :data:`~repro.obs.metrics.NULL_METRICS`
no-op objects, keeping the untraced path allocation-light.

:func:`labels` adds ambient metric labels: ``with obs.labels(technique="ATR")``
makes every instrument created inside the block carry that label, which is
how solver and LLM metrics get attributed to the repair technique that
triggered them without threading names through every constructor.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Iterator

from repro.obs.metrics import (
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetrics,
    metric_key,
    parse_key,
)
from repro.obs.trace import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetrics",
    "NullTracer",
    "Span",
    "Tracer",
    "counter",
    "gauge",
    "get_metrics",
    "get_tracer",
    "histogram",
    "labels",
    "metric_key",
    "parse_key",
    "scope",
    "span",
    "tracing_enabled",
]

_ACTIVE = threading.local()


def get_tracer() -> Tracer | NullTracer:
    """The calling thread's tracer (:data:`NULL_TRACER` outside a scope)."""
    return getattr(_ACTIVE, "tracer", NULL_TRACER)


def get_metrics() -> MetricsRegistry | NullMetrics:
    """The calling thread's registry (:data:`NULL_METRICS` outside a scope)."""
    return getattr(_ACTIVE, "metrics", NULL_METRICS)


def tracing_enabled() -> bool:
    return get_tracer().enabled


@contextmanager
def scope(
    tracer: Tracer | NullTracer, metrics: MetricsRegistry | NullMetrics
) -> Iterator[None]:
    """Install an observability scope on the calling thread."""
    previous = (
        getattr(_ACTIVE, "tracer", NULL_TRACER),
        getattr(_ACTIVE, "metrics", NULL_METRICS),
        getattr(_ACTIVE, "labels", {}),
    )
    _ACTIVE.tracer = tracer
    _ACTIVE.metrics = metrics
    _ACTIVE.labels = {}
    try:
        yield
    finally:
        _ACTIVE.tracer, _ACTIVE.metrics, _ACTIVE.labels = previous


@contextmanager
def labels(**extra: Any) -> Iterator[None]:
    """Merge ambient labels into every instrument created in the block."""
    previous = getattr(_ACTIVE, "labels", {})
    _ACTIVE.labels = {**previous, **extra}
    try:
        yield
    finally:
        _ACTIVE.labels = previous


def _merged(explicit: dict[str, Any]) -> dict[str, Any]:
    ambient = getattr(_ACTIVE, "labels", None)
    if not ambient:
        return explicit
    return {**ambient, **explicit}


def span(name: str, /, **attrs: Any):
    """Open a span on the active tracer (no-op outside a scope)."""
    return get_tracer().span(name, **attrs)


def counter(name: str, **labels_: Any):
    return get_metrics().counter(name, **_merged(labels_))


def gauge(name: str, **labels_: Any):
    return get_metrics().gauge(name, **_merged(labels_))


def histogram(name: str, **labels_: Any):
    return get_metrics().histogram(name, **_merged(labels_))
