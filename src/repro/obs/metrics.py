"""Counters, gauges, and histograms: the metrics half of observability.

A :class:`MetricsRegistry` hands out named instruments on demand.  Names
carry optional labels — ``registry.counter("repair.candidates",
technique="ATR")`` — encoded into a flat string key
(``repair.candidates{technique=ATR}``) so snapshots stay picklable and
JSON-friendly across process boundaries.

Instruments are lock-protected (shards on a thread pool may share a
registry); the disabled default, :data:`NULL_METRICS`, hands out shared
no-op instruments so the untraced path allocates nothing per call site.

Snapshots are mergeable: counters add, gauges keep their maximum (the
only aggregation that is order-independent across shards), histograms
concatenate their reservoirs — which is how per-shard registries from
worker processes fold into one run-level registry.
"""

from __future__ import annotations

import threading
from typing import Any

_RESERVOIR_CAP = 4096
"""Raw values kept per histogram; count/sum/min/max stay exact beyond it,
percentiles become approximate (computed over the first CAP samples)."""


def metric_key(name: str, labels: dict[str, Any]) -> str:
    """Encode a name + labels into the flat snapshot key."""
    if not labels:
        return name
    rendered = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{rendered}}}"


def parse_key(key: str) -> tuple[str, dict[str, str]]:
    """Invert :func:`metric_key`."""
    if not key.endswith("}") or "{" not in key:
        return key, {}
    name, _, rest = key.partition("{")
    labels: dict[str, str] = {}
    for pair in rest[:-1].split(","):
        if "=" in pair:
            label, _, value = pair.partition("=")
            labels[label] = value
    return name, labels


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("_lock", "value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.value = 0

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self.value += n


class Gauge:
    """A last-written value (merged across shards as the maximum)."""

    __slots__ = ("_lock", "value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value


class Histogram:
    """A distribution with exact count/sum/min/max and cheap percentiles."""

    __slots__ = ("_lock", "count", "total", "minimum", "maximum", "values")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.count = 0
        self.total = 0.0
        self.minimum: float | None = None
        self.maximum: float | None = None
        self.values: list[float] = []

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.total += value
            if self.minimum is None or value < self.minimum:
                self.minimum = value
            if self.maximum is None or value > self.maximum:
                self.maximum = value
            if len(self.values) < _RESERVOIR_CAP:
                self.values.append(value)

    def summary(self) -> dict[str, float]:
        with self._lock:
            if not self.count:
                return {"count": 0}
            ordered = sorted(self.values)
            return {
                "count": self.count,
                "sum": self.total,
                "min": self.minimum,
                "max": self.maximum,
                "mean": self.total / self.count,
                "p50": _percentile(ordered, 0.50),
                "p90": _percentile(ordered, 0.90),
                "p99": _percentile(ordered, 0.99),
            }


def _percentile(ordered: list[float], q: float) -> float:
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


class MetricsRegistry:
    """Get-or-create instrument store with picklable snapshots."""

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get(self._counters, Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get(self._gauges, Gauge, name, labels)

    def histogram(self, name: str, **labels: Any) -> Histogram:
        return self._get(self._histograms, Histogram, name, labels)

    def _get(self, store: dict, factory, name: str, labels: dict) -> Any:
        key = metric_key(name, labels)
        with self._lock:
            instrument = store.get(key)
            if instrument is None:
                instrument = store[key] = factory()
            return instrument

    # -- aggregation -------------------------------------------------------

    def snapshot(self) -> dict:
        """A picklable, JSON-safe dump of every instrument."""
        with self._lock:
            return {
                "counters": {k: c.value for k, c in self._counters.items()},
                "gauges": {k: g.value for k, g in self._gauges.items()},
                "histograms": {
                    k: {
                        "count": h.count,
                        "sum": h.total,
                        "min": h.minimum,
                        "max": h.maximum,
                        "values": list(h.values),
                    }
                    for k, h in self._histograms.items()
                },
            }

    def merge(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` from another registry into this one."""
        for key, value in snapshot.get("counters", {}).items():
            self._get(self._counters, Counter, *parse_key_pair(key)).inc(value)
        for key, value in snapshot.get("gauges", {}).items():
            gauge = self._get(self._gauges, Gauge, *parse_key_pair(key))
            gauge.set(max(gauge.value, value))
        for key, dump in snapshot.get("histograms", {}).items():
            histogram = self._get(
                self._histograms, Histogram, *parse_key_pair(key)
            )
            with histogram._lock:
                histogram.count += dump["count"]
                histogram.total += dump["sum"]
                if dump["min"] is not None:
                    histogram.minimum = (
                        dump["min"]
                        if histogram.minimum is None
                        else min(histogram.minimum, dump["min"])
                    )
                if dump["max"] is not None:
                    histogram.maximum = (
                        dump["max"]
                        if histogram.maximum is None
                        else max(histogram.maximum, dump["max"])
                    )
                room = _RESERVOIR_CAP - len(histogram.values)
                if room > 0:
                    histogram.values.extend(dump["values"][:room])

    def counter_values(self) -> dict[str, int]:
        with self._lock:
            return {k: c.value for k, c in self._counters.items()}

    def histogram_summaries(self) -> dict[str, dict[str, float]]:
        with self._lock:
            items = list(self._histograms.items())
        return {k: h.summary() for k, h in items}


def parse_key_pair(key: str) -> tuple[str, dict[str, str]]:
    """:func:`parse_key`, shaped for ``_get(store, factory, name, labels)``."""
    return parse_key(key)


class _NullInstrument:
    """One object plays all three disabled instruments."""

    __slots__ = ()
    value = 0
    count = 0

    def inc(self, n: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def summary(self) -> dict[str, float]:
        return {"count": 0}


class NullMetrics:
    """The disabled registry: every instrument is the shared no-op."""

    enabled = False

    def counter(self, name: str, **labels: Any) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, **labels: Any) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, **labels: Any) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def snapshot(self) -> dict:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def merge(self, snapshot: dict) -> None:
        pass

    def counter_values(self) -> dict[str, int]:
        return {}

    def histogram_summaries(self) -> dict[str, dict[str, float]]:
        return {}


_NULL_INSTRUMENT = _NullInstrument()
NULL_METRICS = NullMetrics()
