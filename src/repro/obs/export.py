"""Trace export and the text renderers behind ``repro trace`` / ``repro profile``.

A trace file is JSONL (one record per line) written through the same
atomic, schema-stamped writer as every other durable artifact
(:mod:`repro.runtime.persist`).  Line shapes after the schema header:

- ``{"type": "run", ...}`` — run metadata (benchmark, seed, scale);
- ``{"type": "span", "name", "path", "depth", "duration", "attrs"}`` —
  one per span, flattened depth-first so the file streams and greps well;
- ``{"type": "metric", "kind": "counter"|"gauge", "key", "value"}``;
- ``{"type": "metric", "kind": "histogram", "key", "summary": {...}}``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

from repro.obs.metrics import MetricsRegistry, parse_key
from repro.obs.trace import Span
from repro.runtime.persist import atomic_write_jsonl, load_jsonl

TRACE_SCHEMA = "repro-trace/1"
"""Stamped into every trace file; bump on any record-shape change."""


def flatten_spans(spans: list[Span]) -> Iterator[dict]:
    """Depth-first span records with ``path``/``depth`` locating each one."""
    stack: list[tuple[Span, str, int]] = [
        (span, span.name, 0) for span in reversed(spans)
    ]
    while stack:
        span, path, depth = stack.pop()
        record: dict[str, Any] = {
            "type": "span",
            "name": span.name,
            "path": path,
            "depth": depth,
            "duration": round(span.duration, 6),
        }
        if span.attrs:
            record["attrs"] = dict(span.attrs)
        yield record
        for child in reversed(span.children):
            stack.append((child, f"{path}/{child.name}", depth + 1))


def trace_records(
    spans: list[Span], metrics: MetricsRegistry, meta: dict | None = None
) -> Iterator[dict]:
    """Every record of a trace file, metadata first."""
    if meta:
        yield {"type": "run", **meta}
    yield from flatten_spans(spans)
    snapshot = metrics.snapshot()
    for key, value in snapshot["counters"].items():
        yield {"type": "metric", "kind": "counter", "key": key, "value": value}
    for key, value in snapshot["gauges"].items():
        yield {"type": "metric", "kind": "gauge", "key": key, "value": value}
    summaries = metrics.histogram_summaries()
    for key in snapshot["histograms"]:
        yield {
            "type": "metric",
            "kind": "histogram",
            "key": key,
            "summary": summaries.get(key, {"count": 0}),
        }


def write_trace(
    path: Path,
    spans: list[Span],
    metrics: MetricsRegistry,
    meta: dict | None = None,
) -> None:
    """Write one run's trace file atomically."""
    atomic_write_jsonl(
        path, trace_records(spans, metrics, meta), schema=TRACE_SCHEMA
    )


@dataclass
class TraceData:
    """A parsed trace file, ready for rendering or assertions."""

    meta: dict = field(default_factory=dict)
    spans: list[dict] = field(default_factory=list)
    counters: dict[str, float] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    histograms: dict[str, dict] = field(default_factory=dict)

    def span_names(self) -> set[str]:
        return {record["name"] for record in self.spans}

    def counter_total(self, name: str) -> float:
        """Sum of one counter across every label combination."""
        return sum(
            value
            for key, value in self.counters.items()
            if parse_key(key)[0] == name
        )

    def techniques(self) -> list[str]:
        """Label values seen on any ``technique``-labelled metric."""
        seen: list[str] = []
        for key in self.counters:
            technique = parse_key(key)[1].get("technique")
            if technique is not None and technique not in seen:
                seen.append(technique)
        return sorted(seen)

    def labelled_counter(self, name: str, technique: str) -> float:
        return self.counters.get(
            f"{name}{{technique={technique}}}", 0
        )

    def labelled_total(self, name: str, technique: str) -> float:
        """Sum of one counter over every key carrying ``technique=...``,
        regardless of extra labels (``analysis.pruned_typed`` also carries
        the winning ``rule``, which an exact key lookup would miss)."""
        total = 0.0
        for key, value in self.counters.items():
            base, labels = parse_key(key)
            if base == name and labels.get("technique") == technique:
                total += value
        return total


def read_trace(path: Path) -> TraceData:
    """Parse a trace file (raises ``CacheCorruptionError`` if unusable)."""
    data = TraceData()
    for record in load_jsonl(path, schema=TRACE_SCHEMA):
        kind = record.get("type")
        if kind == "run":
            data.meta = {k: v for k, v in record.items() if k != "type"}
        elif kind == "span":
            data.spans.append(record)
        elif kind == "metric":
            if record["kind"] == "counter":
                data.counters[record["key"]] = record["value"]
            elif record["kind"] == "gauge":
                data.gauges[record["key"]] = record["value"]
            else:
                data.histograms[record["key"]] = record["summary"]
    return data


def trace_data_from_snapshot(snapshot: dict, meta: dict | None = None) -> TraceData:
    """Build a renderable :class:`TraceData` straight from a metrics
    snapshot (``ResultMatrix.telemetry["metrics"]``) — no trace file
    round-trip needed for in-process reporting."""
    registry = MetricsRegistry()
    registry.merge(snapshot)
    return TraceData(
        meta=dict(meta or {}),
        counters=dict(snapshot.get("counters", {})),
        gauges=dict(snapshot.get("gauges", {})),
        histograms=registry.histogram_summaries(),
    )


def merge_trace_data(datas: list[TraceData]) -> TraceData:
    """Fold several trace files into one view (``repro profile`` over a
    multi-benchmark run).  Counters and gauges merge exactly (sum / max);
    histogram summaries merge conservatively — count, sum, min, max and the
    weighted mean are exact, while p50/p90/p99 are upper bounds (the max
    across inputs), which is the honest direction for a cost rollup."""
    if len(datas) == 1:
        return datas[0]
    merged = TraceData()
    for data in datas:
        if data.meta and not merged.meta:
            merged.meta = dict(data.meta)
        elif data.meta:
            merged.meta = {"merged": len(datas)}
        merged.spans.extend(data.spans)
        for key, value in data.counters.items():
            merged.counters[key] = merged.counters.get(key, 0) + value
        for key, value in data.gauges.items():
            merged.gauges[key] = max(merged.gauges.get(key, value), value)
        for key, summary in data.histograms.items():
            if not summary.get("count"):
                continue
            into = merged.histograms.setdefault(key, {"count": 0})
            if not into["count"]:
                merged.histograms[key] = dict(summary)
                continue
            total = into["count"] + summary["count"]
            into["mean"] = (
                into["mean"] * into["count"] + summary["mean"] * summary["count"]
            ) / total
            into["count"] = total
            into["sum"] = into["sum"] + summary["sum"]
            into["min"] = min(into["min"], summary["min"])
            into["max"] = max(into["max"], summary["max"])
            for quantile in ("p50", "p90", "p99"):
                into[quantile] = max(into[quantile], summary[quantile])
    return merged


# -- rendering ---------------------------------------------------------------


def _table(headers: list[str], rows: list[list[str]]) -> str:
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]
    def fmt(cells: list[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def render_trace(data: TraceData, top: int = 12) -> str:
    """The ``repro trace`` report: aggregate span costs + slowest cells."""
    sections: list[str] = []
    if data.meta:
        described = "  ".join(f"{k}={v}" for k, v in sorted(data.meta.items()))
        sections.append(f"TRACE — {described}")
    else:
        sections.append("TRACE")
    sections.append("")

    by_name: dict[str, list[float]] = {}
    for record in data.spans:
        by_name.setdefault(record["name"], []).append(record["duration"])
    rows = []
    ranked = sorted(by_name.items(), key=lambda kv: -sum(kv[1]))[:top]
    for name, durations in ranked:
        rows.append(
            [
                name,
                str(len(durations)),
                f"{sum(durations):.3f}",
                f"{sum(durations) / len(durations):.4f}",
                f"{max(durations):.4f}",
            ]
        )
    sections.append(f"Top spans by total time (of {len(data.spans)} spans)")
    sections.append(
        _table(["span", "count", "total s", "mean s", "max s"], rows)
    )
    sections.append("")

    cells = [r for r in data.spans if r["name"] == "cell"]
    cells.sort(key=lambda r: -r["duration"])
    rows = [
        [
            str(record.get("attrs", {}).get("spec", "?")),
            str(record.get("attrs", {}).get("technique", "?")),
            str(record.get("attrs", {}).get("status", "?")),
            f"{record['duration']:.3f}",
        ]
        for record in cells[:top]
    ]
    sections.append(f"Slowest cells (of {len(cells)})")
    sections.append(_table(["spec", "technique", "status", "s"], rows))
    return "\n".join(sections)


_PROFILE_COLUMNS = [
    # (header, counter base name)
    ("cells", "repair.attempts"),
    ("cand", "repair.candidates"),
    ("pruned", "repair.pruned"),
    ("typed", "analysis.pruned_typed"),
    ("iters", "repair.iterations"),
    ("oracle", "repair.oracle_calls"),
    ("dedup", "analysis.dedup_hits"),
    ("solves", "sat.solves"),
    ("conflicts", "sat.conflicts"),
    ("llm.req", "llm.requests"),
    ("llm.tok", None),  # prompt + completion, filled specially
    ("retries", "llm.retries"),
]


def render_profile(data: TraceData) -> str:
    """The ``repro profile`` report: per-technique metric rollup."""
    sections: list[str] = []
    if data.meta:
        described = "  ".join(f"{k}={v}" for k, v in sorted(data.meta.items()))
        sections.append(f"PROFILE — {described}")
    else:
        sections.append("PROFILE")
    sections.append("")

    techniques = data.techniques()
    rows = []
    for technique in techniques:
        row = [technique]
        for _, base in _PROFILE_COLUMNS:
            if base is None:
                value = data.labelled_counter(
                    "llm.prompt_tokens", technique
                ) + data.labelled_counter("llm.completion_tokens", technique)
            else:
                # Summing lookup: some counters carry labels beyond
                # technique (e.g. analysis.pruned_typed's rule).
                value = data.labelled_total(base, technique)
            row.append(str(int(value)))
        rows.append(row)
    headers = ["technique"] + [header for header, _ in _PROFILE_COLUMNS]
    sections.append("Per-technique rollup")
    sections.append(_table(headers, rows))
    sections.append("")

    rows = []
    for technique in techniques:
        summary = data.histograms.get(
            f"repair.seconds{{technique={technique}}}", {"count": 0}
        )
        if not summary.get("count"):
            continue
        # Candidate throughput: candidates evaluated per second of time
        # spent inside repair() — the headline number the incremental
        # solve session moves (compare a --trace run against one with
        # --no-incremental).
        candidates = data.labelled_total("repair.candidates", technique)
        spent = summary.get("sum", 0.0)
        throughput = f"{candidates / spent:.1f}" if spent > 0 else "-"
        rows.append(
            [
                technique,
                str(int(summary["count"])),
                f"{summary['mean']:.4f}",
                f"{summary['p90']:.4f}",
                f"{summary['max']:.4f}",
                throughput,
            ]
        )
    if rows:
        sections.append("Per-technique repair time (s)")
        sections.append(
            _table(["technique", "n", "mean", "p90", "max", "cand/s"], rows)
        )
        sections.append("")

    totals = [
        ("sat.solves", "solver calls"),
        ("sat.decisions", "decisions"),
        ("sat.propagations", "propagations"),
        ("sat.conflicts", "conflicts"),
        ("sat.learned_clauses", "learned clauses"),
        ("sat.restarts", "restarts"),
        ("sat.session.reused_clauses", "session clauses reused"),
        ("oracle.session.checks", "oracle session checks"),
        ("oracle.session.fragment_hits", "oracle fragment cache hits"),
        ("oracle.session.fragment_misses", "oracle fragment cache misses"),
        ("oracle.session.fallbacks", "oracle session fallbacks"),
        ("analyzer.commands", "analyzer commands"),
        ("analyzer.instances", "instances enumerated"),
        ("analysis.pruned_typed", "candidates pruned statically"),
        ("analysis.dedup_hits", "oracle verdicts replayed (dedup)"),
        ("analysis.baseline_lint_reuse", "baseline lint memo reuses"),
        ("analysis.lint_findings", "lint findings on LLM proposals"),
        ("llm.requests", "LLM requests"),
        ("llm.prompt_tokens", "LLM prompt tokens (est)"),
        ("llm.completion_tokens", "LLM completion tokens (est)"),
        ("llm.retries", "LLM retries"),
        ("service.lease_acquired", "cluster leases acquired"),
        ("service.lease_adopted", "cluster orphans adopted"),
        ("service.fencing_rejected", "stale commits fenced"),
    ]
    rows = [
        [label, str(int(data.counter_total(name)))]
        for name, label in totals
        if data.counter_total(name)
    ]
    sections.append("Global totals")
    sections.append(_table(headers=["metric", "total"], rows=rows))

    by_rule: dict[str, float] = {}
    for key, value in data.counters.items():
        base, labels = parse_key(key)
        if base == "analysis.pruned_typed" and "rule" in labels:
            by_rule[labels["rule"]] = by_rule.get(labels["rule"], 0) + value
    if by_rule:
        sections.append("")
        sections.append("Static pruning by rule")
        sections.append(
            _table(
                ["rule", "pruned"],
                [
                    [rule, str(int(count))]
                    for rule, count in sorted(
                        by_rule.items(), key=lambda kv: -kv[1]
                    )
                ],
            )
        )

    dedup = data.counter_total("analysis.dedup_hits")
    oracle = data.counter_total("repair.oracle_calls")
    if dedup and oracle:
        # The dedup headline: what fraction of oracle queries never
        # reached the solver because a canonically-equal candidate had
        # already been judged (compare against a --no-canon run).
        sections.append("")
        sections.append(
            f"Semantic dedup: {int(dedup)} of {int(oracle)} oracle "
            f"queries replayed ({100 * dedup / oracle:.1f}% hit rate)"
        )

    if data.gauges:
        sections.append("")
        sections.append("Peak gauges (max across shards)")
        sections.append(
            _table(
                ["gauge", "peak"],
                [
                    [key, f"{value:g}"]
                    for key, value in sorted(data.gauges.items())
                ],
            )
        )
    return "\n".join(sections)
