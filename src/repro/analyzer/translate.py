"""Grounding of relational formulas into boolean circuits.

This is the analogue of Kodkod inside the real Alloy Analyzer: every
expression is represented as a *matrix* mapping potential atom tuples to
circuit handles, and every formula becomes a single circuit handle.  The
resulting circuits are asserted into the CDCL solver via Tseitin encoding.
"""

from __future__ import annotations

from repro.alloy.errors import EvaluationError
from repro.alloy.nodes import (
    BinaryExpr,
    BinOp,
    Block,
    BoolBin,
    CardExpr,
    Compare,
    CmpOp,
    Comprehension,
    Decl,
    Expr,
    Formula,
    FunCall,
    IdenExpr,
    ImpliesElse,
    IntLit,
    Let,
    LogicOp,
    Mult,
    MultTest,
    NameExpr,
    NoneExpr,
    Not,
    PredCall,
    Quant,
    Quantified,
    UnaryExpr,
    UnivExpr,
    UnOp,
)
from repro.alloy.resolver import ModuleInfo
from repro.analyzer.universe import Bounds
from repro.sat.circuit import FALSE, TRUE, CircuitBuilder

Matrix = dict[tuple[str, ...], int]
"""Maps potential tuples to the circuit handle of their membership."""

Env = dict[str, Matrix]


class Translator:
    """Grounds formulas of one module under fixed bounds."""

    def __init__(self, info: ModuleInfo, bounds: Bounds) -> None:
        self._info = info
        self._bounds = bounds
        self._builder: CircuitBuilder = bounds.builder
        self._call_stack: list[str] = []

    # -- public API -----------------------------------------------------------

    def formula(self, formula: Formula, env: Env | None = None) -> int:
        """Ground a formula to a circuit handle."""
        return self._formula(formula, env or {})

    def matrix(self, expr: Expr, env: Env | None = None) -> Matrix:
        """Ground an expression to its membership matrix."""
        return self._matrix(expr, env or {})

    # -- expressions ----------------------------------------------------------

    def _matrix(self, expr: Expr, env: Env) -> Matrix:
        builder = self._builder
        if isinstance(expr, NameExpr):
            return self._name(expr, env)
        if isinstance(expr, NoneExpr):
            return {}
        if isinstance(expr, UnivExpr):
            return {
                (atom,): self._bounds.atom_exists(atom)
                for atom in self._bounds.universe.atoms
            }
        if isinstance(expr, IdenExpr):
            return {
                (atom, atom): self._bounds.atom_exists(atom)
                for atom in self._bounds.universe.atoms
            }
        if isinstance(expr, UnaryExpr):
            operand = self._matrix(expr.operand, env)
            if expr.op is UnOp.TRANSPOSE:
                return {(t[1], t[0]): h for t, h in operand.items()}
            closure = self._closure(operand)
            if expr.op is UnOp.CLOSURE:
                return closure
            result = dict(closure)
            for atom in self._bounds.universe.atoms:
                exists = self._bounds.atom_exists(atom)
                key = (atom, atom)
                result[key] = builder.or_([result.get(key, FALSE), exists])
            return result
        if isinstance(expr, BinaryExpr):
            return self._binary(expr, env)
        if isinstance(expr, FunCall):
            return self._call(expr, env)
        if isinstance(expr, Comprehension):
            return self._comprehension(expr, env)
        if isinstance(expr, (IntLit, CardExpr)):
            raise EvaluationError(
                "integer expression used where a relation is required", expr.pos
            )
        raise EvaluationError(f"cannot translate expression {expr!r}", expr.pos)

    def _name(self, expr: NameExpr, env: Env) -> Matrix:
        if expr.name in env:
            return env[expr.name]
        if expr.name in self._info.sigs:
            return {
                (atom,): handle
                for atom, handle in self._bounds.sig_vars[expr.name].items()
            }
        if expr.name in self._info.fields:
            return dict(self._bounds.field_vars[expr.name])
        fun = self._info.funs.get(expr.name)
        if fun is not None and not fun.params:
            return self._apply_fun(fun.name, [], expr)
        raise EvaluationError(f"unknown name {expr.name!r}", expr.pos)

    def _binary(self, expr: BinaryExpr, env: Env) -> Matrix:
        builder = self._builder
        left = self._matrix(expr.left, env)
        right = self._matrix(expr.right, env)
        if expr.op is BinOp.UNION:
            result = dict(left)
            for t, h in right.items():
                result[t] = builder.or_([result.get(t, FALSE), h])
            return result
        if expr.op is BinOp.DIFF:
            return {
                t: builder.and_([h, -right.get(t, FALSE)]) for t, h in left.items()
            }
        if expr.op is BinOp.INTERSECT:
            return {
                t: builder.and_([h, right[t]])
                for t, h in left.items()
                if t in right
            }
        if expr.op is BinOp.JOIN:
            return self._join(left, right)
        if expr.op is BinOp.PRODUCT:
            return {
                a + b: builder.and_([ha, hb])
                for a, ha in left.items()
                for b, hb in right.items()
            }
        if expr.op is BinOp.OVERRIDE:
            # Tuples of `right` win; tuples of `left` survive only when no
            # right tuple shares their first atom.
            domain_cond: dict[str, list[int]] = {}
            for t, h in right.items():
                domain_cond.setdefault(t[0], []).append(h)
            result: Matrix = {}
            for t, h in left.items():
                blocked = builder.or_(domain_cond.get(t[0], []))
                result[t] = builder.and_([h, -blocked])
            for t, h in right.items():
                result[t] = builder.or_([result.get(t, FALSE), h])
            return result
        if expr.op is BinOp.DOM_RESTRICT:
            return {
                t: builder.and_([left.get((t[0],), FALSE), h])
                for t, h in right.items()
            }
        if expr.op is BinOp.RAN_RESTRICT:
            return {
                t: builder.and_([h, right.get((t[-1],), FALSE)])
                for t, h in left.items()
            }
        raise EvaluationError(f"unsupported operator {expr.op!r}", expr.pos)

    def _join(self, left: Matrix, right: Matrix) -> Matrix:
        builder = self._builder
        by_first: dict[str, list[tuple[tuple[str, ...], int]]] = {}
        for t, h in right.items():
            by_first.setdefault(t[0], []).append((t, h))
        combined: dict[tuple[str, ...], list[int]] = {}
        for a, ha in left.items():
            for b, hb in by_first.get(a[-1], []):
                key = a[:-1] + b[1:]
                if not key:
                    raise EvaluationError("join produced a zero-arity relation")
                combined.setdefault(key, []).append(builder.and_([ha, hb]))
        return {t: builder.or_(hs) for t, hs in combined.items()}

    def _closure(self, matrix: Matrix) -> Matrix:
        """Transitive closure by iterated squaring within the bounds."""
        size = len({a for t in matrix for a in t})
        result = dict(matrix)
        steps = 1
        while steps < max(size, 1):
            squared = self._join(result, result)
            merged = dict(result)
            for t, h in squared.items():
                merged[t] = self._builder.or_([merged.get(t, FALSE), h])
            result = merged
            steps *= 2
        return result

    def _call(self, expr: FunCall, env: Env) -> Matrix:
        fun = self._info.funs.get(expr.name)
        if fun is not None:
            args = [self._matrix(arg, env) for arg in expr.args]
            return self._apply_fun(expr.name, args, expr)
        result = self._name(NameExpr(name=expr.name, pos=expr.pos), env)
        for arg in expr.args:
            result = self._join(self._matrix(arg, env), result)
        return result

    def _apply_fun(self, name: str, args: list[Matrix], site: Expr) -> Matrix:
        if name in self._call_stack:
            raise EvaluationError(
                f"recursive function {name!r} is not supported", site.pos
            )
        fun = self._info.funs[name]
        names = [n for decl in fun.params for n in decl.names]
        if len(names) != len(args):
            raise EvaluationError(
                f"function {name!r} expects {len(names)} arguments", site.pos
            )
        self._call_stack.append(name)
        try:
            return self._matrix(fun.body, dict(zip(names, args)))
        finally:
            self._call_stack.pop()

    def _comprehension(self, expr: Comprehension, env: Env) -> Matrix:
        result: Matrix = {}
        for atoms, cond, inner in self._bindings(expr.decls, env):
            body = self._formula(expr.body, inner)
            key = tuple(a for tup in atoms for a in tup)
            handle = self._builder.and_([cond, body])
            result[key] = self._builder.or_([result.get(key, FALSE), handle])
        return result

    # -- integer expressions ----------------------------------------------------

    def _int_parts(self, expr: Expr, env: Env) -> tuple[list[int], int]:
        """Represent an integer expression as (indicator handles, constant):
        its value is |true indicators| + constant."""
        if isinstance(expr, IntLit):
            return [], expr.value
        if isinstance(expr, CardExpr):
            matrix = self._matrix(expr.operand, env)
            return list(matrix.values()), 0
        if isinstance(expr, BinaryExpr) and expr.op is BinOp.UNION:
            left_handles, left_const = self._int_parts(expr.left, env)
            right_handles, right_const = self._int_parts(expr.right, env)
            return left_handles + right_handles, left_const + right_const
        raise EvaluationError(
            "only cardinalities, literals, and their sums are supported "
            "in integer positions",
            expr.pos,
        )

    def _int_compare(self, op: CmpOp, left: Expr, right: Expr, env: Env) -> int:
        builder = self._builder
        left_handles, left_const = self._int_parts(left, env)
        right_handles, right_const = self._int_parts(right, env)
        delta = left_const - right_const
        if not right_handles:
            return builder.count_compare(left_handles, op.value, -delta)
        # count(L) + delta  op  count(R):  case-split on count(R).
        cases: list[int] = []
        for value in range(len(right_handles) + 1):
            right_exact = builder.exactly(right_handles, value)
            left_check = builder.count_compare(left_handles, op.value, value - delta)
            cases.append(builder.implies(right_exact, left_check))
        return builder.and_(cases)

    # -- formulas ---------------------------------------------------------------

    def _formula(self, formula: Formula, env: Env) -> int:
        builder = self._builder
        if isinstance(formula, Compare):
            return self._compare(formula, env)
        if isinstance(formula, MultTest):
            matrix = self._matrix(formula.operand, env)
            return self._mult_handle(formula.mult, list(matrix.values()))
        if isinstance(formula, Not):
            return -self._formula(formula.operand, env)
        if isinstance(formula, BoolBin):
            left = self._formula(formula.left, env)
            right = self._formula(formula.right, env)
            if formula.op is LogicOp.AND:
                return builder.and_([left, right])
            if formula.op is LogicOp.OR:
                return builder.or_([left, right])
            if formula.op is LogicOp.IMPLIES:
                return builder.implies(left, right)
            return builder.iff(left, right)
        if isinstance(formula, ImpliesElse):
            cond = self._formula(formula.cond, env)
            then = self._formula(formula.then, env)
            other = self._formula(formula.other, env)
            return builder.ite(cond, then, other)
        if isinstance(formula, Quantified):
            return self._quantified(formula, env)
        if isinstance(formula, Let):
            value = self._matrix(formula.value, env)
            inner = dict(env)
            inner[formula.name] = value
            return self._formula(formula.body, inner)
        if isinstance(formula, PredCall):
            return self._pred_call(formula, env)
        if isinstance(formula, Block):
            return builder.and_([self._formula(f, env) for f in formula.formulas])
        raise EvaluationError(f"cannot translate formula {formula!r}", formula.pos)

    def _compare(self, formula: Compare, env: Env) -> int:
        builder = self._builder
        if formula.op in (CmpOp.LT, CmpOp.LTE, CmpOp.GT, CmpOp.GTE):
            return self._int_compare(formula.op, formula.left, formula.right, env)
        if formula.op in (CmpOp.EQ, CmpOp.NEQ) and self._is_int_expr(formula.left):
            handle = self._int_compare(
                CmpOp.EQ, formula.left, formula.right, env
            )
            return handle if formula.op is CmpOp.EQ else -handle
        left = self._matrix(formula.left, env)
        right = self._matrix(formula.right, env)
        subset = builder.and_(
            [builder.implies(h, right.get(t, FALSE)) for t, h in left.items()]
        )
        if formula.op is CmpOp.IN:
            return subset
        if formula.op is CmpOp.NOT_IN:
            return -subset
        superset = builder.and_(
            [builder.implies(h, left.get(t, FALSE)) for t, h in right.items()]
        )
        equal = builder.and_([subset, superset])
        return equal if formula.op is CmpOp.EQ else -equal

    def _is_int_expr(self, expr: Expr) -> bool:
        if isinstance(expr, (IntLit, CardExpr)):
            return True
        if isinstance(expr, BinaryExpr) and expr.op in (BinOp.UNION, BinOp.DIFF):
            return self._is_int_expr(expr.left) or self._is_int_expr(expr.right)
        return False

    def _mult_handle(self, mult: Mult, handles: list[int]) -> int:
        builder = self._builder
        if mult is Mult.NO:
            return -builder.or_(handles)
        if mult is Mult.SOME:
            return builder.or_(handles)
        if mult is Mult.LONE:
            return builder.at_most(handles, 1)
        if mult is Mult.ONE:
            return builder.exactly(handles, 1)
        return TRUE

    def _quantified(self, formula: Quantified, env: Env) -> int:
        builder = self._builder
        quant = formula.quant
        if quant is Quant.ALL:
            parts = [
                builder.implies(cond, self._formula(formula.body, inner))
                for _, cond, inner in self._bindings(formula.decls, env)
            ]
            return builder.and_(parts)
        witness = [
            builder.and_([cond, self._formula(formula.body, inner)])
            for _, cond, inner in self._bindings(formula.decls, env)
        ]
        if quant is Quant.SOME:
            return builder.or_(witness)
        if quant is Quant.NO:
            return -builder.or_(witness)
        if quant is Quant.LONE:
            return builder.at_most(witness, 1)
        return builder.exactly(witness, 1)

    def _pred_call(self, formula: PredCall, env: Env) -> int:
        pred = self._info.preds.get(formula.name)
        if pred is None:
            raise EvaluationError(
                f"unknown predicate {formula.name!r}", formula.pos
            )
        if formula.name in self._call_stack:
            raise EvaluationError(
                f"recursive predicate {formula.name!r} is not supported",
                formula.pos,
            )
        names = [n for decl in pred.params for n in decl.names]
        if len(names) != len(formula.args):
            raise EvaluationError(
                f"predicate {formula.name!r} expects {len(names)} arguments",
                formula.pos,
            )
        args = [self._matrix(arg, env) for arg in formula.args]
        self._call_stack.append(formula.name)
        try:
            return self._formula(pred.body, dict(zip(names, args)))
        finally:
            self._call_stack.pop()

    # -- binder expansion ---------------------------------------------------------

    def _bindings(self, decls: list[Decl], env: Env):
        """Yield (atom tuples, membership condition, extended env) for every
        valuation of the declared scalar binders.

        Bounds may depend on earlier binders (the bound expression is
        re-grounded under the extended environment at each step).
        """
        yield from self._expand(decls, 0, 0, [], TRUE, env)

    def _expand(
        self,
        decls: list[Decl],
        decl_index: int,
        name_index: int,
        chosen: list[tuple[str, ...]],
        cond: int,
        env: Env,
    ):
        if decl_index == len(decls):
            yield list(chosen), cond, env
            return
        decl = decls[decl_index]
        if name_index == len(decl.names):
            yield from self._expand(decls, decl_index + 1, 0, chosen, cond, env)
            return
        bound = self._matrix(decl.bound, env)
        start = len(chosen) - name_index  # index of this decl's first binder
        for tup, handle in sorted(bound.items()):
            if decl.disj and tup in chosen[start:]:
                continue
            inner = dict(env)
            inner[decl.names[name_index]] = {tup: TRUE}
            new_cond = self._builder.and_([cond, handle])
            if new_cond == FALSE:
                continue
            chosen.append(tup)
            yield from self._expand(
                decls, decl_index, name_index + 1, chosen, new_cond, inner
            )
            chosen.pop()
