"""Implicit constraints derived from declarations.

Field declarations in Alloy carry multiplicity obligations (``f: one T``,
``r: A -> lone B``), which the real Analyzer conjoins with the model's facts.
This module desugars those obligations into ordinary :class:`Formula` ASTs so
the translator and the evaluator need only one formula semantics.
"""

from __future__ import annotations

from repro.alloy.errors import EvaluationError
from repro.alloy.nodes import (
    ArrowType,
    BinaryExpr,
    BinOp,
    Decl,
    Expr,
    FieldDecl,
    Formula,
    Mult,
    MultTest,
    NameExpr,
    Quant,
    Quantified,
    UnaryType,
)
from repro.alloy.resolver import ModuleInfo

_OWNER_VAR = "this_"
_LEFT_VAR = "left_"
_RIGHT_VAR = "right_"


def field_constraints(info: ModuleInfo) -> list[Formula]:
    """All implicit multiplicity formulas for the module's fields."""
    formulas: list[Formula] = []
    for field_info in info.fields.values():
        formulas.extend(_constraints_for(field_info.owner, field_info.decl))
    return formulas


def _constraints_for(owner: str, decl: FieldDecl) -> list[Formula]:
    owner_decl = Decl(names=[_OWNER_VAR], bound=NameExpr(name=owner))
    joined = BinaryExpr(
        op=BinOp.JOIN, left=NameExpr(name=_OWNER_VAR), right=NameExpr(name=decl.name)
    )
    if isinstance(decl.type, UnaryType):
        if decl.type.mult is Mult.SET:
            return []
        body = MultTest(mult=decl.type.mult, operand=joined)
        return [Quantified(quant=Quant.ALL, decls=[owner_decl], body=body)]
    if isinstance(decl.type, ArrowType):
        return _arrow_constraints(owner_decl, joined, decl.type, decl)
    raise EvaluationError(f"unsupported field type in {decl.name!r}", decl.pos)


def _arrow_constraints(
    owner_decl: Decl, value: Expr, arrow: ArrowType, decl: FieldDecl
) -> list[Formula]:
    if not isinstance(arrow.left, UnaryType) or not isinstance(
        arrow.right, UnaryType
    ):
        if arrow.left_mult is Mult.SET and arrow.right_mult is Mult.SET:
            return _nested_set_constraints(arrow, decl)
        raise EvaluationError(
            "multiplicities on nested arrow types deeper than A -> B are "
            f"not supported (field {decl.name!r})",
            decl.pos,
        )
    formulas: list[Formula] = []
    left_sig = arrow.left.expr
    right_sig = arrow.right.expr
    if arrow.right_mult is not Mult.SET:
        # all this: Owner, l: Left | <rm> l.(this.f)
        body = MultTest(
            mult=arrow.right_mult,
            operand=BinaryExpr(
                op=BinOp.JOIN, left=NameExpr(name=_LEFT_VAR), right=value
            ),
        )
        formulas.append(
            Quantified(
                quant=Quant.ALL,
                decls=[owner_decl, Decl(names=[_LEFT_VAR], bound=left_sig)],
                body=body,
            )
        )
    if arrow.left_mult is not Mult.SET:
        # all this: Owner, r: Right | <lm> (this.f).r
        body = MultTest(
            mult=arrow.left_mult,
            operand=BinaryExpr(
                op=BinOp.JOIN, left=value, right=NameExpr(name=_RIGHT_VAR)
            ),
        )
        formulas.append(
            Quantified(
                quant=Quant.ALL,
                decls=[owner_decl, Decl(names=[_RIGHT_VAR], bound=right_sig)],
                body=body,
            )
        )
    return formulas


def _nested_set_constraints(arrow: ArrowType, decl: FieldDecl) -> list[Formula]:
    """A nested all-`set` arrow type imposes no multiplicity obligations."""
    for side in (arrow.left, arrow.right):
        if isinstance(side, ArrowType):
            if side.left_mult is not Mult.SET or side.right_mult is not Mult.SET:
                raise EvaluationError(
                    "multiplicities on nested arrow types are not supported "
                    f"(field {decl.name!r})",
                    decl.pos,
                )
            _nested_set_constraints(side, decl)
    return []
