"""Incremental candidate oracle: one solve session shared across candidates.

Repair tools evaluate hundreds of candidates that are tiny edits of the same
specification, yet the one-shot :class:`~repro.analyzer.analyzer.Analyzer`
re-grounds the full model and solves from scratch for each one.  An
:class:`OracleSession` exploits the overlap:

- the *structural* part of the problem — universe, signature/field variables,
  hierarchy and multiplicity constraints, field-declaration constraints — is
  translated once per distinct command scope and asserted permanently;
- every *paragraph* (each fact, plus each command's target) becomes a CNF
  fragment guarded by a selector literal, keyed by a digest of its printed
  source together with the printed sources of every predicate/function it
  transitively calls;
- checking a candidate re-encodes only the fragments whose digests are new
  (the edited paragraph) and solves under assumptions enabling exactly that
  candidate's fragments, so learned clauses and branching activity carry
  across the whole candidate stream.

Commands with equal scope lines share one solver: their fact fragments are
encoded once and conflicts learned while checking one command keep pruning
the other's queries.  Paragraph prints and call-name scans are memoized by
node identity, which the path-copying mutation utilities
(:mod:`repro.alloy.walk`) make effective — a mutant shares every untouched
subtree with its base module, so digesting it costs one paragraph print.

Candidates whose signature declarations differ from the base module (e.g.
field-multiplicity mutants) cannot share the structural encoding; for those
``evaluate`` returns ``None`` and the caller falls back to the from-scratch
path.  The session answers *verdict-only* queries (satisfiability per
command); anything that needs instances keeps using the Analyzer, so repair
outcomes are bit-identical with the session on or off.

Incremental solving is on by default and disabled ambiently via
:func:`incremental` (a context manager) so the experiment engine can thread a
single ``--no-incremental`` bit through serial, thread, and process executors
without touching every tool signature.
"""

from __future__ import annotations

import hashlib
import threading
import time
from contextlib import contextmanager
from typing import Callable, Iterator

from repro import chaos, obs
from repro.alloy.errors import AlloyError, AnalysisBudgetError, EvaluationError
from repro.alloy.nodes import (
    Block,
    Command,
    Formula,
    FunCall,
    Module,
    NameExpr,
    Node,
    Not,
    PredCall,
)
from repro.alloy.pretty import print_paragraph
from repro.alloy.resolver import ModuleInfo, resolve_module
from repro.analyzer.analyzer import DEFAULT_CONFLICT_LIMIT, CommandResult
from repro.analyzer.semantics import field_constraints
from repro.analyzer.translate import Translator
from repro.analyzer.universe import Bounds
from repro.sat.circuit import CircuitBuilder
from repro.sat.solver import BudgetExceeded, SolveSession

_STATE = threading.local()

_REBUILD_CLAUSE_LIMIT = 500_000
"""Safety valve: a scope session whose clause database (fragments plus
learned clauses) outgrows this is torn down and rebuilt from the static
part, bounding memory across very long candidate streams."""

_RETIRE_FRESH = True
"""Retire single-use candidate fragments as soon as the next check skips
them, keeping the solver's live clause set proportional to the base module
rather than to the whole candidate stream."""

_MEMO_LIMIT = 100_000
"""Cap on the identity-keyed print/name memos (they pin candidate AST nodes
alive); exceeding it clears them, trading reuse for bounded memory."""


def incremental_enabled() -> bool:
    """Whether incremental candidate solving is active on this thread."""
    return getattr(_STATE, "enabled", True)


@contextmanager
def incremental(enabled: bool) -> Iterator[None]:
    """Ambiently enable/disable incremental solving for the current thread."""
    previous = incremental_enabled()
    _STATE.enabled = enabled
    try:
        yield
    finally:
        _STATE.enabled = previous


_Fragment = tuple[bytes, Callable[[], Formula]]
"""A fragment is its content digest plus a thunk producing the formula to
translate — built only on a cache miss."""


class _ScopeSession:
    """The persistent encoding of one command scope across candidates."""

    def __init__(self, info: ModuleInfo, command: Command) -> None:
        self._info = info
        self._command = command  # any command with this scope line
        self._build()

    def _build(self) -> None:
        self.session = SolveSession()
        self._builder = CircuitBuilder(self.session.solver)
        self._bounds = Bounds(self._info, self._command, self._builder)
        translator = Translator(self._info, self._bounds)
        for formula in field_constraints(self._info):
            self._builder.assert_true(translator.formula(formula))
        self._selectors: dict[bytes, int] = {}
        self._fresh: list[bytes] = []
        self._units: dict[int, tuple[Node, tuple[Node, ...], int]] = {}

    def _unit_handle(
        self, info: ModuleInfo, formula: Formula, oracle: "OracleSession"
    ) -> int:
        """Circuit handle for one top-level conjunct, memoized by identity.

        Handles stay valid for the lifetime of this scope's builder, so a
        fragment miss (an edited fact block) re-translates only the inner
        formulas that actually changed.  The memo entry records the
        predicate/function declarations the conjunct transitively calls —
        translation inlines their bodies, so a cached handle is reused only
        when the whole call closure is the same objects.
        """
        closure = oracle._closure_decls(formula, info)
        entry = self._units.get(id(formula))
        if (
            entry is not None
            and entry[0] is formula
            and len(entry[1]) == len(closure)
            and all(a is b for a, b in zip(entry[1], closure))
        ):
            return entry[2]
        if len(self._units) > _MEMO_LIMIT:
            self._units.clear()
        handle = Translator(info, self._bounds).formula(formula)
        self._units[id(formula)] = (formula, closure, handle)
        return handle

    def _formula_handle(
        self, info: ModuleInfo, formula: Formula, oracle: "OracleSession"
    ) -> int:
        """Translate a fragment formula, splitting blocks into memoized
        conjuncts (mirrors the translator: a block grounds to the
        conjunction of its formulas, ``Not`` to the negation)."""
        if isinstance(formula, Block):
            return self._builder.and_(
                [
                    self._unit_handle(info, inner, oracle)
                    for inner in formula.formulas
                ]
            )
        if isinstance(formula, Not) and isinstance(formula.operand, Block):
            return -self._formula_handle(info, formula.operand, oracle)
        return self._unit_handle(info, formula, oracle)

    def check(
        self,
        info: ModuleInfo,
        fragments: list[_Fragment],
        conflict_limit: int | None,
        oracle: "OracleSession",
    ) -> bool:
        """Satisfiability of the conjunction of ``fragments`` for one query."""
        if self.session.solver.num_clauses > _REBUILD_CLAUSE_LIMIT:
            self._build()
        if (
            chaos.fire(
                "analyzer.explode", clauses=self.session.solver.num_clauses
            )
            is not None
        ):
            raise AnalysisBudgetError(
                "chaos: translation exploded past the clause budget "
                f"({self.session.solver.num_clauses} clauses grounded)"
            )
        # Retire fragments that were encoded for the previous candidate but
        # are not part of this one: a mutant's edited paragraph is checked
        # exactly once, and the unit ``[-selector]`` makes its clause group
        # permanently satisfied at level 0 — otherwise the solver keeps
        # paying watch/branching overhead for every dormant candidate ever
        # seen.  Shared fragments (the base module's paragraphs) are hits on
        # the very next check and therefore never retired.
        if _RETIRE_FRESH and self._fresh:
            current = {digest for digest, _ in fragments}
            for digest in self._fresh:
                if digest not in current:
                    stale = self._selectors.pop(digest, None)
                    if stale is not None:
                        self.session.retire(stale)
            self._fresh = []
        assumptions: list[int] = []
        hits = 0
        misses = 0
        for digest, make_formula in fragments:
            selector = self._selectors.get(digest)
            if selector is None:
                selector = self.session.new_selector()
                self._builder.assert_under(
                    selector, self._formula_handle(info, make_formula(), oracle)
                )
                self._selectors[digest] = selector
                self._fresh.append(digest)
                misses += 1
            else:
                hits += 1
            assumptions.append(selector)
        if obs.get_metrics().enabled:
            obs.counter("oracle.session.checks").inc()
            obs.counter("oracle.session.fragment_hits").inc(hits)
            obs.counter("oracle.session.fragment_misses").inc(misses)
        try:
            return self.session.solve(assumptions, conflict_limit=conflict_limit)
        except BudgetExceeded as error:
            raise AnalysisBudgetError(str(error)) from error


class OracleSession:
    """Evaluates a stream of candidate modules against one task's commands.

    Mirrors the verdict semantics of
    :meth:`~repro.repair.base.PropertyOracle.evaluate_module` exactly: the
    *task's* commands run against each candidate, a candidate that fails to
    resolve (or whose analysis errors mid-way) yields ``(results, False)``
    with the results accumulated so far, and per-command satisfiability is
    computed under the same conflict budget as the from-scratch Analyzer.
    """

    def __init__(
        self,
        info: ModuleInfo,
        conflict_limit: int | None = DEFAULT_CONFLICT_LIMIT,
    ) -> None:
        self._info = info
        self._conflict_limit = conflict_limit
        self._commands = list(info.commands)
        self._base_sigs = list(info.module.sigs)
        self._print_memo: dict[int, tuple[Node, str]] = {}
        self._names_memo: dict[int, tuple[Node, frozenset[str]]] = {}
        self._fingerprint = tuple(self._print(sig) for sig in self._base_sigs)
        self._spaces: dict[object, _ScopeSession] = {}
        # Per-command constant pieces of the target fragment: the printed
        # command (part of the digest) and, for run commands, the fixed
        # target formula.
        self._command_texts = [print_paragraph(c) for c in self._commands]
        self._run_targets: list[Formula | None] = []
        for command in self._commands:
            target: Formula | None = None
            if command.kind == "run":
                if command.target is not None:
                    target = PredCall(name=command.target, args=[])
                else:
                    target = command.block or Block()
            elif command.target is None:
                target = Not(operand=command.block or Block())
            self._run_targets.append(target)

    # -- identity-memoized AST digests ----------------------------------------

    def _print(self, node: Node) -> str:
        """``print_paragraph`` memoized by node identity."""
        entry = self._print_memo.get(id(node))
        if entry is not None and entry[0] is node:
            return entry[1]
        if len(self._print_memo) > _MEMO_LIMIT:
            self._print_memo.clear()
        text = print_paragraph(node)
        self._print_memo[id(node)] = (node, text)
        return text

    def _call_names(self, node: Node) -> frozenset[str]:
        """Names syntactically referenced as predicate/function calls.

        Purely syntactic (it over-approximates: signature references appear
        too, and are filtered against the symbol tables by the caller), which
        is what makes memoizing by node identity sound.
        """
        entry = self._names_memo.get(id(node))
        if entry is not None and entry[0] is node:
            return entry[1]
        if len(self._names_memo) > _MEMO_LIMIT:
            self._names_memo.clear()
        names = frozenset(
            child.name
            for child in node.walk()
            if isinstance(child, (PredCall, FunCall, NameExpr))
        )
        self._names_memo[id(node)] = (node, names)
        return names

    def _closure(self, roots: list[Node], info: ModuleInfo) -> dict[str, Node]:
        """Declarations of every predicate/function ``roots`` transitively
        call, by name (syntactic closure over the memoized call scans)."""
        closure: dict[str, Node] = {}
        pending = list(roots)
        while pending:
            node = pending.pop()
            for name in self._call_names(node):
                if name in closure:
                    continue
                decl = info.preds.get(name) or info.funs.get(name)
                if decl is None:
                    continue
                closure[name] = decl
                pending.append(decl)
        return closure

    def _closure_decls(self, root: Node, info: ModuleInfo) -> tuple[Node, ...]:
        """The call closure as a name-ordered tuple of declaration nodes —
        the identity context for cached per-conjunct circuit handles."""
        closure = self._closure([root], info)
        return tuple(closure[name] for name in sorted(closure))

    def _digest(
        self, root_text: str, roots: list[Node], info: ModuleInfo
    ) -> bytes:
        """Content digest of one fragment.

        Covers the fragment's own printed source plus the printed
        declarations of every predicate/function it transitively calls, so a
        cached fragment is reused only when its *entire* grounded meaning is
        unchanged.
        """
        closure = self._closure(roots, info)
        digest = hashlib.sha256(root_text.encode("utf-8"))
        for name in sorted(closure):
            digest.update(b"\x00")
            digest.update(self._print(closure[name]).encode("utf-8"))
        return digest.digest()

    # -- fragments -------------------------------------------------------------

    def _fact_fragments(self, info: ModuleInfo) -> list[_Fragment]:
        return [
            (
                self._digest(self._print(fact), [fact.body], info),
                (lambda body=fact.body: body),
            )
            for fact in info.facts
        ]

    def _target_fragment(self, index: int, info: ModuleInfo) -> _Fragment:
        command = self._commands[index]
        fixed = self._run_targets[index]
        if fixed is not None:
            return (
                self._digest(self._command_texts[index], [fixed], info),
                lambda: fixed,
            )
        # check with a named assertion: the body lives in the candidate.
        assertion = info.asserts.get(command.target)
        if assertion is None:
            raise EvaluationError(
                f"unknown assertion {command.target!r}", command.pos
            )
        digest = self._digest(
            self._command_texts[index] + "\x01" + self._print(assertion),
            [assertion],
            info,
        )
        return digest, lambda: Not(operand=assertion.body)

    def _space_for(self, command: Command) -> _ScopeSession:
        key = (
            command.default_scope,
            tuple(
                (scope.sig, scope.bound, scope.exact)
                for scope in command.sig_scopes
            ),
        )
        space = self._spaces.get(key)
        if space is None:
            space = _ScopeSession(self._info, command)
            self._spaces[key] = space
        return space

    # -- evaluation ------------------------------------------------------------

    def _compatible(self, info: ModuleInfo) -> bool:
        """Whether a candidate can share the session's structural encoding."""
        sigs = info.module.sigs
        if len(sigs) != len(self._base_sigs):
            return False
        for candidate_sig, base_sig in zip(sigs, self._base_sigs):
            if candidate_sig is base_sig:  # shared subtree: trivially equal
                continue
            if self._print(candidate_sig) != self._print(base_sig):
                return False
        return True

    def evaluate(
        self, module: Module
    ) -> tuple[list[CommandResult], bool] | None:
        """Per-command results for one candidate.

        Returns ``None`` when the candidate's signature declarations diverge
        from the base module — the caller must fall back to the from-scratch
        path.  Otherwise returns ``(results, completed)``; ``completed`` is
        ``False`` when a command errored (the candidate fails the oracle).
        """
        try:
            info = resolve_module(module)
        except (AlloyError, RecursionError):
            return [], False
        if not self._compatible(info):
            if obs.get_metrics().enabled:
                obs.counter("oracle.session.fallbacks").inc()
            return None
        facts: list[_Fragment] | None = None
        results: list[CommandResult] = []
        for index, command in enumerate(self._commands):
            start = time.perf_counter()
            try:
                if facts is None:
                    facts = self._fact_fragments(info)
                fragments = facts + [self._target_fragment(index, info)]
                sat = self._space_for(command).check(
                    info, fragments, self._conflict_limit, self
                )
            except (AlloyError, RecursionError):
                return results, False
            results.append(
                CommandResult(
                    command=command,
                    name=command.target or f"{command.kind}#anonymous",
                    kind=command.kind,
                    sat=sat,
                    instances=[],
                    solve_time=time.perf_counter() - start,
                )
            )
        return results, True
