"""Bounded model finder for the Alloy dialect (the Alloy Analyzer stand-in)."""

from repro.analyzer.analyzer import (
    Analyzer,
    CommandResult,
    analyze_source,
    try_analyze,
)
from repro.analyzer.evaluator import Evaluator
from repro.analyzer.instance import Instance, make_instance
from repro.analyzer.minimize import (
    minimize_counterexample,
    minimize_fact_violation,
    minimize_instance,
)
from repro.analyzer.semantics import field_constraints
from repro.analyzer.translate import Translator
from repro.analyzer.universe import Bounds, SigBound, Universe, resolve_scopes

__all__ = [
    "Analyzer",
    "Bounds",
    "CommandResult",
    "Evaluator",
    "Instance",
    "SigBound",
    "Translator",
    "Universe",
    "analyze_source",
    "field_constraints",
    "make_instance",
    "minimize_counterexample",
    "minimize_fact_violation",
    "minimize_instance",
    "resolve_scopes",
    "try_analyze",
]
