"""Atom universes and per-command bounds.

A :class:`Universe` fixes the pool of atoms for each *top-level* signature
based on a command's scope; subsignatures draw their atoms from the parent's
pool.  :class:`Bounds` then assigns one boolean circuit input to each
(sig, atom) membership and each potential field tuple — the "primary
variables" in Kodkod terminology.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.alloy.errors import ScopeError
from repro.alloy.nodes import Command, Mult
from repro.alloy.resolver import ModuleInfo
from repro.sat.circuit import FALSE, TRUE, CircuitBuilder

Atom = str
"""Atoms are interned strings like ``Room$0``."""

DEFAULT_SCOPE = 3


@dataclass(frozen=True)
class SigBound:
    """The scope resolved for one top-level signature."""

    sig: str
    size: int
    exact: bool


def resolve_scopes(info: ModuleInfo, command: Command) -> dict[str, SigBound]:
    """Compute the atom budget for every top-level signature of a command.

    ``one sig`` signatures get an exact scope of 1 regardless of the default;
    explicit per-sig scopes override the default.  Scopes on non-top-level
    signatures are rejected (the dialect allocates atoms at the roots only).
    """
    overrides: dict[str, tuple[int, bool]] = {}
    for sig_scope in command.sig_scopes:
        sig_info = info.sigs[sig_scope.sig]
        if not sig_info.is_top_level:
            raise ScopeError(
                f"scope on non-top-level signature {sig_scope.sig!r} "
                "is not supported",
                sig_scope.pos,
            )
        overrides[sig_scope.sig] = (sig_scope.bound, sig_scope.exact)

    bounds: dict[str, SigBound] = {}
    for sig_info in info.top_level_sigs():
        name = sig_info.name
        if name in overrides:
            size, exact = overrides[name]
        elif sig_info.mult is Mult.ONE:
            size, exact = 1, True
        elif sig_info.mult is Mult.SOME:
            size, exact = command.default_scope, False
        else:
            size, exact = command.default_scope, False
        if sig_info.mult is Mult.ONE and size != 1:
            size, exact = 1, True
        if size < 0:
            raise ScopeError(f"negative scope for {name!r}", command.pos)
        bounds[name] = SigBound(sig=name, size=size, exact=exact)
    return bounds


@dataclass
class Universe:
    """The atom pools for one command execution."""

    pools: dict[str, list[Atom]] = field(default_factory=dict)

    @classmethod
    def build(cls, info: ModuleInfo, scopes: dict[str, SigBound]) -> "Universe":
        pools = {
            name: [f"{name}${i}" for i in range(bound.size)]
            for name, bound in scopes.items()
        }
        return cls(pools=pools)

    @property
    def atoms(self) -> list[Atom]:
        return [atom for pool in self.pools.values() for atom in pool]

    def pool_of(self, info: ModuleInfo, sig: str) -> list[Atom]:
        """The candidate atoms of any signature (its root's pool)."""
        return self.pools[info.root_of(sig)]


class Bounds:
    """Primary circuit variables for signatures and fields.

    - ``sig_vars[sig][atom]``: handle that is true iff ``atom ∈ sig``.
    - ``field_vars[field][tuple]``: handle that is true iff the tuple is in
      the field relation.

    Exactly-bounded top-level signatures use the constant ``TRUE`` handle for
    membership, which prunes the search space the same way Kodkod's exact
    bounds do.
    """

    def __init__(
        self,
        info: ModuleInfo,
        command: Command,
        builder: CircuitBuilder,
    ) -> None:
        self.info = info
        self.builder = builder
        self.scopes = resolve_scopes(info, command)
        self.universe = Universe.build(info, self.scopes)
        self.sig_vars: dict[str, dict[Atom, int]] = {}
        self.field_vars: dict[str, dict[tuple[Atom, ...], int]] = {}
        self._allocate_sig_vars()
        self._allocate_field_vars()
        self._constrain_hierarchy()

    # -- allocation ----------------------------------------------------------

    def _allocate_sig_vars(self) -> None:
        for sig_info in self.info.sigs.values():
            pool = self.universe.pool_of(self.info, sig_info.name)
            row: dict[Atom, int] = {}
            root = self.info.root_of(sig_info.name)
            exact_root = self.scopes[root].exact
            for atom in pool:
                if sig_info.is_top_level and exact_root:
                    row[atom] = TRUE
                elif sig_info.mult is Mult.ONE and sig_info.is_top_level:
                    row[atom] = TRUE
                else:
                    row[atom] = self.builder.fresh_var()
            self.sig_vars[sig_info.name] = row

    def _allocate_field_vars(self) -> None:
        for field_info in self.info.fields.values():
            pools = [
                self.universe.pool_of(self.info, column)
                for column in field_info.columns
            ]
            row: dict[tuple[Atom, ...], int] = {}
            for tup in _product(pools):
                row[tup] = self.builder.fresh_var()
            self.field_vars[field_info.name] = row

    # -- structural constraints ------------------------------------------------

    def _constrain_hierarchy(self) -> None:
        builder = self.builder
        # Subsignature containment, sibling disjointness, abstract coverage.
        for sig_info in self.info.sigs.values():
            if sig_info.parent is not None:
                parent_row = self.sig_vars[sig_info.parent]
                for atom, handle in self.sig_vars[sig_info.name].items():
                    builder.assert_true(builder.implies(handle, parent_row[atom]))
            children = sig_info.children
            for i in range(len(children)):
                for j in range(i + 1, len(children)):
                    row_i = self.sig_vars[children[i]]
                    row_j = self.sig_vars[children[j]]
                    for atom in row_i:
                        builder.assert_true(
                            builder.or_([-row_i[atom], -row_j[atom]])
                        )
            if sig_info.abstract and children:
                own_row = self.sig_vars[sig_info.name]
                for atom in own_row:
                    child_handles = [self.sig_vars[c][atom] for c in children]
                    builder.assert_true(
                        builder.implies(own_row[atom], builder.or_(child_handles))
                    )
        # Signature multiplicities (`one sig`, `lone sig`, `some sig`).
        for sig_info in self.info.sigs.values():
            handles = list(self.sig_vars[sig_info.name].values())
            if sig_info.mult is Mult.ONE:
                builder.assert_true(builder.exactly(handles, 1))
            elif sig_info.mult is Mult.LONE:
                builder.assert_true(builder.at_most(handles, 1))
            elif sig_info.mult is Mult.SOME:
                builder.assert_true(builder.at_least(handles, 1))
        # Field tuples require column membership.
        for field_info in self.info.fields.values():
            for tup, handle in self.field_vars[field_info.name].items():
                for column, atom in zip(field_info.columns, tup):
                    member = self.sig_vars[column][atom]
                    if member != TRUE:
                        builder.assert_true(builder.implies(handle, member))
        # Symmetry breaking: top-level presence is downward closed in atom
        # index (any instance can be relabeled to satisfy this).
        for sig_info in self.info.top_level_sigs():
            row = self.sig_vars[sig_info.name]
            pool = self.universe.pools[sig_info.name]
            for earlier, later in zip(pool, pool[1:]):
                builder.assert_true(builder.implies(row[later], row[earlier]))

    # -- queries ---------------------------------------------------------------

    def atom_exists(self, atom: Atom) -> int:
        """Handle for "atom is present": membership in its top-level sig."""
        sig = atom.split("$", 1)[0]
        return self.sig_vars[sig][atom]

    def primary_handles(self) -> dict[str, dict[tuple[Atom, ...], int]]:
        """All primary relations: sigs (as 1-tuples) plus fields."""
        relations: dict[str, dict[tuple[Atom, ...], int]] = {}
        for sig, row in self.sig_vars.items():
            relations[sig] = {(atom,): handle for atom, handle in row.items()}
        relations.update(self.field_vars)
        return relations


def _product(pools: list[list[Atom]]) -> list[tuple[Atom, ...]]:
    result: list[tuple[Atom, ...]] = [()]
    for pool in pools:
        result = [tup + (atom,) for tup in result for atom in pool]
    return result
