"""Evaluation of expressions and formulas against a concrete instance.

This mirrors the Alloy Analyzer's evaluator: given an :class:`Instance`, it
computes relational values (as frozensets of atom tuples), integer values,
and truth values.  It is used to validate AUnit tests (ARepair), prune repair
candidates against known instances/counterexamples (ATR), and to cross-check
the SAT translation in the test suite.
"""

from __future__ import annotations

import itertools

from repro.alloy.errors import EvaluationError
from repro.alloy.nodes import (
    BinaryExpr,
    BinOp,
    Block,
    BoolBin,
    CardExpr,
    Compare,
    CmpOp,
    Comprehension,
    Decl,
    Expr,
    Formula,
    FunCall,
    IdenExpr,
    ImpliesElse,
    IntLit,
    Let,
    LogicOp,
    Mult,
    MultTest,
    NameExpr,
    NoneExpr,
    Not,
    PredCall,
    Quant,
    Quantified,
    UnaryExpr,
    UnivExpr,
    UnOp,
)
from repro.alloy.resolver import ModuleInfo
from repro.analyzer.instance import Instance, Relation

Env = dict[str, Relation]
Value = Relation | int


class Evaluator:
    """Evaluates ASTs against one instance of one module."""

    def __init__(self, info: ModuleInfo, instance: Instance) -> None:
        self._info = info
        self._instance = instance

    # -- public API -----------------------------------------------------------

    def expr(self, expr: Expr, env: Env | None = None) -> Value:
        """Evaluate an expression to a relation or an integer."""
        return self._expr(expr, env or {})

    def formula(self, formula: Formula, env: Env | None = None) -> bool:
        """Evaluate a formula to a truth value."""
        return self._formula(formula, env or {})

    def facts_hold(self) -> bool:
        """Whether every fact of the module holds in the instance."""
        return all(self._formula(fact.body, {}) for fact in self._info.facts)

    def pred_holds(self, name: str, args: list[Relation] | None = None) -> bool:
        """Whether predicate ``name`` holds for the given argument values."""
        pred = self._info.preds.get(name)
        if pred is None:
            raise EvaluationError(f"unknown predicate {name!r}")
        env = _bind_params(pred.params, args or [])
        return self._formula(pred.body, env)

    def assertion_holds(self, name: str) -> bool:
        """Whether assertion ``name`` holds in the instance."""
        assertion = self._info.asserts.get(name)
        if assertion is None:
            raise EvaluationError(f"unknown assertion {name!r}")
        return self._formula(assertion.body, {})

    # -- universe helpers -------------------------------------------------------

    def _univ(self) -> Relation:
        atoms: set[tuple[str, ...]] = set()
        for sig in self._info.sigs.values():
            if sig.is_top_level:
                atoms |= self._instance.relation(sig.name)
        return frozenset(atoms)

    # -- expression evaluation ----------------------------------------------

    def _expr(self, expr: Expr, env: Env) -> Value:
        if isinstance(expr, NameExpr):
            return self._name(expr, env)
        if isinstance(expr, NoneExpr):
            return frozenset()
        if isinstance(expr, UnivExpr):
            return self._univ()
        if isinstance(expr, IdenExpr):
            return frozenset((t[0], t[0]) for t in self._univ())
        if isinstance(expr, IntLit):
            return expr.value
        if isinstance(expr, CardExpr):
            value = self._rel(expr.operand, env)
            return len(value)
        if isinstance(expr, UnaryExpr):
            return self._unary(expr, env)
        if isinstance(expr, BinaryExpr):
            return self._binary(expr, env)
        if isinstance(expr, FunCall):
            return self._call(expr, env)
        if isinstance(expr, Comprehension):
            return self._comprehension(expr, env)
        raise EvaluationError(f"cannot evaluate expression {expr!r}", expr.pos)

    def _rel(self, expr: Expr, env: Env) -> Relation:
        value = self._expr(expr, env)
        if isinstance(value, int):
            raise EvaluationError("expected a relation, got an integer", expr.pos)
        return value

    def _int(self, expr: Expr, env: Env) -> int:
        value = self._expr(expr, env)
        if not isinstance(value, int):
            raise EvaluationError("expected an integer, got a relation", expr.pos)
        return value

    def _name(self, expr: NameExpr, env: Env) -> Relation:
        if expr.name in env:
            return env[expr.name]
        if expr.name in self._info.sigs or expr.name in self._info.fields:
            return self._instance.relation(expr.name)
        fun = self._info.funs.get(expr.name)
        if fun is not None and not fun.params:
            return self._rel(fun.body, {})
        raise EvaluationError(f"unknown name {expr.name!r}", expr.pos)

    def _unary(self, expr: UnaryExpr, env: Env) -> Relation:
        operand = self._rel(expr.operand, env)
        if expr.op is UnOp.TRANSPOSE:
            return frozenset((b, a) for a, b in operand)
        closure = _transitive_closure(operand)
        if expr.op is UnOp.CLOSURE:
            return closure
        # Reflexive-transitive closure adds iden over the whole universe.
        iden = frozenset((t[0], t[0]) for t in self._univ())
        return closure | iden

    def _binary(self, expr: BinaryExpr, env: Env) -> Value:
        if expr.op in (BinOp.UNION, BinOp.DIFF):
            left = self._expr(expr.left, env)
            right = self._expr(expr.right, env)
            if isinstance(left, int) and isinstance(right, int):
                return left + right if expr.op is BinOp.UNION else left - right
            if isinstance(left, int) or isinstance(right, int):
                raise EvaluationError(
                    "cannot mix integers and relations", expr.pos
                )
            return left | right if expr.op is BinOp.UNION else left - right
        left = self._rel(expr.left, env)
        right = self._rel(expr.right, env)
        if expr.op is BinOp.INTERSECT:
            return left & right
        if expr.op is BinOp.JOIN:
            return _join(left, right, expr)
        if expr.op is BinOp.PRODUCT:
            return frozenset(a + b for a in left for b in right)
        if expr.op is BinOp.OVERRIDE:
            overridden_domain = {t[0] for t in right}
            kept = frozenset(t for t in left if t[0] not in overridden_domain)
            return kept | right
        if expr.op is BinOp.DOM_RESTRICT:
            domain = {t[0] for t in left}
            return frozenset(t for t in right if t[0] in domain)
        if expr.op is BinOp.RAN_RESTRICT:
            rng = {t[0] for t in right}
            return frozenset(t for t in left if t[-1] in rng)
        raise EvaluationError(f"unsupported operator {expr.op!r}", expr.pos)

    def _call(self, expr: FunCall, env: Env) -> Value:
        fun = self._info.funs.get(expr.name)
        if fun is not None:
            args = [self._rel(arg, env) for arg in expr.args]
            inner = _bind_params(fun.params, args)
            return self._expr(fun.body, inner)
        # Sugar: name[a, b] == b.(a.name)
        result = self._rel(NameExpr(name=expr.name, pos=expr.pos), env)
        for arg in expr.args:
            arg_value = self._rel(arg, env)
            result = _join(arg_value, result, expr)
        return result

    def _comprehension(self, expr: Comprehension, env: Env) -> Relation:
        tuples: set[tuple[str, ...]] = set()
        for binding, inner in self._bindings(expr.decls, env):
            if self._formula(expr.body, inner):
                tuples.add(tuple(atom for atoms in binding for atom in atoms))
        return frozenset(tuples)

    # -- formula evaluation ----------------------------------------------------

    def _formula(self, formula: Formula, env: Env) -> bool:
        if isinstance(formula, Compare):
            return self._compare(formula, env)
        if isinstance(formula, MultTest):
            size = len(self._rel(formula.operand, env))
            return _mult_holds(formula.mult, size)
        if isinstance(formula, Not):
            return not self._formula(formula.operand, env)
        if isinstance(formula, BoolBin):
            return self._bool_bin(formula, env)
        if isinstance(formula, ImpliesElse):
            if self._formula(formula.cond, env):
                return self._formula(formula.then, env)
            return self._formula(formula.other, env)
        if isinstance(formula, Quantified):
            return self._quantified(formula, env)
        if isinstance(formula, Let):
            value = self._expr(formula.value, env)
            if isinstance(value, int):
                raise EvaluationError("let cannot bind integers", formula.pos)
            inner = dict(env)
            inner[formula.name] = value
            return self._formula(formula.body, inner)
        if isinstance(formula, PredCall):
            pred = self._info.preds.get(formula.name)
            if pred is None:
                raise EvaluationError(
                    f"unknown predicate {formula.name!r}", formula.pos
                )
            args = [self._rel(arg, env) for arg in formula.args]
            inner = _bind_params(pred.params, args)
            return self._formula(pred.body, inner)
        if isinstance(formula, Block):
            return all(self._formula(f, env) for f in formula.formulas)
        raise EvaluationError(f"cannot evaluate formula {formula!r}", formula.pos)

    def _compare(self, formula: Compare, env: Env) -> bool:
        left = self._expr(formula.left, env)
        right = self._expr(formula.right, env)
        if isinstance(left, int) or isinstance(right, int):
            if not (isinstance(left, int) and isinstance(right, int)):
                raise EvaluationError(
                    "cannot compare integers with relations", formula.pos
                )
            return _int_compare(formula.op, left, right, formula)
        if formula.op is CmpOp.IN:
            return left <= right
        if formula.op is CmpOp.NOT_IN:
            return not left <= right
        if formula.op is CmpOp.EQ:
            return left == right
        if formula.op is CmpOp.NEQ:
            return left != right
        raise EvaluationError(
            f"operator {formula.op.value!r} requires integers", formula.pos
        )

    def _bool_bin(self, formula: BoolBin, env: Env) -> bool:
        if formula.op is LogicOp.AND:
            return self._formula(formula.left, env) and self._formula(
                formula.right, env
            )
        if formula.op is LogicOp.OR:
            return self._formula(formula.left, env) or self._formula(
                formula.right, env
            )
        if formula.op is LogicOp.IMPLIES:
            return (not self._formula(formula.left, env)) or self._formula(
                formula.right, env
            )
        return self._formula(formula.left, env) == self._formula(formula.right, env)

    def _quantified(self, formula: Quantified, env: Env) -> bool:
        matches = 0
        total = 0
        for _, inner in self._bindings(formula.decls, env):
            total += 1
            if self._formula(formula.body, inner):
                matches += 1
        if formula.quant is Quant.ALL:
            return matches == total
        if formula.quant is Quant.SOME:
            return matches >= 1
        if formula.quant is Quant.NO:
            return matches == 0
        if formula.quant is Quant.LONE:
            return matches <= 1
        return matches == 1

    def _bindings(self, decls: list[Decl], env: Env):
        """Yield (per-name atom tuples, extended env) for every valuation of
        the declared scalar variables."""
        names: list[str] = []
        pools: list[list[tuple[str, ...]]] = []
        disj_groups: list[tuple[int, int]] = []
        inner = dict(env)
        # Bounds may reference earlier binders only through env at expansion
        # time; evaluate each decl's bound under the *outer* env extended with
        # nothing (Alloy allows dependent bounds, which we expand iteratively).
        start = 0
        for decl in decls:
            bound = self._rel(decl.bound, inner)
            atom_tuples = sorted(bound)
            for name in decl.names:
                names.append(name)
                pools.append(atom_tuples)
            if decl.disj and len(decl.names) > 1:
                disj_groups.append((start, start + len(decl.names)))
            start += len(decl.names)
        for combo in itertools.product(*pools):
            if any(
                len({combo[i] for i in range(lo, hi)}) != hi - lo
                for lo, hi in disj_groups
            ):
                continue
            extended = dict(inner)
            for name, atoms in zip(names, combo):
                extended[name] = frozenset({atoms})
            yield combo, extended


def _join(left: Relation, right: Relation, site) -> Relation:
    if any(len(t) == 1 for t in left) and any(len(t) == 1 for t in right):
        raise EvaluationError("join of two unary relations", site.pos)
    result: set[tuple[str, ...]] = set()
    by_first: dict[str, list[tuple[str, ...]]] = {}
    for t in right:
        by_first.setdefault(t[0], []).append(t)
    for a in left:
        for b in by_first.get(a[-1], []):
            result.add(a[:-1] + b[1:])
    return frozenset(result)


def _transitive_closure(relation: Relation) -> Relation:
    closure = set(relation)
    changed = True
    while changed:
        changed = False
        additions = set()
        by_first: dict[str, list[tuple[str, ...]]] = {}
        for t in closure:
            by_first.setdefault(t[0], []).append(t)
        for a, b in list(closure):
            for t in by_first.get(b, []):
                pair = (a, t[1])
                if pair not in closure:
                    additions.add(pair)
        if additions:
            closure |= additions
            changed = True
    return frozenset(closure)


def _mult_holds(mult: Mult, size: int) -> bool:
    if mult is Mult.NO:
        return size == 0
    if mult is Mult.SOME:
        return size >= 1
    if mult is Mult.LONE:
        return size <= 1
    if mult is Mult.ONE:
        return size == 1
    return True  # SET


def _int_compare(op: CmpOp, left: int, right: int, site) -> bool:
    if op is CmpOp.EQ:
        return left == right
    if op is CmpOp.NEQ:
        return left != right
    if op is CmpOp.LT:
        return left < right
    if op is CmpOp.LTE:
        return left <= right
    if op is CmpOp.GT:
        return left > right
    if op is CmpOp.GTE:
        return left >= right
    raise EvaluationError(f"cannot apply {op.value!r} to integers", site.pos)


def _bind_params(params: list[Decl], args: list[Relation]) -> Env:
    names = [name for decl in params for name in decl.names]
    if len(names) != len(args):
        raise EvaluationError(
            f"expected {len(names)} arguments, got {len(args)}"
        )
    return dict(zip(names, args))
