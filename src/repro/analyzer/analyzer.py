"""The bounded model finder: this repository's stand-in for Alloy Analyzer 4.2.

Given a module, the :class:`Analyzer` executes ``run`` and ``check`` commands
by grounding the relational problem to CNF (via :mod:`repro.analyzer.translate`)
and solving with the CDCL engine.  It can enumerate multiple instances or
counterexamples — the capability ICEBAR and the multi-round LLM feedback
loop rely on.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterator

from repro import chaos, obs
from repro.alloy.errors import AlloyError, AnalysisBudgetError, EvaluationError
from repro.alloy.nodes import Block, Command, Formula, Module, Not, PredCall
from repro.alloy.parser import parse_module
from repro.alloy.resolver import ModuleInfo, resolve_module
from repro.analyzer.instance import Instance
from repro.analyzer.semantics import field_constraints
from repro.analyzer.translate import Translator
from repro.analyzer.universe import Bounds
from repro.runtime.budget import Budget
from repro.runtime.errors import BudgetExhaustedError
from repro.sat.circuit import CircuitBuilder
from repro.sat.solver import BudgetExceeded, SatSolver

DEFAULT_CONFLICT_LIMIT = 20_000
"""Per-solve conflict budget: the deterministic analogue of the Analyzer's
wall-clock timeout.  Benchmark-sized problems finish in well under 1,000
conflicts; pathological mutants are cut off instead of hanging a run."""


@dataclass
class CommandResult:
    """Outcome of executing one command."""

    command: Command
    name: str
    kind: str  # "run" or "check"
    sat: bool
    instances: list[Instance] = field(default_factory=list)
    solve_time: float = 0.0
    truncated: bool = False
    """Enumeration stopped early on a budget overrun; the instances listed
    are valid but possibly incomplete."""

    @property
    def instance(self) -> Instance | None:
        """The first instance (model or counterexample), if any."""
        return self.instances[0] if self.instances else None

    @property
    def passed(self) -> bool:
        """For checks: no counterexample.  For runs: an instance exists."""
        if self.kind == "check":
            return not self.sat
        return self.sat

    @property
    def meets_expectation(self) -> bool:
        """Whether the result matches the command's ``expect`` annotation."""
        if self.command.expect is None:
            return True
        return self.sat == (self.command.expect == 1)


class Analyzer:
    """Executes commands of one resolved module."""

    def __init__(
        self,
        module: Module | str,
        conflict_limit: int | None = DEFAULT_CONFLICT_LIMIT,
        budget: Budget | None = None,
    ) -> None:
        if isinstance(module, str):
            module = parse_module(module)
        self.module = module
        self.info: ModuleInfo = resolve_module(module)
        self._conflict_limit = conflict_limit
        self._budget = budget
        """Optional session-wide budget, charged one step per solver call.
        Lets a caller bound a whole analysis session (many commands, many
        enumerated instances) rather than a single solve."""

    # -- command execution ------------------------------------------------------

    def execute_all(self, max_instances: int = 1) -> list[CommandResult]:
        """Run every command in declaration order."""
        return [
            self.run_command(command, max_instances=max_instances)
            for command in self.info.commands
        ]

    def run_command(self, command: Command, max_instances: int = 1) -> CommandResult:
        """Execute a single command, returning its result and instances."""
        start = time.perf_counter()
        instances: list[Instance] = []
        truncated = False
        name = command.target or f"{command.kind}#anonymous"
        with obs.span("analyzer.command", command=name, kind=command.kind) as span:
            try:
                for instance in self.solutions(command):
                    instances.append(instance)
                    if len(instances) >= max_instances:
                        break
            except AnalysisBudgetError:
                # A budget overrun part-way through enumeration does not void
                # the instances already found: the SAT answer stands, only the
                # enumeration is incomplete.  With zero instances we cannot
                # distinguish UNSAT from "ran out of budget", so re-raise.
                if not instances:
                    raise
                truncated = True
            metrics = obs.get_metrics()
            if metrics.enabled:
                obs.counter("analyzer.commands").inc()
                obs.counter("analyzer.instances").inc(len(instances))
            span.set(sat=bool(instances), instances=len(instances))
        elapsed = time.perf_counter() - start
        return CommandResult(
            command=command,
            name=name,
            kind=command.kind,
            sat=bool(instances),
            instances=instances,
            solve_time=elapsed,
            truncated=truncated,
        )

    def solutions(
        self,
        command: Command,
        extra_formulas: list[Formula] | None = None,
    ) -> Iterator[Instance]:
        """Yield instances (run) or counterexamples (check) for a command.

        ``extra_formulas`` are conjoined with the problem — used by repair
        tools to inject test valuations or blocking constraints.
        """
        solver = SatSolver()
        builder = CircuitBuilder(solver)
        bounds = Bounds(self.info, command, builder)
        translator = Translator(self.info, bounds)

        for formula in field_constraints(self.info):
            builder.assert_true(translator.formula(formula))
        for fact in self.info.facts:
            builder.assert_true(translator.formula(fact.body))
        builder.assert_true(self._target_handle(command, translator))
        for formula in extra_formulas or []:
            builder.assert_true(translator.formula(formula))

        if chaos.fire("analyzer.explode", clauses=solver.num_clauses) is not None:
            # Injected grounding blow-up: behaves exactly like a problem
            # whose CNF outgrew the session budget — the partial-result /
            # degradation paths downstream must absorb it.
            raise AnalysisBudgetError(
                "chaos: translation exploded past the clause budget "
                f"({solver.num_clauses} clauses grounded)"
            )

        metrics = obs.get_metrics()
        if metrics.enabled:
            # Translation size: how big a CNF this command grounded to.
            obs.histogram("analyzer.translation_vars").observe(solver.num_vars)
            obs.histogram("analyzer.translation_clauses").observe(
                solver.num_clauses
            )
            # Peak gauges: the largest grounding of the run (gauges merge
            # across shards as max, so the run-level value is the true peak).
            peak_vars = obs.gauge("analyzer.peak_vars")
            peak_vars.set(max(peak_vars.value, solver.num_vars))
            peak_clauses = obs.gauge("analyzer.peak_clauses")
            peak_clauses.set(max(peak_clauses.value, solver.num_clauses))

        primary = bounds.primary_handles()
        while self._solve_within_budget(solver):
            true_vars = solver.model()
            true_lits = set(true_vars)
            instance_relations = {
                name: frozenset(
                    tup
                    for tup, handle in handles.items()
                    if builder.evaluate(handle, true_lits)
                )
                for name, handles in primary.items()
            }
            yield Instance(relations=instance_relations)
            blocking = self._blocking_clause(builder, primary, true_lits)
            if blocking is None:
                return  # every primary handle is constant: unique instance
            solver.add_clause(blocking)

    def _solve_within_budget(self, solver: SatSolver) -> bool:
        if obs.get_metrics().enabled:
            obs.counter("analyzer.solve_calls").inc()
        if self._budget is not None:
            try:
                self._budget.charge(1, what="solver call")
            except BudgetExhaustedError as error:
                raise AnalysisBudgetError(str(error)) from error
        try:
            return solver.solve(conflict_limit=self._conflict_limit)
        except BudgetExceeded as error:
            raise AnalysisBudgetError(str(error)) from error

    def _target_handle(self, command: Command, translator: Translator) -> int:
        if command.kind == "run":
            if command.target is not None:
                target: Formula = PredCall(name=command.target, args=[])
            else:
                target = command.block or Block()
            return translator.formula(target)
        if command.target is not None:
            assertion = self.info.asserts.get(command.target)
            if assertion is None:
                raise EvaluationError(
                    f"unknown assertion {command.target!r}", command.pos
                )
            body: Formula = assertion.body
        else:
            body = command.block or Block()
        return translator.formula(Not(operand=body))

    @staticmethod
    def _blocking_clause(
        builder: CircuitBuilder,
        primary: dict[str, dict[tuple[str, ...], int]],
        true_lits: set[int],
    ) -> list[int] | None:
        clause: list[int] = []
        for handles in primary.values():
            for handle in handles.values():
                if handle in (1, -1):  # TRUE / FALSE constants
                    continue
                lit = builder.to_literal(handle)
                clause.append(-lit if lit in true_lits else lit)
        return clause or None

    # -- convenience oracles ------------------------------------------------------

    def check_assertion(
        self, name: str, scope: int = 3, max_counterexamples: int = 1
    ) -> CommandResult:
        """Check a named assertion under a default scope."""
        command = Command(kind="check", target=name, default_scope=scope)
        return self.run_command(command, max_instances=max_counterexamples)

    def run_pred(
        self, name: str, scope: int = 3, max_instances: int = 1
    ) -> CommandResult:
        """Run a named predicate under a default scope."""
        command = Command(kind="run", target=name, default_scope=scope)
        return self.run_command(command, max_instances=max_instances)

    def is_consistent(self, scope: int = 3) -> bool:
        """Whether the facts admit any instance at the given scope."""
        command = Command(kind="run", block=Block(), default_scope=scope)
        return self.run_command(command).sat


def analyze_source(source: str, max_instances: int = 1) -> list[CommandResult]:
    """Parse, resolve, and execute every command of a specification."""
    return Analyzer(source).execute_all(max_instances=max_instances)


def try_analyze(source: str) -> tuple[list[CommandResult] | None, str | None]:
    """Like :func:`analyze_source` but returns ``(results, error_message)``.

    Repair pipelines use this to classify candidate specs that fail to
    compile without unwinding their search loops.
    """
    try:
        return analyze_source(source), None
    except AlloyError as error:
        return None, str(error)
    except RecursionError:
        return None, "specification too deeply nested to analyze"
