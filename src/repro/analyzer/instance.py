"""Concrete instances (models / counterexamples) of a specification.

An :class:`Instance` maps every signature and field name to a set of atom
tuples.  Instances are produced by the model finder and consumed by the
evaluator, by AUnit-style tests, and by the feedback generators of the
LLM-based repair pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.alloy.resolver import ModuleInfo

Tuple = tuple[str, ...]
Relation = frozenset[Tuple]


@dataclass(frozen=True)
class Instance:
    """An immutable valuation of all signatures and fields."""

    relations: dict[str, Relation] = field(default_factory=dict)

    def relation(self, name: str) -> Relation:
        """The value of a relation, empty if absent."""
        return self.relations.get(name, frozenset())

    def atoms(self) -> frozenset[str]:
        """All atoms present in any unary signature relation."""
        result: set[str] = set()
        for name, tuples in self.relations.items():
            for tup in tuples:
                if len(tup) == 1:
                    result.add(tup[0])
        return frozenset(result)

    def with_relation(self, name: str, tuples: frozenset[Tuple]) -> "Instance":
        """A copy of this instance with one relation replaced."""
        relations = dict(self.relations)
        relations[name] = frozenset(tuples)
        return Instance(relations=relations)

    def canonical_key(self) -> tuple:
        """A hashable, order-independent key for duplicate detection."""
        return tuple(
            (name, tuple(sorted(self.relations[name])))
            for name in sorted(self.relations)
        )

    def describe(self, info: ModuleInfo | None = None) -> str:
        """A readable multi-line rendering (used in LLM feedback prompts)."""
        lines: list[str] = []
        names = sorted(self.relations)
        if info is not None:
            sig_names = [n for n in names if n in info.sigs]
            field_names = [n for n in names if n in info.fields]
            names = sig_names + field_names
        for name in names:
            tuples = sorted(self.relations[name])
            rendered = ", ".join("->".join(tup) for tup in tuples)
            lines.append(f"{name} = {{{rendered}}}")
        return "\n".join(lines)

    def __hash__(self) -> int:  # dataclass(frozen) can't hash the dict field
        return hash(self.canonical_key())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Instance):
            return NotImplemented
        return self.canonical_key() == other.canonical_key()


def make_instance(relations: dict[str, set[Tuple] | frozenset[Tuple]]) -> Instance:
    """Build an instance from plain sets of tuples."""
    return Instance(
        relations={name: frozenset(tuples) for name, tuples in relations.items()}
    )
