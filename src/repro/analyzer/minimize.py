"""Counterexample minimization.

The Alloy Analyzer ships a "minimize" action that shrinks an instance while
preserving the property that made it interesting.  This module reproduces it
with a greedy delta-debugging pass: tuples (and then atoms) are removed one
at a time as long as a caller-supplied predicate still holds.

Smaller counterexamples make sharper feedback: the multi-round repair loop
can enable minimization so the Generic/Auto prompts quote the smallest
violating valuation instead of an arbitrary solver model.
"""

from __future__ import annotations

from typing import Callable

from repro.alloy.errors import AlloyError
from repro.alloy.resolver import ModuleInfo
from repro.analyzer.evaluator import Evaluator
from repro.analyzer.instance import Instance

Predicate = Callable[[Instance], bool]


def minimize_instance(instance: Instance, interesting: Predicate) -> Instance:
    """Greedy minimization: drop tuples, then atoms, while ``interesting``.

    ``interesting`` must hold for the input instance; the result is a local
    minimum (removing any single remaining tuple or atom breaks it).
    """
    if not interesting(instance):
        raise ValueError("the initial instance is not interesting")
    current = instance
    changed = True
    while changed:
        changed = False
        # Pass 1: drop individual tuples from n-ary relations.
        for name in sorted(current.relations):
            for tup in sorted(current.relation(name)):
                if len(tup) == 1 and _is_sig_tuple(current, name):
                    continue  # atoms handled below (with their incident tuples)
                candidate = current.with_relation(
                    name, current.relation(name) - {tup}
                )
                if interesting(candidate):
                    current = candidate
                    changed = True
        # Pass 2: drop atoms together with every tuple mentioning them.
        for atom in sorted(current.atoms()):
            candidate = _without_atom(current, atom)
            if interesting(candidate):
                current = candidate
                changed = True
    return current


def _is_sig_tuple(instance: Instance, name: str) -> bool:
    """Heuristic: unary relations whose atoms carry the relation's own name
    prefix are signature rows (``Node`` holding ``Node$0``)."""
    return any(tup[0].split("$", 1)[0] == name for tup in instance.relation(name))


def _without_atom(instance: Instance, atom: str) -> Instance:
    relations = {
        name: frozenset(tup for tup in tuples if atom not in tup)
        for name, tuples in instance.relations.items()
    }
    return Instance(relations=relations)


def minimize_counterexample(
    info: ModuleInfo, instance: Instance, assertion: str
) -> Instance:
    """Shrink a counterexample of ``check <assertion>``.

    The interesting-ness predicate is "facts hold and the assertion is
    violated" — the exact condition that made the analyzer report it.
    """

    def interesting(candidate: Instance) -> bool:
        evaluator = Evaluator(info, candidate)
        try:
            return evaluator.facts_hold() and not evaluator.assertion_holds(
                assertion
            )
        except AlloyError:
            return False

    return minimize_instance(instance, interesting)


def minimize_fact_violation(info: ModuleInfo, instance: Instance) -> Instance:
    """Shrink a valuation that violates the facts (an ICEBAR-style negative
    test), keeping it violating."""

    def interesting(candidate: Instance) -> bool:
        evaluator = Evaluator(info, candidate)
        try:
            return not evaluator.facts_hold()
        except AlloyError:
            return False

    return minimize_instance(instance, interesting)
