"""repro: reproduction of "Towards More Dependable Specifications" (DSN 2025).

A pure-Python study platform for Alloy specification repair: an Alloy
dialect front end, a SAT-backed bounded analyzer, four traditional repair
tools (ARepair, ICEBAR, BeAFix, ATR), single- and multi-round LLM repair
with a calibrated simulated GPT-4, the study's metrics (REP/TM/SM), both
benchmarks, and drivers regenerating every table and figure of the paper.
"""

__version__ = "1.0.0"
