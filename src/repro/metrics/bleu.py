"""Sentence-level BLEU, implemented from scratch (Papineni et al., 2002).

The study's Token Match (TM) metric is the sentence BLEU of the candidate
repair against the ground-truth specification, with whitespace tokenization.
We use up-to-4-gram precision with the standard brevity penalty and add-one
smoothing on higher-order n-grams (Lin & Och's smoothing 1), which keeps
short specifications from zeroing out.
"""

from __future__ import annotations

import math
from collections import Counter


def tokenize(text: str) -> list[str]:
    """Whitespace tokenization, as specified by the study."""
    return text.split()


def _ngrams(tokens: list[str], n: int) -> Counter:
    return Counter(
        tuple(tokens[i : i + n]) for i in range(len(tokens) - n + 1)
    )


def modified_precision(
    candidate: list[str], reference: list[str], n: int
) -> tuple[int, int]:
    """Clipped n-gram matches and total candidate n-grams."""
    candidate_ngrams = _ngrams(candidate, n)
    reference_ngrams = _ngrams(reference, n)
    matches = sum(
        min(count, reference_ngrams[ngram])
        for ngram, count in candidate_ngrams.items()
    )
    total = max(sum(candidate_ngrams.values()), 0)
    return matches, total


def sentence_bleu(
    candidate_text: str, reference_text: str, max_n: int = 4
) -> float:
    """BLEU of ``candidate_text`` against a single reference, in [0, 1]."""
    candidate = tokenize(candidate_text)
    reference = tokenize(reference_text)
    if not candidate or not reference:
        return 1.0 if candidate == reference else 0.0

    log_precision_sum = 0.0
    for n in range(1, max_n + 1):
        matches, total = modified_precision(candidate, reference, n)
        if total == 0:
            # Candidate shorter than n: treat as fully smoothed.
            matches, total = 1, 1
        elif matches == 0:
            # Smoothing 1: add one to numerator and denominator for n > 1.
            if n == 1:
                return 0.0
            matches, total = 1, total + 1
        log_precision_sum += math.log(matches / total)
    geometric_mean = math.exp(log_precision_sum / max_n)

    candidate_length = len(candidate)
    reference_length = len(reference)
    if candidate_length >= reference_length:
        brevity_penalty = 1.0
    else:
        brevity_penalty = math.exp(1.0 - reference_length / candidate_length)
    return brevity_penalty * geometric_mean


def token_match(candidate_text: str, reference_text: str) -> float:
    """The study's TM metric: sentence BLEU over whitespace tokens."""
    return sentence_bleu(candidate_text, reference_text)
