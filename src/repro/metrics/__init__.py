"""Evaluation metrics: REP, Token Match (BLEU), Syntax Match, Pearson."""

from repro.metrics.bleu import sentence_bleu, token_match
from repro.metrics.pearson import Correlation, correlation_matrix, pearson
from repro.metrics.rep import (
    RepOutcome,
    rep,
    rep_module,
    rep_outcome,
    truth_command_outcomes,
)
from repro.metrics.syntax_match import (
    subtree_multiset,
    subtree_shape,
    syntax_match,
    syntax_match_modules,
)

__all__ = [
    "Correlation",
    "RepOutcome",
    "correlation_matrix",
    "pearson",
    "rep",
    "rep_module",
    "rep_outcome",
    "sentence_bleu",
    "subtree_multiset",
    "subtree_shape",
    "syntax_match",
    "syntax_match_modules",
    "token_match",
    "truth_command_outcomes",
]
