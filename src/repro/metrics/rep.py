"""REP: the study's repair-success metric.

REP compares a proposed fix against the ground truth by executing *every
command of the ground truth* in both specifications and comparing
satisfiability outcomes (equisatisfiability under identical bounds).  All
results matching → REP = 1; any difference (or a candidate that fails to
compile) → REP = 0.

The paper implements this with a Java program driving the Alloy API; here
the bounded analyzer plays that role.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.alloy.errors import AlloyError
from repro.alloy.nodes import Command, Module
from repro.alloy.parser import parse_module
from repro.analyzer.analyzer import Analyzer


@dataclass
class RepOutcome:
    """Detailed result of one REP comparison."""

    rep: int
    compiled: bool
    compared_commands: int = 0
    mismatched_commands: list[str] = field(default_factory=list)
    error: str | None = None


def _outcomes(analyzer: Analyzer, commands: list[Command]) -> list[bool] | None:
    results: list[bool] = []
    for command in commands:
        try:
            results.append(analyzer.run_command(command).sat)
        except (AlloyError, RecursionError):
            return None
    return results


def rep_outcome(
    candidate_text: str,
    truth_text: str,
    truth_outcomes: list[bool] | None = None,
) -> RepOutcome:
    """Compute REP with full diagnostics.

    ``truth_outcomes`` may be supplied to reuse cached ground-truth results
    (the experiment harness computes them once per specification).
    """
    try:
        truth_module = parse_module(truth_text)
        truth_analyzer = Analyzer(truth_module)
    except (AlloyError, RecursionError) as error:
        raise ValueError(f"ground truth does not analyze: {error}") from error
    commands = truth_analyzer.info.commands
    if not commands:
        raise ValueError("ground truth has no commands to compare")

    if truth_outcomes is None:
        truth_outcomes = _outcomes(truth_analyzer, commands)
        if truth_outcomes is None:
            raise ValueError("ground truth commands failed to execute")

    try:
        candidate_module = parse_module(candidate_text)
        candidate_analyzer = Analyzer(candidate_module)
    except (AlloyError, RecursionError) as error:
        return RepOutcome(rep=0, compiled=False, error=str(error))

    candidate_outcomes = _outcomes(candidate_analyzer, commands)
    if candidate_outcomes is None:
        return RepOutcome(
            rep=0,
            compiled=True,
            error="a ground-truth command failed on the candidate",
        )
    mismatched = [
        command.target or f"{command.kind}#{index}"
        for index, (command, truth_sat, cand_sat) in enumerate(
            zip(commands, truth_outcomes, candidate_outcomes)
        )
        if truth_sat != cand_sat
    ]
    return RepOutcome(
        rep=0 if mismatched else 1,
        compiled=True,
        compared_commands=len(commands),
        mismatched_commands=mismatched,
    )


def rep(candidate_text: str, truth_text: str) -> int:
    """The REP metric: 1 if equisatisfiable on all commands, else 0."""
    return rep_outcome(candidate_text, truth_text).rep


def truth_command_outcomes(truth_text: str) -> list[bool]:
    """Cacheable ground-truth command outcomes (for batched REP runs)."""
    truth_analyzer = Analyzer(parse_module(truth_text))
    outcomes = _outcomes(truth_analyzer, truth_analyzer.info.commands)
    if outcomes is None:
        raise ValueError("ground truth commands failed to execute")
    return outcomes


def rep_module(candidate: Module, truth_text: str) -> int:
    """REP for an already-parsed candidate module."""
    from repro.alloy.pretty import print_module

    return rep(print_module(candidate), truth_text)
