"""Pearson correlation with significance, implemented from first principles.

Used by the Figure 3 reproduction: the correlation between two repair
techniques' per-specification similarity scores.  The p-value uses the exact
t-distribution via the regularized incomplete beta function (continued
fraction evaluation), so no SciPy dependency is needed on this path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class Correlation:
    """A Pearson correlation coefficient with its two-sided p-value."""

    r: float
    p_value: float
    n: int


def pearson(xs: list[float], ys: list[float]) -> Correlation:
    """Pearson's r between two equal-length samples, with significance."""
    if len(xs) != len(ys):
        raise ValueError("samples must have equal length")
    n = len(xs)
    if n < 3:
        raise ValueError("need at least 3 paired observations")
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var_x = sum((x - mean_x) ** 2 for x in xs)
    var_y = sum((y - mean_y) ** 2 for y in ys)
    if var_x == 0.0 or var_y == 0.0:
        # A constant sample: correlation undefined; report r = 0, p = 1.
        return Correlation(r=0.0, p_value=1.0, n=n)
    r = cov / math.sqrt(var_x * var_y)
    r = max(-1.0, min(1.0, r))
    if abs(r) == 1.0:
        return Correlation(r=r, p_value=0.0, n=n)
    dof = n - 2
    t = r * math.sqrt(dof / (1.0 - r * r))
    p = _student_t_two_sided(t, dof)
    return Correlation(r=r, p_value=p, n=n)


def _student_t_two_sided(t: float, dof: int) -> float:
    """Two-sided p-value for Student's t via the incomplete beta function."""
    x = dof / (dof + t * t)
    return _regularized_incomplete_beta(dof / 2.0, 0.5, x)


def _regularized_incomplete_beta(a: float, b: float, x: float) -> float:
    """I_x(a, b) by Lentz's continued fraction (Numerical Recipes 6.4)."""
    if x <= 0.0:
        return 0.0
    if x >= 1.0:
        return 1.0
    ln_beta = (
        math.lgamma(a + b) - math.lgamma(a) - math.lgamma(b)
        + a * math.log(x)
        + b * math.log(1.0 - x)
    )
    front = math.exp(ln_beta)
    if x < (a + 1.0) / (a + b + 2.0):
        return front * _beta_cf(a, b, x) / a
    return 1.0 - front * _beta_cf(b, a, 1.0 - x) / b


def _beta_cf(a: float, b: float, x: float, max_iterations: int = 200) -> float:
    tiny = 1e-30
    qab = a + b
    qap = a + 1.0
    qam = a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < tiny:
        d = tiny
    d = 1.0 / d
    h = d
    for m in range(1, max_iterations + 1):
        m2 = 2 * m
        numerator = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + numerator * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + numerator / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        h *= d * c
        numerator = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + numerator * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + numerator / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < 1e-12:
            return h
    return h


def correlation_matrix(
    series: dict[str, list[float]]
) -> dict[tuple[str, str], Correlation]:
    """All pairwise correlations among named, aligned series."""
    names = list(series)
    matrix: dict[tuple[str, str], Correlation] = {}
    for i, first in enumerate(names):
        for second in names[i:]:
            result = pearson(series[first], series[second])
            matrix[(first, second)] = result
            matrix[(second, first)] = result
    return matrix
