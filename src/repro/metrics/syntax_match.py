"""Syntax Match (SM): parse-tree similarity via a subtree kernel.

The study computes SM by parsing both specifications (ignoring whitespace
and other analyzer-irrelevant differences) and comparing the parse trees with
a subtree kernel (Gärtner et al., 2003).  We serialize every subtree of each
AST to a canonical shape string, count them as multisets, and report the
normalized kernel

    K(a, b) / sqrt(K(a, a) * K(b, b))

which is 1 for structurally identical trees and 0 when no ground-truth
subtree occurs in the candidate.
"""

from __future__ import annotations

import math
from collections import Counter

from repro.alloy.errors import AlloyError
from repro.alloy.nodes import (
    BinaryExpr,
    BoolBin,
    Compare,
    IntLit,
    Module,
    MultTest,
    NameExpr,
    Node,
    Quantified,
    SigDecl,
    UnaryExpr,
    UnaryType,
)
from repro.alloy.parser import parse_module


def subtree_shape(node: Node) -> str:
    """A canonical serialization of the subtree rooted at ``node``.

    The shape captures node kind, the discriminating attributes the Alloy
    Analyzer cares about (operators, quantifiers, names, multiplicities), and
    the shapes of all children — but no positions or formatting.
    """
    label = type(node).__name__
    if isinstance(node, NameExpr):
        label += f":{node.name}"
    elif isinstance(node, IntLit):
        label += f":{node.value}"
    elif isinstance(node, (BinaryExpr, BoolBin, Compare)):
        label += f":{node.op.value}"
    elif isinstance(node, UnaryExpr):
        label += f":{node.op.value}"
    elif isinstance(node, Quantified):
        label += f":{node.quant.value}"
    elif isinstance(node, MultTest):
        label += f":{node.mult.value}"
    elif isinstance(node, UnaryType):
        label += f":{node.mult.value}"
    elif isinstance(node, SigDecl):
        label += ":" + ",".join(node.names)
    elif hasattr(node, "name") and isinstance(getattr(node, "name"), str):
        label += f":{getattr(node, 'name')}"
    children = ",".join(subtree_shape(child) for child in node.children())
    return f"{label}({children})"


def subtree_multiset(module: Module) -> Counter:
    """Multiset of all subtree shapes in a module's AST."""
    return Counter(subtree_shape(node) for node in module.walk())


def kernel(a: Counter, b: Counter) -> int:
    """Subtree kernel: sum over shared shapes of count products."""
    if len(b) < len(a):
        a, b = b, a
    return sum(count * b[shape] for shape, count in a.items())


def syntax_match_modules(candidate: Module, reference: Module) -> float:
    """Normalized subtree-kernel similarity of two parsed modules."""
    candidate_shapes = subtree_multiset(candidate)
    reference_shapes = subtree_multiset(reference)
    shared = kernel(candidate_shapes, reference_shapes)
    if shared == 0:
        return 0.0
    self_candidate = kernel(candidate_shapes, candidate_shapes)
    self_reference = kernel(reference_shapes, reference_shapes)
    return shared / math.sqrt(self_candidate * self_reference)


def syntax_match(candidate_text: str, reference_text: str) -> float:
    """The study's SM metric; 0.0 when the candidate does not parse."""
    try:
        candidate = parse_module(candidate_text)
    except (AlloyError, RecursionError):
        return 0.0
    try:
        reference = parse_module(reference_text)
    except (AlloyError, RecursionError):
        raise ValueError("reference specification must parse") from None
    return syntax_match_modules(candidate, reference)
