"""Counterexample-driven fault localization (FLACK-style).

Given discriminating evidence — valuations on which the faulty specification
disagrees with its oracle — each candidate fault location is scored by how
often *flipping* the formula rooted there changes the specification's verdict
on the failing valuations.  Locations whose perturbation flips many failing
verdicts (without breaking passing ones) rank highest.

Expression nodes inherit a depth-discounted share of their enclosing
formula's score, which lets expression-level tools (ATR, BeAFix) target
subexpressions while formula-level tools (ARepair) target whole constraints.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.alloy.errors import AlloyError
from repro.alloy.nodes import Expr, Formula, Module, Not
from repro.alloy.resolver import ModuleInfo, resolve_module
from repro.alloy.walk import Path, get_at, iter_paths, replace_at
from repro.analyzer.evaluator import Evaluator
from repro.analyzer.instance import Instance
from repro.repair.mutation import body_paragraph_paths
from repro.testing.aunit import AUnitTest


@dataclass(frozen=True)
class SuspiciousLocation:
    """A ranked candidate fault location."""

    path: Path
    score: float
    is_formula: bool


@dataclass(frozen=True)
class Discriminator:
    """A valuation on which the current specification is wrong.

    The *verdict* of a specification on a discriminator is::

        facts ∧ pred (if set) ∧ ¬assertion (if set)

    which covers AUnit tests (facts, optionally with a predicate), check
    counterexamples (facts ∧ ¬assertion), and unexpected run instances
    (facts ∧ pred).  The specification is wrong while verdict ≠ expected.
    """

    instance: Instance
    expected: bool
    pred: str | None = None
    violated_assertion: str | None = None

    @classmethod
    def from_test(cls, test: AUnitTest) -> "Discriminator":
        from repro.testing.aunit import FACTS_TARGET

        pred = None if test.target == FACTS_TARGET else test.target
        return cls(instance=test.instance, expected=test.expect, pred=pred)

    @classmethod
    def from_command_evidence(cls, command, instance: Instance) -> "Discriminator":
        """A counterexample of a failing command (expected verdict: False)."""
        if command.kind == "check" and command.target is not None:
            return cls(
                instance=instance, expected=False, violated_assertion=command.target
            )
        pred = command.target if command.kind == "run" else None
        return cls(instance=instance, expected=False, pred=pred)


def _verdict(info: ModuleInfo, discriminator: Discriminator) -> bool | None:
    evaluator = Evaluator(info, discriminator.instance)
    try:
        holds = evaluator.facts_hold()
        if holds and discriminator.pred is not None:
            holds = evaluator.pred_holds(discriminator.pred)
        if holds and discriminator.violated_assertion is not None:
            holds = not evaluator.assertion_holds(discriminator.violated_assertion)
    except AlloyError:
        return None
    return holds


def verdict_matches(info: ModuleInfo, discriminator: Discriminator) -> bool:
    """Whether the module's verdict on the discriminator is as expected."""
    return _verdict(info, discriminator) == discriminator.expected


def formula_paths(module: Module) -> list[Path]:
    """Paths of every formula node in repairable paragraph bodies."""
    paths: list[Path] = []
    for para_path in body_paragraph_paths(module):
        paragraph = get_at(module, para_path)
        for sub_path, node in iter_paths(paragraph):
            if isinstance(node, Formula):
                paths.append(para_path + sub_path)
    return paths


def localize(
    module: Module,
    info: ModuleInfo,
    discriminators: list[Discriminator],
    max_locations: int = 10,
) -> list[SuspiciousLocation]:
    """Rank candidate fault locations by flip-based suspiciousness."""
    failing = [
        d for d in discriminators if _verdict(info, d) not in (d.expected, None)
    ]
    if not failing:
        return _structural_fallback(module, max_locations)

    scored: list[SuspiciousLocation] = []
    for path in formula_paths(module):
        node = get_at(module, path)
        flipped = replace_at(module, path, Not(operand=node))
        try:
            flipped_info = resolve_module(flipped)
        except (AlloyError, RecursionError):
            continue
        fixes = 0
        for discriminator in failing:
            if _verdict(flipped_info, discriminator) == discriminator.expected:
                fixes += 1
        if fixes:
            score = fixes / len(failing)
            scored.append(
                SuspiciousLocation(path=path, score=score, is_formula=True)
            )

    scored.sort(key=lambda loc: (-loc.score, len(loc.path), loc.path))
    top = scored[:max_locations]
    return _with_expression_children(module, top, max_locations)


def _with_expression_children(
    module: Module, formula_locations: list[SuspiciousLocation], max_locations: int
) -> list[SuspiciousLocation]:
    """Extend formula locations with their expression descendants at a
    depth-discounted score (keeps ranking stable and deterministic)."""
    result = list(formula_locations)
    for location in formula_locations:
        node = get_at(module, location.path)
        for sub_path, child in iter_paths(node):
            if sub_path and isinstance(child, Expr):
                score = location.score * (0.9 ** len(sub_path))
                result.append(
                    SuspiciousLocation(
                        path=location.path + sub_path,
                        score=score,
                        is_formula=False,
                    )
                )
    result.sort(key=lambda loc: (-loc.score, len(loc.path), loc.path))
    return result[: max_locations * 4]


def _structural_fallback(
    module: Module, max_locations: int
) -> list[SuspiciousLocation]:
    """Without failing evidence, rank formulas by syntactic size (larger
    constraints first — they carry the most behaviour)."""
    locations = []
    for path in formula_paths(module):
        node = get_at(module, path)
        size = sum(1 for _ in node.walk())
        locations.append(
            SuspiciousLocation(path=path, score=1.0 / (1 + size), is_formula=True)
        )
    locations.sort(key=lambda loc: (loc.score, len(loc.path), loc.path))
    return locations[:max_locations]
