"""BeAFix: bounded-exhaustive repair search (Gutiérrez Brida et al., ICSE'21).

BeAFix enumerates all candidate repairs reachable by applying up to ``k``
mutations at suspicious locations, pruning the space with two techniques
mirrored from the original tool:

1. *Cheap semantic pruning* — each candidate is first evaluated against the
   counterexamples collected from the faulty specification's failing
   commands (a fast, solver-free evaluator check).  A candidate that still
   admits a known counterexample cannot meet the oracle and is discarded.
2. *Duplicate pruning* — structurally identical candidates (after pretty
   printing) are only evaluated once.

Survivors are validated against the full property oracle (the commands with
their ``expect`` annotations) using the bounded analyzer.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.alloy.errors import AlloyError
from repro.alloy.pretty import print_module
from repro.alloy.resolver import resolve_module
from repro.repair.base import (
    PropertyOracle,
    RepairResult,
    RepairStatus,
    RepairTask,
    RepairTool,
)
from repro.repair.localization import Discriminator, localize, verdict_matches
from repro.repair.mutation import higher_order_mutants


@dataclass
class BeAFixConfig:
    """Tuning knobs for the bounded-exhaustive search."""

    max_depth: int = 2
    max_locations: int = 10
    max_candidates: int = 600
    max_oracle_queries: int = 40
    prune: bool = True
    """Disable to measure the value of semantic pruning (ablation)."""
    static_prune: bool = True
    """Veto mutants that introduce statically dead constructs before any
    evaluator or solver work (also gated by the ambient
    :func:`repro.analysis.prune.pruning` switch / ``--no-static-prune``)."""


class BeAFix(RepairTool):
    """Bounded-exhaustive mutation search with pruning."""

    name = "BeAFix"

    def __init__(self, config: BeAFixConfig | None = None) -> None:
        self._config = config or BeAFixConfig()

    def _repair(self, task: RepairTask) -> RepairResult:
        oracle = PropertyOracle(task)
        evidence = oracle.failing_evidence_by_command(task.module, max_instances=3)
        discriminators = [
            Discriminator.from_command_evidence(command, instance)
            for command, instances in evidence
            for instance in instances
        ]
        locations = localize(
            task.module,
            task.info,
            discriminators,
            max_locations=self._config.max_locations,
        )
        paths = [loc.path for loc in locations]
        explored = 0
        pruned = 0

        for mutant in higher_order_mutants(
            task.module,
            task.info,
            paths,
            depth=self._config.max_depth,
            limit=self._config.max_candidates,
            prune=self._config.static_prune,
        ):
            explored += 1
            if oracle.queries >= self._config.max_oracle_queries:
                break
            if self._config.prune and discriminators:
                if not self._refutes_evidence(mutant.module, discriminators):
                    pruned += 1
                    continue
            ok, _ = oracle.evaluate_module(mutant.module)
            if ok:
                return RepairResult(
                    status=RepairStatus.FIXED,
                    technique=self.name,
                    candidate=mutant.module,
                    candidate_source=print_module(mutant.module),
                    candidates_explored=explored,
                    candidates_pruned=pruned,
                    oracle_queries=oracle.queries,
                    detail=f"mutations: {mutant.description} (pruned {pruned})",
                )

        return RepairResult(
            status=RepairStatus.NOT_FIXED,
            technique=self.name,
            candidates_explored=explored,
            candidates_pruned=pruned,
            oracle_queries=oracle.queries,
            detail=f"search exhausted; pruned {pruned} candidates",
        )

    @staticmethod
    def _refutes_evidence(module, discriminators: list[Discriminator]) -> bool:
        """Fast evaluator check: the candidate must refute every collected
        counterexample (otherwise the corresponding command still fails)."""
        try:
            info = resolve_module(module)
        except (AlloyError, RecursionError):
            return False
        return all(verdict_matches(info, d) for d in discriminators)
