"""ATR: template-based repair guided by instance analysis (Zheng et al., ISSTA'22).

ATR repairs a specification with violated assertions in three phases:

1. **Evidence collection** — counterexamples of the failing commands, and
   *satisfying instances*: valuations that satisfy both the facts and the
   violated assertions (the analogue of ATR's PMaxSAT-derived instances).
2. **Localization + template instantiation** — suspicious locations are
   ranked by counterexample-flip localization; expression and formula
   templates are instantiated at each.
3. **Pruning + validation** — candidates must refute every counterexample
   and preserve every satisfying instance (fast evaluator checks) before the
   full property oracle (bounded analyzer) confirms them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.alloy.errors import AlloyError
from repro.alloy.nodes import Block, Command
from repro.alloy.pretty import print_module
from repro.alloy.resolver import resolve_module
from repro.analyzer.analyzer import Analyzer
from repro.analyzer.evaluator import Evaluator
from repro.analyzer.instance import Instance
from repro.repair.base import (
    PropertyOracle,
    RepairResult,
    RepairStatus,
    RepairTask,
    RepairTool,
)
from repro.repair.localization import Discriminator, localize, verdict_matches
from repro.repair.templates import strengthening_candidates, template_candidates


@dataclass
class AtrConfig:
    """Tuning knobs for the template search."""

    max_locations: int = 12
    max_per_location: int = 140
    max_candidates: int = 800
    max_oracle_queries: int = 45
    satisfying_instances: int = 2
    static_prune: bool = True
    """Veto template instantiations that introduce statically dead
    constructs before the evaluator/oracle pipeline (also gated by the
    ambient :func:`repro.analysis.prune.pruning` switch)."""


class Atr(RepairTool):
    """Template-based repair with counterexample/instance pruning."""

    name = "ATR"

    def __init__(self, config: AtrConfig | None = None) -> None:
        self._config = config or AtrConfig()

    def _repair(self, task: RepairTask) -> RepairResult:
        oracle = PropertyOracle(task)
        evidence = oracle.failing_evidence_by_command(task.module, max_instances=3)
        discriminators = [
            Discriminator.from_command_evidence(command, instance)
            for command, instances in evidence
            for instance in instances
        ]
        preservers = self._satisfying_instances(task, [c for c, _ in evidence])

        locations = localize(
            task.module,
            task.info,
            discriminators,
            max_locations=self._config.max_locations,
        )
        explored = 0
        pruned = 0
        candidate_filter = None
        if self._config.static_prune:
            from repro.analysis.prune import CandidateFilter

            candidate_filter = CandidateFilter(task.module, task.info)
        # Strengthening templates first: they directly target synthesis-class
        # faults (a dropped constraint) and the batch is small.
        for candidate, description in strengthening_candidates(
            task.module, task.info, candidate_filter=candidate_filter
        ):
            explored += 1
            if oracle.queries >= self._config.max_oracle_queries:
                break
            if not self._passes_pruning(candidate, discriminators, preservers):
                pruned += 1
                continue
            ok, _ = oracle.evaluate_module(candidate)
            if ok:
                return RepairResult(
                    status=RepairStatus.FIXED,
                    technique=self.name,
                    candidate=candidate,
                    candidate_source=print_module(candidate),
                    candidates_explored=explored,
                    oracle_queries=oracle.queries,
                    detail=f"template: {description} (pruned {pruned})",
                )
        for location in locations:
            for mutant in template_candidates(
                task.module,
                task.info,
                location.path,
                max_per_location=self._config.max_per_location,
                candidate_filter=candidate_filter,
            ):
                explored += 1
                if explored > self._config.max_candidates:
                    break
                if oracle.queries >= self._config.max_oracle_queries:
                    break
                if not self._passes_pruning(mutant.module, discriminators, preservers):
                    pruned += 1
                    continue
                ok, _ = oracle.evaluate_module(mutant.module)
                if ok:
                    return RepairResult(
                        status=RepairStatus.FIXED,
                        technique=self.name,
                        candidate=mutant.module,
                        candidate_source=print_module(mutant.module),
                        candidates_explored=explored,
                        oracle_queries=oracle.queries,
                        detail=f"template: {mutant.description} (pruned {pruned})",
                    )
            if (
                explored > self._config.max_candidates
                or oracle.queries >= self._config.max_oracle_queries
            ):
                break

        return RepairResult(
            status=RepairStatus.NOT_FIXED,
            technique=self.name,
            candidates_explored=explored,
            oracle_queries=oracle.queries,
            detail=f"templates exhausted; pruned {pruned} candidates",
        )

    def _satisfying_instances(
        self, task: RepairTask, failing_commands: list[Command]
    ) -> list[tuple[str | None, Instance]]:
        """Valuations satisfying facts plus each violated assertion.

        These play the role of ATR's PMaxSAT-derived satisfying instances:
        behaviour the repair must *preserve*."""
        preservers: list[tuple[str | None, Instance]] = []
        analyzer = Analyzer(task.module)
        for command in failing_commands:
            if command.kind != "check" or command.target is None:
                continue
            body = task.info.asserts[command.target].body
            probe = Command(
                kind="run",
                block=Block(formulas=list(body.formulas)),
                default_scope=command.default_scope,
                sig_scopes=list(command.sig_scopes),
            )
            try:
                result = analyzer.run_command(
                    probe, max_instances=self._config.satisfying_instances
                )
            except (AlloyError, RecursionError):
                continue
            preservers.extend(
                (command.target, instance) for instance in result.instances
            )
        return preservers

    def _passes_pruning(
        self,
        module,
        discriminators: list[Discriminator],
        preservers: list[tuple[str | None, Instance]],
    ) -> bool:
        try:
            info = resolve_module(module)
        except (AlloyError, RecursionError):
            return False
        if not all(verdict_matches(info, d) for d in discriminators):
            return False
        for assertion, instance in preservers:
            evaluator = Evaluator(info, instance)
            try:
                if not evaluator.facts_hold():
                    return False
                if assertion is not None and not evaluator.assertion_holds(assertion):
                    return False
            except AlloyError:
                return False
        return True
