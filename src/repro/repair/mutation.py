"""Mutation operators over specification ASTs.

These operators serve two masters: BeAFix's bounded-exhaustive search (and
ARepair's greedy sketch filling) mutate *toward* a fix, while the benchmark
generator mutates a correct specification *away* from it to inject realistic
faults.  The operator set covers the fault taxonomy the study's benchmarks
exhibit: operator swaps, quantifier swaps, multiplicity errors, dropped or
negated constraints, and wrong relation references.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.alloy.errors import AlloyError
from repro.alloy.nodes import (
    BinaryExpr,
    BinOp,
    Block,
    BoolBin,
    Compare,
    CmpOp,
    Comprehension,
    Decl,
    Expr,
    FieldDecl,
    Formula,
    FunDecl,
    Let,
    LogicOp,
    Module,
    Mult,
    MultTest,
    NameExpr,
    Node,
    NoneExpr,
    Not,
    Paragraph,
    PredDecl,
    Quant,
    Quantified,
    UnaryExpr,
    UnaryType,
    UnivExpr,
    UnOp,
    AssertDecl,
    FactDecl,
)
from repro.alloy.resolver import INT_ARITY, ModuleInfo, arity_of, resolve_module
from repro.alloy.walk import Path, get_at, iter_paths, remove_at, replace_at

_CMP_SWAPS: dict[CmpOp, list[CmpOp]] = {
    CmpOp.IN: [CmpOp.EQ, CmpOp.NOT_IN],
    CmpOp.NOT_IN: [CmpOp.IN],
    CmpOp.EQ: [CmpOp.IN, CmpOp.NEQ],
    CmpOp.NEQ: [CmpOp.EQ],
    CmpOp.LT: [CmpOp.LTE, CmpOp.GT],
    CmpOp.LTE: [CmpOp.LT, CmpOp.GTE],
    CmpOp.GT: [CmpOp.GTE, CmpOp.LT],
    CmpOp.GTE: [CmpOp.GT, CmpOp.LTE],
}

_LOGIC_SWAPS: dict[LogicOp, list[LogicOp]] = {
    LogicOp.AND: [LogicOp.OR],
    LogicOp.OR: [LogicOp.AND],
    LogicOp.IMPLIES: [LogicOp.IFF, LogicOp.AND],
    LogicOp.IFF: [LogicOp.IMPLIES],
}

_QUANT_SWAPS: dict[Quant, list[Quant]] = {
    Quant.ALL: [Quant.SOME, Quant.NO],
    Quant.SOME: [Quant.ALL, Quant.NO, Quant.ONE],
    Quant.NO: [Quant.SOME, Quant.ALL],
    Quant.LONE: [Quant.ONE, Quant.SOME],
    Quant.ONE: [Quant.LONE, Quant.SOME],
}

_MULT_TEST_SWAPS: dict[Mult, list[Mult]] = {
    Mult.NO: [Mult.SOME, Mult.LONE],
    Mult.SOME: [Mult.NO, Mult.ONE, Mult.LONE],
    Mult.LONE: [Mult.ONE, Mult.NO],
    Mult.ONE: [Mult.SOME, Mult.LONE],
}

_FIELD_MULT_SWAPS: dict[Mult, list[Mult]] = {
    Mult.SET: [Mult.SOME, Mult.LONE],
    Mult.ONE: [Mult.LONE, Mult.SOME],
    Mult.LONE: [Mult.ONE, Mult.SET],
    Mult.SOME: [Mult.SET, Mult.ONE],
}

_REL_OP_SWAPS: dict[BinOp, list[BinOp]] = {
    BinOp.UNION: [BinOp.DIFF, BinOp.INTERSECT],
    BinOp.DIFF: [BinOp.UNION, BinOp.INTERSECT],
    BinOp.INTERSECT: [BinOp.UNION, BinOp.DIFF],
    BinOp.DOM_RESTRICT: [BinOp.RAN_RESTRICT],
    BinOp.RAN_RESTRICT: [BinOp.DOM_RESTRICT],
}


@dataclass(frozen=True)
class Mutant:
    """A single mutated module plus a human-readable description."""

    module: Module
    description: str
    path: Path


def body_paragraph_paths(module: Module) -> list[Path]:
    """Paths of the paragraphs whose bodies repair may touch.

    Assertions are excluded: together with the commands they form the
    property oracle, which every tool in the study treats as frozen —
    mutating an assertion would "repair" the model by weakening its own
    oracle.
    """
    paths: list[Path] = []
    for index, paragraph in enumerate(module.paragraphs):
        if isinstance(paragraph, (FactDecl, PredDecl, FunDecl)):
            paths.append((("paragraphs", index),))
    return paths


def mutation_points(module: Module) -> list[Path]:
    """Paths of every formula/expression node inside repairable bodies,
    plus every field declaration (for multiplicity mutations)."""
    points: list[Path] = []
    for para_path in body_paragraph_paths(module):
        paragraph = get_at(module, para_path)
        for sub_path, node in iter_paths(paragraph):
            if isinstance(node, (Formula, Expr, FieldDecl)):
                points.append(para_path + sub_path)
    for index, paragraph in enumerate(module.paragraphs):
        if hasattr(paragraph, "fields"):
            for f_index, _ in enumerate(paragraph.fields):
                points.append((("paragraphs", index), ("fields", f_index)))
    return points


def scope_env_at(module: Module, info: ModuleInfo, path: Path) -> dict[str, int]:
    """Arity environment of variables bound above the node at ``path``."""
    env: dict[str, int] = {}
    node: Node = module
    for step in path:
        if isinstance(node, (PredDecl, FunDecl)):
            _extend_env_with_decls(info, node.params, env)
        if isinstance(node, (Quantified, Comprehension)):
            _extend_env_with_decls(info, node.decls, env)
        if isinstance(node, Let):
            try:
                env[node.name] = arity_of(info, node.value, env)
            except AlloyError:
                env[node.name] = 1
        field_name, index = step
        value = getattr(node, field_name)
        node = value if index is None else value[index]
    return env


def _extend_env_with_decls(
    info: ModuleInfo, decls: list[Decl], env: dict[str, int]
) -> None:
    for decl in decls:
        try:
            bound_arity = arity_of(info, decl.bound, env)
        except AlloyError:
            bound_arity = 1
        for name in decl.names:
            env[name] = bound_arity


def _candidate_names(
    info: ModuleInfo, env: dict[str, int], arity: int
) -> list[str]:
    """Names (sigs, fields, in-scope variables) with a given arity."""
    names = [s for s in info.sigs if arity == 1]
    names.extend(f for f, fi in info.fields.items() if fi.arity == arity)
    names.extend(v for v, a in env.items() if a == arity)
    return names


class Mutator:
    """Generates type-correct single mutations of one module.

    With ``prune=True`` (the repair tools opt in; fault injection and the
    mock LLM do not, keeping their candidate streams byte-stable) each
    resolving mutant is additionally vetted by the static lint engine:
    mutants that *introduce* a semantically dead construct relative to the
    base module are dropped before any translation or solver call, counted
    under the ``analysis.pruned_typed`` metric.
    """

    def __init__(
        self,
        module: Module,
        info: ModuleInfo,
        *,
        prune: bool = False,
        candidate_filter: "object | None" = None,
    ) -> None:
        self._module = module
        self._info = info
        self._prune = prune or candidate_filter is not None
        self._filter = candidate_filter

    def _veto(self, mutated: Module) -> "object | None":
        """The new prunable finding a mutant introduces, else ``None``."""
        if not self._prune:
            return None
        from repro.analysis.prune import CandidateFilter, pruning_enabled

        if not pruning_enabled():
            return None
        if self._filter is None:
            self._filter = CandidateFilter(self._module, self._info)
        return self._filter.veto(mutated)

    def mutants_at(self, path: Path) -> Iterator[Mutant]:
        """All single mutations of the node at ``path`` that still resolve
        (and, when pruning, are not statically dead)."""
        node = get_at(self._module, path)
        for replacement, description in self._proposals(node, path):
            if replacement is _REMOVE:
                try:
                    mutated = remove_at(self._module, path)
                except ValueError:
                    continue
            else:
                mutated = replace_at(self._module, path, replacement)
            try:
                resolve_module(mutated)
            except (AlloyError, RecursionError):
                continue
            diagnostic = self._veto(mutated)
            if diagnostic is not None:
                from repro.analysis.prune import record_pruned

                record_pruned(diagnostic)
                continue
            yield Mutant(module=mutated, description=description, path=path)

    def all_mutants(
        self, paths: list[Path] | None = None, limit: int | None = None
    ) -> Iterator[Mutant]:
        """Single mutants at the given points (default: everywhere)."""
        count = 0
        seen: set[str] = set()
        from repro.alloy.pretty import print_module

        for path in paths if paths is not None else mutation_points(self._module):
            for mutant in self.mutants_at(path):
                text = print_module(mutant.module)
                if text in seen:
                    continue
                seen.add(text)
                yield mutant
                count += 1
                if limit is not None and count >= limit:
                    return

    # -- proposals per node type ------------------------------------------------

    def _proposals(
        self, node: Node, path: Path
    ) -> Iterator[tuple[Node, str]]:
        if isinstance(node, Compare):
            yield from self._compare_proposals(node)
        if isinstance(node, BoolBin):
            yield from self._bool_proposals(node)
        if isinstance(node, Quantified):
            yield from self._quant_proposals(node)
        if isinstance(node, MultTest):
            yield from self._mult_test_proposals(node)
        if isinstance(node, Not):
            yield node.operand, "drop negation"
        if isinstance(node, Formula) and not isinstance(node, (Block, Not)):
            yield Not(operand=node), "negate formula"
            if path and path[-1][1] is not None and _inside_block(self._module, path):
                yield _REMOVE, "drop conjunct"
        if isinstance(node, BinaryExpr):
            yield from self._binary_expr_proposals(node)
        if isinstance(node, UnaryExpr):
            yield from self._unary_expr_proposals(node)
        if isinstance(node, NameExpr):
            yield from self._name_proposals(node, path)
        if isinstance(node, FieldDecl):
            yield from self._field_decl_proposals(node)

    def _compare_proposals(self, node: Compare) -> Iterator[tuple[Node, str]]:
        for op in _CMP_SWAPS.get(node.op, []):
            replacement = Compare(op=op, left=node.left, right=node.right)
            yield replacement, f"compare {node.op.value} -> {op.value}"
        if node.op in (CmpOp.IN, CmpOp.EQ):
            swapped = Compare(op=node.op, left=node.right, right=node.left)
            yield swapped, f"swap operands of {node.op.value}"

    def _bool_proposals(self, node: BoolBin) -> Iterator[tuple[Node, str]]:
        for op in _LOGIC_SWAPS.get(node.op, []):
            replacement = BoolBin(op=op, left=node.left, right=node.right)
            yield replacement, f"logic {node.op.value} -> {op.value}"
        if node.op is LogicOp.IMPLIES:
            flipped = BoolBin(op=node.op, left=node.right, right=node.left)
            yield flipped, "swap implication sides"
        yield node.left, "keep only left conjunct/disjunct"
        yield node.right, "keep only right conjunct/disjunct"

    def _quant_proposals(self, node: Quantified) -> Iterator[tuple[Node, str]]:
        for quant in _QUANT_SWAPS.get(node.quant, []):
            replacement = Quantified(
                quant=quant, decls=node.decls, body=node.body
            )
            yield replacement, f"quantifier {node.quant.value} -> {quant.value}"

    def _mult_test_proposals(self, node: MultTest) -> Iterator[tuple[Node, str]]:
        for mult in _MULT_TEST_SWAPS.get(node.mult, []):
            replacement = MultTest(mult=mult, operand=node.operand)
            yield replacement, f"multiplicity {node.mult.value} -> {mult.value}"

    def _binary_expr_proposals(self, node: BinaryExpr) -> Iterator[tuple[Node, str]]:
        for op in _REL_OP_SWAPS.get(node.op, []):
            replacement = BinaryExpr(op=op, left=node.left, right=node.right)
            yield replacement, f"operator {node.op.value} -> {op.value}"
        if node.op in (BinOp.JOIN, BinOp.PRODUCT):
            swapped = BinaryExpr(op=node.op, left=node.right, right=node.left)
            yield swapped, f"swap operands of {node.op.value}"
        if node.op in (BinOp.UNION, BinOp.DIFF, BinOp.INTERSECT):
            yield node.left, "keep left operand"
            yield node.right, "keep right operand"

    def _unary_expr_proposals(self, node: UnaryExpr) -> Iterator[tuple[Node, str]]:
        if node.op is UnOp.CLOSURE:
            yield UnaryExpr(op=UnOp.RCLOSURE, operand=node.operand), "^ -> *"
            yield node.operand, "drop closure"
        elif node.op is UnOp.RCLOSURE:
            yield UnaryExpr(op=UnOp.CLOSURE, operand=node.operand), "* -> ^"
            yield node.operand, "drop closure"
        elif node.op is UnOp.TRANSPOSE:
            yield node.operand, "drop transpose"

    def _name_proposals(
        self, node: NameExpr, path: Path
    ) -> Iterator[tuple[Node, str]]:
        env = scope_env_at(self._module, self._info, path)
        try:
            arity = arity_of(self._info, node, env)
        except AlloyError:
            return
        if arity == INT_ARITY:
            return
        for name in _candidate_names(self._info, env, arity):
            if name != node.name:
                yield NameExpr(name=name), f"name {node.name} -> {name}"
        if arity == 1:
            yield NoneExpr(), f"name {node.name} -> none"
            yield UnivExpr(), f"name {node.name} -> univ"
        if arity == 2:
            yield (
                UnaryExpr(op=UnOp.TRANSPOSE, operand=NameExpr(name=node.name)),
                f"transpose {node.name}",
            )
            yield (
                UnaryExpr(op=UnOp.CLOSURE, operand=NameExpr(name=node.name)),
                f"closure of {node.name}",
            )

    def _field_decl_proposals(self, node: FieldDecl) -> Iterator[tuple[Node, str]]:
        if not isinstance(node.type, UnaryType):
            return
        for mult in _FIELD_MULT_SWAPS.get(node.type.mult, []):
            new_type = UnaryType(mult=mult, expr=node.type.expr)
            replacement = FieldDecl(name=node.name, type=new_type)
            yield (
                replacement,
                f"field {node.name}: {node.type.mult.value} -> {mult.value}",
            )


_REMOVE = object()
"""Sentinel: the proposal removes the node from its parent list."""


def _inside_block(module: Module, path: Path) -> bool:
    if len(path) < 2:
        return False
    parent = get_at(module, path[:-1])
    return isinstance(parent, Block) and len(parent.formulas) > 1


def higher_order_mutants(
    module: Module,
    info: ModuleInfo,
    paths: list[Path],
    depth: int,
    limit: int | None = None,
    *,
    prune: bool = False,
) -> Iterator[Mutant]:
    """Mutants combining up to ``depth`` single mutations at distinct points.

    This is BeAFix's bounded-exhaustive candidate space.  Combinations are
    generated by re-mutating each depth-(k-1) mutant at a strictly later
    point, so each combination is produced once.

    With ``prune=True`` a statically dead depth-k mutant is dropped *and*
    never enters the depth-(k+1) frontier, cutting the whole subtree it
    would have rooted — the pruning that makes bounded-exhaustive search
    tractable.  The veto baseline is the original module, so pre-existing
    findings in the faulty spec never block its own repair.
    """
    shared_filter = None
    if prune:
        from repro.analysis.prune import CandidateFilter

        shared_filter = CandidateFilter(module, info)
    count = 0
    frontier: list[tuple[Module, int, str]] = [(module, -1, "")]
    for _ in range(depth):
        next_frontier: list[tuple[Module, int, str]] = []
        for base, last_index, description in frontier:
            try:
                base_info = resolve_module(base)
            except (AlloyError, RecursionError):
                continue
            mutator = Mutator(base, base_info, candidate_filter=shared_filter)
            for point_index, path in enumerate(paths):
                if point_index <= last_index:
                    continue
                try:
                    # Paths were computed on the original module; an earlier
                    # mutation may have reshaped the tree (e.g. wrapped a
                    # formula in a negation), invalidating later paths.
                    mutants = list(mutator.mutants_at(path))
                except (AttributeError, IndexError, TypeError):
                    continue
                for mutant in mutants:
                    combined = (
                        f"{description}; {mutant.description}"
                        if description
                        else mutant.description
                    )
                    yield Mutant(
                        module=mutant.module, description=combined, path=path
                    )
                    next_frontier.append((mutant.module, point_index, combined))
                    count += 1
                    if limit is not None and count >= limit:
                        return
        frontier = next_frontier
