"""Single-round LLM repair (Hasan et al., 2023).

One zero-shot prompt, one completion, one extracted specification.  The five
prompt settings differ only in which hints accompany the faulty model; no
analyzer feedback is ever provided.  Whether the extracted proposal actually
repairs the specification is judged downstream by the REP metric — exactly
the study's protocol.
"""

from __future__ import annotations

from repro.alloy.pretty import print_module
from repro.llm.client import LLMClient
from repro.llm.extract import try_extract_module
from repro.llm.prompts import PromptSetting, RepairHints, single_round_prompt
from repro.repair.base import (
    PropertyOracle,
    RepairResult,
    RepairStatus,
    RepairTask,
    RepairTool,
)


class SingleRoundLLM(RepairTool):
    """Zero-shot prompting with configurable hints."""

    def __init__(
        self,
        client: LLMClient,
        setting: PromptSetting,
        hints: RepairHints | None = None,
    ) -> None:
        self._client = client
        self._setting = setting
        self._hints = hints or RepairHints()
        self.name = f"Single-Round_{setting.value}"

    def _repair(self, task: RepairTask) -> RepairResult:
        conversation = single_round_prompt(task.source, self._setting, self._hints)
        response = self._client.complete(conversation)
        module, error = try_extract_module(response)
        if module is None:
            return RepairResult(
                status=RepairStatus.ERROR,
                technique=self.name,
                iterations=1,
                detail=f"unparseable response: {error}",
            )
        oracle = PropertyOracle(task)
        ok, _ = oracle.evaluate_module(module)
        detail = "proposal meets oracle" if ok else "proposal fails oracle"
        lint_note = self._lint_note(module)
        if lint_note:
            detail = f"{detail}; {lint_note}"
        return RepairResult(
            status=RepairStatus.FIXED if ok else RepairStatus.NOT_FIXED,
            technique=self.name,
            candidate=module,
            candidate_source=print_module(module),
            iterations=1,
            oracle_queries=oracle.queries,
            detail=detail,
        )

    @staticmethod
    def _lint_note(module) -> str:
        """Summarize static findings in the proposal (counted per rule under
        ``analysis.lint_findings``); single-round never feeds them back —
        there is no next round — but the result detail and traces keep them
        visible for the failure-mode analysis."""
        from repro import obs
        from repro.analysis import lint_module

        try:
            diagnostics = lint_module(module)
        except Exception:  # noqa: BLE001 - unlintable proposals stay silent
            return ""
        for diagnostic in diagnostics:
            obs.counter(
                "analysis.lint_findings", rule=diagnostic.rule.name
            ).inc()
        if not diagnostics:
            return ""
        codes = ", ".join(
            sorted({d.code for d in diagnostics})
        )
        return f"{len(diagnostics)} lint finding(s): {codes}"
