"""ARepair: test-driven greedy repair (Wang, Sullivan & Khurshid, ASE'18).

ARepair takes a faulty specification plus an AUnit test suite and greedily
mutates the specification until every test passes (or its budget runs out).
Its oracle is *only* the test suite — the well-known consequence, reproduced
here, is overfitting: candidates that satisfy the tests but not the intended
semantics.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.alloy.pretty import print_module
from repro.alloy.resolver import resolve_module
from repro.repair.base import RepairResult, RepairStatus, RepairTask, RepairTool
from repro.repair.localization import Discriminator, localize
from repro.repair.mutation import Mutator
from repro.testing.aunit import TestSuite


@dataclass
class ARepairConfig:
    """Tuning knobs for the greedy search."""

    max_iterations: int = 8
    max_locations: int = 8
    max_mutants_per_iteration: int = 220
    plateau_moves: int = 2
    """How many sideways (equal-score) moves the greedy walk may take when
    no strictly improving mutation exists — multi-edit faults need them."""
    static_prune: bool = True
    """Veto statically dead mutants before scoring them against the suite
    (gated by the ambient :func:`repro.analysis.prune.pruning` switch)."""


class ARepair(RepairTool):
    """Greedy test-driven repair."""

    name = "ARepair"

    def __init__(self, suite: TestSuite, config: ARepairConfig | None = None) -> None:
        self._suite = suite
        self._config = config or ARepairConfig()

    def _repair(self, task: RepairTask) -> RepairResult:
        module = task.module
        info = task.info
        explored = 0
        best_score = self._suite.score(info)
        plateau_budget = self._config.plateau_moves
        visited = {print_module(module)}

        for iteration in range(self._config.max_iterations):
            if best_score >= 1.0:
                return RepairResult(
                    status=RepairStatus.FIXED,
                    technique=self.name,
                    candidate=module,
                    candidate_source=print_module(module),
                    iterations=iteration,
                    candidates_explored=explored,
                    detail="all tests pass",
                )
            discriminators = [
                Discriminator.from_test(test) for test in self._suite.failing(info)
            ]
            locations = localize(
                module, info, discriminators, max_locations=self._config.max_locations
            )
            mutator = Mutator(module, info, prune=self._config.static_prune)
            best_mutant = None
            best_mutant_score = best_score
            plateau_mutant = None
            count = 0
            for location in locations:
                try:
                    options = list(mutator.mutants_at(location.path))
                except (AttributeError, IndexError, TypeError):
                    continue
                for mutant in options:
                    count += 1
                    explored += 1
                    if count > self._config.max_mutants_per_iteration:
                        break
                    text = print_module(mutant.module)
                    if text in visited:
                        continue
                    try:
                        mutant_info = resolve_module(mutant.module)
                    except Exception:  # noqa: BLE001 - any bad mutant is skipped
                        continue
                    score = self._suite.score(mutant_info)
                    if score > best_mutant_score:
                        best_mutant = (mutant, mutant_info, score)
                        best_mutant_score = score
                    elif score == best_score and plateau_mutant is None:
                        plateau_mutant = (mutant, mutant_info, score)
                if count > self._config.max_mutants_per_iteration:
                    break
            if best_mutant is None:
                # No single mutation improves: try pairs at the two most
                # suspicious locations (ARepair applies multiple
                # modifications per iteration when the sketch needs it).
                best_mutant = self._depth_two_rescue(
                    module, locations, best_score, visited
                )
                if best_mutant is not None:
                    explored += best_mutant[3]
                    best_mutant = best_mutant[:3]
            if best_mutant is None and plateau_mutant is not None and plateau_budget:
                # Sideways move: no single mutation improves, but multi-edit
                # faults often require passing through an equal-score state.
                plateau_budget -= 1
                best_mutant = plateau_mutant
            if best_mutant is None:
                # Greedy search is stuck: no single mutation improves the suite.
                return RepairResult(
                    status=RepairStatus.NOT_FIXED,
                    technique=self.name,
                    candidate=module if iteration > 0 else None,
                    candidate_source=print_module(module) if iteration > 0 else None,
                    iterations=iteration + 1,
                    candidates_explored=explored,
                    detail="no improving mutation found",
                )
            mutant, info, best_score = best_mutant
            module = mutant.module
            visited.add(print_module(module))

        if best_score >= 1.0:
            return RepairResult(
                status=RepairStatus.FIXED,
                technique=self.name,
                candidate=module,
                candidate_source=print_module(module),
                iterations=self._config.max_iterations,
                candidates_explored=explored,
                detail="all tests pass",
            )
        return RepairResult(
            status=RepairStatus.NOT_FIXED,
            technique=self.name,
            candidate=module,
            candidate_source=print_module(module),
            iterations=self._config.max_iterations,
            candidates_explored=explored,
            detail=f"budget exhausted at test score {best_score:.2f}",
        )

    def _depth_two_rescue(self, module, locations, best_score, visited):
        """Search mutation pairs at the top suspicious locations for a
        strictly improving candidate.  Returns
        ``(mutant, info, score, explored)`` or ``None``."""
        from repro.repair.mutation import higher_order_mutants

        paths = [loc.path for loc in locations[:2]]
        explored = 0
        try:
            info = resolve_module(module)
        except Exception:  # noqa: BLE001
            return None
        for mutant in higher_order_mutants(
            module,
            info,
            paths,
            depth=2,
            limit=80,
            prune=self._config.static_prune,
        ):
            explored += 1
            if ";" not in mutant.description:
                continue  # singles were already tried
            text = print_module(mutant.module)
            if text in visited:
                continue
            try:
                mutant_info = resolve_module(mutant.module)
            except Exception:  # noqa: BLE001
                continue
            score = self._suite.score(mutant_info)
            if score > best_score:
                return (mutant, mutant_info, score, explored)
        return None
