"""Dynamic technique selection — the future-work direction of the paper.

The Discussion section proposes "a dynamic approach that selects the most
suitable combination of techniques based on the characteristics of faulty
specifications … initial analysis using traditional tools to identify
structural issues, followed by LLM-based analysis for semantic understanding".

:class:`DynamicSelector` implements that portfolio:

1. **Characterize** the fault: how many commands fail, whether
   counterexamples exist (over- vs under-constraint), how concentrated the
   suspicious locations are, and the specification's size.
2. **Route** to the cheapest technique likely to succeed — BeAFix for
   concentrated single-location faults with counterexamples, ATR when a
   violated assertion suggests a missing/synthesizable constraint, and the
   multi-round LLM for diffuse or evidence-poor faults.
3. **Escalate** through the remaining techniques until one meets the
   property oracle or the portfolio is exhausted.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.alloy.walk import count_nodes
from repro.llm.client import LLMClient
from repro.llm.prompts import FeedbackLevel
from repro.repair.atr import Atr
from repro.repair.base import (
    PropertyOracle,
    RepairResult,
    RepairStatus,
    RepairTask,
    RepairTool,
)
from repro.repair.beafix import BeAFix
from repro.repair.localization import Discriminator, localize
from repro.repair.multi_round import MultiRoundLLM


@dataclass(frozen=True)
class FaultProfile:
    """Observable characteristics of one faulty specification."""

    failing_commands: int
    has_counterexamples: bool
    top_location_score: float
    location_concentration: float
    spec_size: int

    @property
    def looks_concentrated(self) -> bool:
        """One dominant suspicious location: mutation search territory."""
        return self.top_location_score >= 0.99 and self.location_concentration > 0.5

    @property
    def looks_underconstrained(self) -> bool:
        """Counterexamples exist: the model admits behaviour it should not."""
        return self.has_counterexamples

    @property
    def looks_overconstrained(self) -> bool:
        """Commands fail without counterexamples (expected instances are
        missing): constraints are too strong, evidence is scarce."""
        return self.failing_commands > 0 and not self.has_counterexamples


def characterize(task: RepairTask) -> FaultProfile:
    """Analyze a faulty specification's failure characteristics."""
    oracle = PropertyOracle(task)
    _, results = oracle.evaluate_module(task.module)
    failing = sum(
        1
        for command, result in zip(task.info.commands, results)
        if result.sat != oracle.expected_outcome(command)
    )
    evidence = oracle.failing_evidence_by_command(task.module, max_instances=2)
    discriminators = [
        Discriminator.from_command_evidence(command, instance)
        for command, instances in evidence
        for instance in instances
    ]
    locations = localize(task.module, task.info, discriminators, max_locations=5)
    top_score = locations[0].score if locations else 0.0
    if locations:
        total = sum(loc.score for loc in locations)
        concentration = locations[0].score / total if total else 0.0
    else:
        concentration = 0.0
    return FaultProfile(
        failing_commands=failing,
        has_counterexamples=bool(discriminators),
        top_location_score=top_score,
        location_concentration=concentration,
        spec_size=count_nodes(task.module),
    )


class DynamicSelector(RepairTool):
    """A portfolio that routes each fault to its most suitable technique."""

    name = "Dynamic-Selector"

    def __init__(self, llm_client: LLMClient) -> None:
        self._llm_client = llm_client

    def plan(self, profile: FaultProfile) -> list[RepairTool]:
        """The escalation order for a given fault profile."""
        beafix = BeAFix()
        atr = Atr()
        llm = MultiRoundLLM(self._llm_client, FeedbackLevel.GENERIC)
        if profile.looks_concentrated and profile.looks_underconstrained:
            return [beafix, atr, llm]
        if profile.looks_underconstrained:
            return [atr, beafix, llm]
        # Over-constraint / evidence-poor faults: adaptability first.
        return [llm, atr, beafix]

    def _repair(self, task: RepairTask) -> RepairResult:
        profile = characterize(task)
        attempts: list[str] = []
        for tool in self.plan(profile):
            result = tool.repair(task)
            attempts.append(f"{tool.name}:{result.status.value}")
            if result.fixed:
                result.detail = (
                    f"routed by profile {profile!r}; chain: {' -> '.join(attempts)}"
                )
                result.technique = self.name
                return result
        return RepairResult(
            status=RepairStatus.NOT_FIXED,
            technique=self.name,
            detail=f"portfolio exhausted; chain: {' -> '.join(attempts)}",
        )
