"""Repair techniques: four traditional tools plus LLM-based approaches."""

from repro.repair.arepair import ARepair, ARepairConfig
from repro.repair.atr import Atr, AtrConfig
from repro.repair.base import (
    PropertyOracle,
    RepairResult,
    RepairStatus,
    RepairTask,
    RepairTool,
)
from repro.repair.beafix import BeAFix, BeAFixConfig
from repro.repair.icebar import Icebar, IcebarConfig
from repro.repair.localization import (
    Discriminator,
    SuspiciousLocation,
    localize,
    verdict_matches,
)
from repro.repair.multi_round import MultiRoundConfig, MultiRoundLLM
from repro.repair.mutation import Mutant, Mutator, higher_order_mutants, mutation_points
from repro.repair.selector import DynamicSelector, FaultProfile, characterize
from repro.repair.single_round import SingleRoundLLM

# NOTE: repro.repair.registry is deliberately NOT imported here — it pulls
# in the benchmark and LLM layers, which themselves import repair
# submodules; importing it during package init would close that cycle.
# Use ``from repro.repair import registry`` (a plain submodule import).

__all__ = [
    "ARepair",
    "ARepairConfig",
    "Atr",
    "AtrConfig",
    "BeAFix",
    "BeAFixConfig",
    "Discriminator",
    "DynamicSelector",
    "FaultProfile",
    "Icebar",
    "IcebarConfig",
    "Mutant",
    "MultiRoundConfig",
    "MultiRoundLLM",
    "Mutator",
    "PropertyOracle",
    "RepairResult",
    "RepairStatus",
    "RepairTask",
    "RepairTool",
    "SingleRoundLLM",
    "SuspiciousLocation",
    "characterize",
    "higher_order_mutants",
    "localize",
    "mutation_points",
    "verdict_matches",
]
