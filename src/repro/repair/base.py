"""Shared machinery for every repair technique.

A :class:`RepairTask` wraps one faulty specification together with its
*property oracle*: the specification's own commands annotated with expected
outcomes (``expect 0`` / ``expect 1``), exactly the oracle BeAFix, ICEBAR,
and ATR consume.  A :class:`RepairResult` records what the technique
produced; the study's REP/TM/SM metrics are computed later against the
ground truth, which the tools never see.
"""

from __future__ import annotations

import enum
import hashlib
import threading
import time
from dataclasses import dataclass, field

from repro import chaos, obs
from repro.alloy.errors import AlloyError
from repro.alloy.nodes import Module
from repro.runtime.errors import classify_exception
from repro.alloy.parser import parse_module
from repro.alloy.pretty import print_module
from repro.alloy.resolver import ModuleInfo, resolve_module
from repro.analysis.canon import (
    canonical_enabled,
    canonical_key,
    record_dedup_hit,
    shared_verdicts,
)
from repro.analyzer.analyzer import Analyzer, CommandResult
from repro.analyzer.instance import Instance
from repro.analyzer.session import OracleSession, incremental_enabled


class RepairStatus(enum.Enum):
    """Terminal status of one repair attempt."""

    FIXED = "fixed"  # candidate meets the tool's oracle
    NOT_FIXED = "not_fixed"  # search exhausted without an oracle-passing fix
    ERROR = "error"  # the tool crashed or the input did not compile


@dataclass
class RepairTask:
    """One faulty specification to repair."""

    source: str
    module: Module = None  # type: ignore[assignment]
    info: ModuleInfo = None  # type: ignore[assignment]

    @classmethod
    def from_source(cls, source: str) -> "RepairTask":
        module = parse_module(source)
        info = resolve_module(module)
        return cls(source=source, module=module, info=info)

    @classmethod
    def from_module(cls, module: Module) -> "RepairTask":
        return cls(
            source=print_module(module),
            module=module,
            info=resolve_module(module),
        )


@dataclass
class RepairResult:
    """Outcome of one repair attempt."""

    status: RepairStatus
    technique: str
    candidate: Module | None = None
    candidate_source: str | None = None
    iterations: int = 0
    candidates_explored: int = 0
    candidates_pruned: int = 0
    """Candidates discarded before oracle evaluation (BeAFix-style
    semantic/duplicate pruning); zero for techniques that do not prune."""
    oracle_queries: int = 0
    elapsed: float = 0.0
    detail: str = ""
    error_code: str | None = None
    """Taxonomy code (:func:`classify_exception`) when ``status`` is ERROR
    because the tool crashed.  Runtime-only — never persisted — so health
    machinery (circuit breakers) can route on error class without parsing
    ``detail``."""

    @property
    def fixed(self) -> bool:
        return self.status is RepairStatus.FIXED

    def final_source(self, task: RepairTask) -> str:
        """The text this technique would hand to the metrics: its candidate
        if it produced one, otherwise the unmodified faulty input."""
        if self.candidate_source is not None:
            return self.candidate_source
        if self.candidate is not None:
            return print_module(self.candidate)
        return task.source


class PropertyOracle:
    """Evaluates candidates against the specification's own commands.

    A candidate *meets the oracle* when every command's satisfiability
    matches its ``expect`` annotation (commands without an annotation default
    to the conventional reading: ``check`` expects no counterexample, ``run``
    expects an instance).
    """

    def __init__(self, task: RepairTask) -> None:
        self._task = task
        self.queries = 0
        self.solver_checks = 0
        """Verdicts actually computed by the solver pipeline; ``queries``
        minus the dedup-cache replays."""
        self._session: OracleSession | None = None
        self._session_failed = False
        self._verdict_cache: dict[str, tuple[bool, list[CommandResult]]] = {}
        self._task_fingerprint = hashlib.sha256(
            task.source.encode("utf-8", "replace")
        ).hexdigest()
        """Namespaces this oracle's entries in the shard-shared cache
        (:func:`repro.analysis.canon.verdict_sharing`): verdicts are a pure
        function of (task commands+expectations, candidate semantics), and
        the commands and expectations are determined by the task source."""

    def expected_outcome(self, command) -> bool:
        if command.expect is not None:
            return command.expect == 1
        return command.kind == "run"

    def _ensure_session(self) -> OracleSession | None:
        """The shared incremental session, if enabled and healthy."""
        if self._session_failed or not incremental_enabled():
            return None
        if self._session is None:
            try:
                self._session = OracleSession(self._task.info)
            except Exception:
                self._session_failed = True
                return None
        return self._session

    def evaluate_module(self, module: Module) -> tuple[bool, list[CommandResult]]:
        """Run the *task's* commands against a candidate.

        Using the task's command list (not the candidate's) closes a
        loophole: a candidate that dropped its commands would otherwise pass
        the oracle vacuously.  Commands reference predicates/assertions by
        name, so a candidate missing them simply fails.

        This is a verdict-only query (per-command satisfiability), so by
        default it runs through a shared :class:`OracleSession` that
        re-encodes only the candidate's edited paragraph; results carry no
        instances.  Structurally divergent candidates — and every
        instance-producing query below — use the from-scratch Analyzer,
        which keeps repair outcomes identical whether the session is on or
        off (the ``--no-incremental`` ablation).

        Semantic dedup: when :func:`canonicalizing` is active, candidates
        hash to their canonical form and only one representative per
        equivalence class reaches the solver — later members replay the
        cached verdict.  ``queries`` still increments on a replay, so the
        tools' oracle-budget traversal (and therefore every matrix cell)
        is byte-identical under the ``--no-canon`` ablation; only
        ``solver_checks`` and wall-clock drop.  Inside a
        :func:`~repro.analysis.canon.verdict_sharing` scope (installed per
        shard by the executor) the cache is additionally shared across
        *tools*: BeAFix's verdicts replay for the canonically-equal
        candidates ATR's templates re-derive, keyed by the task
        fingerprint so distinct tasks never collide.

        Under an active chaos scope the replay is suppressed entirely:
        fault sites trigger per solver invocation, so skipping real solves
        would shift the deterministic fault schedule away from the
        ``--no-canon`` arm.  Chaos drills measure resilience, not
        throughput — they pay for the full solver stream."""
        self.queries += 1
        cache: dict | None = None
        cache_key: object = None
        if canonical_enabled() and chaos.active() is None:
            key = canonical_key(module, self._task.info)
            if key is not None:
                shared = shared_verdicts()
                if shared is not None:
                    cache = shared
                    cache_key = ("verdict", self._task_fingerprint, key)
                else:
                    cache = self._verdict_cache
                    cache_key = key
                cached = cache.get(cache_key)
                if cached is not None:
                    record_dedup_hit()
                    return cached
        verdict = self._evaluate_uncached(module)
        if cache is not None:
            cache[cache_key] = verdict
        return verdict

    def _evaluate_uncached(
        self, module: Module
    ) -> tuple[bool, list[CommandResult]]:
        self.solver_checks += 1
        session = self._ensure_session()
        if session is not None:
            try:
                outcome = session.evaluate(module)
            except Exception:
                # A session-machinery bug must never change a verdict:
                # disable it for the rest of this task and fall back.
                self._session_failed = True
                self._session = None
                outcome = None
            if outcome is not None:
                session_results, completed = outcome
                if not completed:
                    return False, session_results
                ok = all(
                    result.sat == self.expected_outcome(command)
                    for command, result in zip(
                        self._task.info.commands, session_results
                    )
                )
                return ok, session_results
        try:
            analyzer = Analyzer(module)
        except (AlloyError, RecursionError):
            return False, []
        results: list[CommandResult] = []
        ok = True
        for command in self._task.info.commands:
            try:
                result = analyzer.run_command(command)
            except (AlloyError, RecursionError):
                return False, results
            results.append(result)
            if result.sat != self.expected_outcome(command):
                ok = False
        return ok, results

    def failing_evidence(
        self, module: Module, max_instances: int = 3
    ) -> list[Instance]:
        """Counterexamples from commands that defy expectations (flat list)."""
        return [
            instance
            for _, instances in self.failing_evidence_by_command(
                module, max_instances
            )
            for instance in instances
        ]

    def failing_evidence_by_command(
        self, module: Module, max_instances: int = 3
    ) -> list[tuple["object", list[Instance]]]:
        """Counterexamples per offending command.

        For a failing ``check`` (or an unexpectedly satisfiable ``run``) the
        evidence is the offending instances; an unsatisfiable-but-expected-sat
        command yields no instances (nothing to show).

        Inside a :func:`~repro.analysis.canon.verdict_sharing` scope the
        evidence is shared across tools: every technique in a shard opens
        with this exact query on the task module, and the analyzer is
        deterministic, so the second tool replays the first's instances.
        Unlike verdicts, instances depend on the module's *encoding*, so
        the key is the exact printed text — canonical equality is not
        enough to share them.  Replays advance ``queries`` by the same
        per-command count as the original run, keeping every tool's
        budget traversal byte-identical under ``--no-canon``.
        """
        cache: dict | None = None
        cache_key: object = None
        if canonical_enabled() and chaos.active() is None:
            cache = shared_verdicts()
            if cache is not None:
                try:
                    text = print_module(module)
                except Exception:
                    cache = None
                else:
                    cache_key = (
                        "evidence",
                        self._task_fingerprint,
                        hashlib.sha256(
                            text.encode("utf-8", "replace")
                        ).hexdigest(),
                        max_instances,
                    )
                    entry = cache.get(cache_key)
                    if entry is not None:
                        evidence, skipped_queries = entry
                        self.queries += skipped_queries
                        if skipped_queries:
                            record_dedup_hit(skipped_queries)
                        return evidence
        queries_before = self.queries
        try:
            analyzer = Analyzer(module)
        except (AlloyError, RecursionError):
            return []
        evidence: list[tuple[object, list[Instance]]] = []
        for command in analyzer.info.commands:
            self.queries += 1
            try:
                result = analyzer.run_command(command, max_instances=max_instances)
            except (AlloyError, RecursionError):
                continue
            if result.sat != self.expected_outcome(command) and result.sat:
                evidence.append((command, result.instances))
        if cache is not None:
            cache[cache_key] = (evidence, self.queries - queries_before)
        return evidence

    def witnesses(self, module: Module, max_instances: int = 3) -> list[Instance]:
        """Instances of commands that behave as expected (SAT side only)."""
        try:
            analyzer = Analyzer(module)
        except (AlloyError, RecursionError):
            return []
        found: list[Instance] = []
        for command in analyzer.info.commands:
            if not self.expected_outcome(command):
                continue
            self.queries += 1
            try:
                result = analyzer.run_command(command, max_instances=max_instances)
            except (AlloyError, RecursionError):
                continue
            if result.sat:
                found.extend(result.instances)
        return found


_REPAIR_FRAME = threading.local()
"""Marks that a repair attempt is already on the stack: ICEBAR and the
Dynamic selector drive inner tools through ``repair()``, and the chaos
crash site must fire only at the top level — a nested injection would be
absorbed by the *outer* tool's isolation instead of escaping to the
engine's failure capture, which is the contract under test."""


class RepairTool:
    """Base class: a repair technique maps a task to a result."""

    name = "abstract"

    def repair(self, task: RepairTask) -> RepairResult:
        toplevel = not getattr(_REPAIR_FRAME, "busy", False)
        if toplevel:
            event = chaos.fire("repair.crash", technique=self.name)
            if event is not None:
                # Deliberately *outside* the crash-isolation frame below:
                # this models the whole tool dying (the paper's
                # crashed-tool rows), so the exception must escape to the
                # experiment engine's failure capture, not degrade into an
                # ERROR outcome here.
                code, error = chaos.crash_exception(event.payload)
                event.info["code"] = code
                raise error
            _REPAIR_FRAME.busy = True
        start = time.perf_counter()
        # Ambient technique label: solver/analyzer/LLM metrics recorded
        # anywhere below this frame are attributed to this technique, which
        # is what `repro profile` rolls up.
        try:
            with obs.labels(technique=self.name), obs.span(
                "repair", technique=self.name
            ) as span:
                try:
                    result = self._repair(task)
                except Exception as error:
                    # Crash isolation: one pathological spec (or a tool bug)
                    # must cost one repair attempt, not the whole benchmark
                    # run.  The error code keeps the failure classifiable
                    # downstream.
                    result = RepairResult(
                        status=RepairStatus.ERROR,
                        technique=self.name,
                        detail=f"[{classify_exception(error)}] {error}",
                        error_code=classify_exception(error),
                    )
                result.elapsed = time.perf_counter() - start
                result.technique = self.name
                span.set(
                    status=result.status.value,
                    iterations=result.iterations,
                    candidates=result.candidates_explored,
                )
                self._record_metrics(result)
        finally:
            if toplevel:
                _REPAIR_FRAME.busy = False
        return result

    def _record_metrics(self, result: RepairResult) -> None:
        """Per-technique telemetry from one finished attempt."""
        if not obs.get_metrics().enabled:
            return
        obs.counter("repair.attempts").inc()
        if result.fixed:
            obs.counter("repair.fixed").inc()
        obs.counter("repair.iterations").inc(result.iterations)
        obs.counter("repair.candidates").inc(result.candidates_explored)
        obs.counter("repair.pruned").inc(result.candidates_pruned)
        obs.counter("repair.oracle_calls").inc(result.oracle_queries)
        obs.histogram("repair.seconds").observe(result.elapsed)

    def _repair(self, task: RepairTask) -> RepairResult:
        raise NotImplementedError
