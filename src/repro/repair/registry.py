"""Public registry of repair techniques.

The experiment engine used to hard-code an if/elif chain mapping technique
names to tool constructors, which meant every new technique (and every
experiment that wanted a custom portfolio) had to edit the runner.  The
registry inverts that: techniques are *registered* under their matrix name
with a factory, and the runner — or anything else — asks :func:`create`
for a ready-to-run tool.

A factory receives the :class:`~repro.benchmarks.faults.FaultySpec` being
repaired and the already-derived per-cell seed (see :func:`cell_seed`) and
returns a fresh :class:`~repro.repair.base.RepairTool`.  Tools are built
per cell, never shared, so parallel executors can run cells concurrently
without aliasing state.

The study's twelve techniques are registered at import as *standard*
(included in :func:`all_techniques`, hence in the default matrix).  Extra
techniques — like the ``"Dynamic"`` portfolio selector from the paper's
future-work section — register as non-standard: addressable by name in
``RunConfig.techniques`` and ``repro repair --technique``, but absent from
the default matrix so the paper's tables keep their published shape.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable

from repro.analyzer.analyzer import Analyzer
from repro.benchmarks.faults import FaultySpec
from repro.llm.client import RetryingClient
from repro.llm.mock_gpt import GPT35_PROFILE, GPT4_PROFILE, MockGPT
from repro.llm.prompts import FeedbackLevel, PromptSetting
from repro.repair.arepair import ARepair
from repro.repair.atr import Atr
from repro.repair.base import RepairTool
from repro.repair.beafix import BeAFix
from repro.repair.icebar import Icebar
from repro.repair.multi_round import MultiRoundLLM
from repro.repair.selector import DynamicSelector
from repro.repair.single_round import SingleRoundLLM
from repro.testing.generation import generate_suite

TechniqueFactory = Callable[[FaultySpec, int], RepairTool]
"""Builds one tool instance for one (specification, technique) cell.

Arguments are the faulty specification and the derived per-cell seed."""

TRADITIONAL = ["ARepair", "ICEBAR", "BeAFix", "ATR"]
SINGLE_ROUND = [f"Single-Round_{s.value}" for s in PromptSetting]
MULTI_ROUND = [f"Multi-Round_{f.value}" for f in FeedbackLevel]


@dataclass(frozen=True)
class _Entry:
    name: str
    factory: TechniqueFactory
    standard: bool


_REGISTRY: dict[str, _Entry] = {}


def register(
    name: str,
    factory: TechniqueFactory,
    *,
    standard: bool = False,
    replace: bool = False,
) -> None:
    """Register ``factory`` under ``name``.

    ``standard`` techniques appear in :func:`all_techniques` and therefore
    in the default experiment matrix; non-standard ones must be requested
    explicitly.  Re-registering an existing name raises unless ``replace``
    is set (the escape hatch tests and experiments use to stub techniques).
    """
    if name in _REGISTRY and not replace:
        raise ValueError(f"technique {name!r} already registered")
    _REGISTRY[name] = _Entry(name=name, factory=factory, standard=standard)


def unregister(name: str) -> None:
    """Remove a registered technique (missing names are ignored)."""
    _REGISTRY.pop(name, None)


def is_registered(name: str) -> bool:
    return name in _REGISTRY


def names() -> list[str]:
    """Every registered technique, standard or not, in registration order."""
    return list(_REGISTRY)


def all_techniques() -> list[str]:
    """The standard techniques — the default experiment matrix columns."""
    return [entry.name for entry in _REGISTRY.values() if entry.standard]


def create(name: str, spec: FaultySpec, seed: int) -> RepairTool:
    """Build the tool for one cell.

    ``seed`` is the *run* seed; the per-cell seed handed to the factory is
    derived via :func:`cell_seed`, so every (spec, technique) cell draws
    from an independent deterministic stream regardless of execution order.
    """
    entry = _REGISTRY.get(name)
    if entry is None:
        raise ValueError(f"unknown technique {name!r}")
    return entry.factory(spec, cell_seed(spec, name, seed))


def cell_seed(spec: FaultySpec, technique: str, seed: int) -> int:
    """The deterministic per-cell seed: a digest of run seed, spec, technique.

    Independent of iteration order, which is what makes parallel execution
    bit-identical to serial execution."""
    digest = hashlib.sha256(
        f"{seed}:{spec.spec_id}:{technique}".encode()
    ).digest()
    return int.from_bytes(digest[:4], "big")


def _arepair_suite_size(spec: FaultySpec) -> int:
    """AUnit suite size for bare ARepair, per benchmark.

    The ARepair benchmark ships with author-written AUnit suites (strong);
    Alloy4Fun has none, so the study's ARepair runs there relied on minimal
    generated suites — the source of ARepair's extreme overfitting."""
    return 4 if spec.benchmark == "arepair" else 1


def _icebar_suite_size(spec: FaultySpec) -> int:
    """ICEBAR seeds its refinement loop with a moderate suite and grows it
    from counterexamples, so its initial suite matters less."""
    return 5 if spec.benchmark == "arepair" else 3


def _make_arepair(spec: FaultySpec, seed: int) -> RepairTool:
    size = _arepair_suite_size(spec)
    suite = generate_suite(
        Analyzer(spec.truth_source), positives=size, negatives=size, seed=seed
    )
    return ARepair(suite)


def _make_icebar(spec: FaultySpec, seed: int) -> RepairTool:
    size = _icebar_suite_size(spec)
    suite = generate_suite(
        Analyzer(spec.truth_source), positives=size, negatives=size, seed=seed
    )
    return Icebar(suite)


def _make_single_round(setting: PromptSetting) -> TechniqueFactory:
    def factory(spec: FaultySpec, seed: int) -> RepairTool:
        # The retry wrapper is a pass-through over the offline mock but
        # keeps the call path identical to a real-API deployment.
        client = RetryingClient(MockGPT(seed=seed, profile=GPT35_PROFILE))
        return SingleRoundLLM(client, setting, spec.hints)

    return factory


def _make_multi_round(feedback: FeedbackLevel) -> TechniqueFactory:
    def factory(spec: FaultySpec, seed: int) -> RepairTool:
        client = RetryingClient(MockGPT(seed=seed, profile=GPT4_PROFILE))
        return MultiRoundLLM(client, feedback)

    return factory


def _make_dynamic(spec: FaultySpec, seed: int) -> RepairTool:
    client = RetryingClient(MockGPT(seed=seed, profile=GPT4_PROFILE))
    return DynamicSelector(client)


def _register_builtins() -> None:
    register("ARepair", _make_arepair, standard=True)
    register("ICEBAR", _make_icebar, standard=True)
    register("BeAFix", lambda spec, seed: BeAFix(), standard=True)
    register("ATR", lambda spec, seed: Atr(), standard=True)
    for setting in PromptSetting:
        register(
            f"Single-Round_{setting.value}",
            _make_single_round(setting),
            standard=True,
        )
    for feedback in FeedbackLevel:
        register(
            f"Multi-Round_{feedback.value}",
            _make_multi_round(feedback),
            standard=True,
        )
    # The future-work portfolio: addressable, but not part of the paper's
    # twelve-column matrix.
    register("Dynamic", _make_dynamic)


_register_builtins()
