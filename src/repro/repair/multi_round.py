"""Multi-round dual-agent LLM repair (Alhanahnah et al., 2024).

A Repair Agent proposes fixes; after each proposal the Alloy Analyzer (our
bounded model finder) evaluates it and the framework feeds the outcome back
at one of three levels:

- **No-feedback** — a binary "not correct, try again";
- **Generic-feedback** — a templated summary of failing commands and their
  counterexamples;
- **Auto-feedback** — a second LLM (the Prompt Agent) reads the analyzer
  report plus the candidate and writes tailored guidance.

The dialogue continues until a candidate meets the property oracle or the
round budget is exhausted.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.alloy.errors import AlloyError
from repro.alloy.nodes import Module
from repro.alloy.pretty import print_module
from repro.analyzer.analyzer import Analyzer
from repro.llm.client import LLMClient
from repro.llm.extract import try_extract_module
from repro.llm.prompts import (
    AnalyzerReport,
    CommandReport,
    FeedbackLevel,
    initial_multi_round_prompt,
    prompt_agent_conversation,
    render_generic_feedback,
    render_no_feedback,
)
from repro.repair.base import (
    PropertyOracle,
    RepairResult,
    RepairStatus,
    RepairTask,
    RepairTool,
)


@dataclass
class MultiRoundConfig:
    """Tuning knobs for the dialogue."""

    max_rounds: int = 3
    counterexamples_in_feedback: int = 2
    minimize_counterexamples: bool = False
    """Shrink quoted counterexamples with delta debugging before rendering
    them into Generic/Auto feedback (smaller, sharper prompts)."""


class MultiRoundLLM(RepairTool):
    """Iterative dual-agent prompting with analyzer feedback."""

    def __init__(
        self,
        repair_client: LLMClient,
        feedback: FeedbackLevel,
        prompt_client: LLMClient | None = None,
        config: MultiRoundConfig | None = None,
        hints=None,
    ) -> None:
        self._repair_client = repair_client
        self._prompt_client = prompt_client or repair_client
        self._feedback = feedback
        self._config = config or MultiRoundConfig()
        self._hints = hints
        self.name = f"Multi-Round_{feedback.value}"

    def _repair(self, task: RepairTask) -> RepairResult:
        oracle = PropertyOracle(task)
        conversation = initial_multi_round_prompt(task.source, self._hints)
        best_candidate: Module | None = None

        for round_index in range(self._config.max_rounds):
            response = self._repair_client.complete(conversation)
            conversation.add("assistant", response)
            module, extract_error = try_extract_module(response)
            report = self._analyze(task, oracle, module, extract_error)
            if module is not None:
                best_candidate = module
            if report.all_pass and module is not None:
                return RepairResult(
                    status=RepairStatus.FIXED,
                    technique=self.name,
                    candidate=module,
                    candidate_source=print_module(module),
                    iterations=round_index + 1,
                    oracle_queries=oracle.queries,
                    detail=f"fixed in round {round_index + 1}",
                )
            if round_index + 1 >= self._config.max_rounds:
                break
            conversation.add("user", self._feedback_message(module, report))

        return RepairResult(
            status=RepairStatus.NOT_FIXED,
            technique=self.name,
            candidate=best_candidate,
            candidate_source=(
                print_module(best_candidate) if best_candidate is not None else None
            ),
            iterations=self._config.max_rounds,
            oracle_queries=oracle.queries,
            detail="round budget exhausted",
        )

    # -- analyzer interaction ------------------------------------------------------

    def _analyze(
        self,
        task: RepairTask,
        oracle: PropertyOracle,
        module: Module | None,
        extract_error: str | None,
    ) -> AnalyzerReport:
        if module is None:
            return AnalyzerReport(compiled=False, error=extract_error)
        try:
            analyzer = Analyzer(module)
        except (AlloyError, RecursionError) as error:
            return AnalyzerReport(compiled=False, error=str(error))
        oracle.queries += 1
        commands: list[CommandReport] = []
        # The task's commands are the oracle (a candidate that dropped its
        # commands must not pass vacuously).
        for command in task.info.commands:
            expected = oracle.expected_outcome(command)
            try:
                result = analyzer.run_command(
                    command,
                    max_instances=self._config.counterexamples_in_feedback,
                )
            except (AlloyError, RecursionError) as error:
                return AnalyzerReport(compiled=False, error=str(error))
            counterexamples = (
                result.instances if result.sat and not expected else []
            )
            if command.kind == "check" and result.sat:
                counterexamples = result.instances
            if (
                self._config.minimize_counterexamples
                and command.kind == "check"
                and command.target is not None
            ):
                from repro.analyzer.minimize import minimize_counterexample

                minimized = []
                for instance in counterexamples:
                    try:
                        minimized.append(
                            minimize_counterexample(
                                analyzer.info, instance, command.target
                            )
                        )
                    except (AlloyError, ValueError):
                        minimized.append(instance)
                counterexamples = minimized
            commands.append(
                CommandReport(
                    name=command.target or f"{command.kind}#anonymous",
                    kind=command.kind,
                    expected_sat=expected,
                    actual_sat=result.sat,
                    counterexamples=counterexamples,
                )
            )
        return AnalyzerReport(compiled=True, commands=commands)

    def _feedback_message(self, module: Module | None, report: AnalyzerReport) -> str:
        if self._feedback is FeedbackLevel.NONE:
            # The study's No-feedback arm is defined by its binary signal:
            # no analyzer output, no static analysis, just "try again".
            return render_no_feedback(report)
        if self._feedback is FeedbackLevel.GENERIC:
            return render_generic_feedback(report) + self._lint_section(module)
        candidate_text = print_module(module) if module is not None else "(none)"
        guidance = self._prompt_client.complete(
            prompt_agent_conversation(candidate_text, report)
        )
        return (
            "The fix is not correct yet. A reviewer provided this guidance:\n"
            f"{guidance}\n"
            + self._lint_section(module)
            + "Please provide a corrected full specification."
        )

    @staticmethod
    def _lint_section(module: Module | None) -> str:
        """Static findings on the last proposal, rendered for the next
        round's prompt (Generic/Auto feedback only).  Counted per rule
        under ``analysis.lint_findings`` for the traces."""
        if module is None:
            return ""
        from repro import obs
        from repro.analysis import lint_module, render_diagnostics

        try:
            diagnostics = lint_module(module)
        except Exception:  # noqa: BLE001 - unlintable proposals add nothing
            return ""
        for diagnostic in diagnostics:
            obs.counter(
                "analysis.lint_findings", rule=diagnostic.rule.name
            ).inc()
        if not diagnostics:
            return ""
        return (
            "\nStatic analysis of your last proposal also found:\n"
            f"{render_diagnostics(diagnostics)}\n"
        )
