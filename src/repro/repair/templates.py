"""Repair templates for ATR (Zheng et al., ISSTA'22).

ATR generates candidate repairs by instantiating *templates* at suspicious
locations: an expression ``e`` may be replaced by ``X``, ``e + X``,
``e - X``, ``e & X``, ``~e``, ``^e``, joins with fields, and so on, where
``X`` ranges over the type-compatible atomic expressions in scope.  Formula
locations reuse the mutation proposals plus comparison rewrites.

Every instantiation is resolution-checked before being offered to the
pruning pipeline.
"""

from __future__ import annotations

from typing import Iterator

from repro.alloy.errors import AlloyError
from repro.alloy.nodes import (
    BinaryExpr,
    BinOp,
    Expr,
    Formula,
    Module,
    NameExpr,
    UnaryExpr,
    UnOp,
)
from repro.alloy.resolver import INT_ARITY, ModuleInfo, arity_of, resolve_module
from repro.alloy.walk import Path, get_at, replace_at
from repro.repair.mutation import Mutant, Mutator, scope_env_at


def atomic_candidates(
    info: ModuleInfo, env: dict[str, int], arity: int
) -> list[Expr]:
    """Atomic expressions of a given arity available at a location."""
    candidates: list[Expr] = []
    if arity == 1:
        candidates.extend(NameExpr(name=s) for s in info.sigs)
        candidates.extend(NameExpr(name=v) for v, a in env.items() if a == 1)
    candidates.extend(
        NameExpr(name=f) for f, fi in info.fields.items() if fi.arity == arity
    )
    candidates.extend(
        NameExpr(name=v)
        for v, a in env.items()
        if a == arity and arity != 1  # arity-1 vars already added above
    )
    return candidates


def expression_templates(
    module: Module,
    info: ModuleInfo,
    path: Path,
    *,
    candidate_filter=None,
) -> Iterator[tuple[Module, str]]:
    """Instantiate expression templates at ``path``; yields resolved modules.

    ``candidate_filter`` (a :class:`repro.analysis.prune.CandidateFilter`)
    additionally vetoes instantiations that introduce statically dead
    constructs, counted under ``analysis.pruned_typed``.
    """
    node = get_at(module, path)
    if not isinstance(node, Expr):
        return
    env = scope_env_at(module, info, path)
    try:
        arity = arity_of(info, node, env)
    except AlloyError:
        return
    if arity == INT_ARITY:
        return

    proposals: list[tuple[Expr, str]] = []
    atoms = atomic_candidates(info, env, arity)
    for atom in atoms:
        label = atom.name if isinstance(atom, NameExpr) else "?"
        proposals.append((atom, f"replace with {label}"))
        for op in (BinOp.UNION, BinOp.DIFF, BinOp.INTERSECT):
            proposals.append(
                (
                    BinaryExpr(op=op, left=node, right=atom),
                    f"extend with {op.value} {label}",
                )
            )
        proposals.append(
            (BinaryExpr(op=BinOp.DIFF, left=atom, right=node), f"{label} - e")
        )
    if arity == 2:
        proposals.append((UnaryExpr(op=UnOp.TRANSPOSE, operand=node), "transpose"))
        proposals.append((UnaryExpr(op=UnOp.CLOSURE, operand=node), "closure"))
        proposals.append(
            (UnaryExpr(op=UnOp.RCLOSURE, operand=node), "reflexive closure")
        )
    # Join templates: e.f and f.e over binary fields (and unary -> binary).
    for field_name, field_info in info.fields.items():
        field_ref = NameExpr(name=field_name)
        if arity + field_info.arity - 2 >= 1:
            proposals.append(
                (
                    BinaryExpr(op=BinOp.JOIN, left=node, right=field_ref),
                    f"join right with {field_name}",
                )
            )
        if field_info.arity + arity - 2 >= 1:
            proposals.append(
                (
                    BinaryExpr(op=BinOp.JOIN, left=field_ref, right=node),
                    f"join left with {field_name}",
                )
            )

    for replacement, description in proposals:
        candidate = replace_at(module, path, replacement)
        try:
            resolve_module(candidate)
        except (AlloyError, RecursionError):
            continue
        if candidate_filter is not None:
            diagnostic = candidate_filter.veto(candidate)
            if diagnostic is not None:
                from repro.analysis.prune import record_pruned

                record_pruned(diagnostic)
                continue
        yield candidate, description


def formula_templates(
    module: Module,
    info: ModuleInfo,
    path: Path,
    *,
    candidate_filter=None,
) -> Iterator[tuple[Module, str]]:
    """Formula-granularity templates (delegates to the mutation operators)."""
    node = get_at(module, path)
    if not isinstance(node, Formula):
        return
    mutator = Mutator(module, info, candidate_filter=candidate_filter)
    for mutant in mutator.mutants_at(path):
        yield mutant.module, mutant.description


def strengthening_candidates(
    module: Module, info: ModuleInfo, *, candidate_filter=None
) -> Iterator[tuple[Module, str]]:
    """Synthesis templates: conjoin assertion bodies into the facts.

    Faults that *removed* a constraint cannot be reached by replacement
    mutations; but the property oracle often states the missing invariant
    outright.  ATR's template family includes strengthening candidates built
    from the violated assertions, which is what makes it (and the LLMs)
    succeed on synthesis-class faults where pure mutation search fails.
    """
    from repro.alloy.nodes import Block, FactDecl
    from repro.alloy.walk import insert_at

    for assert_name, assertion in info.asserts.items():
        for index, formula in enumerate(assertion.body.formulas):
            # Path-copying insert: the candidate shares every existing
            # paragraph with ``module`` by identity, so the incremental
            # oracle recognizes all of them as cached fragments.
            candidate = insert_at(
                module,
                (),
                len(module.paragraphs),
                FactDecl(
                    name=f"repair_{assert_name}_{index}",
                    body=Block(formulas=[formula]),
                ),
                "paragraphs",
            )
            try:
                resolve_module(candidate)
            except (AlloyError, RecursionError):
                continue
            if candidate_filter is not None:
                diagnostic = candidate_filter.veto(candidate)
                if diagnostic is not None:
                    from repro.analysis.prune import record_pruned

                    record_pruned(diagnostic)
                    continue
            yield candidate, f"strengthen facts with assertion {assert_name}[{index}]"


def template_candidates(
    module: Module,
    info: ModuleInfo,
    path: Path,
    max_per_location: int = 120,
    *,
    candidate_filter=None,
) -> Iterator[Mutant]:
    """All template instantiations at one location (bounded, deduplicated)."""
    from repro.alloy.pretty import print_module

    seen: set[str] = set()
    count = 0
    node = get_at(module, path)
    if isinstance(node, Formula):
        source = formula_templates(
            module, info, path, candidate_filter=candidate_filter
        )
    else:
        source = expression_templates(
            module, info, path, candidate_filter=candidate_filter
        )
    for candidate, description in source:
        text = print_module(candidate)
        if text in seen:
            continue
        seen.add(text)
        yield Mutant(module=candidate, description=description, path=path)
        count += 1
        if count >= max_per_location:
            return
