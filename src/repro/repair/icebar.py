"""ICEBAR: iterative counterexample-based repair (Gutiérrez Brida et al., ASE'22).

ICEBAR wraps ARepair in a counterexample-driven refinement loop.  Each round
runs ARepair against the current test suite; if the candidate passes the
suite but violates the specification's property oracle (its ``check``/``run``
commands with expectations), the offending counterexamples are converted to
new failing-expectation tests and ARepair runs again.  The loop ends with a
property-validated repair or gives up after a bounded number of refinements.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.alloy.pretty import print_module
from repro.repair.arepair import ARepair, ARepairConfig
from repro.repair.base import (
    PropertyOracle,
    RepairResult,
    RepairStatus,
    RepairTask,
    RepairTool,
)
from repro.testing.aunit import TestSuite
from repro.testing.generation import counterexample_test


@dataclass
class IcebarConfig:
    """Tuning knobs for the refinement loop."""

    max_refinements: int = 5
    counterexamples_per_round: int = 3
    arepair: ARepairConfig | None = None


class Icebar(RepairTool):
    """Counterexample-driven iterative repair built on ARepair."""

    name = "ICEBAR"

    def __init__(
        self, initial_suite: TestSuite, config: IcebarConfig | None = None
    ) -> None:
        self._initial_suite = initial_suite
        self._config = config or IcebarConfig()

    def _repair(self, task: RepairTask) -> RepairResult:
        suite = TestSuite(tests=list(self._initial_suite.tests))
        oracle = PropertyOracle(task)
        explored = 0
        last_candidate = None

        for round_index in range(self._config.max_refinements):
            inner = ARepair(suite, self._config.arepair)
            inner_result = inner.repair(task)
            explored += inner_result.candidates_explored
            if not inner_result.fixed or inner_result.candidate is None:
                return RepairResult(
                    status=RepairStatus.NOT_FIXED,
                    technique=self.name,
                    candidate=inner_result.candidate,
                    candidate_source=inner_result.candidate_source,
                    iterations=round_index + 1,
                    candidates_explored=explored,
                    oracle_queries=oracle.queries,
                    detail="ARepair could not satisfy the refined suite",
                )
            candidate = inner_result.candidate
            last_candidate = candidate
            ok, _ = oracle.evaluate_module(candidate)
            if ok:
                return RepairResult(
                    status=RepairStatus.FIXED,
                    technique=self.name,
                    candidate=candidate,
                    candidate_source=print_module(candidate),
                    iterations=round_index + 1,
                    candidates_explored=explored,
                    oracle_queries=oracle.queries,
                    detail="candidate meets the property oracle",
                )
            # Candidate overfits the suite: harvest counterexamples as tests.
            evidence = oracle.failing_evidence(
                candidate, max_instances=self._config.counterexamples_per_round
            )
            if not evidence:
                return RepairResult(
                    status=RepairStatus.NOT_FIXED,
                    technique=self.name,
                    candidate=candidate,
                    candidate_source=print_module(candidate),
                    iterations=round_index + 1,
                    candidates_explored=explored,
                    oracle_queries=oracle.queries,
                    detail="oracle violated but no counterexample derivable",
                )
            before = len(suite)
            for index, instance in enumerate(evidence):
                suite = suite.merged_with(
                    TestSuite(
                        tests=[
                            counterexample_test(
                                instance, f"icebar_r{round_index}_{index}"
                            )
                        ]
                    )
                )
            if len(suite) == before:
                # No genuinely new counterexamples: the loop cannot progress.
                return RepairResult(
                    status=RepairStatus.NOT_FIXED,
                    technique=self.name,
                    candidate=candidate,
                    candidate_source=print_module(candidate),
                    iterations=round_index + 1,
                    candidates_explored=explored,
                    oracle_queries=oracle.queries,
                    detail="counterexamples repeat; giving up",
                )

        return RepairResult(
            status=RepairStatus.NOT_FIXED,
            technique=self.name,
            candidate=last_candidate,
            candidate_source=(
                print_module(last_candidate) if last_candidate is not None else None
            ),
            iterations=self._config.max_refinements,
            candidates_explored=explored,
            oracle_queries=oracle.queries,
            detail="refinement budget exhausted",
        )
