"""``repro.service`` — repair-as-a-service: the fault-tolerant daemon.

The paper evaluates repair tools as offline batch runs; this package turns
the same engine into a long-lived service that stays available when
solvers wedge, LLM backends flap, and load spikes.  The pieces:

- :mod:`repro.service.protocol` — the line-delimited JSON job protocol
  spoken over a local socket, plus the :class:`JobSpec`/:class:`JobRecord`
  vocabulary shared by daemon, client, and checkpoint files;
- :mod:`repro.service.admission` — backpressure by *rejection*: a bounded
  queue and per-tenant token buckets that answer "no, retry after N
  seconds" instead of buffering without bound;
- :mod:`repro.service.breaker` — circuit breakers that trip on classified
  error rates (LLM transport, analyzer) and fast-fail while open, with
  half-open probes to detect recovery;
- :mod:`repro.service.pool` — the warm worker pool: priority +
  longest-first dispatch, health checks, and automatic replacement of
  wedged workers;
- :mod:`repro.service.daemon` — :class:`ReproService`, the asyncio daemon
  behind ``repro serve``: admission → queue → executor fleet → streamed
  progress → result, with graceful drain that checkpoints in-flight jobs
  so a restarted daemon resumes them;
- :mod:`repro.service.client` — the blocking socket client behind
  ``repro submit`` / ``repro jobs``;
- :mod:`repro.service.loadgen` — the synthetic-client load harness;
- :mod:`repro.service.drill` — ``repro chaos --service``: the 9-site
  fault-injection drills run *against the live daemon*, asserting the
  availability SLO (no lost jobs, no corrupted results, bounded queue
  latency) in a byte-stable report.

Heavy modules (daemon, drill — they pull in the experiment engine) are
imported lazily by the CLI; importing :mod:`repro.service` itself stays
cheap.
"""

from repro.service.admission import Admission, AdmissionController, TokenBucket
from repro.service.breaker import (
    BreakerClient,
    BreakerConfig,
    BreakerOpenError,
    CircuitBreaker,
)
from repro.service.protocol import (
    PROTOCOL_SCHEMA,
    STATE_SCHEMA,
    STORE_SCHEMA,
    JobSpec,
    JobState,
    ProtocolError,
    ServiceError,
    decode_message,
    encode_message,
)

__all__ = [
    "Admission",
    "AdmissionController",
    "BreakerClient",
    "BreakerConfig",
    "BreakerOpenError",
    "CircuitBreaker",
    "JobSpec",
    "JobState",
    "PROTOCOL_SCHEMA",
    "ProtocolError",
    "STATE_SCHEMA",
    "STORE_SCHEMA",
    "ServiceError",
    "TokenBucket",
    "decode_message",
    "encode_message",
]
