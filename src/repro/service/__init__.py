"""``repro.service`` — repair-as-a-service: the fault-tolerant daemon.

The paper evaluates repair tools as offline batch runs; this package turns
the same engine into a long-lived service that stays available when
solvers wedge, LLM backends flap, and load spikes.  The pieces:

- :mod:`repro.service.protocol` — the line-delimited JSON job protocol
  spoken over a local socket, plus the :class:`JobSpec`/:class:`JobRecord`
  vocabulary shared by daemon, client, and checkpoint files;
- :mod:`repro.service.admission` — backpressure by *rejection*: a bounded
  queue and per-tenant token buckets that answer "no, retry after N
  seconds" instead of buffering without bound;
- :mod:`repro.service.breaker` — circuit breakers that trip on classified
  error rates (LLM transport, analyzer) and fast-fail while open, with
  half-open probes to detect recovery;
- :mod:`repro.service.pool` — the warm worker pool: priority +
  longest-first dispatch, health checks, and automatic replacement of
  wedged workers;
- :mod:`repro.service.daemon` — :class:`ReproService`, the asyncio daemon
  behind ``repro serve``: admission → queue → executor fleet → streamed
  progress → result, with graceful drain that checkpoints in-flight jobs
  so a restarted daemon resumes them;
- :mod:`repro.service.client` — the blocking socket client behind
  ``repro submit`` / ``repro jobs``;
- :mod:`repro.service.lease` — fenced, heartbeat-renewed job leases: the
  ownership layer that makes ``repro serve --cluster-dir`` replicas safe
  to ``kill -9`` (monotonic fencing tokens, deterministic jitter,
  expiry-driven adoption);
- :mod:`repro.service.ledger` — the append-only, replayable cluster job
  journal and the fenced shared result-store mirror
  (:class:`~repro.service.ledger.ClusterStore`): at-most-once commits,
  at-least-once execution;
- :mod:`repro.service.loadgen` — the synthetic-client load harness
  (``--replicas N`` spreads the fleet across a hosted cluster);
- :mod:`repro.service.drill` — ``repro chaos --service``: the 9-site
  fault-injection drills run *against the live daemon*, asserting the
  availability SLO (no lost jobs, no corrupted results, bounded queue
  latency) in a byte-stable report; ``repro chaos --cluster`` adds the
  replicated-tier drills (mid-job ``kill -9`` failover, lease edge
  cases).

Heavy modules (daemon, drill — they pull in the experiment engine) are
imported lazily by the CLI; importing :mod:`repro.service` itself stays
cheap.
"""

from repro.service.admission import (
    Admission,
    AdmissionController,
    QuotaStore,
    SharedTokenBucket,
    TokenBucket,
)
from repro.service.breaker import (
    BreakerClient,
    BreakerConfig,
    BreakerOpenError,
    CircuitBreaker,
)
from repro.service.ledger import (
    LEDGER_SCHEMA,
    ClusterFold,
    ClusterStore,
    DuplicateCommitError,
    JobLedger,
    StaleWriterError,
)
from repro.service.lease import (
    Lease,
    LeaseError,
    LeaseLostError,
    LeaseManager,
)
from repro.service.protocol import (
    PROTOCOL_SCHEMA,
    STATE_SCHEMA,
    STORE_SCHEMA,
    JobSpec,
    JobState,
    ProtocolError,
    ServiceError,
    decode_message,
    encode_message,
)

__all__ = [
    "Admission",
    "AdmissionController",
    "BreakerClient",
    "BreakerConfig",
    "BreakerOpenError",
    "CircuitBreaker",
    "ClusterFold",
    "ClusterStore",
    "DuplicateCommitError",
    "JobLedger",
    "JobSpec",
    "JobState",
    "LEDGER_SCHEMA",
    "Lease",
    "LeaseError",
    "LeaseLostError",
    "LeaseManager",
    "PROTOCOL_SCHEMA",
    "ProtocolError",
    "QuotaStore",
    "STATE_SCHEMA",
    "STORE_SCHEMA",
    "ServiceError",
    "SharedTokenBucket",
    "StaleWriterError",
    "TokenBucket",
    "decode_message",
    "encode_message",
]
