"""Circuit breakers: fast-fail around dependencies that are failing.

A flapping LLM backend (or an analyzer driven into pathological inputs)
must not let every queued job grind through full retry schedules before
failing — that converts one dependency outage into fleet-wide latency.
The breaker watches *classified* error rates (the
:mod:`repro.runtime.errors` taxonomy, not raw exception types) over a
sliding window of calls and trips **open** when the rate crosses the
threshold; open calls fail immediately with a ``retry_after`` hint.
After a cooldown the breaker goes **half-open** and admits a bounded
number of probe calls: all succeeding closes it, any failing re-opens it.

Determinism: the breaker never reads the wall clock itself — the clock is
injected (``time.monotonic`` by default), so tests and the chaos drills
drive transitions with a fake clock and the state machine is a pure
function of the recorded call sequence.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from repro import obs
from repro.runtime.errors import ReproError, classify_exception

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class BreakerOpenError(ReproError):
    """Raised (or surfaced as a rejection) when the breaker is open: the
    dependency is known-bad, fail now instead of burning a retry budget."""

    code = "service.breaker_open"


@dataclass(frozen=True)
class BreakerConfig:
    """Trip/recovery tuning for one breaker."""

    window: int = 16
    """Sliding window length, in calls."""
    min_calls: int = 4
    """Never judge a rate over fewer calls than this."""
    failure_rate: float = 0.5
    """Trip when ``failures / window_calls`` reaches this fraction."""
    cooldown: float = 30.0
    """Seconds to stay open before half-open probing."""
    half_open_probes: int = 1
    """Probe calls admitted while half-open; all must succeed to close."""

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")
        if self.min_calls < 1:
            raise ValueError(f"min_calls must be >= 1, got {self.min_calls}")
        if not 0.0 < self.failure_rate <= 1.0:
            raise ValueError(
                f"failure_rate must be in (0, 1], got {self.failure_rate}"
            )
        if self.cooldown < 0:
            raise ValueError(f"cooldown must be >= 0, got {self.cooldown}")
        if self.half_open_probes < 1:
            raise ValueError(
                f"half_open_probes must be >= 1, got {self.half_open_probes}"
            )


class CircuitBreaker:
    """The classic three-state breaker with an injected clock."""

    def __init__(
        self,
        name: str,
        config: BreakerConfig | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.name = name
        self.config = config or BreakerConfig()
        self._clock = clock
        self._state = CLOSED
        self._window: deque[bool] = deque(maxlen=self.config.window)
        self._opened_at = 0.0
        self._probes_issued = 0
        self._probe_successes = 0
        # Lifetime accounting (never reset; snapshot/report material).
        self.calls = 0
        self.failures = 0
        self.opens = 0
        self.last_failure_code: str | None = None

    # -- state machine --------------------------------------------------------

    @property
    def state(self) -> str:
        """Current state, advancing open→half-open when cooldown elapsed."""
        if self._state == OPEN and (
            self._clock() - self._opened_at >= self.config.cooldown
        ):
            self._enter_half_open()
        return self._state

    def allow(self) -> bool:
        """May a call proceed right now?  Half-open admits only the
        configured number of probes; everything else waits."""
        state = self.state
        if state == CLOSED:
            return True
        if state == OPEN:
            return False
        if self._probes_issued < self.config.half_open_probes:
            self._probes_issued += 1
            return True
        return False

    def retry_after(self) -> float:
        """Seconds until the breaker is worth another look (0 when calls
        are being admitted) — the hint surfaced in service rejections."""
        state = self.state
        if state == OPEN:
            return max(
                0.0, self.config.cooldown - (self._clock() - self._opened_at)
            )
        return 0.0

    def record_success(self) -> None:
        self.calls += 1
        if self.state == HALF_OPEN:
            self._probe_successes += 1
            if self._probe_successes >= self.config.half_open_probes:
                self._close()
            return
        self._window.append(False)

    def record_failure(self, code: str | None = None) -> None:
        self.calls += 1
        self.failures += 1
        if code is not None:
            self.last_failure_code = code
        if self.state == HALF_OPEN:
            # A failing probe proves the dependency is still bad.
            self._trip()
            return
        self._window.append(True)
        if len(self._window) >= self.config.min_calls:
            rate = sum(self._window) / len(self._window)
            if rate >= self.config.failure_rate and self._state == CLOSED:
                self._trip()

    def record_exception(self, error: BaseException) -> None:
        self.record_failure(classify_exception(error))

    def _trip(self) -> None:
        self._state = OPEN
        self._opened_at = self._clock()
        self.opens += 1
        self._window.clear()
        if obs.get_metrics().enabled:
            obs.counter("service.breaker_opens", breaker=self.name).inc()

    def _enter_half_open(self) -> None:
        self._state = HALF_OPEN
        self._probes_issued = 0
        self._probe_successes = 0

    def _close(self) -> None:
        self._state = CLOSED
        self._window.clear()
        if obs.get_metrics().enabled:
            obs.counter("service.breaker_closes", breaker=self.name).inc()

    # -- reporting ------------------------------------------------------------

    def snapshot(self) -> dict:
        return {
            "name": self.name,
            "state": self.state,
            "calls": self.calls,
            "failures": self.failures,
            "opens": self.opens,
            "last_failure_code": self.last_failure_code,
        }

    def open_error(self) -> BreakerOpenError:
        return BreakerOpenError(
            f"{self.name} circuit breaker is open "
            f"(last failure: {self.last_failure_code or 'unknown'})",
            context={
                "breaker": self.name,
                "retry_after": self.retry_after(),
                "last_failure_code": self.last_failure_code,
            },
        )


@dataclass
class BreakerClient:
    """An :class:`~repro.llm.client.LLMClient` decorator gated by a breaker.

    Sits *outside* the retry layer (breaker wraps
    :class:`~repro.llm.client.RetryingClient`, not the reverse): a single
    breaker-visible failure means the whole retry schedule was exhausted,
    which is exactly the signal worth counting, and an open breaker skips
    the retry schedule entirely — the fast-fail that keeps a wedged
    backend from stalling every worker.
    """

    inner: object  # LLMClient; typed loosely to avoid an import cycle
    breaker: CircuitBreaker

    def complete(self, conversation) -> str:
        if not self.breaker.allow():
            raise self.breaker.open_error()
        try:
            completion = self.inner.complete(conversation)
        except Exception as error:
            self.breaker.record_exception(error)
            raise
        self.breaker.record_success()
        return completion
