"""The cluster job ledger: an append-only journal plus a fenced store.

The replicated service tier (`repro serve --cluster-dir ...`) has no
coordinator process; the shared directory *is* the cluster. Its source of
truth is the :class:`JobLedger` — an append-only, schema-stamped journal
of job state transitions (``submitted`` → ``leased`` → ``running`` →
``done``/``failed``/``drained``, plus ``adopted`` and ``fenced`` audit
records).  Any replica — or a post-mortem tool — can replay it after a
``kill -9`` and reconstruct the exact cluster state: which jobs exist,
who owned them under which fencing token, and which results committed.

Durability of the append path is torn-write-proof by construction: every
record is written as ``\\n<json>\\n`` in a single ``O_APPEND`` write
under the cluster lock.  A record half-written by a dying replica is a
junk line that the tolerant replayer skips (and counts); the *leading*
newline of the next append guarantees the junk never corrupts a healthy
neighbour.  A record is only *real* once it parses — which is exactly
the at-most-once commit rule: a commit whose append tore simply never
happened, the job's lease expires, and a surviving replica adopts and
re-executes it.

:class:`ClusterStore` is the facade one replica holds: journal + lease
manager (:mod:`repro.service.lease`) + the shared result-store mirror.
Its :meth:`~ClusterStore.commit` is the **fencing boundary**: under the
cluster lock it rejects commits for already-terminal jobs
(:class:`DuplicateCommitError`) and commits carrying a stale fencing
token (:class:`StaleWriterError`) — so a paused-then-resumed replica can
never double-commit a cell, no matter how late it wakes up.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro import chaos, obs
from repro.chaos.plan import FaultPlan
from repro.runtime.errors import CacheCorruptionError
from repro.runtime.persist import atomic_write_json, load_json
from repro.service.lease import Lease, LeaseManager, file_lock
from repro.service.protocol import ServiceError

LEDGER_SCHEMA = "repro-cluster-ledger/1"
"""First line of every ledger file; bump on any record-shape change."""

CLUSTER_STORE_SCHEMA = "repro-cluster-store/1"
"""Schema of the shared result-store mirror the cluster flushes cells to."""

LEDGER_EVENTS = (
    "submitted",
    "leased",
    "running",
    "adopted",
    "done",
    "failed",
    "drained",
    "fenced",
)
"""The journal vocabulary, in rough lifecycle order."""

TERMINAL_EVENTS = frozenset({"done", "failed"})


class StaleWriterError(ServiceError):
    """A commit carried a fencing token older than the job's current one —
    the writer lost its lease while it was executing.  The result is
    discarded; whoever fenced it out owns the job now."""

    code = "service.fenced"


class DuplicateCommitError(ServiceError):
    """A commit arrived for a job that is already terminal in the ledger —
    the at-most-once guard."""

    code = "service.double_commit"


class JobLedger:
    """Append-only journal over one shared file.

    Appends serialize through the cluster lock; reads are lock-free and
    incremental (:meth:`poll` consumes only bytes appended since the last
    call).  Corrupt lines — torn appends from dead replicas — are skipped
    and counted, never fatal.
    """

    def __init__(self, path: Path, lock_path: Path) -> None:
        self.path = Path(path)
        self.lock_path = Path(lock_path)
        self._offset = 0
        self.corrupt_lines = 0
        self.records_read = 0

    # -- writing --------------------------------------------------------------

    def append(self, record: dict) -> None:
        with file_lock(self.lock_path):
            self.append_locked(record)

    def append_locked(self, record: dict) -> None:
        """Append one record; the caller already holds the cluster lock.

        The record is framed as ``\\n<json>\\n`` in a single write: the
        leading newline terminates any torn tail a dead replica left, so
        one junk line never swallows a healthy record.
        """
        payload = json.dumps(record, sort_keys=True, separators=(",", ":"))
        self.path.parent.mkdir(parents=True, exist_ok=True)
        flags = os.O_CREAT | os.O_WRONLY | os.O_APPEND
        handle = os.open(self.path, flags, 0o644)
        try:
            if os.fstat(handle).st_size == 0:
                header = json.dumps({"schema": LEDGER_SCHEMA})
                os.write(handle, (header + "\n").encode())
            os.write(handle, ("\n" + payload + "\n").encode())
        finally:
            os.close(handle)

    # -- reading --------------------------------------------------------------

    def _parse(self, chunk: bytes) -> list[dict]:
        records: list[dict] = []
        for line in chunk.split(b"\n"):
            text = line.strip()
            if not text:
                continue
            try:
                record = json.loads(text)
            except (json.JSONDecodeError, UnicodeDecodeError):
                self.corrupt_lines += 1
                continue
            if not isinstance(record, dict):
                self.corrupt_lines += 1
                continue
            if "schema" in record and "event" not in record:
                if record["schema"] != LEDGER_SCHEMA:
                    raise CacheCorruptionError(
                        f"ledger {self.path.name} has schema "
                        f"{record['schema']!r}, expected {LEDGER_SCHEMA!r}",
                        context={"path": str(self.path)},
                    )
                continue
            records.append(record)
        self.records_read += len(records)
        return records

    def poll(self) -> list[dict]:
        """Records appended since the last poll.

        Only complete lines are consumed: a partial tail (an append in
        flight, or torn by a kill) stays unconsumed until the next append
        terminates it with its leading newline.
        """
        if not self.path.exists():
            return []
        with self.path.open("rb") as handle:
            handle.seek(self._offset)
            chunk = handle.read()
        cut = chunk.rfind(b"\n")
        if cut < 0:
            return []
        self._offset += cut + 1
        return self._parse(chunk[: cut + 1])

    def replay(self) -> list[dict]:
        """Every record from the top, independent of the poll cursor —
        including an unterminated final line if it happens to parse (a
        complete record that merely lost its newline to a kill)."""
        if not self.path.exists():
            return []
        fresh = JobLedger(self.path, self.lock_path)
        records = fresh._parse(self.path.read_bytes())
        self.corrupt_lines = fresh.corrupt_lines
        return records


@dataclass
class JobView:
    """One job's current state, as folded from the ledger."""

    job_id: str
    spec: dict | None = None
    state: str = "submitted"
    owner: str = ""
    token: int = 0
    outcomes: dict = field(default_factory=dict)
    executed: bool = False
    error: str | None = None
    done_events: int = 0
    adoptions: int = 0
    last_ts: float = 0.0
    chaos_events: list = field(default_factory=list)

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_EVENTS


class ClusterFold:
    """The ledger reduced to per-job state plus the fencing-token trail."""

    def __init__(self) -> None:
        self.jobs: dict[str, JobView] = {}
        self.tokens: list[int] = []
        """Every fencing token in journal issue order (``leased`` and
        ``adopted`` records) — the drill asserts strict monotonicity."""
        self.fenced_commits = 0
        self.drained = 0

    def apply(self, record: dict) -> None:
        event = record.get("event")
        job_id = record.get("job_id")
        if event not in LEDGER_EVENTS or not isinstance(job_id, str):
            return
        view = self.jobs.setdefault(job_id, JobView(job_id=job_id))
        view.last_ts = float(record.get("ts", view.last_ts))
        if event == "fenced":
            self.fenced_commits += 1
            return
        if event == "submitted":
            view.spec = record.get("spec", view.spec)
            view.owner = str(record.get("replica", view.owner))
            if not view.terminal:
                view.state = "submitted"
            return
        if event in ("leased", "adopted"):
            token = int(record.get("token", 0))
            self.tokens.append(token)
            view.token = token
            view.owner = str(record.get("replica", view.owner))
            if event == "adopted":
                view.adoptions += 1
            if not view.terminal:
                view.state = "leased"
            return
        if event == "running":
            if not view.terminal:
                view.state = "running"
            return
        if event == "drained":
            self.drained += 1
            if not view.terminal:
                view.state = "drained"
            return
        if event == "done":
            view.done_events += 1
            if view.done_events == 1:
                view.state = "done"
                view.outcomes = dict(record.get("outcomes", {}))
                view.executed = bool(record.get("executed", False))
                view.chaos_events = list(record.get("chaos", []))
            return
        if event == "failed":
            view.done_events += 1
            if view.done_events == 1:
                view.state = "failed"
                view.error = record.get("error")

    def non_terminal(self) -> list[JobView]:
        return [view for view in self.jobs.values() if not view.terminal]

    def double_committed(self) -> list[str]:
        """Job ids with more than one terminal record — must stay empty."""
        return sorted(
            view.job_id
            for view in self.jobs.values()
            if view.done_events > 1
        )

    def tokens_monotonic(self) -> bool:
        return all(a < b for a, b in zip(self.tokens, self.tokens[1:]))


def _count_lease_metric(name: str) -> None:
    if obs.get_metrics().enabled:
        obs.counter(name).inc()


class ClusterStore:
    """One replica's handle on the shared cluster directory.

    Composes the journal, the lease manager, and the shared result-store
    mirror, and owns every multi-step transition that must be atomic
    under the cluster lock (register, adopt, commit).
    """

    def __init__(
        self,
        root: Path,
        replica: str,
        recipe: dict,
        ttl: float = 5.0,
        heartbeat: float | None = None,
        jitter_seed: int = 0,
        clock: Callable[[], float] = time.time,
        chaos_plan: FaultPlan | None = None,
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.replica = replica
        self.clock = clock
        self.leases = LeaseManager(
            self.root,
            replica,
            ttl=ttl,
            heartbeat=heartbeat,
            jitter_seed=jitter_seed,
            clock=clock,
        )
        self.ledger = JobLedger(
            self.root / "ledger.jsonl", self.leases._lock_path
        )
        digest = hashlib.sha256(
            json.dumps(recipe, sort_keys=True).encode()
        ).hexdigest()[:12]
        self.store_path = self.root / f"store-{digest}.json"
        self._chaos = chaos_plan
        self._flushes = 0
        self._fold = ClusterFold()
        self._fold_lock = threading.Lock()
        self.fencing_rejections = 0
        self.duplicate_commits = 0
        self.store_events: list[dict] = []
        """Chaos events fired inside store-mirror flush scopes.  Excluded
        from drill reports: flush counts depend on commit interleaving."""

    # -- journal helpers ------------------------------------------------------

    def _record(self, event: str, job_id: str, **fields) -> dict:
        record = {
            "event": event,
            "job_id": job_id,
            "replica": self.replica,
            "ts": round(self.clock(), 6),
        }
        record.update(fields)
        return record

    def journal(self, event: str, job_id: str, **fields) -> None:
        self.ledger.append(self._record(event, job_id, **fields))

    def _refresh_locked(self) -> ClusterFold:
        with self._fold_lock:
            for record in self.ledger.poll():
                self._fold.apply(record)
            return self._fold

    def fold(self) -> ClusterFold:
        """The current cluster state (incremental journal refresh)."""
        with file_lock(self.leases._lock_path):
            return self._refresh_locked()

    # -- lifecycle transitions ------------------------------------------------

    def register(self, job_id: str, spec_payload: dict) -> Lease:
        """Journal a fresh submission and lease it to this replica, as one
        atomic step — there is never a journaled job without an owner."""
        with file_lock(self.leases._lock_path):
            self.ledger.append_locked(
                self._record("submitted", job_id, spec=spec_payload)
            )
            lease = self.leases._grant_locked(job_id)
            self.ledger.append_locked(
                self._record("leased", job_id, token=lease.token)
            )
        self.leases.acquired += 1
        _count_lease_metric("service.lease_acquired")
        return lease

    def mark_running(self, job_id: str, token: int) -> None:
        self.journal("running", job_id, token=token)

    def adopt_orphans(self) -> list[tuple[str, dict, Lease]]:
        """Scan for orphaned jobs and take them over.

        Orphaned = journaled non-terminal and either explicitly drained,
        holding an expired lease, or lease-less for longer than one TTL
        (a torn submission).  All checks and the takeover happen under
        one cluster lock, so of N racing replicas exactly one adopts any
        given job.
        """
        adopted: list[tuple[str, dict, Lease]] = []
        now = self.clock()
        ttl = self.leases.ttl
        with file_lock(self.leases._lock_path):
            fold = self._refresh_locked()
            for view in sorted(fold.non_terminal(), key=lambda v: v.job_id):
                if view.spec is None:
                    continue
                lease = self.leases._read_locked(view.job_id)
                if lease is not None:
                    if not self.leases.is_expired(lease, now):
                        continue
                elif view.state != "drained" and now - view.last_ts < ttl:
                    # Recently journaled and never leased: give the
                    # submitting replica its grace window before
                    # concluding the submission tore.
                    continue
                fresh = self.leases._grant_locked(view.job_id)
                self.ledger.append_locked(
                    self._record("adopted", view.job_id, token=fresh.token)
                )
                adopted.append((view.job_id, dict(view.spec), fresh))
        self.leases.adopted += len(adopted)
        for _ in adopted:
            _count_lease_metric("service.lease_adopted")
        return adopted

    def drain(self, job_ids: list[str]) -> None:
        """Give up ownership of non-terminal jobs at shutdown: journal the
        handoff and release the leases so peers adopt immediately."""
        with file_lock(self.leases._lock_path):
            for job_id in job_ids:
                self.ledger.append_locked(self._record("drained", job_id))
                lease = self.leases._read_locked(job_id)
                if lease is not None and lease.owner == self.replica:
                    try:
                        self.leases._lease_path(job_id).unlink()
                    except OSError:  # pragma: no cover - already gone
                        pass
        with self.leases._held_lock:
            for job_id in job_ids:
                self.leases._held.pop(job_id, None)

    # -- the fencing boundary -------------------------------------------------

    def _check_commit_locked(self, job_id: str, token: int) -> None:
        fold = self._refresh_locked()
        view = fold.jobs.get(job_id)
        if view is not None and view.terminal:
            self.duplicate_commits += 1
            raise DuplicateCommitError(
                f"job {job_id} is already terminal ({view.state})",
                context={"job_id": job_id},
            )
        current = self.leases._read_locked(job_id)
        current_token = max(
            current.token if current is not None else 0,
            view.token if view is not None else 0,
        )
        if current_token > token:
            self.fencing_rejections += 1
            _count_lease_metric("service.fencing_rejected")
            self.ledger.append_locked(
                self._record("fenced", job_id, token=token)
            )
            raise StaleWriterError(
                f"commit for {job_id} carries stale token {token} "
                f"(current {current_token})",
                context={"job_id": job_id, "token": token},
            )

    def _release_locked(self, job_id: str, token: int) -> None:
        current = self.leases._read_locked(job_id)
        if current is not None and current.token == token:
            try:
                self.leases._lease_path(job_id).unlink()
            except OSError:  # pragma: no cover - already gone
                pass
        with self.leases._held_lock:
            self.leases._held.pop(job_id, None)

    def commit(
        self,
        job_id: str,
        spec_id: str,
        outcomes: dict,
        token: int,
        executed: bool = True,
        chaos_events: list | None = None,
        merge_store: bool = True,
    ) -> None:
        """Commit a job's cells: the at-most-once boundary.

        Under the cluster lock: reject if terminal (duplicate) or fenced
        (stale token); otherwise journal the ``done`` record, fold the
        cells into the shared store mirror (unless ``merge_store`` is
        off — ad-hoc jobs have no corpus identity to cache under), and
        release the lease.
        """
        with file_lock(self.leases._lock_path):
            self._check_commit_locked(job_id, token)
            self.ledger.append_locked(
                self._record(
                    "done",
                    job_id,
                    token=token,
                    spec_id=spec_id,
                    outcomes=outcomes,
                    executed=executed,
                    chaos=list(chaos_events or []),
                )
            )
            if merge_store:
                self._merge_store_locked(spec_id, outcomes)
            self._release_locked(job_id, token)

    def commit_failed(self, job_id: str, token: int, error: str) -> None:
        """Journal a FAILED terminal state (same fencing rules: a fenced
        replica's failure must not clobber an adopted healthy run)."""
        with file_lock(self.leases._lock_path):
            self._check_commit_locked(job_id, token)
            self.ledger.append_locked(
                self._record("failed", job_id, token=token, error=error)
            )
            self._release_locked(job_id, token)

    # -- the shared store mirror ----------------------------------------------

    def _load_store_locked(self) -> dict:
        if not self.store_path.exists():
            return {}
        try:
            payload = load_json(self.store_path, schema=CLUSTER_STORE_SCHEMA)
            return {spec_id: dict(row) for spec_id, row in payload.items()}
        except (CacheCorruptionError, AttributeError):
            return {}  # corruption is a miss: rebuilt by future commits

    def _merge_store_locked(self, spec_id: str, outcomes: dict) -> None:
        cells = self._load_store_locked()
        row = cells.setdefault(spec_id, {})
        for technique, cell in outcomes.items():
            if cell.get("status") == "timeout":
                continue
            row[technique] = dict(cell)
        with chaos.install(
            self._chaos, salt=f"cluster-store:{self.replica}:{self._flushes}"
        ) as scope:
            self._flushes += 1
            atomic_write_json(
                self.store_path, cells, schema=CLUSTER_STORE_SCHEMA
            )
        if scope is not None:
            self.store_events.extend(event.to_json() for event in scope.events)

    def lookup(self, spec_id: str) -> dict:
        """The shared store's row for one spec (tolerant read)."""
        with file_lock(self.leases._lock_path):
            return self._load_store_locked().get(spec_id, {})

    def missing(self, spec_id: str, techniques: tuple[str, ...]) -> tuple[str, ...]:
        row = self.lookup(spec_id)
        return tuple(t for t in techniques if t not in row)

    # -- introspection --------------------------------------------------------

    def snapshot(self) -> dict:
        with self.leases._held_lock:
            held = sorted(self.leases._held)
        return {
            "replica": self.replica,
            "leases_held": held,
            "lease_ttl": self.leases.ttl,
            "acquired": self.leases.acquired,
            "adopted": self.leases.adopted,
            "lost": self.leases.lost,
            "fencing_rejections": self.fencing_rejections,
            "duplicate_commits": self.duplicate_commits,
            "ledger_records": self.ledger.records_read,
            "ledger_corrupt_lines": self.ledger.corrupt_lines,
        }
