"""The warm worker pool: priority dispatch, health checks, replacement.

Workers are long-lived threads (warm: the benchmark corpus, technique
registry, and caches are already in memory) pulling jobs off a priority
queue.  Dispatch order is **priority, then longest-first, then FIFO** —
the same longest-processing-time-first rationale as
:mod:`repro.experiments.schedule`, applied online: with a mixed queue the
expensive jobs start early so the pool's tail latency stays bounded.

Health: a worker that has been busy past its *allowance* (twice the job
deadline plus a grace second, mirroring the
:class:`~repro.experiments.executor.ProcessExecutor` watchdog) is
declared **wedged**.  Threads cannot be killed, so the wedged worker is
*abandoned* — its eventual result (if any) is discarded, a replacement
thread is spawned immediately so capacity never degrades, and the caller
is handed the wedged job to synthesize a timeout result for.  This is the
thread-level analogue of the process watchdog's ``abandon`` policy; jobs
that must survive a genuine hang should run under the process executor.

The pool is deliberately ignorant of the job payload: items are opaque,
execution is the injected ``runner`` callable, completion is the injected
``on_result`` callback (invoked on worker threads — the daemon marshals
back onto its event loop).
"""

from __future__ import annotations

import heapq
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass
class _Worker:
    """Bookkeeping for one pool thread."""

    name: str
    thread: threading.Thread | None = None
    item: Any = None
    busy_since: float | None = None
    abandoned: bool = False
    executed: int = 0


@dataclass(order=True)
class _Entry:
    """Heap entry: min-heap on (-priority, -cost, seq) = priority desc,
    cost desc (longest-first), submission order."""

    neg_priority: float
    neg_cost: float
    seq: int
    item: Any = field(compare=False)


class WorkerPool:
    """A fixed-size pool of warm worker threads with wedge detection."""

    def __init__(
        self,
        workers: int,
        runner: Callable[[Any], Any],
        on_result: Callable[[Any, Any, BaseException | None], None],
        deadline: float | None = None,
        clock: Callable[[], float] = time.monotonic,
        name: str = "repro-service",
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self._runner = runner
        self._on_result = on_result
        self.deadline = deadline
        self._clock = clock
        self._name = name
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._heap: list[_Entry] = []
        self._seq = 0
        self._stopped = False
        self._paused = False
        self.executed = 0
        self.wedged = 0
        self.replaced = 0
        self._workers: list[_Worker] = []
        for index in range(workers):
            self._spawn(index)

    # -- lifecycle ------------------------------------------------------------

    def _spawn(self, index: int) -> _Worker:
        worker = _Worker(name=f"{self._name}-w{index}")
        thread = threading.Thread(
            target=self._loop, args=(worker,), name=worker.name, daemon=True
        )
        worker.thread = thread
        self._workers.append(worker)
        thread.start()
        return worker

    def stop(self) -> None:
        """Ask idle workers to exit; never joins abandoned (hung) threads."""
        with self._cond:
            self._stopped = True
            self._cond.notify_all()
        for worker in list(self._workers):
            thread = worker.thread
            if thread is not None and not worker.abandoned:
                thread.join(timeout=1.0)

    def pause(self) -> None:
        """Stop handing out queued jobs (running jobs finish normally).
        Deterministic-backpressure switch for tests and drills."""
        with self._cond:
            self._paused = True

    def resume(self) -> None:
        with self._cond:
            self._paused = False
            self._cond.notify_all()

    # -- queue ----------------------------------------------------------------

    def submit(self, item: Any, priority: int = 0, cost: float = 0.0) -> None:
        with self._cond:
            if self._stopped:
                raise RuntimeError("pool is stopped")
            self._seq += 1
            heapq.heappush(
                self._heap,
                _Entry(
                    neg_priority=-float(priority),
                    neg_cost=-float(cost),
                    seq=self._seq,
                    item=item,
                ),
            )
            self._cond.notify()

    def queued(self) -> int:
        with self._lock:
            return len(self._heap)

    def running(self) -> int:
        with self._lock:
            return sum(
                1
                for w in self._workers
                if w.item is not None and not w.abandoned
            )

    def drain_pending(self) -> list[Any]:
        """Atomically remove and return every queued (not started) item —
        the daemon checkpoints these at shutdown."""
        with self._cond:
            pending = [entry.item for entry in sorted(self._heap)]
            self._heap.clear()
            return pending

    # -- health ---------------------------------------------------------------

    def allowance(self) -> float | None:
        """How long a worker may be busy before it is declared wedged."""
        if self.deadline is None:
            return None
        return self.deadline * 2 + 1.0

    def reap_wedged(self) -> list[Any]:
        """Abandon overdue workers, spawn replacements, return their jobs.

        The caller owns the returned items: the pool will *not* invoke
        ``on_result`` for them even if the hung thread eventually returns.
        """
        allowance = self.allowance()
        if allowance is None:
            return []
        now = self._clock()
        wedged_items: list[Any] = []
        with self._cond:
            for worker in list(self._workers):
                if (
                    worker.abandoned
                    or worker.item is None
                    or worker.busy_since is None
                ):
                    continue
                if now - worker.busy_since < allowance:
                    continue
                worker.abandoned = True
                wedged_items.append(worker.item)
                self.wedged += 1
                self.replaced += 1
                self._workers.remove(worker)
                self._spawn(len(self._workers) + self.replaced)
        return wedged_items

    def health(self) -> list[dict]:
        now = self._clock()
        with self._lock:
            return [
                {
                    "name": worker.name,
                    "busy": worker.item is not None,
                    "busy_seconds": (
                        round(now - worker.busy_since, 3)
                        if worker.busy_since is not None
                        else 0.0
                    ),
                    "executed": worker.executed,
                    "abandoned": worker.abandoned,
                }
                for worker in self._workers
            ]

    # -- the worker loop ------------------------------------------------------

    def _take(self) -> Any | None:
        with self._cond:
            while True:
                if self._stopped:
                    return None
                if self._heap and not self._paused:
                    return heapq.heappop(self._heap).item
                self._cond.wait(timeout=0.1)
                if not self._heap or self._paused:
                    # Re-check stop/pause on every wakeup instead of
                    # blocking forever: a stopped pool must wind down even
                    # if no job ever arrives.
                    if self._stopped:
                        return None

    def _loop(self, worker: _Worker) -> None:
        while True:
            item = self._take()
            if item is None:
                return
            with self._lock:
                if worker.abandoned:  # pragma: no cover - defensive
                    return
                worker.item = item
                worker.busy_since = self._clock()
            error: BaseException | None = None
            result = None
            try:
                result = self._runner(item)
            except BaseException as caught:  # noqa: BLE001 - isolation boundary
                error = caught
            with self._lock:
                abandoned = worker.abandoned
                worker.item = None
                worker.busy_since = None
                if not abandoned:
                    worker.executed += 1
                    self.executed += 1
            if abandoned:
                # The watchdog already synthesized this job's result and a
                # replacement worker took this one's place: the late result
                # is discarded and the thread retires.
                return
            self._on_result(item, result, error)
