"""``repro chaos --service`` — availability drills against a live daemon.

The batch-engine drills (:mod:`repro.chaos.harness`) prove the *engine's*
contracts under injected faults; these prove the *service's*:

- **service-availability** — a client fleet submits the whole corpus to a
  daemon whose executions (and store flushes) run under the full 9-site
  fault plan.  The SLO: every accepted job reaches a terminal state (no
  lost jobs), every DONE job's cells are bit-identical to a direct
  engine execution under the same plan (no corrupted results — faults
  degrade cells, never falsify them), p99 queue wait stays bounded, and
  the fault schedule matches the reference run's exactly (the service
  adds no nondeterminism);
- **service-backpressure** — with the pool paused, the queue bound and a
  starved tenant bucket reject deterministically, every rejection carries
  a positive ``retry_after``, a full queue never consumes the tenant's
  tokens, and everything admitted completes once the pool resumes;
- **service-breaker** — an LLM backend failing past the retry budget
  trips the LLM breaker after the configured window; further LLM jobs
  fast-fail with ``breaker_open:llm`` while traditional repair continues
  unaffected; a fake-clock breaker walks open → half-open → closed;
- **service-drain-resume** — a drained daemon checkpoints every pending
  job; a restarted daemon resumes all of them and produces bit-identical
  outcomes to a direct execution; a third incarnation serves the same
  jobs straight from the result store.

Reports follow the chaos-report contract: canonical JSON, no timestamps,
durations, or counts that depend on thread timing — two same-seed runs
are byte-identical (CI pins this with a double-run ``cmp``).
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from repro.chaos.harness import DrillResult, _events_by_site, _temp_cache
from repro.chaos.plan import SITES, FaultPlan, SiteConfig
from repro.experiments.executor import ShardTask, execute_shard
from repro.service.breaker import BreakerConfig, CircuitBreaker
from repro.service.client import ServiceClient
from repro.service.daemon import ServiceConfig, ServiceHandle
from repro.service.loadgen import plan_jobs, run_load
from repro.service.protocol import JobSpec

SERVICE_CHAOS_SCHEMA = "repro-service-chaos/1"
"""Stamped into every service chaos report; bump on any shape change."""

AVAILABILITY_SITES: dict[str, SiteConfig] = {
    "sat.budget": SiteConfig(probability=0.05, max_fires=2),
    "sat.flip": SiteConfig(probability=0.05, max_fires=2),
    "analyzer.explode": SiteConfig(probability=0.03, max_fires=1),
    "repair.crash": SiteConfig(probability=0.25, max_fires=3),
    "llm.transient": SiteConfig(probability=0.3, max_fires=2),
    "llm.garbage": SiteConfig(probability=0.3, max_fires=2),
    "llm.truncate": SiteConfig(probability=0.3, max_fires=2),
    "persist.corrupt": SiteConfig(probability=0.5, max_fires=2),
    "persist.truncate": SiteConfig(probability=0.5, max_fires=2),
}
"""All nine sites, tuned so each fires somewhere across the corpus while
most cells stay healthy.  ``llm.transient`` stays under the retry budget
(``max_fires=2`` against 3 attempts) so transient faults are absorbed,
not surfaced — the availability drill's point."""

AVAILABILITY_TECHNIQUES = ("ATR", "BeAFix", "Single-Round_Pass")
"""Solver, analyzer, repair loop, and LLM transport all on some path."""

QUEUE_WAIT_SLO_P99 = 30.0
"""Seconds.  Generous — the assertion is boundedness, not speed."""


def _cells_payload(outcomes: dict[str, dict]) -> dict:
    """The determinism-relevant projection of service cell payloads."""
    return {
        technique: {
            "rep": cell["rep"],
            "tm": round(cell["tm"], 9),
            "sm": round(cell["sm"], 9),
            "status": cell["status"],
        }
        for technique, cell in sorted(outcomes.items())
    }


def _reference_execution(
    spec_ids: list[str],
    service,
    techniques: tuple[str, ...],
    seed: int,
    plan: FaultPlan | None,
) -> tuple[dict, list[dict]]:
    """Run every job directly through the engine — the ground truth the
    service's results must match bit-for-bit."""
    payload: dict[str, dict] = {}
    events: list[dict] = []
    for spec_id in spec_ids:
        result = execute_shard(
            ShardTask(
                spec=service._specs[spec_id],
                techniques=techniques,
                seed=seed,
                static_prune=service.config.static_prune,
                incremental=service.config.incremental,
                shard_timeout=service.config.job_timeout,
                chaos=plan,
            )
        )
        events.extend(result.chaos_events)
        payload[spec_id] = {
            technique: {
                "rep": o.rep,
                "tm": round(o.tm, 9),
                "sm": round(o.sm, 9),
                "status": o.status,
            }
            for technique, o in sorted(result.outcomes.items())
        }
    return payload, events


def _socket_dir() -> tempfile.TemporaryDirectory:
    # Unix socket paths are length-limited (~108 bytes); a short /tmp dir
    # keeps the drill independent of how deep REPRO_CACHE_DIR nests.
    return tempfile.TemporaryDirectory(prefix="repro-svc-")


def availability_drill(
    seed: int, requested: set[str], scale: float
) -> DrillResult:
    """The headline SLO: no lost jobs, no corrupted results, bounded p99,
    deterministic fault schedule — under all nine sites at once."""
    drill = DrillResult(name="service-availability")
    active = sorted(requested & set(AVAILABILITY_SITES))
    if not active:
        drill.skipped = True
        return drill
    plan = FaultPlan(
        seed=seed, sites={site: AVAILABILITY_SITES[site] for site in active}
    )
    with _temp_cache(), _socket_dir() as sock_dir:
        config = ServiceConfig(
            socket=str(Path(sock_dir) / "drill.sock"),
            benchmark="arepair",
            scale=scale,
            seed=seed,
            workers=4,
            max_queue=8,
            bucket_capacity=4.0,
            bucket_refill=50.0,
            job_timeout=None,
            chaos=plan,
        )
        handle = ServiceHandle.start(config)
        service = handle.service
        spec_ids = sorted(service.jobs_corpus_ids())
        try:
            ledger = run_load(
                config,
                clients=len(spec_ids),
                jobs_per_client=1,
                techniques=AVAILABILITY_TECHNIQUES,
                handle=handle,
            )
            records = {
                record.spec.spec_id: record
                for record in service.jobs.values()
            }
            service_payload = {
                spec_id: _cells_payload(record.outcomes)
                for spec_id, record in sorted(records.items())
            }
            service_events = list(service.chaos_events)
            store_events = (
                list(service.store.events) if service.store else []
            )
            stats = service.stats()
        finally:
            handle.drain()

    if ledger["lost"] != 0:
        drill.violations.append(f"{ledger['lost']} accepted job(s) lost")
    if ledger["failed"] != 0:
        drill.violations.append(
            f"{ledger['failed']} job(s) FAILED — faults must degrade "
            "cells, not kill jobs"
        )
    if ledger["incomplete"]:
        drill.violations.append(
            f"terminal events missing cells: {ledger['incomplete']}"
        )
    if ledger["client_errors"]:
        drill.violations.append(
            f"client-visible errors: {ledger['client_errors'][:3]}"
        )
    if ledger["bad_retry_after"]:
        drill.violations.append(
            f"{ledger['bad_retry_after']} rejection(s) without a positive "
            "retry_after hint"
        )

    with _temp_cache():
        reference_payload, reference_events = _reference_execution(
            spec_ids,
            _reference_service(seed, scale, plan),
            AVAILABILITY_TECHNIQUES,
            seed,
            plan,
        )
    if service_payload != reference_payload:
        diverging = sorted(
            spec_id
            for spec_id in reference_payload
            if service_payload.get(spec_id) != reference_payload[spec_id]
        )
        drill.violations.append(
            f"service results diverge from direct execution for {diverging}"
        )
    if _events_by_site(service_events) != _events_by_site(reference_events):
        drill.violations.append(
            "service fault schedule diverges from the reference run: "
            f"{_events_by_site(service_events)} != "
            f"{_events_by_site(reference_events)}"
        )
    all_events = service_events + store_events
    fired = {event["site"] for event in all_events}
    for site in active:
        if site not in fired:
            drill.violations.append(
                f"site {site} never fired — the drill proved nothing "
                "about it"
            )
    p99 = stats["queue_wait"]["p99"]
    if p99 > QUEUE_WAIT_SLO_P99:
        drill.violations.append(
            f"p99 queue wait {p99:.3f}s exceeds the {QUEUE_WAIT_SLO_P99}s SLO"
        )
    drill.detail = {
        "sites": active,
        "jobs": len(spec_ids),
        "techniques": list(AVAILABILITY_TECHNIQUES),
        "events_by_site": _events_by_site(all_events),
        "lost": ledger["lost"],
        "p99_within_slo": p99 <= QUEUE_WAIT_SLO_P99,
        "payload": service_payload,
    }
    return drill


def _reference_service(seed: int, scale: float, plan):
    """A throwaway daemon-shaped object for spec lookup in the reference
    run — never started, just the loaded corpus and config."""
    from repro.service.daemon import ReproService

    with _temp_cache(), _socket_dir() as sock_dir:
        service = ReproService(
            ServiceConfig(
                socket=str(Path(sock_dir) / "ref.sock"),
                benchmark="arepair",
                scale=scale,
                seed=seed,
                job_timeout=None,
                use_store=False,
                chaos=plan,
            )
        )
        service.pool.stop()  # only the loaded corpus is needed
        return service


def backpressure_drill(seed: int, scale: float) -> DrillResult:
    """Deterministic rejection behavior at both admission gates."""
    drill = DrillResult(name="service-backpressure")
    with _temp_cache(), _socket_dir() as sock_dir:
        config = ServiceConfig(
            socket=str(Path(sock_dir) / "drill.sock"),
            benchmark="arepair",
            scale=scale,
            seed=seed,
            workers=1,
            max_queue=3,
            bucket_capacity=2.0,
            bucket_refill=0.0,
            job_timeout=None,
        )
        handle = ServiceHandle.start(config)
        service = handle.service
        client = ServiceClient(handle.socket)
        spec_id = sorted(service.jobs_corpus_ids())[0]

        def job(tenant: str) -> JobSpec:
            return JobSpec(
                benchmark="arepair",
                spec_id=spec_id,
                techniques=("ATR",),
                seed=seed,
                tenant=tenant,
            )

        try:
            service.pool.pause()
            for index in range(2):
                outcome = client.submit(job("bulk"), watch=False)
                if not outcome.accepted:
                    drill.violations.append(
                        f"bulk submission #{index} rejected with tokens and "
                        f"queue space available: {outcome.rejections}"
                    )
            third = client.submit(job("bulk"), watch=False)
            if third.accepted:
                drill.violations.append(
                    "tenant with an empty bucket was admitted"
                )
            elif third.rejections[0].get("reason") != "rate_limited":
                drill.violations.append(
                    f"expected rate_limited, got {third.rejections[0]}"
                )
            other = client.submit(job("other"), watch=False)
            if not other.accepted:
                drill.violations.append(
                    f"fresh tenant rejected below the queue bound: "
                    f"{other.rejections}"
                )
            full = client.submit(job("other"), watch=False)
            if full.accepted:
                drill.violations.append("submission above max_queue admitted")
            elif full.rejections[0].get("reason") != "queue_full":
                drill.violations.append(
                    f"expected queue_full, got {full.rejections[0]}"
                )
            for name, rejection in (
                ("rate_limited", third),
                ("queue_full", full),
            ):
                if rejection.accepted:
                    continue
                if float(rejection.rejections[0].get("retry_after", 0)) <= 0:
                    drill.violations.append(
                        f"{name} rejection carried no positive retry_after"
                    )
            # The queue bound is checked before the bucket, so the
            # queue_full rejection must not have burned "other"'s token.
            tokens = service.admission.bucket_for("other").available
            if tokens < 1.0:
                drill.violations.append(
                    "queue_full rejection consumed the tenant's token "
                    f"(bucket holds {tokens:g})"
                )
            service.pool.resume()
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                if all(r.terminal for r in service.jobs.values()):
                    break
                time.sleep(0.02)
            states = sorted(
                record.state.value for record in service.jobs.values()
            )
            if states != ["done", "done", "done"]:
                drill.violations.append(
                    f"admitted jobs did not all complete: {states}"
                )
            after = client.submit(job("other"), watch=True)
            if not after.accepted or after.state != "done":
                drill.violations.append(
                    "post-resume submission from the preserved-token tenant "
                    f"failed: accepted={after.accepted} state={after.state}"
                )
        finally:
            handle.drain()
    drill.detail = {
        "max_queue": 3,
        "bucket_capacity": 2,
        "admitted": 4,
        "rejected": {"queue_full": 1, "rate_limited": 1},
    }
    return drill


def breaker_drill(seed: int, requested: set[str], scale: float) -> DrillResult:
    """An LLM outage trips the breaker; traditional repair is unaffected."""
    drill = DrillResult(name="service-breaker")
    if "llm.transient" not in requested:
        drill.skipped = True
        return drill
    # Unbounded transient faults: every LLM call fails even after the full
    # retry schedule, so each LLM cell lands as ERROR/llm.transient.
    plan = FaultPlan(
        seed=seed,
        sites={
            "llm.transient": SiteConfig(probability=1.0, max_fires=10**6)
        },
    )
    breaker_config = BreakerConfig(
        window=4, min_calls=2, failure_rate=0.5, cooldown=120.0
    )
    with _temp_cache(), _socket_dir() as sock_dir:
        config = ServiceConfig(
            socket=str(Path(sock_dir) / "drill.sock"),
            benchmark="arepair",
            scale=scale,
            seed=seed,
            workers=1,
            job_timeout=None,
            use_store=False,
            chaos=plan,
            breaker=breaker_config,
        )
        handle = ServiceHandle.start(config)
        service = handle.service
        client = ServiceClient(handle.socket)
        spec_ids = sorted(service.jobs_corpus_ids())
        try:
            for spec_id in spec_ids[:2]:
                outcome = client.submit(
                    JobSpec(
                        benchmark="arepair",
                        spec_id=spec_id,
                        techniques=("Single-Round_Pass",),
                        seed=seed,
                    ),
                    watch=True,
                )
                if not outcome.accepted or outcome.state != "done":
                    drill.violations.append(
                        f"LLM job on {spec_id} did not complete degraded: "
                        f"accepted={outcome.accepted} state={outcome.state}"
                    )
                    continue
                cell = outcome.outcomes.get("Single-Round_Pass", {})
                if cell.get("status") != "error" or (
                    cell.get("error_code") != "llm.transient"
                ):
                    drill.violations.append(
                        f"expected error/llm.transient cell on {spec_id}, "
                        f"got {cell.get('status')}/{cell.get('error_code')}"
                    )
            if service.breakers["llm"].state != "open":
                drill.violations.append(
                    "LLM breaker did not trip after two exhausted-retry "
                    f"failures (state: {service.breakers['llm'].state})"
                )
            gated = client.submit(
                JobSpec(
                    benchmark="arepair",
                    spec_id=spec_ids[2],
                    techniques=("Single-Round_Pass",),
                    seed=seed,
                ),
                watch=False,
            )
            if gated.accepted:
                drill.violations.append(
                    "LLM job admitted while the LLM breaker was open"
                )
            else:
                rejection = gated.rejections[0]
                if rejection.get("reason") != "breaker_open:llm":
                    drill.violations.append(
                        f"expected breaker_open:llm, got {rejection}"
                    )
                if float(rejection.get("retry_after", 0)) <= 0:
                    drill.violations.append(
                        "breaker rejection carried no positive retry_after"
                    )
            traditional = client.submit(
                JobSpec(
                    benchmark="arepair",
                    spec_id=spec_ids[0],
                    techniques=("ATR",),
                    seed=seed,
                ),
                watch=True,
            )
            if not traditional.accepted or traditional.state != "done":
                drill.violations.append(
                    "traditional repair was blocked by the LLM outage: "
                    f"accepted={traditional.accepted} "
                    f"state={traditional.state}"
                )
            if service.breakers["analyzer"].state != "closed":
                drill.violations.append(
                    "analyzer breaker tripped on an LLM-only outage"
                )
        finally:
            handle.drain()

    # Recovery half, deterministic via a fake clock: open → half-open
    # probe → closed.
    now = [0.0]
    breaker = CircuitBreaker(
        "drill", BreakerConfig(window=4, min_calls=2, cooldown=10.0),
        clock=lambda: now[0],
    )
    breaker.record_failure("llm.transient")
    breaker.record_failure("llm.transient")
    if breaker.state != "open" or breaker.allow():
        drill.violations.append("fake-clock breaker failed to trip open")
    now[0] = 10.0
    if breaker.state != "half-open" or not breaker.allow():
        drill.violations.append(
            "breaker did not admit a probe after the cooldown"
        )
    breaker.record_success()
    if breaker.state != "closed":
        drill.violations.append("successful probe did not close the breaker")
    drill.detail = {
        "trip_after_failures": 2,
        "recovered_via_probe": breaker.state == "closed",
    }
    return drill


def drain_resume_drill(seed: int, scale: float) -> DrillResult:
    """Checkpoint on drain; resume bit-identical; then serve from store."""
    drill = DrillResult(name="service-drain-resume")
    techniques = ("ATR", "Single-Round_Pass")
    with _temp_cache(), _socket_dir() as sock_dir:
        config = ServiceConfig(
            socket=str(Path(sock_dir) / "drill.sock"),
            benchmark="arepair",
            scale=scale,
            seed=seed,
            workers=2,
            job_timeout=None,
        )
        state_path = config.resolved_state_path()

        # Phase A: admit jobs into a paused pool, drain — every job must
        # land in the checkpoint, none executed.
        handle = ServiceHandle.start(config)
        service_a = handle.service
        spec_ids = sorted(service_a.jobs_corpus_ids())[:6]
        jobs = [
            JobSpec(
                benchmark="arepair",
                spec_id=spec_id,
                techniques=techniques,
                seed=seed,
            )
            for spec_id in spec_ids
        ]
        client = ServiceClient(handle.socket)
        service_a.pool.pause()
        job_ids = []
        for job in jobs:
            outcome = client.submit(job, watch=False)
            if not outcome.accepted:
                drill.violations.append(
                    f"phase A rejected {job.spec_id}: {outcome.rejections}"
                )
            else:
                job_ids.append(outcome.job_id)
        handle.drain(grace=0.0)
        if not state_path.exists():
            drill.violations.append("drain wrote no checkpoint file")
            return drill

        # Phase B: a fresh daemon resumes every checkpointed job and runs
        # them to completion.
        handle_b = ServiceHandle.start(config)
        service_b = handle_b.service
        try:
            if service_b.resumed_jobs != len(jobs):
                drill.violations.append(
                    f"resumed {service_b.resumed_jobs} of {len(jobs)} "
                    "checkpointed jobs"
                )
            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline:
                if len(service_b.jobs) == len(jobs) and all(
                    record.terminal for record in service_b.jobs.values()
                ):
                    break
                time.sleep(0.05)
            resumed_payload = {
                record.spec.spec_id: _cells_payload(record.outcomes)
                for record in service_b.jobs.values()
            }
            resumed_states = sorted(
                record.state.value for record in service_b.jobs.values()
            )
            if resumed_states != ["done"] * len(jobs):
                drill.violations.append(
                    f"resumed jobs did not all complete: {resumed_states}"
                )
            if sorted(service_b.jobs) != sorted(job_ids):
                drill.violations.append(
                    "resumed job ids diverge from the checkpointed ones"
                )
        finally:
            handle_b.drain()
        if state_path.exists():
            drill.violations.append(
                "clean drain left a stale checkpoint file behind"
            )

        # Ground truth: the same cells straight through the engine.
        reference_payload, _ = _reference_execution(
            spec_ids, service_a, techniques, seed, None
        )
        if resumed_payload != reference_payload:
            drill.violations.append(
                "resumed outcomes diverge from direct execution"
            )

        # Phase C: a third incarnation serves the identical jobs from the
        # result store without executing anything.
        handle_c = ServiceHandle.start(config)
        service_c = handle_c.service
        try:
            if service_c.resumed_jobs != 0:
                drill.violations.append(
                    "third daemon resumed jobs from a supposedly clean state"
                )
            client_c = ServiceClient(handle_c.socket)
            store_hits = 0
            for job in jobs:
                outcome = client_c.submit(job, watch=True)
                if not outcome.accepted or outcome.state != "done":
                    drill.violations.append(
                        f"store-phase job {job.spec_id} did not complete"
                    )
                    continue
                if outcome.from_store:
                    store_hits += 1
                if _cells_payload(outcome.outcomes) != reference_payload.get(
                    job.spec_id
                ):
                    drill.violations.append(
                        f"store-served outcomes diverge for {job.spec_id}"
                    )
            if store_hits != len(jobs):
                drill.violations.append(
                    f"only {store_hits} of {len(jobs)} jobs were served "
                    "from the store"
                )
            if service_c.pool.executed != 0:
                drill.violations.append(
                    f"store phase executed {service_c.pool.executed} job(s)"
                )
        finally:
            handle_c.drain()
    drill.detail = {
        "jobs": len(jobs),
        "checkpointed": len(jobs),
        "resumed": len(jobs),
        "store_served": len(jobs),
        "payload": {
            spec_id: reference_payload[spec_id]
            for spec_id in sorted(reference_payload)
        },
    }
    return drill


def run_service_drills(
    seed: int = 0,
    sites=None,
    scale: float = 0.05,
) -> dict:
    """Run the service drills and assemble the deterministic report."""
    requested = set(sites) if sites is not None else set(SITES)
    unknown = requested - set(SITES)
    if unknown:
        raise ValueError(
            f"unknown injection site(s): {', '.join(sorted(unknown))}"
        )
    drills = [
        availability_drill(seed, requested, scale),
        backpressure_drill(seed, scale),
        breaker_drill(seed, requested, scale),
        drain_resume_drill(seed, scale),
    ]
    violations = sum(len(drill.violations) for drill in drills)
    return {
        "schema": SERVICE_CHAOS_SCHEMA,
        "seed": seed,
        "scale": scale,
        "sites": sorted(requested),
        "drills": [drill.to_json() for drill in drills],
        "violations": violations,
        "ok": violations == 0,
    }


def render_service_report(report: dict) -> str:
    """The human-readable summary printed by ``repro chaos --service``."""
    lines = [
        f"SERVICE CHAOS — seed={report['seed']} "
        f"scale={report['scale']:g} sites={len(report['sites'])}"
    ]
    for drill in report["drills"]:
        if drill["skipped"]:
            status = "SKIP"
        else:
            status = "ok" if drill["ok"] else "FAIL"
        lines.append(f"  [{status:>4}] {drill['name']}")
        for violation in drill["violations"]:
            lines.append(f"         - {violation}")
    verdict = (
        "availability SLO held"
        if report["ok"]
        else f"{report['violations']} violation(s)"
    )
    lines.append(f"  {verdict}")
    return "\n".join(lines)
