"""``repro chaos --service`` — availability drills against a live daemon.

The batch-engine drills (:mod:`repro.chaos.harness`) prove the *engine's*
contracts under injected faults; these prove the *service's*:

- **service-availability** — a client fleet submits the whole corpus to a
  daemon whose executions (and store flushes) run under the full 9-site
  fault plan.  The SLO: every accepted job reaches a terminal state (no
  lost jobs), every DONE job's cells are bit-identical to a direct
  engine execution under the same plan (no corrupted results — faults
  degrade cells, never falsify them), p99 queue wait stays bounded, and
  the fault schedule matches the reference run's exactly (the service
  adds no nondeterminism);
- **service-backpressure** — with the pool paused, the queue bound and a
  starved tenant bucket reject deterministically, every rejection carries
  a positive ``retry_after``, a full queue never consumes the tenant's
  tokens, and everything admitted completes once the pool resumes;
- **service-breaker** — an LLM backend failing past the retry budget
  trips the LLM breaker after the configured window; further LLM jobs
  fast-fail with ``breaker_open:llm`` while traditional repair continues
  unaffected; a fake-clock breaker walks open → half-open → closed;
- **service-drain-resume** — a drained daemon checkpoints every pending
  job; a restarted daemon resumes all of them and produces bit-identical
  outcomes to a direct execution; a third incarnation serves the same
  jobs straight from the result store.

``repro chaos --cluster`` drills the *replicated* tier on top of these:

- **cluster-lease** — fake-clock edge cases of the lease/fencing layer:
  boundary-inclusive expiry, exactly-one-winner adoption of an orphan,
  stale-writer rejection at the shared store, torn-tail tolerance of the
  job ledger, and quota durability across controller restarts;
- **cluster-failover** — two ``repro serve`` subprocess replicas share a
  cluster directory; the whole corpus is submitted under the full fault
  plan, then a seeded victim replica is ``kill -9``'d the moment it has
  a job mid-execution.  The SLO: zero lost jobs (the survivor adopts and
  re-executes every orphan), zero double-committed cells, a strictly
  monotonic fencing-token trail, and every committed cell bit-identical
  to an uninterrupted direct engine execution under the same plan.

Reports follow the chaos-report contract: canonical JSON, no timestamps,
durations, or counts that depend on thread timing — two same-seed runs
are byte-identical (CI pins this with a double-run ``cmp``).
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro.chaos.harness import DrillResult, _events_by_site, _temp_cache
from repro.chaos.plan import SITES, FaultPlan, SiteConfig
from repro.experiments.executor import ShardTask, execute_shard
from repro.service.admission import QuotaStore
from repro.service.breaker import BreakerConfig, CircuitBreaker
from repro.service.client import ServiceClient
from repro.service.daemon import ServiceConfig, ServiceHandle
from repro.service.ledger import (
    ClusterFold,
    ClusterStore,
    DuplicateCommitError,
    JobLedger,
    StaleWriterError,
)
from repro.service.lease import LeaseError, LeaseManager
from repro.service.loadgen import plan_jobs, run_load
from repro.service.protocol import (
    CLUSTER_REPORT_SCHEMA,
    JobSpec,
    ServiceError,
)

SERVICE_CHAOS_SCHEMA = "repro-service-chaos/1"
"""Stamped into every service chaos report; bump on any shape change."""

AVAILABILITY_SITES: dict[str, SiteConfig] = {
    "sat.budget": SiteConfig(probability=0.05, max_fires=2),
    "sat.flip": SiteConfig(probability=0.05, max_fires=2),
    "analyzer.explode": SiteConfig(probability=0.03, max_fires=1),
    "repair.crash": SiteConfig(probability=0.25, max_fires=3),
    "llm.transient": SiteConfig(probability=0.3, max_fires=2),
    "llm.garbage": SiteConfig(probability=0.3, max_fires=2),
    "llm.truncate": SiteConfig(probability=0.3, max_fires=2),
    "persist.corrupt": SiteConfig(probability=0.5, max_fires=2),
    "persist.truncate": SiteConfig(probability=0.5, max_fires=2),
}
"""All nine sites, tuned so each fires somewhere across the corpus while
most cells stay healthy.  ``llm.transient`` stays under the retry budget
(``max_fires=2`` against 3 attempts) so transient faults are absorbed,
not surfaced — the availability drill's point."""

AVAILABILITY_TECHNIQUES = ("ATR", "BeAFix", "Single-Round_Pass")
"""Solver, analyzer, repair loop, and LLM transport all on some path."""

QUEUE_WAIT_SLO_P99 = 30.0
"""Seconds.  Generous — the assertion is boundedness, not speed."""


def _cells_payload(outcomes: dict[str, dict]) -> dict:
    """The determinism-relevant projection of service cell payloads."""
    return {
        technique: {
            "rep": cell["rep"],
            "tm": round(cell["tm"], 9),
            "sm": round(cell["sm"], 9),
            "status": cell["status"],
        }
        for technique, cell in sorted(outcomes.items())
    }


def _reference_execution(
    spec_ids: list[str],
    service,
    techniques: tuple[str, ...],
    seed: int,
    plan: FaultPlan | None,
) -> tuple[dict, list[dict]]:
    """Run every job directly through the engine — the ground truth the
    service's results must match bit-for-bit."""
    payload: dict[str, dict] = {}
    events: list[dict] = []
    for spec_id in spec_ids:
        result = execute_shard(
            ShardTask(
                spec=service._specs[spec_id],
                techniques=techniques,
                seed=seed,
                static_prune=service.config.static_prune,
                incremental=service.config.incremental,
                shard_timeout=service.config.job_timeout,
                chaos=plan,
            )
        )
        events.extend(result.chaos_events)
        payload[spec_id] = {
            technique: {
                "rep": o.rep,
                "tm": round(o.tm, 9),
                "sm": round(o.sm, 9),
                "status": o.status,
            }
            for technique, o in sorted(result.outcomes.items())
        }
    return payload, events


def _socket_dir() -> tempfile.TemporaryDirectory:
    # Unix socket paths are length-limited (~108 bytes); a short /tmp dir
    # keeps the drill independent of how deep REPRO_CACHE_DIR nests.
    return tempfile.TemporaryDirectory(prefix="repro-svc-")


def availability_drill(
    seed: int, requested: set[str], scale: float
) -> DrillResult:
    """The headline SLO: no lost jobs, no corrupted results, bounded p99,
    deterministic fault schedule — under all nine sites at once."""
    drill = DrillResult(name="service-availability")
    active = sorted(requested & set(AVAILABILITY_SITES))
    if not active:
        drill.skipped = True
        return drill
    plan = FaultPlan(
        seed=seed, sites={site: AVAILABILITY_SITES[site] for site in active}
    )
    with _temp_cache(), _socket_dir() as sock_dir:
        config = ServiceConfig(
            socket=str(Path(sock_dir) / "drill.sock"),
            benchmark="arepair",
            scale=scale,
            seed=seed,
            workers=4,
            max_queue=8,
            bucket_capacity=4.0,
            bucket_refill=50.0,
            job_timeout=None,
            chaos=plan,
        )
        handle = ServiceHandle.start(config)
        service = handle.service
        spec_ids = sorted(service.jobs_corpus_ids())
        try:
            ledger = run_load(
                config,
                clients=len(spec_ids),
                jobs_per_client=1,
                techniques=AVAILABILITY_TECHNIQUES,
                handle=handle,
            )
            records = {
                record.spec.spec_id: record
                for record in service.jobs.values()
            }
            service_payload = {
                spec_id: _cells_payload(record.outcomes)
                for spec_id, record in sorted(records.items())
            }
            service_events = list(service.chaos_events)
            store_events = (
                list(service.store.events) if service.store else []
            )
            stats = service.stats()
        finally:
            handle.drain()

    if ledger["lost"] != 0:
        drill.violations.append(f"{ledger['lost']} accepted job(s) lost")
    if ledger["failed"] != 0:
        drill.violations.append(
            f"{ledger['failed']} job(s) FAILED — faults must degrade "
            "cells, not kill jobs"
        )
    if ledger["incomplete"]:
        drill.violations.append(
            f"terminal events missing cells: {ledger['incomplete']}"
        )
    if ledger["client_errors"]:
        drill.violations.append(
            f"client-visible errors: {ledger['client_errors'][:3]}"
        )
    if ledger["bad_retry_after"]:
        drill.violations.append(
            f"{ledger['bad_retry_after']} rejection(s) without a positive "
            "retry_after hint"
        )

    with _temp_cache():
        reference_payload, reference_events = _reference_execution(
            spec_ids,
            _reference_service(seed, scale, plan),
            AVAILABILITY_TECHNIQUES,
            seed,
            plan,
        )
    if service_payload != reference_payload:
        diverging = sorted(
            spec_id
            for spec_id in reference_payload
            if service_payload.get(spec_id) != reference_payload[spec_id]
        )
        drill.violations.append(
            f"service results diverge from direct execution for {diverging}"
        )
    if _events_by_site(service_events) != _events_by_site(reference_events):
        drill.violations.append(
            "service fault schedule diverges from the reference run: "
            f"{_events_by_site(service_events)} != "
            f"{_events_by_site(reference_events)}"
        )
    all_events = service_events + store_events
    fired = {event["site"] for event in all_events}
    for site in active:
        if site not in fired:
            drill.violations.append(
                f"site {site} never fired — the drill proved nothing "
                "about it"
            )
    p99 = stats["queue_wait"]["p99"]
    if p99 > QUEUE_WAIT_SLO_P99:
        drill.violations.append(
            f"p99 queue wait {p99:.3f}s exceeds the {QUEUE_WAIT_SLO_P99}s SLO"
        )
    drill.detail = {
        "sites": active,
        "jobs": len(spec_ids),
        "techniques": list(AVAILABILITY_TECHNIQUES),
        "events_by_site": _events_by_site(all_events),
        "lost": ledger["lost"],
        "p99_within_slo": p99 <= QUEUE_WAIT_SLO_P99,
        "payload": service_payload,
    }
    return drill


def _reference_service(seed: int, scale: float, plan):
    """A throwaway daemon-shaped object for spec lookup in the reference
    run — never started, just the loaded corpus and config."""
    from repro.service.daemon import ReproService

    with _temp_cache(), _socket_dir() as sock_dir:
        service = ReproService(
            ServiceConfig(
                socket=str(Path(sock_dir) / "ref.sock"),
                benchmark="arepair",
                scale=scale,
                seed=seed,
                job_timeout=None,
                use_store=False,
                chaos=plan,
            )
        )
        service.pool.stop()  # only the loaded corpus is needed
        return service


def backpressure_drill(seed: int, scale: float) -> DrillResult:
    """Deterministic rejection behavior at both admission gates."""
    drill = DrillResult(name="service-backpressure")
    with _temp_cache(), _socket_dir() as sock_dir:
        config = ServiceConfig(
            socket=str(Path(sock_dir) / "drill.sock"),
            benchmark="arepair",
            scale=scale,
            seed=seed,
            workers=1,
            max_queue=3,
            bucket_capacity=2.0,
            bucket_refill=0.0,
            job_timeout=None,
        )
        handle = ServiceHandle.start(config)
        service = handle.service
        client = ServiceClient(handle.socket)
        spec_id = sorted(service.jobs_corpus_ids())[0]

        def job(tenant: str) -> JobSpec:
            return JobSpec(
                benchmark="arepair",
                spec_id=spec_id,
                techniques=("ATR",),
                seed=seed,
                tenant=tenant,
            )

        try:
            service.pool.pause()
            for index in range(2):
                outcome = client.submit(job("bulk"), watch=False)
                if not outcome.accepted:
                    drill.violations.append(
                        f"bulk submission #{index} rejected with tokens and "
                        f"queue space available: {outcome.rejections}"
                    )
            third = client.submit(job("bulk"), watch=False)
            if third.accepted:
                drill.violations.append(
                    "tenant with an empty bucket was admitted"
                )
            elif third.rejections[0].get("reason") != "rate_limited":
                drill.violations.append(
                    f"expected rate_limited, got {third.rejections[0]}"
                )
            other = client.submit(job("other"), watch=False)
            if not other.accepted:
                drill.violations.append(
                    f"fresh tenant rejected below the queue bound: "
                    f"{other.rejections}"
                )
            full = client.submit(job("other"), watch=False)
            if full.accepted:
                drill.violations.append("submission above max_queue admitted")
            elif full.rejections[0].get("reason") != "queue_full":
                drill.violations.append(
                    f"expected queue_full, got {full.rejections[0]}"
                )
            for name, rejection in (
                ("rate_limited", third),
                ("queue_full", full),
            ):
                if rejection.accepted:
                    continue
                if float(rejection.rejections[0].get("retry_after", 0)) <= 0:
                    drill.violations.append(
                        f"{name} rejection carried no positive retry_after"
                    )
            # The queue bound is checked before the bucket, so the
            # queue_full rejection must not have burned "other"'s token.
            tokens = service.admission.bucket_for("other").available
            if tokens < 1.0:
                drill.violations.append(
                    "queue_full rejection consumed the tenant's token "
                    f"(bucket holds {tokens:g})"
                )
            service.pool.resume()
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                if all(r.terminal for r in service.jobs.values()):
                    break
                time.sleep(0.02)
            states = sorted(
                record.state.value for record in service.jobs.values()
            )
            if states != ["done", "done", "done"]:
                drill.violations.append(
                    f"admitted jobs did not all complete: {states}"
                )
            after = client.submit(job("other"), watch=True)
            if not after.accepted or after.state != "done":
                drill.violations.append(
                    "post-resume submission from the preserved-token tenant "
                    f"failed: accepted={after.accepted} state={after.state}"
                )
        finally:
            handle.drain()
    drill.detail = {
        "max_queue": 3,
        "bucket_capacity": 2,
        "admitted": 4,
        "rejected": {"queue_full": 1, "rate_limited": 1},
    }
    return drill


def breaker_drill(seed: int, requested: set[str], scale: float) -> DrillResult:
    """An LLM outage trips the breaker; traditional repair is unaffected."""
    drill = DrillResult(name="service-breaker")
    if "llm.transient" not in requested:
        drill.skipped = True
        return drill
    # Unbounded transient faults: every LLM call fails even after the full
    # retry schedule, so each LLM cell lands as ERROR/llm.transient.
    plan = FaultPlan(
        seed=seed,
        sites={
            "llm.transient": SiteConfig(probability=1.0, max_fires=10**6)
        },
    )
    breaker_config = BreakerConfig(
        window=4, min_calls=2, failure_rate=0.5, cooldown=120.0
    )
    with _temp_cache(), _socket_dir() as sock_dir:
        config = ServiceConfig(
            socket=str(Path(sock_dir) / "drill.sock"),
            benchmark="arepair",
            scale=scale,
            seed=seed,
            workers=1,
            job_timeout=None,
            use_store=False,
            chaos=plan,
            breaker=breaker_config,
        )
        handle = ServiceHandle.start(config)
        service = handle.service
        client = ServiceClient(handle.socket)
        spec_ids = sorted(service.jobs_corpus_ids())
        try:
            for spec_id in spec_ids[:2]:
                outcome = client.submit(
                    JobSpec(
                        benchmark="arepair",
                        spec_id=spec_id,
                        techniques=("Single-Round_Pass",),
                        seed=seed,
                    ),
                    watch=True,
                )
                if not outcome.accepted or outcome.state != "done":
                    drill.violations.append(
                        f"LLM job on {spec_id} did not complete degraded: "
                        f"accepted={outcome.accepted} state={outcome.state}"
                    )
                    continue
                cell = outcome.outcomes.get("Single-Round_Pass", {})
                if cell.get("status") != "error" or (
                    cell.get("error_code") != "llm.transient"
                ):
                    drill.violations.append(
                        f"expected error/llm.transient cell on {spec_id}, "
                        f"got {cell.get('status')}/{cell.get('error_code')}"
                    )
            if service.breakers["llm"].state != "open":
                drill.violations.append(
                    "LLM breaker did not trip after two exhausted-retry "
                    f"failures (state: {service.breakers['llm'].state})"
                )
            gated = client.submit(
                JobSpec(
                    benchmark="arepair",
                    spec_id=spec_ids[2],
                    techniques=("Single-Round_Pass",),
                    seed=seed,
                ),
                watch=False,
            )
            if gated.accepted:
                drill.violations.append(
                    "LLM job admitted while the LLM breaker was open"
                )
            else:
                rejection = gated.rejections[0]
                if rejection.get("reason") != "breaker_open:llm":
                    drill.violations.append(
                        f"expected breaker_open:llm, got {rejection}"
                    )
                if float(rejection.get("retry_after", 0)) <= 0:
                    drill.violations.append(
                        "breaker rejection carried no positive retry_after"
                    )
            traditional = client.submit(
                JobSpec(
                    benchmark="arepair",
                    spec_id=spec_ids[0],
                    techniques=("ATR",),
                    seed=seed,
                ),
                watch=True,
            )
            if not traditional.accepted or traditional.state != "done":
                drill.violations.append(
                    "traditional repair was blocked by the LLM outage: "
                    f"accepted={traditional.accepted} "
                    f"state={traditional.state}"
                )
            if service.breakers["analyzer"].state != "closed":
                drill.violations.append(
                    "analyzer breaker tripped on an LLM-only outage"
                )
        finally:
            handle.drain()

    # Recovery half, deterministic via a fake clock: open → half-open
    # probe → closed.
    now = [0.0]
    breaker = CircuitBreaker(
        "drill", BreakerConfig(window=4, min_calls=2, cooldown=10.0),
        clock=lambda: now[0],
    )
    breaker.record_failure("llm.transient")
    breaker.record_failure("llm.transient")
    if breaker.state != "open" or breaker.allow():
        drill.violations.append("fake-clock breaker failed to trip open")
    now[0] = 10.0
    if breaker.state != "half-open" or not breaker.allow():
        drill.violations.append(
            "breaker did not admit a probe after the cooldown"
        )
    breaker.record_success()
    if breaker.state != "closed":
        drill.violations.append("successful probe did not close the breaker")
    drill.detail = {
        "trip_after_failures": 2,
        "recovered_via_probe": breaker.state == "closed",
    }
    return drill


def drain_resume_drill(seed: int, scale: float) -> DrillResult:
    """Checkpoint on drain; resume bit-identical; then serve from store."""
    drill = DrillResult(name="service-drain-resume")
    techniques = ("ATR", "Single-Round_Pass")
    with _temp_cache(), _socket_dir() as sock_dir:
        config = ServiceConfig(
            socket=str(Path(sock_dir) / "drill.sock"),
            benchmark="arepair",
            scale=scale,
            seed=seed,
            workers=2,
            job_timeout=None,
        )
        state_path = config.resolved_state_path()

        # Phase A: admit jobs into a paused pool, drain — every job must
        # land in the checkpoint, none executed.
        handle = ServiceHandle.start(config)
        service_a = handle.service
        spec_ids = sorted(service_a.jobs_corpus_ids())[:6]
        jobs = [
            JobSpec(
                benchmark="arepair",
                spec_id=spec_id,
                techniques=techniques,
                seed=seed,
            )
            for spec_id in spec_ids
        ]
        client = ServiceClient(handle.socket)
        service_a.pool.pause()
        job_ids = []
        for job in jobs:
            outcome = client.submit(job, watch=False)
            if not outcome.accepted:
                drill.violations.append(
                    f"phase A rejected {job.spec_id}: {outcome.rejections}"
                )
            else:
                job_ids.append(outcome.job_id)
        handle.drain(grace=0.0)
        if not state_path.exists():
            drill.violations.append("drain wrote no checkpoint file")
            return drill

        # Phase B: a fresh daemon resumes every checkpointed job and runs
        # them to completion.
        handle_b = ServiceHandle.start(config)
        service_b = handle_b.service
        try:
            if service_b.resumed_jobs != len(jobs):
                drill.violations.append(
                    f"resumed {service_b.resumed_jobs} of {len(jobs)} "
                    "checkpointed jobs"
                )
            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline:
                if len(service_b.jobs) == len(jobs) and all(
                    record.terminal for record in service_b.jobs.values()
                ):
                    break
                time.sleep(0.05)
            resumed_payload = {
                record.spec.spec_id: _cells_payload(record.outcomes)
                for record in service_b.jobs.values()
            }
            resumed_states = sorted(
                record.state.value for record in service_b.jobs.values()
            )
            if resumed_states != ["done"] * len(jobs):
                drill.violations.append(
                    f"resumed jobs did not all complete: {resumed_states}"
                )
            if sorted(service_b.jobs) != sorted(job_ids):
                drill.violations.append(
                    "resumed job ids diverge from the checkpointed ones"
                )
        finally:
            handle_b.drain()
        if state_path.exists():
            drill.violations.append(
                "clean drain left a stale checkpoint file behind"
            )

        # Ground truth: the same cells straight through the engine.
        reference_payload, _ = _reference_execution(
            spec_ids, service_a, techniques, seed, None
        )
        if resumed_payload != reference_payload:
            drill.violations.append(
                "resumed outcomes diverge from direct execution"
            )

        # Phase C: a third incarnation serves the identical jobs from the
        # result store without executing anything.
        handle_c = ServiceHandle.start(config)
        service_c = handle_c.service
        try:
            if service_c.resumed_jobs != 0:
                drill.violations.append(
                    "third daemon resumed jobs from a supposedly clean state"
                )
            client_c = ServiceClient(handle_c.socket)
            store_hits = 0
            for job in jobs:
                outcome = client_c.submit(job, watch=True)
                if not outcome.accepted or outcome.state != "done":
                    drill.violations.append(
                        f"store-phase job {job.spec_id} did not complete"
                    )
                    continue
                if outcome.from_store:
                    store_hits += 1
                if _cells_payload(outcome.outcomes) != reference_payload.get(
                    job.spec_id
                ):
                    drill.violations.append(
                        f"store-served outcomes diverge for {job.spec_id}"
                    )
            if store_hits != len(jobs):
                drill.violations.append(
                    f"only {store_hits} of {len(jobs)} jobs were served "
                    "from the store"
                )
            if service_c.pool.executed != 0:
                drill.violations.append(
                    f"store phase executed {service_c.pool.executed} job(s)"
                )
        finally:
            handle_c.drain()
    drill.detail = {
        "jobs": len(jobs),
        "checkpointed": len(jobs),
        "resumed": len(jobs),
        "store_served": len(jobs),
        "payload": {
            spec_id: reference_payload[spec_id]
            for spec_id in sorted(reference_payload)
        },
    }
    return drill


CLUSTER_REPLICAS = ("r0", "r1")
"""The failover drill's fleet: one victim, one survivor."""

CLUSTER_LEASE_TTL = 1.0
"""Short enough that failover completes in a couple of seconds."""


def cluster_lease_drill(seed: int) -> DrillResult:
    """Fake-clock edge cases of the lease, ledger, and quota layers —
    every scenario fully deterministic, no processes, no sleeps."""
    drill = DrillResult(name="cluster-lease")
    now = [float(seed % 1000)]
    clock = lambda: now[0]  # noqa: E731 - the whole drill shares one clock
    with tempfile.TemporaryDirectory(prefix="repro-lease-") as tmp:
        root = Path(tmp)

        # Boundary-inclusive expiry: alive strictly before ``expires_at``,
        # expired the exact instant ``now == expires_at``.
        m1 = LeaseManager(root / "l", "r1", ttl=5.0, clock=clock)
        m2 = LeaseManager(root / "l", "r2", ttl=5.0, clock=clock)
        lease = m1.acquire("job-a")
        if m1.is_expired(lease, lease.expires_at - 1e-6):
            drill.violations.append("lease expired before its boundary")
        if not m1.is_expired(lease, lease.expires_at):
            drill.violations.append(
                "lease not expired exactly at expires_at (must be "
                "boundary-inclusive)"
            )

        # Adoption race: with the lease expired, two would-be adopters
        # contend and exactly one wins; the loser sees the winner's fresh
        # lease and raises instead of double-owning.
        now[0] = lease.expires_at
        winners = []
        for manager in (m2, m1):
            try:
                winners.append(manager.adopt("job-a"))
            except LeaseError:
                pass
        if len(winners) != 1:
            drill.violations.append(
                f"{len(winners)} adopters won the same orphan (want 1)"
            )
        elif winners[0].token <= lease.token:
            drill.violations.append(
                "adoption did not advance the fencing token: "
                f"{winners[0].token} <= {lease.token}"
            )

        # Stale-writer fencing at the shared store: the original owner's
        # commit (token t1) must be rejected after adoption (token t2),
        # leaving the mirror untouched; the adopter's commit lands.
        recipe = {"drill": "cluster-lease", "seed": seed}
        cs1 = ClusterStore(root / "c", "r1", recipe, ttl=5.0, clock=clock)
        cs2 = ClusterStore(root / "c", "r2", recipe, ttl=5.0, clock=clock)
        stale = cs1.register("job-1", {"spec_id": "S1"})
        cs1.mark_running("job-1", stale.token)
        now[0] += 5.0
        adopted = cs2.adopt_orphans()
        if [job_id for job_id, _, _ in adopted] != ["job-1"]:
            drill.violations.append(
                f"expected to adopt exactly job-1, got {adopted}"
            )
        cell = {"rep": 1, "tm": 0.25, "sm": 0.5, "status": "correct"}
        try:
            cs1.commit("job-1", "S1", {"ATR": dict(cell)}, stale.token)
            drill.violations.append("stale writer's commit was accepted")
        except StaleWriterError:
            pass
        if cs1.lookup("S1"):
            drill.violations.append(
                "fenced commit leaked cells into the shared store"
            )
        if adopted:
            cs2.commit(
                "job-1", "S1", {"ATR": dict(cell)}, adopted[0][2].token
            )
        if cs1.lookup("S1").get("ATR") != cell:
            drill.violations.append(
                "the adopter's committed cell is missing from the store"
            )
        try:
            cs2.commit("job-1", "S1", {"ATR": dict(cell)}, 10**9)
            drill.violations.append("double commit was accepted")
        except DuplicateCommitError:
            pass

        # Torn tail: garbage appended by a dying replica is one skippable
        # line; the next append's leading newline seals it off.
        ledger_path = cs1.ledger.path
        with ledger_path.open("ab") as handle:
            handle.write(b'{"event":"done","job_id":"job-torn"')
        cs1.journal("running", "job-1", token=0)
        reader = JobLedger(ledger_path, cs1.ledger.lock_path)
        records = reader.replay()
        if reader.corrupt_lines != 1:
            drill.violations.append(
                f"torn tail produced {reader.corrupt_lines} corrupt "
                "line(s), want exactly 1"
            )
        if "job-torn" in {r.get("job_id") for r in records}:
            drill.violations.append("a torn record was treated as real")
        fold = ClusterFold()
        for record in records:
            fold.apply(record)
        if fold.double_committed():
            drill.violations.append(
                f"double-committed jobs: {fold.double_committed()}"
            )
        if not fold.tokens_monotonic():
            drill.violations.append(
                f"fencing tokens not strictly monotonic: {fold.tokens}"
            )
        if fold.fenced_commits != 1:
            drill.violations.append(
                f"{fold.fenced_commits} fenced audit record(s), want 1"
            )

        # Quota durability: a debit by one controller is visible to a
        # fresh one (daemon restart), and a corrupt file is a miss.
        quotas = QuotaStore(root / "c", clock=clock)
        if quotas.debit("t1", 1.5, capacity=2.0, refill_rate=0.0) != 0.0:
            drill.violations.append("first debit within capacity refused")
        reborn = QuotaStore(root / "c", clock=clock)
        if reborn.available("t1", capacity=2.0) != 0.5:
            drill.violations.append(
                "tenant balance did not survive a controller restart: "
                f"{reborn.available('t1', capacity=2.0)}"
            )
        if reborn.debit("t1", 1.0, capacity=2.0, refill_rate=0.0) <= 0.0:
            drill.violations.append("over-capacity debit was not refused")
        quotas.path.write_text("not json")
        if reborn.debit("t1", 1.0, capacity=2.0, refill_rate=0.0) != 0.0:
            drill.violations.append(
                "corrupt quota file did not reset to a full bucket"
            )
        if reborn.resets != 1:
            drill.violations.append(
                f"quota corruption reset counter is {reborn.resets}, want 1"
            )
    drill.detail = {
        "boundary_inclusive": True,
        "adoption_winners": 1,
        "fenced_commits": 1,
        "torn_lines_tolerated": 1,
        "quota_durable": True,
    }
    return drill


def _spawn_replica(
    replica: str,
    sock_dir: Path,
    cluster_dir: Path,
    seed: int,
    scale: float,
    plan_path: Path | None,
) -> subprocess.Popen:
    command = [
        sys.executable,
        "-m",
        "repro",
        "serve",
        "--socket", str(sock_dir / f"{replica}.sock"),
        "--benchmark", "arepair",
        "--scale", str(scale),
        "--seed", str(seed),
        "--workers", "2",
        "--max-queue", "64",
        "--bucket-capacity", "64",
        "--bucket-refill", "64",
        "--no-job-timeout",
        "--state", str(sock_dir / f"{replica}.state.json"),
        "--cluster-dir", str(cluster_dir),
        "--replica-id", replica,
        "--lease-ttl", str(CLUSTER_LEASE_TTL),
    ]
    if plan_path is not None:
        command += ["--chaos-plan", str(plan_path)]
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2])
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    log = (sock_dir / f"{replica}.log").open("wb")
    return subprocess.Popen(
        command, env=env, stdout=log, stderr=subprocess.STDOUT
    )


def _failover_worker(
    index: int,
    spec: JobSpec,
    ring: list[str],
    results: dict,
    errors: list[str],
) -> None:
    """Submit one job with full recovery: ring failover on refused
    connects, whole-submission retry on pre-ack transport errors (a
    duplicate job for the same spec is fine — first commit wins), and
    status-poll reconnection after a mid-watch kill."""
    client = ServiceClient(ring, retry_seed=index, reconnect_attempts=600)
    last: Exception | None = None
    for _ in range(10):
        try:
            outcome = client.submit_retrying(
                spec, watch=True, max_attempts=120
            )
        except (ServiceError, OSError) as error:
            last = error
            time.sleep(0.2)
            continue
        results[spec.spec_id] = outcome
        return
    errors.append(f"{spec.spec_id}: {type(last).__name__}: {last}")


def cluster_failover_drill(
    seed: int, requested: set[str], scale: float
) -> DrillResult:
    """Kill -9 a replica mid-job; assert the cluster's four invariants:
    zero lost jobs, zero double commits, monotonic fencing tokens, and
    byte-identical committed cells versus direct execution."""
    drill = DrillResult(name="cluster-failover")
    active = sorted(requested & set(AVAILABILITY_SITES))
    plan = (
        FaultPlan(
            seed=seed,
            sites={site: AVAILABILITY_SITES[site] for site in active},
        )
        if active
        else None
    )
    digest = hashlib.sha256(f"{seed}:victim".encode()).digest()
    victim = CLUSTER_REPLICAS[
        int.from_bytes(digest[:4], "big") % len(CLUSTER_REPLICAS)
    ]
    survivor = next(r for r in CLUSTER_REPLICAS if r != victim)

    with _temp_cache(), _socket_dir() as tmp:
        sock_dir = Path(tmp)
        cluster_dir = sock_dir / "cluster"
        plan_path = None
        if plan is not None:
            plan_path = sock_dir / "plan.json"
            plan_path.write_text(json.dumps(plan.to_json()))
        spec_ids = sorted(
            _reference_service(seed, scale, plan).jobs_corpus_ids()
        )
        sockets = {
            replica: str(sock_dir / f"{replica}.sock")
            for replica in CLUSTER_REPLICAS
        }
        procs = {
            replica: _spawn_replica(
                replica, sock_dir, cluster_dir, seed, scale, plan_path
            )
            for replica in CLUSTER_REPLICAS
        }
        results: dict[str, object] = {}
        errors: list[str] = []
        orphaned: list[str] = []
        try:
            for replica in CLUSTER_REPLICAS:
                ServiceClient(sockets[replica], reconnect_attempts=120).ping()

            threads = []
            for index, spec_id in enumerate(spec_ids):
                primary = CLUSTER_REPLICAS[index % len(CLUSTER_REPLICAS)]
                ring = [sockets[primary]] + [
                    sockets[r] for r in CLUSTER_REPLICAS if r != primary
                ]
                spec = JobSpec(
                    benchmark="arepair",
                    spec_id=spec_id,
                    techniques=AVAILABILITY_TECHNIQUES,
                    seed=seed,
                    tenant=f"tenant-{index % 3}",
                )
                thread = threading.Thread(
                    target=_failover_worker,
                    args=(index, spec, ring, results, errors),
                    name=f"failover-{spec_id}",
                    daemon=True,
                )
                thread.start()
                threads.append(thread)

            # Watch the shared ledger (lock-free incremental reads) for
            # the first job the victim starts *executing*, then SIGKILL
            # it mid-run — no drain, no checkpoint, no goodbye.
            watcher = JobLedger(
                cluster_dir / "ledger.jsonl", cluster_dir / ".cluster.lock"
            )
            killed = False
            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline:
                if any(
                    record.get("event") == "running"
                    and record.get("replica") == victim
                    for record in watcher.poll()
                ):
                    os.kill(procs[victim].pid, signal.SIGKILL)
                    procs[victim].wait()
                    killed = True
                    break
                time.sleep(0.01)
            if not killed:
                drill.violations.append(
                    f"victim {victim} never journaled a running job"
                )

            # The victim's non-terminal jobs at the instant of death are
            # the orphans the survivor is obliged to adopt.
            fold_at_kill = ClusterFold()
            for record in watcher.replay():
                fold_at_kill.apply(record)
            orphaned = sorted(
                view.job_id
                for view in fold_at_kill.non_terminal()
                if view.owner == victim
            )

            for thread in threads:
                thread.join(timeout=600.0)
            if any(thread.is_alive() for thread in threads):
                drill.violations.append(
                    "client worker(s) still waiting after 600s"
                )
            try:
                ServiceClient(sockets[survivor]).drain(grace=10.0)
                procs[survivor].wait(timeout=60.0)
            except (ServiceError, OSError, subprocess.TimeoutExpired) as error:
                drill.violations.append(
                    f"survivor drain failed: {type(error).__name__}: {error}"
                )
        finally:
            for proc in procs.values():
                if proc.poll() is None:
                    proc.kill()
                    proc.wait()

        ledger = JobLedger(
            cluster_dir / "ledger.jsonl", cluster_dir / ".cluster.lock"
        )
        records = ledger.replay()
        fold = ClusterFold()
        for record in records:
            fold.apply(record)

        # Invariant 1: zero lost jobs — every journaled job is terminal
        # and none FAILED (faults degrade cells, never kill jobs).
        lost = sorted(view.job_id for view in fold.non_terminal())
        if lost:
            drill.violations.append(f"lost (non-terminal) jobs: {lost}")
        failed = sorted(
            view.job_id
            for view in fold.jobs.values()
            if view.state == "failed"
        )
        if failed:
            drill.violations.append(f"FAILED jobs after failover: {failed}")

        # Invariant 2: at-most-once — no job carries two terminal records.
        if fold.double_committed():
            drill.violations.append(
                f"double-committed jobs: {fold.double_committed()}"
            )

        # Invariant 3: the fencing-token trail is strictly monotonic.
        if not fold.tokens_monotonic():
            drill.violations.append(
                f"fencing tokens not strictly monotonic: {fold.tokens}"
            )
        if orphaned and not any(
            view.adoptions for view in fold.jobs.values()
        ):
            drill.violations.append(
                f"victim left orphans {orphaned} but nothing was adopted"
            )

        # Invariant 4: committed cells are byte-identical to an
        # uninterrupted direct execution under the same fault plan.  The
        # first ``done`` record per spec is always a full execution (the
        # store mirror can only satisfy later duplicates), so its cells
        # and fault schedule must both match the reference exactly.
        committed: dict[str, dict] = {}
        committed_events: dict[str, list] = {}
        for record in records:
            if record.get("event") != "done":
                continue
            spec_id = record.get("spec_id")
            if spec_id and spec_id not in committed:
                committed[spec_id] = record.get("outcomes", {})
                committed_events[spec_id] = record.get("chaos", [])
        missing = sorted(set(spec_ids) - set(committed))
        if missing:
            drill.violations.append(f"specs never committed: {missing}")
        if errors:
            drill.violations.append(f"client-visible errors: {errors[:3]}")
        undone = sorted(
            spec_id
            for spec_id in results
            if getattr(results[spec_id], "state", None) != "done"
        )
        if undone:
            drill.violations.append(f"clients saw non-done jobs: {undone}")

    cluster_payload = {
        spec_id: _cells_payload(committed[spec_id])
        for spec_id in sorted(committed)
        if spec_id in set(spec_ids)
    }
    with _temp_cache():
        reference_payload, reference_events = _reference_execution(
            spec_ids,
            _reference_service(seed, scale, plan),
            AVAILABILITY_TECHNIQUES,
            seed,
            plan,
        )
    if cluster_payload != reference_payload:
        diverging = sorted(
            spec_id
            for spec_id in reference_payload
            if cluster_payload.get(spec_id) != reference_payload[spec_id]
        )
        drill.violations.append(
            "failed-over cells diverge from direct execution for "
            f"{diverging}"
        )
    client_payload = {
        spec_id: _cells_payload(getattr(outcome, "outcomes", {}))
        for spec_id, outcome in sorted(results.items())
        if getattr(outcome, "state", None) == "done"
    }
    for spec_id, cells in client_payload.items():
        if cells != reference_payload.get(spec_id):
            drill.violations.append(
                f"client-observed cells diverge for {spec_id}"
            )
            break
    cluster_events = [
        event
        for spec_id in sorted(committed_events)
        for event in committed_events[spec_id]
    ]
    if _events_by_site(cluster_events) != _events_by_site(reference_events):
        drill.violations.append(
            "cluster fault schedule diverges from the reference run: "
            f"{_events_by_site(cluster_events)} != "
            f"{_events_by_site(reference_events)}"
        )
    drill.detail = {
        "replicas": list(CLUSTER_REPLICAS),
        "victim": victim,
        "sites": active,
        "jobs": len(spec_ids),
        "techniques": list(AVAILABILITY_TECHNIQUES),
        "events_by_site": _events_by_site(cluster_events),
        "payload": {
            spec_id: cluster_payload[spec_id]
            for spec_id in sorted(cluster_payload)
        },
    }
    return drill


def run_cluster_drills(
    seed: int = 0,
    sites=None,
    scale: float = 0.05,
) -> dict:
    """Run the replicated-tier drills and assemble the report."""
    requested = set(sites) if sites is not None else set(SITES)
    unknown = requested - set(SITES)
    if unknown:
        raise ValueError(
            f"unknown injection site(s): {', '.join(sorted(unknown))}"
        )
    drills = [
        cluster_lease_drill(seed),
        cluster_failover_drill(seed, requested, scale),
    ]
    violations = sum(len(drill.violations) for drill in drills)
    return {
        "schema": CLUSTER_REPORT_SCHEMA,
        "seed": seed,
        "scale": scale,
        "sites": sorted(requested),
        "replicas": len(CLUSTER_REPLICAS),
        "drills": [drill.to_json() for drill in drills],
        "violations": violations,
        "ok": violations == 0,
    }


def render_cluster_report(report: dict) -> str:
    """The human-readable summary printed by ``repro chaos --cluster``."""
    lines = [
        f"CLUSTER CHAOS — seed={report['seed']} "
        f"scale={report['scale']:g} replicas={report['replicas']} "
        f"sites={len(report['sites'])}"
    ]
    for drill in report["drills"]:
        if drill["skipped"]:
            status = "SKIP"
        else:
            status = "ok" if drill["ok"] else "FAIL"
        lines.append(f"  [{status:>4}] {drill['name']}")
        for violation in drill["violations"]:
            lines.append(f"         - {violation}")
    verdict = (
        "failover invariants held"
        if report["ok"]
        else f"{report['violations']} violation(s)"
    )
    lines.append(f"  {verdict}")
    return "\n".join(lines)


def run_service_drills(
    seed: int = 0,
    sites=None,
    scale: float = 0.05,
) -> dict:
    """Run the service drills and assemble the deterministic report."""
    requested = set(sites) if sites is not None else set(SITES)
    unknown = requested - set(SITES)
    if unknown:
        raise ValueError(
            f"unknown injection site(s): {', '.join(sorted(unknown))}"
        )
    drills = [
        availability_drill(seed, requested, scale),
        backpressure_drill(seed, scale),
        breaker_drill(seed, requested, scale),
        drain_resume_drill(seed, scale),
    ]
    violations = sum(len(drill.violations) for drill in drills)
    return {
        "schema": SERVICE_CHAOS_SCHEMA,
        "seed": seed,
        "scale": scale,
        "sites": sorted(requested),
        "drills": [drill.to_json() for drill in drills],
        "violations": violations,
        "ok": violations == 0,
    }


def render_service_report(report: dict) -> str:
    """The human-readable summary printed by ``repro chaos --service``."""
    lines = [
        f"SERVICE CHAOS — seed={report['seed']} "
        f"scale={report['scale']:g} sites={len(report['sites'])}"
    ]
    for drill in report["drills"]:
        if drill["skipped"]:
            status = "SKIP"
        else:
            status = "ok" if drill["ok"] else "FAIL"
        lines.append(f"  [{status:>4}] {drill['name']}")
        for violation in drill["violations"]:
            lines.append(f"         - {violation}")
    verdict = (
        "availability SLO held"
        if report["ok"]
        else f"{report['violations']} violation(s)"
    )
    lines.append(f"  {verdict}")
    return "\n".join(lines)
