"""Fenced, heartbeat-renewed job leases for the replicated service tier.

Every job in a cluster is *owned* by exactly one replica at a time, and
ownership is a **lease**: a small on-disk record carrying the owner, an
expiry instant, and a **fencing token** drawn from a cluster-wide
monotonic counter.  The three rules that make crash failover safe:

- **acquire/adopt** always issues a *fresh, strictly larger* token, so
  the token order totally orders every ownership change of every job;
- **renewal** (the heartbeat) succeeds only while the on-disk token still
  matches the holder's — a replica that was paused long enough for its
  lease to expire and be adopted discovers the loss on its next
  heartbeat (:class:`LeaseLostError`) instead of writing anyway;
- **commit-time fencing** — the shared result store rejects any commit
  carrying a token smaller than the job's current one
  (:mod:`repro.service.ledger`), so even a writer that never heartbeats
  again cannot double-commit a cell it no longer owns.

Expiry uses the repository's budget convention: a lease is expired the
instant ``now >= expires_at`` (boundary inclusive).  Heartbeat pacing is
**deterministically jittered** — each beat's delay is scaled by a factor
drawn from ``sha256(seed:replica:beat)`` — so a replica fleet started
together does not renew in lockstep, yet every schedule reproduces.

All mutations serialize through a single cluster lock file via
``flock``; the OS releases the lock when a holder dies, so a ``kill -9``
mid-operation never wedges the cluster.
"""

from __future__ import annotations

import contextlib
import hashlib
import os
import threading
import time
import urllib.parse
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterator

from repro.runtime.errors import CacheCorruptionError
from repro.runtime.persist import atomic_write_json, load_json
from repro.service.protocol import ServiceError

try:  # POSIX only; the service tier is unix-socket based anyway.
    import fcntl
except ImportError:  # pragma: no cover - non-posix fallback
    fcntl = None  # type: ignore[assignment]

LEASE_SCHEMA = "repro-cluster-lease/1"
"""Stamped into every lease file; bump on any shape change."""

FENCE_SCHEMA = "repro-cluster-fence/1"
"""Schema of the monotonic fencing-token counter file."""


class LeaseError(ServiceError):
    """A lease operation failed (already owned, malformed record, ...)."""

    code = "service.lease"


class LeaseLostError(LeaseError):
    """The caller no longer owns the lease — it expired and was adopted
    (fenced out), or was released.  The only safe reaction is to stop
    writing on the job's behalf."""

    code = "service.lease_lost"


@dataclass(frozen=True)
class Lease:
    """One replica's ownership of one job, as granted at a point in time."""

    job_id: str
    owner: str
    token: int
    expires_at: float

    def to_json(self) -> dict:
        return {
            "job_id": self.job_id,
            "owner": self.owner,
            "token": self.token,
            "expires_at": self.expires_at,
        }

    @classmethod
    def from_json(cls, data: dict) -> "Lease":
        return cls(
            job_id=str(data["job_id"]),
            owner=str(data["owner"]),
            token=int(data["token"]),
            expires_at=float(data["expires_at"]),
        )


@contextlib.contextmanager
def file_lock(path: Path) -> Iterator[None]:
    """A cluster-wide critical section: ``flock`` on a dedicated lock
    file.  Safe across processes *and* threads (each entry opens its own
    descriptor, and distinct descriptors of one process contend like
    distinct processes); released by the OS if the holder dies."""
    path.parent.mkdir(parents=True, exist_ok=True)
    handle = os.open(path, os.O_CREAT | os.O_RDWR, 0o644)
    try:
        if fcntl is not None:
            fcntl.flock(handle, fcntl.LOCK_EX)
        yield
    finally:
        with contextlib.suppress(OSError):
            if fcntl is not None:
                fcntl.flock(handle, fcntl.LOCK_UN)
        os.close(handle)


class LeaseManager:
    """Lease acquisition, renewal, adoption, and expiry scanning over a
    shared cluster directory.

    One instance per replica.  Held leases are mirrored in memory so the
    heartbeat loop knows what to renew, but the on-disk record under the
    cluster lock is always the source of truth.
    """

    def __init__(
        self,
        root: Path,
        replica: str,
        ttl: float = 5.0,
        heartbeat: float | None = None,
        jitter_seed: int = 0,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if ttl <= 0:
            raise ValueError(f"ttl must be > 0, got {ttl}")
        self.root = Path(root)
        self.replica = replica
        self.ttl = float(ttl)
        self.heartbeat = heartbeat if heartbeat is not None else self.ttl / 3.0
        if self.heartbeat <= 0 or self.heartbeat >= self.ttl:
            raise ValueError(
                f"heartbeat must be in (0, ttl), got {self.heartbeat} "
                f"against ttl {self.ttl}"
            )
        self.jitter_seed = jitter_seed
        self.clock = clock
        self._lock_path = self.root / ".cluster.lock"
        self._fence_path = self.root / "fence.json"
        self._lease_dir = self.root / "leases"
        self._held: dict[str, Lease] = {}
        self._held_lock = threading.Lock()
        self.acquired = 0
        self.adopted = 0
        self.lost = 0

    # -- paths ----------------------------------------------------------------

    def _lease_path(self, job_id: str) -> Path:
        safe = urllib.parse.quote(job_id, safe="")
        return self._lease_dir / f"{safe}.json"

    # -- fencing tokens -------------------------------------------------------

    def _next_token_locked(self) -> int:
        """Draw the next fencing token.  Caller holds the cluster lock."""
        token = 0
        if self._fence_path.exists():
            try:
                token = int(load_json(self._fence_path, schema=FENCE_SCHEMA))
            except (CacheCorruptionError, TypeError, ValueError):
                # A corrupt counter must never hand out a *reused* token:
                # recover by scanning live leases for the current maximum.
                token = max(
                    (lease.token for lease in self._scan_locked()), default=0
                )
        token += 1
        atomic_write_json(self._fence_path, token, schema=FENCE_SCHEMA)
        return token

    # -- reads ----------------------------------------------------------------

    def _read_locked(self, job_id: str) -> Lease | None:
        path = self._lease_path(job_id)
        if not path.exists():
            return None
        try:
            return Lease.from_json(load_json(path, schema=LEASE_SCHEMA))
        except (CacheCorruptionError, KeyError, TypeError, ValueError):
            # A torn lease file reads as "no lease": the job becomes
            # adoptable, and fencing at commit time keeps that safe even
            # if the previous owner is still running.
            return None

    def _scan_locked(self) -> list[Lease]:
        leases = []
        if self._lease_dir.exists():
            for path in sorted(self._lease_dir.glob("*.json")):
                try:
                    leases.append(
                        Lease.from_json(load_json(path, schema=LEASE_SCHEMA))
                    )
                except (CacheCorruptionError, KeyError, TypeError, ValueError):
                    continue
        return leases

    def current(self, job_id: str) -> Lease | None:
        """The job's current lease record, if any (expired or not)."""
        with file_lock(self._lock_path):
            return self._read_locked(job_id)

    def is_expired(self, lease: Lease, now: float | None = None) -> bool:
        """Boundary-inclusive: expired the instant ``now == expires_at``."""
        if now is None:
            now = self.clock()
        return now >= lease.expires_at

    # -- ownership changes ----------------------------------------------------

    def acquire(self, job_id: str) -> Lease:
        """Take first ownership of a job (or re-take one this replica
        already holds, refreshing the expiry under a *new* token)."""
        with file_lock(self._lock_path):
            existing = self._read_locked(job_id)
            if (
                existing is not None
                and existing.owner != self.replica
                and not self.is_expired(existing)
            ):
                raise LeaseError(
                    f"job {job_id} is leased to {existing.owner} "
                    f"(token {existing.token})",
                    context={"job_id": job_id, "owner": existing.owner},
                )
            lease = self._grant_locked(job_id)
        self.acquired += 1
        return lease

    def adopt(self, job_id: str) -> Lease:
        """Take over an *orphaned* job: its lease must be missing or
        expired.  Exactly one of several racing adopters wins — the
        losers observe a fresh unexpired lease and raise."""
        with file_lock(self._lock_path):
            existing = self._read_locked(job_id)
            if existing is not None and not self.is_expired(existing):
                raise LeaseError(
                    f"job {job_id} is not orphaned: leased to "
                    f"{existing.owner} (token {existing.token})",
                    context={"job_id": job_id, "owner": existing.owner},
                )
            lease = self._grant_locked(job_id)
        self.adopted += 1
        return lease

    def _grant_locked(self, job_id: str) -> Lease:
        lease = Lease(
            job_id=job_id,
            owner=self.replica,
            token=self._next_token_locked(),
            expires_at=self.clock() + self.ttl,
        )
        atomic_write_json(
            self._lease_path(job_id), lease.to_json(), schema=LEASE_SCHEMA
        )
        with self._held_lock:
            self._held[job_id] = lease
        return lease

    def renew(self, lease: Lease) -> Lease:
        """Extend a held lease.  Raises :class:`LeaseLostError` the moment
        the on-disk token differs — someone fenced us out."""
        with file_lock(self._lock_path):
            existing = self._read_locked(lease.job_id)
            if existing is None or existing.token != lease.token:
                with self._held_lock:
                    self._held.pop(lease.job_id, None)
                self.lost += 1
                raise LeaseLostError(
                    f"lease on {lease.job_id} lost: "
                    + (
                        "record gone"
                        if existing is None
                        else f"fenced by token {existing.token} > {lease.token}"
                    ),
                    context={"job_id": lease.job_id, "token": lease.token},
                )
            renewed = Lease(
                job_id=lease.job_id,
                owner=lease.owner,
                token=lease.token,
                expires_at=self.clock() + self.ttl,
            )
            atomic_write_json(
                self._lease_path(lease.job_id),
                renewed.to_json(),
                schema=LEASE_SCHEMA,
            )
            with self._held_lock:
                self._held[lease.job_id] = renewed
            return renewed

    def release(self, lease: Lease) -> None:
        """Give the lease up (job finished or drained).  A no-op if the
        lease was already fenced away."""
        with file_lock(self._lock_path):
            existing = self._read_locked(lease.job_id)
            if existing is not None and existing.token == lease.token:
                with contextlib.suppress(OSError):
                    self._lease_path(lease.job_id).unlink()
        with self._held_lock:
            self._held.pop(lease.job_id, None)

    # -- scanning -------------------------------------------------------------

    def held(self) -> list[Lease]:
        """This replica's in-memory view of the leases it holds."""
        with self._held_lock:
            return list(self._held.values())

    def held_token(self, job_id: str) -> int | None:
        with self._held_lock:
            lease = self._held.get(job_id)
            return lease.token if lease is not None else None

    def expired_jobs(self) -> list[str]:
        """Job ids whose on-disk lease has expired — adoption candidates."""
        now = self.clock()
        with file_lock(self._lock_path):
            return sorted(
                lease.job_id
                for lease in self._scan_locked()
                if self.is_expired(lease, now)
            )

    # -- heartbeat pacing -----------------------------------------------------

    def heartbeat_delay(self, beat: int) -> float:
        """Delay before heartbeat number ``beat``: the base interval scaled
        by a deterministic factor in [0.5, 1.0) drawn from
        ``sha256(seed:replica:beat)`` — seeded jitter, same contract as
        :class:`repro.runtime.retry.RetryPolicy.jitter_seed`."""
        digest = hashlib.sha256(
            f"{self.jitter_seed}:{self.replica}:{beat}".encode()
        ).digest()
        unit = int.from_bytes(digest[:8], "big") / 2**64
        return self.heartbeat * (0.5 + 0.5 * unit)


class HeartbeatLoop:
    """The background renewal thread one cluster replica runs.

    Each tick renews every held lease; a renewal that raises
    :class:`LeaseLostError` fires ``on_lost(job_id)`` exactly once so the
    daemon can stop trusting its in-flight execution of that job (the
    commit path would fence it anyway — this is the early warning)."""

    def __init__(
        self,
        manager: LeaseManager,
        on_lost: Callable[[str], None] | None = None,
    ) -> None:
        self.manager = manager
        self.on_lost = on_lost
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self.beats = 0

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._run,
            name=f"repro-lease-heartbeat-{self.manager.replica}",
            daemon=True,
        )
        self._thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=timeout)

    def _run(self) -> None:
        beat = 0
        while not self._stop.wait(self.manager.heartbeat_delay(beat)):
            beat += 1
            self.beats = beat
            for lease in self.manager.held():
                if self._stop.is_set():
                    return
                try:
                    self.manager.renew(lease)
                except LeaseLostError:
                    if self.on_lost is not None:
                        self.on_lost(lease.job_id)
                except OSError:  # pragma: no cover - transient fs trouble
                    continue
