"""The wire protocol and job vocabulary of the repair service.

Everything the daemon, the client, the checkpoint file, and the drills
agree on lives here, so the contract is auditable in one place:

- **framing** — one JSON object per line (``\\n``-terminated UTF-8) in
  both directions.  :func:`encode_message` / :func:`decode_message` are
  the only code that touches bytes; a malformed line raises
  :class:`ProtocolError` instead of leaking a ``json`` exception;
- **requests** — ``{"op": ...}`` objects: ``submit``, ``status``,
  ``jobs``, ``stats``, ``ping``, ``drain``;
- **responses** — ``{"type": ...}`` objects: ``ack``, ``reject``
  (admission said no — carries ``retry_after`` seconds, the backpressure
  contract), ``event`` (streamed job-state transitions), ``error``;
- **jobs** — a :class:`JobSpec` names the work (benchmark spec or ad-hoc
  source, techniques, seed, tenant, priority); it serializes to JSON for
  the wire *and* for the drain checkpoint, which is what lets a restarted
  daemon re-hydrate pending jobs bit-for-bit.

The schema stamps follow the repository convention: bump on any shape
change so stale peers and stale checkpoint files fail loudly as version
mismatches instead of misparsing.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Any

from repro.runtime.errors import ReproError

PROTOCOL_SCHEMA = "repro-service/1"
"""Spoken version; the daemon stamps it into every ``ack`` and ``pong``."""

STATE_SCHEMA = "repro-service-state/1"
"""Schema of the drain checkpoint file (pending jobs at shutdown)."""

STORE_SCHEMA = "repro-service-store/1"
"""Schema of the incremental result store the daemon flushes cells to."""

CLUSTER_REPORT_SCHEMA = "repro-cluster-chaos/1"
"""Schema of the ``repro chaos --cluster`` drill report."""


class ServiceError(ReproError):
    """The service layer failed outside any single job."""

    code = "service.error"


class ProtocolError(ReproError):
    """A malformed frame — unparsable line, wrong type, missing field."""

    code = "service.protocol"


class JobState(str, enum.Enum):
    """Lifecycle of one accepted job.  Rejected submissions never become
    jobs — rejection is an admission answer, not a state."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"


TERMINAL_STATES = frozenset(
    {JobState.DONE, JobState.FAILED, JobState.CANCELLED}
)

LLM_TECHNIQUE_PREFIXES = ("Single-Round", "Multi-Round")
"""Technique families whose repair path calls the LLM transport — the set
the LLM circuit breaker gates.  ``Dynamic`` may escalate to LLM rounds,
so it is gated too."""


def uses_llm(technique: str) -> bool:
    """Whether a technique's repair path reaches the LLM client."""
    return technique.startswith(LLM_TECHNIQUE_PREFIXES) or technique == "Dynamic"


@dataclass(frozen=True)
class JobSpec:
    """Everything that *names* one job — the immutable submission payload.

    Serializable both ways so the identical object crosses the wire, the
    drain checkpoint, and the drill's reference re-execution.
    """

    benchmark: str
    """``"arepair"`` / ``"alloy4fun"`` (daemon-loaded corpus) or
    ``"adhoc"`` (the spec source rides in ``source``)."""
    spec_id: str
    techniques: tuple[str, ...]
    seed: int = 0
    tenant: str = "default"
    priority: int = 0
    """Higher runs earlier; ties break longest-first, then FIFO."""
    source: str | None = None
    """Ad-hoc specification text (``benchmark == "adhoc"`` only).  Ad-hoc
    jobs are never cached in the result store — their ids carry no
    content identity."""

    def __post_init__(self) -> None:
        object.__setattr__(self, "techniques", tuple(self.techniques))
        if not self.techniques:
            raise ValueError("a job needs at least one technique")
        if self.benchmark == "adhoc" and self.source is None:
            raise ValueError("adhoc jobs must carry the spec source")

    @property
    def needs_llm(self) -> bool:
        return any(uses_llm(t) for t in self.techniques)

    def to_json(self) -> dict:
        payload: dict[str, Any] = {
            "benchmark": self.benchmark,
            "spec_id": self.spec_id,
            "techniques": list(self.techniques),
            "seed": self.seed,
            "tenant": self.tenant,
            "priority": self.priority,
        }
        if self.source is not None:
            payload["source"] = self.source
        return payload

    @classmethod
    def from_json(cls, data: dict) -> "JobSpec":
        try:
            return cls(
                benchmark=data["benchmark"],
                spec_id=data["spec_id"],
                techniques=tuple(data["techniques"]),
                seed=int(data.get("seed", 0)),
                tenant=str(data.get("tenant", "default")),
                priority=int(data.get("priority", 0)),
                source=data.get("source"),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise ProtocolError(
                f"malformed job spec: {error!r}", context={"data": str(data)[:200]}
            ) from error


@dataclass
class JobRecord:
    """One accepted job's mutable server-side state."""

    job_id: str
    spec: JobSpec
    state: JobState = JobState.QUEUED
    outcomes: dict[str, dict] = field(default_factory=dict)
    """technique -> the cache-shaped cell payload (rep/tm/sm/status/...)."""
    failures: list[dict] = field(default_factory=list)
    """Crash-isolation records from the executor, as JSON payloads."""
    error: str | None = None
    """Why the job FAILED (never set for DONE jobs, however degraded)."""
    from_store: bool = False
    """Every cell was served from the incremental result store — nothing
    executed (the restart-resume fast path)."""
    submitted_at: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None
    adopted: bool = False
    """This replica took the job over from a dead or drained peer (cluster
    mode only) — the cells are still byte-identical, but operators want to
    see failovers."""
    lease_token: int = 0
    """The fencing token under which this replica owns the job (0 outside
    cluster mode)."""

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    @property
    def queue_wait(self) -> float | None:
        """Seconds between admission and execution start — the latency the
        availability SLO bounds at p99."""
        if self.started_at is None:
            return None
        return self.started_at - self.submitted_at

    def summary(self) -> dict:
        """The wire projection (``status`` / ``jobs`` responses)."""
        payload = {
            "job_id": self.job_id,
            "state": self.state.value,
            "spec_id": self.spec.spec_id,
            "benchmark": self.spec.benchmark,
            "tenant": self.spec.tenant,
            "priority": self.spec.priority,
            "techniques": list(self.spec.techniques),
            "from_store": self.from_store,
        }
        if self.adopted:
            payload["adopted"] = True
        if self.error is not None:
            payload["error"] = self.error
        return payload


# -- framing ------------------------------------------------------------------


def encode_message(message: dict) -> bytes:
    """One frame: compact JSON, sorted keys, newline-terminated."""
    return (
        json.dumps(message, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")


def decode_message(line: bytes | str) -> dict:
    """Parse one frame, raising :class:`ProtocolError` on anything that is
    not a single JSON object."""
    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as error:
            raise ProtocolError(f"undecodable frame: {error}") from error
    try:
        message = json.loads(line)
    except json.JSONDecodeError as error:
        raise ProtocolError(
            f"unparsable frame: {error}", context={"line": line[:200]}
        ) from error
    if not isinstance(message, dict):
        raise ProtocolError(
            f"frame must be a JSON object, got {type(message).__name__}"
        )
    return message


# -- response constructors ----------------------------------------------------


def ack_frame(job_id: str, state: JobState) -> dict:
    return {
        "type": "ack",
        "schema": PROTOCOL_SCHEMA,
        "job_id": job_id,
        "state": state.value,
    }


def reject_frame(reason: str, retry_after: float) -> dict:
    """The backpressure answer: *not now* — come back in ``retry_after``
    seconds.  Never buffers, never blocks the submitter."""
    return {
        "type": "reject",
        "schema": PROTOCOL_SCHEMA,
        "reason": reason,
        "retry_after": round(retry_after, 6),
    }


def event_frame(record: JobRecord, **extra: Any) -> dict:
    frame = {
        "type": "event",
        "job_id": record.job_id,
        "state": record.state.value,
    }
    if record.terminal:
        frame["outcomes"] = record.outcomes
        frame["failures"] = record.failures
        frame["from_store"] = record.from_store
        if record.error is not None:
            frame["error"] = record.error
    frame.update(extra)
    return frame


def error_frame(message: str, code: str = "service.error") -> dict:
    return {"type": "error", "code": code, "message": message}
