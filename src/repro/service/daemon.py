""":class:`ReproService` — the asyncio daemon behind ``repro serve``.

One process, three layers:

- an **asyncio front end** accepting line-delimited JSON connections on a
  Unix socket: submissions stream their job's state transitions back on
  the same connection until the terminal event (``done``/``failed``);
- an **admission pipeline** consulted before a job exists: drain state,
  circuit breakers (LLM transport, analyzer), bounded queue, per-tenant
  token buckets — every "no" is an immediate ``reject`` frame with a
  ``retry_after`` hint, never an unbounded buffer;
- the **warm worker pool** (:mod:`repro.service.pool`) executing jobs as
  single-shard runs through the *existing* engine —
  :func:`repro.experiments.executor.execute_shard` with the job's
  deadline riding on ``ShardTask.shard_timeout`` and any chaos plan
  installed exactly as the batch engine installs it, so a service job's
  outcome is bit-identical to the same cell computed by ``run_matrix``.

Durability: completed cells flush incrementally into a :class:`ResultStore`
(atomic, schema-stamped, corruption-tolerant — the same persistence
contract as the matrix cache), and graceful drain (SIGTERM/SIGINT or the
``drain`` op) checkpoints every non-terminal job to a state file.  A
restarted daemon re-enqueues the checkpointed jobs and serves
already-flushed cells from the store, so a kill-and-restart loses nothing
and recomputes nothing it already had — the service-mode mirror of
``run_matrix``'s resume-from-flushed-shards guarantee.

Threading discipline: all job bookkeeping (``_jobs``, watchers, the
store) mutates only on the event-loop thread.  Worker threads hand
results over through a thread-safe deque plus ``call_soon_threadsafe``;
at shutdown the checkpoint path drains that deque synchronously so a
result that landed during the last tick is flushed, not lost.
"""

from __future__ import annotations

import asyncio
import collections
import contextlib
import hashlib
import json
import os
import signal
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro import chaos
from repro.benchmarks.cache import cache_dir, load_benchmark
from repro.benchmarks.faults import FaultySpec
from repro.chaos.plan import FaultPlan
from repro.experiments.executor import (
    ShardTask,
    execute_shard,
    timeout_shard_result,
)
from repro.llm.prompts import RepairHints
from repro.repair import registry
from repro.runtime.errors import CacheCorruptionError
from repro.runtime.guard import capture_failure
from repro.runtime.persist import atomic_write_json, load_json
from repro.service.admission import AdmissionController, QuotaStore
from repro.service.breaker import BreakerConfig, CircuitBreaker
from repro.service.lease import HeartbeatLoop
from repro.service.ledger import (
    ClusterStore,
    DuplicateCommitError,
    StaleWriterError,
)
from repro.service.protocol import (
    PROTOCOL_SCHEMA,
    STATE_SCHEMA,
    STORE_SCHEMA,
    JobRecord,
    JobSpec,
    JobState,
    ProtocolError,
    ServiceError,
    ack_frame,
    decode_message,
    encode_message,
    error_frame,
    event_frame,
    reject_frame,
)

_SIZE_WEIGHT = 1e-6
"""Fallback cost per source character for longest-first dispatch — the
same static proxy :mod:`repro.experiments.schedule` grades last."""


@dataclass(frozen=True)
class ServiceConfig:
    """Everything that defines one daemon instance."""

    socket: str
    benchmark: str = "arepair"
    scale: float = 1.0
    seed: int = 0
    workers: int = 2
    max_queue: int = 64
    bucket_capacity: float = 8.0
    bucket_refill: float = 4.0
    job_timeout: float | None = 30.0
    """Per-job wall-clock deadline, enforced exactly like
    ``RunConfig.shard_timeout``: cooperatively between cells inside the
    worker, and by the pool's wedge watchdog for jobs that stop
    cooperating."""
    state_path: str | None = None
    """Drain checkpoint destination; default ``<socket>.state.json``."""
    use_store: bool = True
    """Flush completed cells to the incremental result store (and serve
    repeat/resumed jobs from it)."""
    static_prune: bool = True
    incremental: bool = True
    """Evaluate repair candidates through the shared incremental solve
    session.  Like ``RunConfig.incremental``, not part of the store recipe:
    the ablation only changes job latency, never cell payloads."""
    canonical: bool = True
    """Deduplicate semantically equivalent candidates before they reach
    the solver.  Like ``incremental``, not part of the store recipe: the
    ablation only changes job latency, never cell payloads."""
    chaos: FaultPlan | None = None
    """Fault-injection plan installed around every job execution and
    store flush — how ``repro chaos --service`` drills the live daemon."""
    breaker: BreakerConfig = field(default_factory=BreakerConfig)
    allow_adhoc: bool = True
    cluster_dir: str | None = None
    """Shared cluster directory.  Set ⇒ this daemon is one replica of a
    fleet: jobs are journaled in the shared ledger, owned via fenced
    leases, committed to the shared store mirror, and rate-limited by
    cluster-wide durable quotas (:mod:`repro.service.ledger`)."""
    replica_id: str | None = None
    """This replica's name in the cluster; default ``r<pid>``."""
    lease_ttl: float = 5.0
    """Seconds a lease lives without renewal before peers may adopt."""
    lease_heartbeat: float | None = None
    """Renewal interval; default ``lease_ttl / 3``."""
    reclaim_interval: float = 0.5
    """How often the health loop scans for orphaned jobs to adopt."""

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.job_timeout is not None and self.job_timeout <= 0:
            raise ValueError(
                f"job_timeout must be > 0, got {self.job_timeout}"
            )
        if self.lease_ttl <= 0:
            raise ValueError(f"lease_ttl must be > 0, got {self.lease_ttl}")
        if self.reclaim_interval <= 0:
            raise ValueError(
                f"reclaim_interval must be > 0, got {self.reclaim_interval}"
            )

    @property
    def clustered(self) -> bool:
        return self.cluster_dir is not None

    def resolved_replica_id(self) -> str:
        if self.replica_id is not None:
            return self.replica_id
        return f"r{os.getpid()}"

    def resolved_state_path(self) -> Path:
        if self.state_path is not None:
            return Path(self.state_path)
        return Path(f"{self.socket}.state.json")


def store_recipe(config: ServiceConfig) -> dict:
    """Everything that changes cell *values* — the key both the local
    :class:`ResultStore` and the shared cluster mirror are filed under, so
    a chaos daemon never poisons (or borrows from) a clean one's store,
    and every replica of one cluster agrees on the file."""
    return {
        "b": config.benchmark,
        "s": config.seed,
        "sc": config.scale,
        "sp": config.static_prune,
        "ch": config.chaos.digest() if config.chaos else None,
    }


class ResultStore:
    """The daemon's incremental cell store.

    Same durability contract as the matrix cache: atomic schema-stamped
    writes, tolerant reads (corruption is a miss, never a crash), timeout
    cells never persisted.  The file is keyed by everything that changes
    cell *values* — benchmark, seed, scale, pruning, chaos digest — so a
    chaos daemon never poisons (or borrows from) a clean one's store.
    """

    def __init__(self, config: ServiceConfig) -> None:
        recipe = store_recipe(config)
        digest = hashlib.sha256(
            json.dumps(recipe, sort_keys=True).encode()
        ).hexdigest()[:12]
        self.path = cache_dir() / (
            f"service-{config.benchmark}-{config.seed}-{digest}.json"
        )
        self._chaos = config.chaos
        self._flushes = 0
        self.cells: dict[str, dict[str, dict]] = {}
        self.events: list[dict] = []
        """Chaos events fired inside flush scopes (``persist.*`` audit)."""
        self.load()

    def load(self) -> None:
        if not self.path.exists():
            return
        try:
            payload = load_json(self.path, schema=STORE_SCHEMA)
            self.cells = {
                spec_id: dict(row) for spec_id, row in payload.items()
            }
        except (CacheCorruptionError, AttributeError):
            # A corrupt store is a miss: start empty, recompute, overwrite.
            self.cells = {}

    def missing(self, spec_id: str, techniques: tuple[str, ...]) -> tuple[str, ...]:
        row = self.cells.get(spec_id, {})
        return tuple(t for t in techniques if t not in row)

    def lookup(self, spec_id: str, technique: str) -> dict | None:
        return self.cells.get(spec_id, {}).get(technique)

    def merge(self, spec_id: str, outcomes: dict) -> None:
        """Fold a shard's outcomes in (``SpecOutcome`` values); timeout
        cells are execution artifacts and stay out, exactly as in
        :func:`repro.experiments.runner._save_outcomes`."""
        row = self.cells.setdefault(spec_id, {})
        for technique, outcome in outcomes.items():
            if outcome.status == "timeout":
                continue
            row[technique] = {
                "rep": outcome.rep,
                "tm": outcome.tm,
                "sm": outcome.sm,
                "status": outcome.status,
                "elapsed": outcome.elapsed,
                "error_code": outcome.error_code,
            }

    def flush(self) -> None:
        """Atomically persist the store.  Runs inside a chaos scope when
        the daemon carries a plan, so the ``persist.*`` sites exercise the
        service's write path too; a corrupted flush is self-healing — the
        next flush rewrites the whole store from memory, and a restart
        treats the damage as a miss."""
        with chaos.install(
            self._chaos, salt=f"store:{self._flushes}"
        ) as scope:
            self._flushes += 1
            atomic_write_json(self.path, self.cells, schema=STORE_SCHEMA)
        if scope is not None:
            self.events.extend(event.to_json() for event in scope.events)


def percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile (the SLO drill's p99 definition)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, int(round(q * len(ordered) + 0.5)))
    return ordered[min(rank, len(ordered)) - 1]


class ReproService:
    """The daemon.  Construct, then ``await serve()`` (or use
    :class:`ServiceHandle` to host it on a background thread)."""

    def __init__(
        self,
        config: ServiceConfig,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.config = config
        self.clock = clock
        self._specs: dict[str, FaultySpec] = {
            spec.spec_id: spec
            for spec in load_benchmark(
                config.benchmark, seed=config.seed, scale=config.scale
            )
        }
        self.replica_id = config.resolved_replica_id()
        self.cluster: ClusterStore | None = None
        self._heartbeat: HeartbeatLoop | None = None
        quota_store: QuotaStore | None = None
        if config.clustered:
            # The shared mirror replaces the local store: two replicas
            # must never race last-write-wins on one local store file.
            assert config.cluster_dir is not None
            self.cluster = ClusterStore(
                Path(config.cluster_dir),
                self.replica_id,
                store_recipe(config),
                ttl=config.lease_ttl,
                heartbeat=config.lease_heartbeat,
                jitter_seed=config.seed,
                chaos_plan=config.chaos,
            )
            self._heartbeat = HeartbeatLoop(
                self.cluster.leases, on_lost=self._on_lease_lost
            )
            quota_store = QuotaStore(Path(config.cluster_dir))
        self.store = (
            ResultStore(config)
            if config.use_store and not config.clustered
            else None
        )
        self.admission = AdmissionController(
            max_queue=config.max_queue,
            bucket_capacity=config.bucket_capacity,
            bucket_refill=config.bucket_refill,
            clock=clock,
            quota_store=quota_store,
        )
        self.breakers = {
            "llm": CircuitBreaker("llm", config.breaker, clock=clock),
            "analyzer": CircuitBreaker("analyzer", config.breaker, clock=clock),
        }
        from repro.service.pool import WorkerPool

        self.pool = WorkerPool(
            workers=config.workers,
            runner=self._execute,
            on_result=self._post_result,
            deadline=config.job_timeout,
        )
        self._jobs: dict[str, JobRecord] = {}
        self._watchers: dict[str, list[asyncio.Queue]] = {}
        self._results: collections.deque = collections.deque()
        self._seq = 0
        self.chaos_events: list[dict] = []
        """Every injected fault that fired in job executions (chaos
        daemons only) — the drill's audit trail, merged with the store's
        flush-scope events by :meth:`all_chaos_events`."""
        self._draining = False
        self._loop: asyncio.AbstractEventLoop | None = None
        self._done: asyncio.Event | None = None
        self.started = threading.Event()
        self.resumed_jobs = 0
        """Jobs re-enqueued from the drain checkpoint at startup."""
        self.adopted_jobs = 0
        """Orphaned cluster jobs this replica took over."""
        self.lease_losses = 0
        """Held leases the heartbeat discovered were fenced away."""
        self.state_corruptions = 0
        """Corrupt/truncated drain checkpoints survived at startup."""
        self.state_failures: list[dict] = []
        """The :class:`FailureRecord` payloads behind those corruptions."""

    # -- public surface -------------------------------------------------------

    @property
    def jobs(self) -> dict[str, JobRecord]:
        return self._jobs

    def jobs_corpus_ids(self) -> list[str]:
        """Spec ids of the loaded benchmark corpus."""
        return list(self._specs)

    def all_chaos_events(self) -> list[dict]:
        """Job-execution plus store-flush fault events (audit trail)."""
        events = list(self.chaos_events)
        if self.store is not None:
            events.extend(self.store.events)
        return events

    @property
    def draining(self) -> bool:
        return self._draining

    async def serve(self) -> None:
        """Run until drained (signal or ``drain`` op)."""
        self._loop = asyncio.get_running_loop()
        self._done = asyncio.Event()
        self._install_signal_handlers()
        if self.cluster is None:
            # Cluster replicas have no private checkpoint: the shared
            # ledger *is* the durable state, and peers adopt drained jobs.
            self._resume_from_checkpoint()
        socket_path = Path(self.config.socket)
        if socket_path.exists():
            socket_path.unlink()
        server = await asyncio.start_unix_server(
            self._handle_connection, path=str(socket_path)
        )
        if self._heartbeat is not None:
            self._heartbeat.start()
        health = asyncio.ensure_future(self._health_loop())
        self.started.set()
        try:
            await self._done.wait()
        finally:
            health.cancel()
            server.close()
            await server.wait_closed()
            if self._heartbeat is not None:
                self._heartbeat.stop()
            self._checkpoint()
            self.pool.stop()
            with contextlib.suppress(OSError):
                socket_path.unlink()

    async def request_drain(self, grace: float = 5.0) -> None:
        """Graceful shutdown: stop admitting, give running jobs ``grace``
        seconds to land, then checkpoint everything non-terminal."""
        if self._draining:
            return
        self._draining = True
        deadline = time.monotonic() + grace
        while self.pool.running() > 0 and time.monotonic() < deadline:
            await asyncio.sleep(0.02)
        assert self._done is not None
        self._done.set()

    # -- submission path ------------------------------------------------------

    def submit(
        self, spec: JobSpec, job_id: str | None = None, admitted: bool = False
    ) -> tuple[JobRecord | None, dict]:
        """Admit (or reject) one submission.  Loop-thread only.

        ``admitted`` bypasses the admission gates — the restart-resume
        path, where the job was admitted by a previous incarnation and
        rejecting it now would *lose* it.
        """
        if not admitted:
            frame = self._gate(spec)
            if frame is not None:
                return None, frame
        if spec.benchmark not in ("adhoc", self.config.benchmark):
            return None, error_frame(
                f"this daemon serves {self.config.benchmark!r}, "
                f"not {spec.benchmark!r}",
                code="service.wrong_benchmark",
            )
        if spec.benchmark == "adhoc" and not self.config.allow_adhoc:
            return None, error_frame(
                "ad-hoc jobs are disabled", code="service.adhoc_disabled"
            )
        if spec.benchmark != "adhoc" and spec.spec_id not in self._specs:
            return None, error_frame(
                f"unknown spec {spec.spec_id!r}", code="service.unknown_spec"
            )
        unknown = [t for t in spec.techniques if not registry.is_registered(t)]
        if unknown:
            return None, error_frame(
                f"unknown technique(s): {', '.join(unknown)}",
                code="service.unknown_technique",
            )
        if job_id is None:
            self._seq += 1
            job_id = (
                f"job-{self.replica_id}-{self._seq:06d}"
                if self.config.clustered
                else f"job-{self._seq:06d}"
            )
        record = JobRecord(
            job_id=job_id, spec=spec, submitted_at=self.clock()
        )
        self._jobs[job_id] = record
        if self.cluster is not None:
            # Journal the submission and take the lease in one atomic
            # cluster-lock step: the job is durable before it is acked.
            lease = self.cluster.register(job_id, spec.to_json())
            record.lease_token = lease.token
            if spec.benchmark != "adhoc":
                row = self.cluster.lookup(spec.spec_id)
                if all(t in row for t in spec.techniques):
                    # Shared-mirror fast path: every cell already
                    # committed by some replica.
                    record.from_store = True
                    record.started_at = record.finished_at = (
                        record.submitted_at
                    )
                    record.outcomes = {
                        t: dict(row[t]) for t in spec.techniques
                    }
                    record.state = JobState.DONE
                    with contextlib.suppress(
                        StaleWriterError, DuplicateCommitError
                    ):
                        self.cluster.commit(
                            job_id,
                            spec.spec_id,
                            record.outcomes,
                            lease.token,
                            executed=False,
                        )
                    self._publish(record)
                    return record, ack_frame(job_id, record.state)
        elif (
            self.store is not None
            and spec.benchmark != "adhoc"
            and not self.store.missing(spec.spec_id, spec.techniques)
        ):
            # Restart-resume fast path: every cell already flushed — the
            # job completes without touching the pool.
            record.from_store = True
            record.started_at = record.finished_at = record.submitted_at
            record.outcomes = {
                t: dict(self.store.lookup(spec.spec_id, t) or {})
                for t in spec.techniques
            }
            record.state = JobState.DONE
            self._publish(record)
            return record, ack_frame(job_id, record.state)
        self.pool.submit(
            record, priority=spec.priority, cost=self._cost(spec)
        )
        return record, ack_frame(job_id, record.state)

    def _gate(self, spec: JobSpec) -> dict | None:
        """The rejection pipeline: drain, breakers, queue, rate limit."""
        if self._draining:
            return reject_frame("draining", 1.0)
        if spec.needs_llm and not self.breakers["llm"].allow():
            return reject_frame(
                "breaker_open:llm",
                max(self.breakers["llm"].retry_after(), 0.1),
            )
        if not self.breakers["analyzer"].allow():
            return reject_frame(
                "breaker_open:analyzer",
                max(self.breakers["analyzer"].retry_after(), 0.1),
            )
        verdict = self.admission.admit(spec.tenant, self.pool.queued())
        if not verdict.admitted:
            return reject_frame(verdict.reason, verdict.retry_after)
        return None

    def _cost(self, spec: JobSpec) -> float:
        """Longest-first estimate: historical per-cell seconds from the
        store when available, else the source-size proxy."""
        if spec.benchmark != "adhoc":
            if self.cluster is not None:
                row = self.cluster.lookup(spec.spec_id)
            elif self.store is not None:
                row = self.store.cells.get(spec.spec_id, {})
            else:
                row = {}
            known = sum(cell.get("elapsed", 0.0) for cell in row.values())
            if known > 0:
                return known
        source = spec.source
        if source is None:
            faulty = self._specs.get(spec.spec_id)
            source = faulty.faulty_source if faulty is not None else ""
        return len(source) * _SIZE_WEIGHT

    # -- execution (worker threads) -------------------------------------------

    def _faulty_spec(self, spec: JobSpec) -> FaultySpec:
        if spec.benchmark != "adhoc":
            return self._specs[spec.spec_id]
        assert spec.source is not None
        return FaultySpec(
            spec_id=spec.spec_id,
            benchmark="adhoc",
            domain="adhoc",
            model_name=spec.spec_id,
            faulty_source=spec.source,
            truth_source=spec.source,
            fault_description="",
            depth=0,
            hints=RepairHints(),
        )

    def _task_for(self, record: JobRecord, techniques: tuple[str, ...]) -> ShardTask:
        return ShardTask(
            spec=self._faulty_spec(record.spec),
            techniques=techniques,
            seed=record.spec.seed,
            static_prune=self.config.static_prune,
            incremental=self.config.incremental,
            canonical=self.config.canonical,
            shard_timeout=self.config.job_timeout,
            chaos=self.config.chaos,
        )

    def _execute(self, record: JobRecord):
        """Worker-thread entry: run the job's missing cells as one shard."""
        self._mark_running(record)
        techniques = record.spec.techniques
        if record.spec.benchmark != "adhoc":
            if self.cluster is not None:
                self.cluster.mark_running(
                    record.job_id, record.lease_token
                )
                techniques = self.cluster.missing(
                    record.spec.spec_id, record.spec.techniques
                )
            elif self.store is not None:
                techniques = self.store.missing(
                    record.spec.spec_id, record.spec.techniques
                )
        elif self.cluster is not None:
            self.cluster.mark_running(record.job_id, record.lease_token)
        if not techniques:
            return None  # everything landed in the store since admission
        return execute_shard(self._task_for(record, techniques))

    def _mark_running(self, record: JobRecord) -> None:
        started = self.clock()

        def mark() -> None:
            if record.terminal:  # the wedge watchdog won the race
                return
            record.started_at = started
            record.state = JobState.RUNNING
            self._publish(record)

        self._call_on_loop(mark)

    def _post_result(self, record, result, error) -> None:
        """Worker-thread exit: hand the result to the loop thread."""
        self._results.append((record, result, error))
        self._call_on_loop(self._drain_results)

    def _call_on_loop(self, callback) -> None:
        loop = self._loop
        if loop is None:
            callback()
            return
        try:
            loop.call_soon_threadsafe(callback)
        except RuntimeError:
            # Loop already closed (shutdown race): the checkpoint path
            # drains the deque synchronously, nothing is lost.
            pass

    # -- completion (loop thread) ---------------------------------------------

    def _drain_results(self) -> None:
        while self._results:
            record, result, error = self._results.popleft()
            self._finish_job(record, result, error)

    def _finish_job(self, record: JobRecord, result, error) -> None:
        if record.terminal:
            return  # late result for a job the watchdog already settled
        record.finished_at = self.clock()
        if record.started_at is None:
            record.started_at = record.finished_at
        if error is not None:
            message = f"[{type(error).__name__}] {error}"
            if self.cluster is not None:
                try:
                    self.cluster.commit_failed(
                        record.job_id, record.lease_token, message
                    )
                except (StaleWriterError, DuplicateCommitError):
                    self._settle_from_ledger(record)
                    return
            record.state = JobState.FAILED
            record.error = message
            self._publish(record)
            return
        if result is not None:
            self.chaos_events.extend(result.chaos_events)
            if self.store is not None and record.spec.benchmark != "adhoc":
                self.store.merge(record.spec.spec_id, result.outcomes)
                self.store.flush()
            record.failures = [f.to_json() for f in result.failures]
            self._feed_breakers(record, result)
        record.outcomes = self._assemble_outcomes(record, result)
        if self.cluster is not None:
            # The at-most-once boundary: a stale or duplicate commit is
            # rejected under the cluster lock, and the record settles
            # from whatever the winning replica committed instead.
            try:
                self.cluster.commit(
                    record.job_id,
                    record.spec.spec_id,
                    record.outcomes,
                    record.lease_token,
                    executed=result is not None,
                    chaos_events=(
                        [e for e in result.chaos_events]
                        if result is not None
                        else []
                    ),
                    merge_store=record.spec.benchmark != "adhoc",
                )
            except (StaleWriterError, DuplicateCommitError):
                self._settle_from_ledger(record)
                return
        record.state = JobState.DONE
        self._publish(record)

    def _settle_from_ledger(self, record: JobRecord) -> None:
        """This replica's commit was fenced or duplicate: the job belongs
        to (or was finished by) another replica.  Settle the local record
        from the ledger so watchers still get the committed — and
        therefore byte-identical — payload."""
        assert self.cluster is not None
        view = self.cluster.fold().jobs.get(record.job_id)
        if view is not None and view.terminal:
            self._apply_ledger_terminal(record, view)
            return
        if self._loop is not None and not self._loop.is_closed():
            try:
                self._loop.create_task(self._await_ledger_terminal(record))
                return
            except RuntimeError:  # pragma: no cover - shutdown race
                pass
        # No loop to wait on (shutdown): leave the record non-terminal;
        # the drain journaling hands the job to the surviving replicas.

    def _apply_ledger_terminal(self, record: JobRecord, view) -> None:
        if record.terminal:
            return
        record.finished_at = self.clock()
        if record.started_at is None:
            record.started_at = record.finished_at
        if view.state == "done":
            record.outcomes = {
                t: dict(cell) for t, cell in view.outcomes.items()
            }
            record.state = JobState.DONE
        else:
            record.state = JobState.FAILED
            record.error = view.error or "failed on another replica"
        self._publish(record)

    async def _await_ledger_terminal(self, record: JobRecord) -> None:
        assert self.cluster is not None
        while not record.terminal:
            await asyncio.sleep(0.05)
            view = self.cluster.fold().jobs.get(record.job_id)
            if view is not None and view.terminal:
                self._apply_ledger_terminal(record, view)
                return

    def _assemble_outcomes(self, record: JobRecord, result) -> dict:
        """Cell payloads for every requested technique: fresh results
        first, store cells for anything computed earlier."""
        cells: dict[str, dict] = {}
        fresh = result.outcomes if result is not None else {}
        mirror: dict = {}
        if self.cluster is not None and record.spec.benchmark != "adhoc":
            mirror = self.cluster.lookup(record.spec.spec_id)
        for technique in record.spec.techniques:
            outcome = fresh.get(technique)
            if outcome is not None:
                cells[technique] = {
                    "rep": outcome.rep,
                    "tm": outcome.tm,
                    "sm": outcome.sm,
                    "status": outcome.status,
                    "elapsed": outcome.elapsed,
                    "error_code": outcome.error_code,
                }
                continue
            stored = mirror.get(technique)
            if stored is None and self.store is not None:
                stored = self.store.lookup(record.spec.spec_id, technique)
            if stored is not None:
                cells[technique] = dict(stored)
        return cells

    def _feed_breakers(self, record: JobRecord, result) -> None:
        """Classified-error routing: llm.* feeds the LLM breaker;
        analyzer/solver/spec classes feed the analyzer breaker; healthy
        cells count as successes on every breaker their path crossed."""
        llm = self.breakers["llm"]
        analyzer = self.breakers["analyzer"]

        def route(code: str | None) -> None:
            if code is None:
                return
            if code.startswith("llm."):
                llm.record_failure(code)
            elif code.startswith(("analysis.", "solver.", "spec.")):
                analyzer.record_failure(code)

        for failure in result.failures:
            route(failure.code)
        from repro.service.protocol import uses_llm

        for technique, outcome in result.outcomes.items():
            if outcome.status in ("error", "crashed"):
                route(outcome.error_code)
            elif outcome.status != "timeout":
                analyzer.record_success()
                if uses_llm(technique):
                    llm.record_success()

    def _publish(self, record: JobRecord) -> None:
        queues = self._watchers.get(record.job_id, [])
        frame = event_frame(record)
        for queue in list(queues):
            queue.put_nowait(frame)

    # -- health ---------------------------------------------------------------

    async def _health_loop(self) -> None:
        last_reclaim = time.monotonic()
        while True:
            await asyncio.sleep(0.1)
            self._reap_wedged()
            if (
                self.cluster is not None
                and time.monotonic() - last_reclaim
                >= self.config.reclaim_interval
            ):
                last_reclaim = time.monotonic()
                self._reclaim_orphans()

    def _on_lease_lost(self, job_id: str) -> None:
        """Heartbeat callback (heartbeat thread): a held lease was fenced
        away.  Only counted — the commit path enforces the fence."""
        self.lease_losses += 1

    def _reclaim_orphans(self) -> None:
        """Adopt every orphaned cluster job (expired lease, drained, or
        torn submission) and run it through the same ``execute_shard``
        path, so a failed-over cell is byte-identical to an
        uninterrupted one."""
        assert self.cluster is not None
        if self._draining:
            return
        for job_id, payload, lease in self.cluster.adopt_orphans():
            try:
                spec = JobSpec.from_json(payload)
            except ProtocolError:
                continue
            record = self._jobs.get(job_id)
            if record is not None and record.terminal:
                continue
            if record is None:
                record = JobRecord(
                    job_id=job_id, spec=spec, submitted_at=self.clock()
                )
                self._jobs[job_id] = record
            record.adopted = True
            record.lease_token = lease.token
            self.adopted_jobs += 1
            self.pool.submit(
                record, priority=spec.priority, cost=self._cost(spec)
            )

    def _reap_wedged(self) -> None:
        for record in self.pool.reap_wedged():
            techniques = record.spec.techniques
            task = self._task_for(record, techniques)
            allowance = self.pool.allowance()
            result = timeout_shard_result(
                task,
                f"service worker for {record.job_id} exceeded the "
                f"{allowance:g}s watchdog allowance; worker replaced",
            )
            self._finish_job(record, result, None)

    # -- durability -----------------------------------------------------------

    def _checkpoint(self) -> None:
        """Flush the store and write every non-terminal job to the state
        file — the drain half of the kill-and-resume contract.

        Cluster replicas have no private state file: the handoff is a
        ``drained`` journal record plus a lease release per pending job,
        and the surviving replicas' reclaim scans adopt them.
        """
        self._drain_results()
        self.pool.drain_pending()
        pending_records = [
            record for record in self._jobs.values() if not record.terminal
        ]
        if self.cluster is not None:
            self.cluster.drain([r.job_id for r in pending_records])
            return
        pending = [
            {"job_id": record.job_id, "spec": record.spec.to_json()}
            for record in pending_records
        ]
        state_path = self.config.resolved_state_path()
        if pending:
            atomic_write_json(
                state_path, {"jobs": pending}, schema=STATE_SCHEMA
            )
        else:
            with contextlib.suppress(OSError):
                state_path.unlink()
        if self.store is not None:
            self.store.flush()

    def _resume_from_checkpoint(self) -> None:
        """Re-enqueue every checkpointed job, bypassing admission (they
        were admitted by the previous incarnation)."""
        state_path = self.config.resolved_state_path()
        if not state_path.exists():
            return
        try:
            payload = load_json(state_path, schema=STATE_SCHEMA)
            entries = list(payload["jobs"])
        except (CacheCorruptionError, KeyError, TypeError) as error:
            # Corruption is a miss, never a crash: an unreadable
            # checkpoint must not block startup.  Record the loss — it
            # surfaces in `repro jobs --stats` — and start fresh; the
            # jobs it held will be resubmitted by their clients.
            self.state_corruptions += 1
            self.state_failures.append(
                capture_failure("service.resume", error).to_json()
            )
            with contextlib.suppress(OSError):
                state_path.unlink()
            return
        with contextlib.suppress(OSError):
            state_path.unlink()
        for entry in entries:
            try:
                spec = JobSpec.from_json(entry["spec"])
                job_id = str(entry["job_id"])
            except (ProtocolError, KeyError, TypeError):
                continue
            self.submit(spec, job_id=job_id, admitted=True)
            self.resumed_jobs += 1
            seq = job_id.removeprefix("job-")
            if seq.isdigit():
                self._seq = max(self._seq, int(seq))

    # -- wire front end -------------------------------------------------------

    def _install_signal_handlers(self) -> None:
        assert self._loop is not None
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                self._loop.add_signal_handler(
                    signum,
                    lambda: asyncio.ensure_future(self.request_drain()),
                )
            except (ValueError, NotImplementedError, RuntimeError):
                # Not the main thread (test/drill hosting): the harness
                # calls request_drain() directly instead.
                return

    async def _handle_connection(self, reader, writer) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    return
                try:
                    message = decode_message(line)
                except ProtocolError as error:
                    await self._send(
                        writer, error_frame(str(error), code=error.code)
                    )
                    continue
                try:
                    await self._dispatch(message, writer)
                except (ConnectionError, BrokenPipeError):
                    return
                except Exception as error:  # noqa: BLE001 - connection guard
                    await self._send(
                        writer,
                        error_frame(f"{type(error).__name__}: {error}"),
                    )
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _send(self, writer, frame: dict) -> None:
        writer.write(encode_message(frame))
        await writer.drain()

    async def _dispatch(self, message: dict, writer) -> None:
        op = message.get("op")
        if op == "ping":
            pong = {
                "type": "pong",
                "schema": PROTOCOL_SCHEMA,
                "benchmark": self.config.benchmark,
                "draining": self._draining,
                "replica": self.replica_id,
            }
            if self.config.clustered:
                pong["cluster_dir"] = self.config.cluster_dir
            await self._send(writer, pong)
        elif op == "submit":
            await self._op_submit(message, writer)
        elif op == "status":
            await self._op_status(message, writer)
        elif op == "jobs":
            await self._send(
                writer,
                {
                    "type": "jobs",
                    "jobs": [
                        record.summary()
                        for _, record in sorted(self._jobs.items())
                    ],
                },
            )
        elif op == "stats":
            await self._send(writer, {"type": "stats", "stats": self.stats()})
        elif op == "drain":
            grace = float(message.get("grace", 5.0))
            asyncio.ensure_future(self.request_drain(grace))
            await self._send(writer, {"type": "draining"})
        else:
            await self._send(
                writer,
                error_frame(f"unknown op {op!r}", code="service.protocol"),
            )

    async def _op_submit(self, message: dict, writer) -> None:
        try:
            spec = JobSpec.from_json(message.get("job", {}))
        except (ProtocolError, ValueError) as error:
            await self._send(
                writer, error_frame(str(error), code="service.protocol")
            )
            return
        record, frame = self.submit(spec)
        await self._send(writer, frame)
        if record is None or not message.get("watch", True):
            return
        if record.terminal:
            await self._send(writer, event_frame(record))
            return
        queue: asyncio.Queue = asyncio.Queue()
        self._watchers.setdefault(record.job_id, []).append(queue)
        try:
            while True:
                frame = await queue.get()
                await self._send(writer, frame)
                if frame.get("state") in ("done", "failed", "cancelled"):
                    return
        finally:
            watchers = self._watchers.get(record.job_id, [])
            if queue in watchers:
                watchers.remove(queue)
            if not watchers:
                self._watchers.pop(record.job_id, None)

    async def _op_status(self, message: dict, writer) -> None:
        job_id = message.get("job_id")
        record = self._jobs.get(job_id) if isinstance(job_id, str) else None
        if record is None:
            frame = (
                self._ledger_status(job_id)
                if self.cluster is not None and isinstance(job_id, str)
                else None
            )
            if frame is None:
                frame = error_frame(
                    f"unknown job {job_id!r}", code="service.unknown_job"
                )
            await self._send(writer, frame)
            return
        frame = {"type": "status", **record.summary()}
        if record.terminal:
            frame["outcomes"] = record.outcomes
            frame["failures"] = record.failures
        await self._send(writer, frame)

    _LEDGER_STATES = {
        "submitted": "queued",
        "leased": "queued",
        "drained": "queued",
        "running": "running",
        "done": "done",
        "failed": "failed",
    }

    def _ledger_status(self, job_id: str) -> dict | None:
        """Answer ``status`` for a job this replica never saw locally, from
        the shared ledger — what lets a failed-over client finish its
        watch against any surviving replica."""
        assert self.cluster is not None
        view = self.cluster.fold().jobs.get(job_id)
        if view is None:
            return None
        frame = {
            "type": "status",
            "job_id": job_id,
            "state": self._LEDGER_STATES.get(view.state, "queued"),
            "from_ledger": True,
        }
        if view.adoptions:
            frame["adopted"] = True
        if view.state == "done":
            frame["outcomes"] = {
                t: dict(cell) for t, cell in view.outcomes.items()
            }
            frame["failures"] = []
            frame["from_store"] = not view.executed
        elif view.state == "failed":
            frame["error"] = view.error
        return frame

    # -- introspection --------------------------------------------------------

    def stats(self) -> dict:
        states: dict[str, int] = {}
        waits: list[float] = []
        for record in self._jobs.values():
            states[record.state.value] = states.get(record.state.value, 0) + 1
            wait = record.queue_wait
            if wait is not None:
                waits.append(wait)
        stats = {
            "benchmark": self.config.benchmark,
            "draining": self._draining,
            "queued": self.pool.queued(),
            "running": self.pool.running(),
            "jobs_by_state": dict(sorted(states.items())),
            "resumed_jobs": self.resumed_jobs,
            "state_corruptions": self.state_corruptions,
            "state_failures": list(self.state_failures),
            "admission": self.admission.snapshot(),
            "breakers": {
                name: breaker.snapshot()
                for name, breaker in sorted(self.breakers.items())
            },
            "pool": {
                "executed": self.pool.executed,
                "wedged": self.pool.wedged,
                "replaced": self.pool.replaced,
                "workers": self.pool.health(),
            },
            "queue_wait": {
                "count": len(waits),
                "p50": round(percentile(waits, 0.50), 6),
                "p99": round(percentile(waits, 0.99), 6),
            },
        }
        if self.cluster is not None:
            stats["cluster"] = {
                **self.cluster.snapshot(),
                "adopted_jobs": self.adopted_jobs,
                "lease_losses": self.lease_losses,
                "heartbeats": (
                    self._heartbeat.beats
                    if self._heartbeat is not None
                    else 0
                ),
            }
        return stats


class ServiceHandle:
    """Host a daemon on a background thread — the harness used by tests,
    the drills, and the self-contained load generator.

    ``repro serve`` does *not* use this: the CLI runs the daemon on the
    main thread so real SIGTERM/SIGINT reach the loop's signal handlers.
    """

    def __init__(self, service: ReproService, thread: threading.Thread) -> None:
        self.service = service
        self.thread = thread

    @classmethod
    def start(
        cls,
        config: ServiceConfig,
        clock: Callable[[], float] = time.monotonic,
        timeout: float = 60.0,
    ) -> "ServiceHandle":
        service = ReproService(config, clock=clock)
        thread = threading.Thread(
            target=lambda: asyncio.run(service.serve()),
            name="repro-service-host",
            daemon=True,
        )
        thread.start()
        if not service.started.wait(timeout=timeout):
            raise ServiceError("service failed to start listening")
        return cls(service, thread)

    @property
    def socket(self) -> str:
        return self.service.config.socket

    def drain(self, grace: float = 5.0, timeout: float = 60.0) -> None:
        loop = self.service._loop
        assert loop is not None
        future = asyncio.run_coroutine_threadsafe(
            self.service.request_drain(grace), loop
        )
        future.result(timeout=timeout)
        self.thread.join(timeout=timeout)
        if self.thread.is_alive():
            raise ServiceError("service thread failed to stop after drain")
