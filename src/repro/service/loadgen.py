"""Load generator: hundreds of synthetic clients against one daemon.

The proof harness behind the service's robustness claims.  ``run_load``
hosts a daemon in-process (or targets an already-running socket), spawns
``clients`` well-behaved client threads — each submits its share of jobs,
honors every ``retry_after`` hint, and records what came back — then
cross-checks the fleet's ledger against the server's:

- **no lost jobs**: every accepted submission reached a terminal state
  and its terminal event carried a cell for every requested technique;
- **no silent drops**: accepted + rejected == attempted, and every
  rejection carried a positive ``retry_after``;
- **bounded latency**: the server's p99 queue wait is reported so the
  drill (and CI) can assert the SLO.

Job mix: clients cycle the benchmark corpus with varied tenants and
priorities, so admission control, per-tenant buckets, and the
priority/longest-first queue all see realistic contention.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field, replace

from repro.repair import registry
from repro.service.client import ServiceClient, SubmitOutcome
from repro.service.daemon import ServiceConfig, ServiceHandle
from repro.service.protocol import JobSpec

DEFAULT_TECHNIQUES = ("ATR", "Single-Round_Pass")
"""A cheap traditional + an LLM-path technique: exercises both breakers
without making a load run take minutes."""


@dataclass
class ClientLedger:
    """What one synthetic client saw."""

    attempted: int = 0
    accepted: int = 0
    done: int = 0
    failed: int = 0
    gave_up: int = 0
    rejections: dict[str, int] = field(default_factory=dict)
    bad_retry_after: int = 0
    """Rejections whose retry_after hint was absent or non-positive."""
    incomplete: list[str] = field(default_factory=list)
    """Job ids whose terminal event was missing requested cells."""
    errors: list[str] = field(default_factory=list)


def _client_worker(
    ledger: ClientLedger,
    client: ServiceClient,
    jobs: list[JobSpec],
    max_attempts: int,
) -> None:
    for spec in jobs:
        ledger.attempted += 1
        try:
            outcome = client.submit_retrying(
                spec, watch=True, max_attempts=max_attempts
            )
        except Exception as error:  # noqa: BLE001 - ledger, not crash
            ledger.errors.append(f"{spec.spec_id}: {type(error).__name__}: {error}")
            continue
        for rejection in outcome.rejections:
            reason = rejection.get("reason", "?")
            ledger.rejections[reason] = ledger.rejections.get(reason, 0) + 1
            if float(rejection.get("retry_after", 0.0)) <= 0.0:
                ledger.bad_retry_after += 1
        if not outcome.accepted:
            ledger.gave_up += 1
            continue
        ledger.accepted += 1
        if outcome.state == "done":
            ledger.done += 1
            missing = [t for t in spec.techniques if t not in outcome.outcomes]
            if missing:
                ledger.incomplete.append(
                    f"{outcome.job_id}: missing {','.join(missing)}"
                )
        else:
            ledger.failed += 1


def plan_jobs(
    spec_ids: list[str],
    benchmark: str,
    clients: int,
    jobs_per_client: int,
    techniques: tuple[str, ...],
    seed: int,
) -> list[list[JobSpec]]:
    """The deterministic job mix: client *i* draws specs round-robin from
    an offset, alternates across three tenants, and raises priority on
    every fourth job so the queue orders under contention."""
    assignments: list[list[JobSpec]] = []
    for c in range(clients):
        jobs = []
        for j in range(jobs_per_client):
            spec_id = spec_ids[(c * jobs_per_client + j) % len(spec_ids)]
            jobs.append(
                JobSpec(
                    benchmark=benchmark,
                    spec_id=spec_id,
                    techniques=techniques,
                    seed=seed,
                    tenant=f"tenant-{c % 3}",
                    priority=1 if (c + j) % 4 == 0 else 0,
                )
            )
        assignments.append(jobs)
    return assignments


def run_load(
    config: ServiceConfig,
    clients: int = 50,
    jobs_per_client: int = 2,
    techniques: tuple[str, ...] = DEFAULT_TECHNIQUES,
    max_attempts: int = 60,
    handle: ServiceHandle | None = None,
    replicas: int = 1,
) -> dict:
    """Drive a client fleet and return the availability ledger.

    With ``handle`` the fleet targets an existing daemon (and leaves it
    running); otherwise a daemon is hosted for the duration and drained
    at the end.  With ``replicas > 1`` a cluster of that many daemons is
    hosted against a shared cluster directory, the client fleet is spread
    round-robin across the replica sockets (each client keeps the full
    ring for failover), and the result ledger reports per-replica
    availability.
    """
    for technique in techniques:
        if not registry.is_registered(technique):
            raise ValueError(f"unknown technique {technique!r}")
    if replicas < 1:
        raise ValueError(f"replicas must be >= 1, got {replicas}")
    if replicas > 1 and handle is not None:
        raise ValueError("a replica fleet is always self-hosted")
    owned = handle is None
    handles: list[ServiceHandle]
    if handle is not None:
        handles = [handle]
    elif replicas == 1:
        handles = [ServiceHandle.start(config)]
    else:
        cluster_dir = config.cluster_dir or f"{config.socket}.cluster"
        handles = [
            ServiceHandle.start(
                replace(
                    config,
                    socket=f"{config.socket}.{i}",
                    cluster_dir=cluster_dir,
                    replica_id=f"r{i}",
                )
            )
            for i in range(replicas)
        ]
    service = handles[0].service
    sockets = [h.socket for h in handles]
    spec_ids = sorted(service.jobs_corpus_ids())
    fleet: list[ServiceClient] = []
    try:
        assignments = plan_jobs(
            spec_ids,
            config.benchmark,
            clients,
            jobs_per_client,
            techniques,
            config.seed,
        )
        ledgers = [ClientLedger() for _ in range(clients)]
        for c in range(clients):
            # Spread primaries round-robin; keep the whole ring so a
            # client fails over when its primary dies or drains.
            start = c % len(sockets)
            fleet.append(
                ServiceClient(
                    sockets[start:] + sockets[:start], retry_seed=c
                )
            )
        threads = [
            threading.Thread(
                target=_client_worker,
                args=(ledgers[c], fleet[c], assignments[c], max_attempts),
                name=f"loadgen-c{c}",
                daemon=True,
            )
            for c in range(clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stats = ServiceClient(handles[0].socket).stats()
        replica_stats = (
            [ServiceClient(h.socket).stats() for h in handles]
            if len(handles) > 1
            else [stats]
        )
    finally:
        if owned:
            for h in reversed(handles):
                h.drain()
    total = ClientLedger()
    for ledger in ledgers:
        total.attempted += ledger.attempted
        total.accepted += ledger.accepted
        total.done += ledger.done
        total.failed += ledger.failed
        total.gave_up += ledger.gave_up
        total.bad_retry_after += ledger.bad_retry_after
        total.incomplete.extend(ledger.incomplete)
        total.errors.extend(ledger.errors)
        for reason, count in ledger.rejections.items():
            total.rejections[reason] = total.rejections.get(reason, 0) + count
    lost = total.accepted - total.done - total.failed
    per_replica = []
    for i, h in enumerate(handles):
        mine = [
            ledgers[c] for c in range(clients) if c % len(sockets) == i
        ]
        per_replica.append(
            {
                "replica": h.service.replica_id,
                "socket": sockets[i],
                "clients": len(mine),
                "attempted": sum(l.attempted for l in mine),
                "accepted": sum(l.accepted for l in mine),
                "done": sum(l.done for l in mine),
                "failed": sum(l.failed for l in mine),
                "jobs_by_state": replica_stats[i].get("jobs_by_state", {}),
                "adopted_jobs": replica_stats[i]
                .get("cluster", {})
                .get("adopted_jobs", 0),
            }
        )
    return {
        "clients": clients,
        "jobs_per_client": jobs_per_client,
        "replica_count": len(handles),
        "replicas": per_replica,
        "client_failovers": sum(cl.failovers for cl in fleet),
        "client_reconnects": sum(cl.reconnects for cl in fleet),
        "attempted": total.attempted,
        "accepted": total.accepted,
        "done": total.done,
        "failed": total.failed,
        "gave_up": total.gave_up,
        "lost": lost,
        "rejections": dict(sorted(total.rejections.items())),
        "bad_retry_after": total.bad_retry_after,
        "incomplete": sorted(total.incomplete),
        "client_errors": sorted(total.errors),
        "server": {
            "queue_wait": stats.get("queue_wait", {}),
            "breakers": {
                name: snap.get("state")
                for name, snap in stats.get("breakers", {}).items()
            },
            "pool": {
                "executed": stats.get("pool", {}).get("executed"),
                "wedged": stats.get("pool", {}).get("wedged"),
            },
        },
        "ok": (
            lost == 0
            and not total.incomplete
            and not total.errors
            and total.bad_retry_after == 0
        ),
    }
