"""Blocking client for the repair service — ``repro submit`` and friends.

A deliberately small synchronous wrapper over the line-JSON protocol: one
socket, one request, read frames until done.  The retry loop in
:meth:`ServiceClient.submit_retrying` implements the client half of the
backpressure contract — honor ``retry_after`` exactly, never hammer — and
is what the load generator drives at fleet scale.
"""

from __future__ import annotations

import socket
import time
from dataclasses import dataclass, field

from repro.service.protocol import (
    JobSpec,
    ProtocolError,
    ServiceError,
    decode_message,
    encode_message,
)


@dataclass
class SubmitOutcome:
    """What one submission attempt (or retry loop) produced."""

    accepted: bool
    job_id: str | None = None
    state: str | None = None
    """Terminal state when watched to completion (``done``/``failed``)."""
    outcomes: dict = field(default_factory=dict)
    failures: list = field(default_factory=list)
    from_store: bool = False
    error: str | None = None
    rejections: list[dict] = field(default_factory=list)
    """Every ``reject`` frame seen along the way (reason + retry_after)."""

    @property
    def rejected(self) -> bool:
        return not self.accepted


class ServiceClient:
    """One connection-per-request client for a daemon socket."""

    def __init__(self, socket_path: str, timeout: float = 120.0) -> None:
        self.socket_path = socket_path
        self.timeout = timeout

    # -- transport ------------------------------------------------------------

    def _connect(self) -> socket.socket:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self.timeout)
        try:
            sock.connect(self.socket_path)
        except OSError as error:
            sock.close()
            raise ServiceError(
                f"cannot reach service at {self.socket_path}: {error}",
                context={"socket": self.socket_path},
            ) from error
        return sock

    def _request(self, message: dict, n_frames: int = 1) -> list[dict]:
        """Send one frame, read ``n_frames`` responses, close."""
        with self._connect() as sock:
            sock.sendall(encode_message(message))
            reader = sock.makefile("rb")
            return [self._read_frame(reader) for _ in range(n_frames)]

    @staticmethod
    def _read_frame(reader) -> dict:
        line = reader.readline()
        if not line:
            raise ServiceError("service closed the connection mid-response")
        return decode_message(line)

    # -- operations -----------------------------------------------------------

    def ping(self) -> dict:
        return self._request({"op": "ping"})[0]

    def jobs(self) -> list[dict]:
        frame = self._request({"op": "jobs"})[0]
        return frame.get("jobs", [])

    def stats(self) -> dict:
        return self._request({"op": "stats"})[0].get("stats", {})

    def status(self, job_id: str) -> dict:
        return self._request({"op": "status", "job_id": job_id})[0]

    def drain(self, grace: float = 5.0) -> dict:
        return self._request({"op": "drain", "grace": grace})[0]

    def submit(self, spec: JobSpec, watch: bool = True) -> SubmitOutcome:
        """One submission attempt.  With ``watch`` the connection stays
        open streaming state events until the terminal frame."""
        with self._connect() as sock:
            sock.sendall(
                encode_message(
                    {"op": "submit", "job": spec.to_json(), "watch": watch}
                )
            )
            reader = sock.makefile("rb")
            first = self._read_frame(reader)
            if first.get("type") == "reject":
                return SubmitOutcome(accepted=False, rejections=[first])
            if first.get("type") == "error":
                raise ServiceError(
                    first.get("message", "submission failed"),
                    context={"code": first.get("code")},
                )
            if first.get("type") != "ack":
                raise ProtocolError(
                    f"expected ack, got {first.get('type')!r}"
                )
            outcome = SubmitOutcome(
                accepted=True,
                job_id=first.get("job_id"),
                state=first.get("state"),
            )
            if not watch:
                return outcome
            while True:
                frame = self._read_frame(reader)
                if frame.get("type") != "event":
                    continue
                outcome.state = frame.get("state")
                if outcome.state in ("done", "failed", "cancelled"):
                    outcome.outcomes = frame.get("outcomes", {})
                    outcome.failures = frame.get("failures", [])
                    outcome.from_store = bool(frame.get("from_store"))
                    outcome.error = frame.get("error")
                    return outcome

    def submit_retrying(
        self,
        spec: JobSpec,
        watch: bool = True,
        max_attempts: int = 40,
        max_wait: float = 2.0,
        sleep=time.sleep,
    ) -> SubmitOutcome:
        """The well-behaved client loop: on ``reject``, wait the hinted
        ``retry_after`` (capped at ``max_wait``) and try again.

        Gives up after ``max_attempts`` rejections, returning the rejected
        outcome with the full rejection history — the load generator
        counts those instead of raising.
        """
        rejections: list[dict] = []
        for _ in range(max_attempts):
            outcome = self.submit(spec, watch=watch)
            if outcome.accepted:
                outcome.rejections = rejections + outcome.rejections
                return outcome
            rejections.extend(outcome.rejections)
            hint = outcome.rejections[-1].get("retry_after", 0.1)
            sleep(min(max(float(hint), 0.01), max_wait))
        return SubmitOutcome(accepted=False, rejections=rejections)
