"""Blocking client for the repair service — ``repro submit`` and friends.

A deliberately small synchronous wrapper over the line-JSON protocol: one
socket, one request, read frames until done.  The retry loop in
:meth:`ServiceClient.submit_retrying` implements the client half of the
backpressure contract — honor ``retry_after`` exactly, never hammer — and
is what the load generator drives at fleet scale.

Replication makes transport failure routine rather than fatal, so the
client carries two recovery behaviours (both deterministic under
``retry_seed``, following the :class:`~repro.runtime.retry.RetryPolicy`
jitter contract):

- **failover** — constructed with several socket paths, it rotates to the
  next live replica whenever connecting to the current one fails;
- **mid-stream reconnect** — if a watched submission's event stream dies
  (the daemon was killed), the client falls back to polling ``status``
  with seeded exponential backoff until the job reaches a terminal state
  on *some* replica, instead of surfacing a raw ``ConnectionError``.
"""

from __future__ import annotations

import hashlib
import socket
import time
from dataclasses import dataclass, field
from typing import Iterable

from repro.service.protocol import (
    JobSpec,
    ProtocolError,
    ServiceError,
    decode_message,
    encode_message,
)


@dataclass
class SubmitOutcome:
    """What one submission attempt (or retry loop) produced."""

    accepted: bool
    job_id: str | None = None
    state: str | None = None
    """Terminal state when watched to completion (``done``/``failed``)."""
    outcomes: dict = field(default_factory=dict)
    failures: list = field(default_factory=list)
    from_store: bool = False
    error: str | None = None
    rejections: list[dict] = field(default_factory=list)
    """Every ``reject`` frame seen along the way (reason + retry_after)."""
    reconnected: bool = False
    """The watch stream died and the outcome was recovered via ``status``
    polls (possibly against a different replica)."""

    @property
    def rejected(self) -> bool:
        return not self.accepted


class ServiceClient:
    """One connection-per-request client for one or more daemon sockets."""

    def __init__(
        self,
        socket_path: str | Iterable[str],
        timeout: float = 120.0,
        retry_seed: int = 0,
        reconnect_attempts: int = 60,
        sleep=time.sleep,
    ) -> None:
        if isinstance(socket_path, str):
            paths: tuple[str, ...] = (socket_path,)
        else:
            paths = tuple(socket_path)
        if not paths:
            raise ValueError("need at least one socket path")
        self.socket_paths = paths
        self.timeout = timeout
        self.retry_seed = retry_seed
        self.reconnect_attempts = reconnect_attempts
        self._sleep = sleep
        self._active = 0
        self.failovers = 0
        """Times the active socket rotated to another replica."""
        self.reconnects = 0
        """Times a dead watch stream was recovered via status polling."""

    @property
    def socket_path(self) -> str:
        """The socket currently preferred (kept for single-socket callers)."""
        return self.socket_paths[self._active]

    # -- transport ------------------------------------------------------------

    def _backoff(self, attempt: int) -> float:
        """Seeded exponential backoff: base doubling capped at 1s, scaled
        by a deterministic factor in [0.5, 1.0) — same contract as
        :class:`repro.runtime.retry.RetryPolicy` with ``jitter_seed``."""
        digest = hashlib.sha256(
            f"{self.retry_seed}:{attempt}".encode()
        ).digest()
        unit = int.from_bytes(digest[:8], "big") / 2**64
        return min(1.0, 0.05 * (2 ** min(attempt, 5))) * (0.5 + 0.5 * unit)

    def _connect(self) -> socket.socket:
        """Connect to the active replica, failing over across the ring;
        raises only when *every* socket refuses."""
        last_error: OSError | None = None
        for offset in range(len(self.socket_paths)):
            index = (self._active + offset) % len(self.socket_paths)
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.timeout)
            try:
                sock.connect(self.socket_paths[index])
            except OSError as error:
                sock.close()
                last_error = error
                continue
            if offset:
                self._active = index
                self.failovers += 1
            return sock
        raise ServiceError(
            f"cannot reach service at any of {list(self.socket_paths)}: "
            f"{last_error}",
            context={"sockets": list(self.socket_paths)},
        ) from last_error

    def _request(self, message: dict, n_frames: int = 1) -> list[dict]:
        """Send one frame, read ``n_frames`` responses, close."""
        with self._connect() as sock:
            sock.sendall(encode_message(message))
            reader = sock.makefile("rb")
            return [self._read_frame(reader) for _ in range(n_frames)]

    def _request_reconnecting(self, message: dict) -> dict:
        """One request, retried with seeded backoff while the transport is
        down — ``repro jobs`` against a restarting daemon waits it out
        instead of dying on the first refused connect."""
        last: ServiceError | None = None
        for attempt in range(self.reconnect_attempts):
            try:
                return self._request(message)[0]
            except ServiceError as error:
                last = error
                self._sleep(self._backoff(attempt))
        raise ServiceError(
            f"service unreachable after {self.reconnect_attempts} attempts: "
            f"{last}",
            context={"sockets": list(self.socket_paths)},
        ) from last

    @staticmethod
    def _read_frame(reader) -> dict:
        line = reader.readline()
        if not line:
            raise ServiceError("service closed the connection mid-response")
        return decode_message(line)

    # -- operations -----------------------------------------------------------

    def ping(self) -> dict:
        return self._request_reconnecting({"op": "ping"})

    def jobs(self) -> list[dict]:
        frame = self._request_reconnecting({"op": "jobs"})
        return frame.get("jobs", [])

    def stats(self) -> dict:
        return self._request_reconnecting({"op": "stats"}).get("stats", {})

    def status(self, job_id: str) -> dict:
        return self._request_reconnecting({"op": "status", "job_id": job_id})

    def drain(self, grace: float = 5.0) -> dict:
        return self._request({"op": "drain", "grace": grace})[0]

    def submit(self, spec: JobSpec, watch: bool = True) -> SubmitOutcome:
        """One submission attempt.  With ``watch`` the connection stays
        open streaming state events until the terminal frame; if the
        stream dies after the ack, the outcome is recovered via status
        polling rather than raised as a transport error."""
        outcome: SubmitOutcome | None = None
        try:
            with self._connect() as sock:
                sock.sendall(
                    encode_message(
                        {"op": "submit", "job": spec.to_json(), "watch": watch}
                    )
                )
                reader = sock.makefile("rb")
                first = self._read_frame(reader)
                if first.get("type") == "reject":
                    return SubmitOutcome(accepted=False, rejections=[first])
                if first.get("type") == "error":
                    raise ServiceError(
                        first.get("message", "submission failed"),
                        context={"code": first.get("code")},
                    )
                if first.get("type") != "ack":
                    raise ProtocolError(
                        f"expected ack, got {first.get('type')!r}"
                    )
                outcome = SubmitOutcome(
                    accepted=True,
                    job_id=first.get("job_id"),
                    state=first.get("state"),
                )
                if not watch:
                    return outcome
                while True:
                    frame = self._read_frame(reader)
                    if frame.get("type") != "event":
                        continue
                    outcome.state = frame.get("state")
                    if outcome.state in ("done", "failed", "cancelled"):
                        outcome.outcomes = frame.get("outcomes", {})
                        outcome.failures = frame.get("failures", [])
                        outcome.from_store = bool(frame.get("from_store"))
                        outcome.error = frame.get("error")
                        return outcome
        except (ServiceError, OSError) as error:
            if outcome is None or outcome.job_id is None or not watch:
                raise
            # The daemon died (or was killed) mid-stream.  The job was
            # acked, so *some* replica owns it — recover by polling.
            return self._watch_via_status(outcome, error)

    def _watch_via_status(
        self, outcome: SubmitOutcome, cause: Exception
    ) -> SubmitOutcome:
        self.reconnects += 1
        outcome.reconnected = True
        assert outcome.job_id is not None
        unknown = 0
        for attempt in range(self.reconnect_attempts):
            self._sleep(self._backoff(attempt))
            try:
                frame = self._request(
                    {"op": "status", "job_id": outcome.job_id}
                )[0]
            except (ServiceError, OSError):
                continue
            if frame.get("type") == "error":
                # A restarted or peer replica may briefly not know the
                # job until it replays the ledger / adopts it.
                unknown += 1
                continue
            outcome.state = frame.get("state")
            if outcome.state in ("done", "failed", "cancelled"):
                outcome.outcomes = frame.get("outcomes", {})
                outcome.failures = frame.get("failures", [])
                outcome.from_store = bool(frame.get("from_store"))
                outcome.error = frame.get("error")
                return outcome
        raise ServiceError(
            f"watch stream for {outcome.job_id} died ({cause}) and "
            f"{self.reconnect_attempts} status polls did not reach a "
            f"terminal state ({unknown} answered unknown-job)",
            context={"job_id": outcome.job_id},
        ) from cause

    def submit_retrying(
        self,
        spec: JobSpec,
        watch: bool = True,
        max_attempts: int = 40,
        max_wait: float = 2.0,
        sleep=time.sleep,
    ) -> SubmitOutcome:
        """The well-behaved client loop: on ``reject``, wait the hinted
        ``retry_after`` (capped at ``max_wait``) and try again.

        Gives up after ``max_attempts`` rejections, returning the rejected
        outcome with the full rejection history — the load generator
        counts those instead of raising.
        """
        rejections: list[dict] = []
        for _ in range(max_attempts):
            outcome = self.submit(spec, watch=watch)
            if outcome.accepted:
                outcome.rejections = rejections + outcome.rejections
                return outcome
            rejections.extend(outcome.rejections)
            hint = outcome.rejections[-1].get("retry_after", 0.1)
            sleep(min(max(float(hint), 0.01), max_wait))
        return SubmitOutcome(accepted=False, rejections=rejections)
