"""Admission control: bounded queues and per-tenant token buckets.

The service's backpressure contract is *reject with retry-after*, never
*buffer without bound*: an overloaded daemon answers immediately with how
long to wait, so client fleets spread out instead of piling onto a queue
that grows until memory dies.  Two gates run in order:

1. **queue bound** — a hard cap on queued (not-yet-running) jobs.  Full
   queue → ``queue_full`` with a depth-scaled retry hint;
2. **tenant token bucket** — each tenant draws from a bucket refilled at
   a steady rate, so one chatty tenant cannot starve the rest.  Empty
   bucket → ``rate_limited`` with the exact time until the next token.

Like the breakers, the clock is injected so tests and drills are
deterministic: with a fake clock the whole controller is a pure function
of the call sequence.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

_HORIZON = 3600.0
"""Cap on any retry-after answer: an unrefillable bucket still gets a
finite (if discouraging) hint instead of infinity, which would be
meaningless on the wire."""


class TokenBucket:
    """The standard leaky-bucket limiter with an injected clock."""

    def __init__(
        self,
        capacity: float,
        refill_rate: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be > 0, got {capacity}")
        if refill_rate < 0:
            raise ValueError(f"refill_rate must be >= 0, got {refill_rate}")
        self.capacity = float(capacity)
        self.refill_rate = float(refill_rate)
        self._clock = clock
        self._tokens = float(capacity)
        self._updated = clock()

    def _refill(self) -> None:
        now = self._clock()
        elapsed = max(0.0, now - self._updated)
        self._updated = now
        if self.refill_rate > 0:
            self._tokens = min(
                self.capacity, self._tokens + elapsed * self.refill_rate
            )

    def acquire(self, cost: float = 1.0) -> float:
        """Try to take ``cost`` tokens.  Returns 0.0 on success, else the
        seconds until the bucket will hold enough (capped at an hour)."""
        self._refill()
        if self._tokens >= cost:
            self._tokens -= cost
            return 0.0
        deficit = cost - self._tokens
        if self.refill_rate <= 0:
            return _HORIZON
        return min(_HORIZON, deficit / self.refill_rate)

    @property
    def available(self) -> float:
        self._refill()
        return self._tokens


@dataclass(frozen=True)
class Admission:
    """One admission verdict."""

    admitted: bool
    reason: str = ""
    """``queue_full`` | ``rate_limited`` | ``""`` when admitted."""
    retry_after: float = 0.0


class AdmissionController:
    """The two-gate admission pipeline the daemon consults per submit."""

    def __init__(
        self,
        max_queue: int = 64,
        bucket_capacity: float = 8.0,
        bucket_refill: float = 4.0,
        queue_retry_after: float = 0.25,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        self.max_queue = max_queue
        self.bucket_capacity = bucket_capacity
        self.bucket_refill = bucket_refill
        self.queue_retry_after = queue_retry_after
        self._clock = clock
        self._buckets: dict[str, TokenBucket] = {}
        self.admitted = 0
        self.rejected: dict[str, int] = {}

    def bucket_for(self, tenant: str) -> TokenBucket:
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = TokenBucket(
                self.bucket_capacity, self.bucket_refill, clock=self._clock
            )
            self._buckets[tenant] = bucket
        return bucket

    def admit(self, tenant: str, queue_depth: int) -> Admission:
        """Gate one submission given the current queued-job count.

        Order matters: the queue bound is checked *before* the bucket so a
        full queue never consumes the tenant's tokens — a rejected client
        retries with its budget intact.
        """
        if queue_depth >= self.max_queue:
            # Scale the hint with how far over capacity we are: deeper
            # backlogs disperse retries further.
            hint = self.queue_retry_after * max(
                1.0, queue_depth / self.max_queue
            )
            return self._reject("queue_full", hint)
        wait = self.bucket_for(tenant).acquire()
        if wait > 0:
            return self._reject("rate_limited", wait)
        self.admitted += 1
        return Admission(admitted=True)

    def _reject(self, reason: str, retry_after: float) -> Admission:
        self.rejected[reason] = self.rejected.get(reason, 0) + 1
        return Admission(admitted=False, reason=reason, retry_after=retry_after)

    def snapshot(self) -> dict:
        return {
            "max_queue": self.max_queue,
            "admitted": self.admitted,
            "rejected": dict(sorted(self.rejected.items())),
            "tenants": sorted(self._buckets),
        }
