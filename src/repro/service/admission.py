"""Admission control: bounded queues and per-tenant token buckets.

The service's backpressure contract is *reject with retry-after*, never
*buffer without bound*: an overloaded daemon answers immediately with how
long to wait, so client fleets spread out instead of piling onto a queue
that grows until memory dies.  Two gates run in order:

1. **queue bound** — a hard cap on queued (not-yet-running) jobs.  Full
   queue → ``queue_full`` with a depth-scaled retry hint;
2. **tenant token bucket** — each tenant draws from a bucket refilled at
   a steady rate, so one chatty tenant cannot starve the rest.  Empty
   bucket → ``rate_limited`` with the exact time until the next token.

Like the breakers, the clock is injected so tests and drills are
deterministic: with a fake clock the whole controller is a pure function
of the call sequence.

In cluster mode the buckets move out of process memory into a
:class:`QuotaStore` — one schema-stamped file in the shared cluster
directory, mutated under the cluster lock — so a tenant's budget survives
replica restarts and is enforced across the whole fleet: N replicas
draining one bucket admit no more than one replica would.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from repro.runtime.errors import CacheCorruptionError
from repro.runtime.persist import atomic_write_json, load_json
from repro.service.lease import file_lock

QUOTA_SCHEMA = "repro-cluster-quota/1"
"""Schema of the shared per-tenant quota file; bump on shape change."""

_HORIZON = 3600.0
"""Cap on any retry-after answer: an unrefillable bucket still gets a
finite (if discouraging) hint instead of infinity, which would be
meaningless on the wire."""


class TokenBucket:
    """The standard leaky-bucket limiter with an injected clock."""

    def __init__(
        self,
        capacity: float,
        refill_rate: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be > 0, got {capacity}")
        if refill_rate < 0:
            raise ValueError(f"refill_rate must be >= 0, got {refill_rate}")
        self.capacity = float(capacity)
        self.refill_rate = float(refill_rate)
        self._clock = clock
        self._tokens = float(capacity)
        self._updated = clock()

    def _refill(self) -> None:
        now = self._clock()
        elapsed = max(0.0, now - self._updated)
        self._updated = now
        if self.refill_rate > 0:
            self._tokens = min(
                self.capacity, self._tokens + elapsed * self.refill_rate
            )

    def acquire(self, cost: float = 1.0) -> float:
        """Try to take ``cost`` tokens.  Returns 0.0 on success, else the
        seconds until the bucket will hold enough (capped at an hour)."""
        self._refill()
        if self._tokens >= cost:
            self._tokens -= cost
            return 0.0
        deficit = cost - self._tokens
        if self.refill_rate <= 0:
            return _HORIZON
        return min(_HORIZON, deficit / self.refill_rate)

    @property
    def available(self) -> float:
        self._refill()
        return self._tokens


class QuotaStore:
    """Tenant bucket levels persisted in the shared cluster directory.

    The file holds ``{tenant: {"tokens": float, "updated": float}}``
    against the **wall clock** (cluster state cannot use a process-local
    monotonic clock).  Reads tolerate corruption as a miss — a torn write
    resets tenants to full buckets, which admits at most one burst more
    than intended and never wedges admission.
    """

    def __init__(
        self,
        root: Path,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.root = Path(root)
        self.path = self.root / "quotas.json"
        self._lock_path = self.root / ".cluster.lock"
        self.clock = clock
        self.resets = 0

    def _load_locked(self) -> dict:
        if not self.path.exists():
            return {}
        try:
            payload = load_json(self.path, schema=QUOTA_SCHEMA)
            return {str(t): dict(row) for t, row in payload.items()}
        except (CacheCorruptionError, AttributeError):
            self.resets += 1
            return {}

    def debit(
        self,
        tenant: str,
        cost: float,
        capacity: float,
        refill_rate: float,
    ) -> float:
        """Refill-then-debit one tenant's bucket atomically cluster-wide.

        Returns 0.0 on success, else seconds until enough tokens exist —
        the same contract as :meth:`TokenBucket.acquire`.
        """
        now = self.clock()
        with file_lock(self._lock_path):
            quotas = self._load_locked()
            row = quotas.get(tenant, {})
            tokens = float(row.get("tokens", capacity))
            updated = float(row.get("updated", now))
            elapsed = max(0.0, now - updated)
            if refill_rate > 0:
                tokens = min(capacity, tokens + elapsed * refill_rate)
            if tokens >= cost:
                tokens -= cost
                wait = 0.0
            elif refill_rate <= 0:
                wait = _HORIZON
            else:
                wait = min(_HORIZON, (cost - tokens) / refill_rate)
            quotas[tenant] = {"tokens": round(tokens, 9), "updated": now}
            atomic_write_json(self.path, quotas, schema=QUOTA_SCHEMA)
        return wait

    def available(self, tenant: str, capacity: float) -> float:
        with file_lock(self._lock_path):
            row = self._load_locked().get(tenant)
        if row is None:
            return capacity
        return float(row.get("tokens", capacity))

    def snapshot(self) -> dict:
        with file_lock(self._lock_path):
            quotas = self._load_locked()
        return {
            "tenants": sorted(quotas),
            "resets": self.resets,
        }


class SharedTokenBucket:
    """A :class:`TokenBucket`-shaped view over one tenant's row in a
    :class:`QuotaStore` — what :class:`AdmissionController` hands out in
    cluster mode."""

    def __init__(
        self,
        store: QuotaStore,
        tenant: str,
        capacity: float,
        refill_rate: float,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be > 0, got {capacity}")
        if refill_rate < 0:
            raise ValueError(f"refill_rate must be >= 0, got {refill_rate}")
        self.store = store
        self.tenant = tenant
        self.capacity = float(capacity)
        self.refill_rate = float(refill_rate)

    def acquire(self, cost: float = 1.0) -> float:
        return self.store.debit(
            self.tenant, cost, self.capacity, self.refill_rate
        )

    @property
    def available(self) -> float:
        return self.store.available(self.tenant, self.capacity)


@dataclass(frozen=True)
class Admission:
    """One admission verdict."""

    admitted: bool
    reason: str = ""
    """``queue_full`` | ``rate_limited`` | ``""`` when admitted."""
    retry_after: float = 0.0


class AdmissionController:
    """The two-gate admission pipeline the daemon consults per submit."""

    def __init__(
        self,
        max_queue: int = 64,
        bucket_capacity: float = 8.0,
        bucket_refill: float = 4.0,
        queue_retry_after: float = 0.25,
        clock: Callable[[], float] = time.monotonic,
        quota_store: QuotaStore | None = None,
    ) -> None:
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        self.max_queue = max_queue
        self.bucket_capacity = bucket_capacity
        self.bucket_refill = bucket_refill
        self.queue_retry_after = queue_retry_after
        self._clock = clock
        self.quota_store = quota_store
        self._buckets: dict[str, TokenBucket | SharedTokenBucket] = {}
        self.admitted = 0
        self.rejected: dict[str, int] = {}

    def bucket_for(self, tenant: str) -> TokenBucket | SharedTokenBucket:
        bucket = self._buckets.get(tenant)
        if bucket is None:
            if self.quota_store is not None:
                bucket = SharedTokenBucket(
                    self.quota_store,
                    tenant,
                    self.bucket_capacity,
                    self.bucket_refill,
                )
            else:
                bucket = TokenBucket(
                    self.bucket_capacity, self.bucket_refill, clock=self._clock
                )
            self._buckets[tenant] = bucket
        return bucket

    def admit(self, tenant: str, queue_depth: int) -> Admission:
        """Gate one submission given the current queued-job count.

        Order matters: the queue bound is checked *before* the bucket so a
        full queue never consumes the tenant's tokens — a rejected client
        retries with its budget intact.
        """
        if queue_depth >= self.max_queue:
            # Scale the hint with how far over capacity we are: deeper
            # backlogs disperse retries further.
            hint = self.queue_retry_after * max(
                1.0, queue_depth / self.max_queue
            )
            return self._reject("queue_full", hint)
        wait = self.bucket_for(tenant).acquire()
        if wait > 0:
            return self._reject("rate_limited", wait)
        self.admitted += 1
        return Admission(admitted=True)

    def _reject(self, reason: str, retry_after: float) -> Admission:
        self.rejected[reason] = self.rejected.get(reason, 0) + 1
        return Admission(admitted=False, reason=reason, retry_after=retry_after)

    def snapshot(self) -> dict:
        snap = {
            "max_queue": self.max_queue,
            "admitted": self.admitted,
            "rejected": dict(sorted(self.rejected.items())),
            "tenants": sorted(self._buckets),
        }
        if self.quota_store is not None:
            snap["durable_quotas"] = self.quota_store.snapshot()
        return snap
