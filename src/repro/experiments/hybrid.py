"""Table II / Figure 4 reproduction: hybrid traditional + LLM combinations.

For each of the 32 (traditional, LLM) pairs the study reports the individual
repair counts, their overlap, and the union — the repair capability of the
hybrid.  The Venn diagrams of Figure 4 are rendered as text triples.

Beyond the paper's set-union analysis, :func:`sequential_hybrid` implements
the *pipeline* hybrid the discussion section proposes: run the traditional
tool's fault localization, feed the location to the LLM as a Loc hint, and
let the multi-round loop refine — a genuinely integrated combination.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.paper_values import PAPER_TABLE2
from repro.experiments.runner import ResultMatrix
from repro.repair.registry import MULTI_ROUND, SINGLE_ROUND, TRADITIONAL


@dataclass(frozen=True)
class HybridCell:
    """One Venn diagram: a traditional tool paired with an LLM technique."""

    traditional: str
    llm: str
    traditional_repairs: int
    llm_repairs: int
    overlap: int

    @property
    def union(self) -> int:
        return self.traditional_repairs + self.llm_repairs - self.overlap

    @property
    def unique_traditional(self) -> int:
        return self.traditional_repairs - self.overlap

    @property
    def unique_llm(self) -> int:
        return self.llm_repairs - self.overlap


@dataclass
class HybridAnalysis:
    """All 32 hybrid combinations over the combined benchmarks."""

    cells: dict[tuple[str, str], HybridCell]
    total_specs: int

    def best(self) -> HybridCell:
        return max(self.cells.values(), key=lambda c: c.union)


def compute_hybrid(matrices: list[ResultMatrix]) -> HybridAnalysis:
    repaired: dict[str, set[str]] = {}
    total = 0
    for matrix in matrices:
        total += len(matrix.specs)
        for technique in TRADITIONAL + SINGLE_ROUND + MULTI_ROUND:
            bucket = repaired.setdefault(technique, set())
            for spec_id in matrix.repaired_ids(technique):
                bucket.add(f"{matrix.benchmark}:{spec_id}")
    cells: dict[tuple[str, str], HybridCell] = {}
    for traditional in TRADITIONAL:
        for llm in SINGLE_ROUND + MULTI_ROUND:
            trad_set = repaired[traditional]
            llm_set = repaired[llm]
            cells[(traditional, llm)] = HybridCell(
                traditional=traditional,
                llm=llm,
                traditional_repairs=len(trad_set),
                llm_repairs=len(llm_set),
                overlap=len(trad_set & llm_set),
            )
    return HybridAnalysis(cells=cells, total_specs=total)


def render_table2(analysis: HybridAnalysis) -> str:
    """Text rendering of Table II with paper values scaled alongside."""
    lines = [
        "Table II — hybrid repair capabilities (measured)",
        f"Total specifications: {analysis.total_specs}",
        "",
        f"{'traditional':<10}{'llm':<24}{'trad':>6}{'llm':>6}"
        f"{'overlap':>9}{'union':>7}{'paper-union(scaled)':>21}",
    ]
    paper_total = 1974
    scale = analysis.total_specs / paper_total
    for (traditional, llm), cell in analysis.cells.items():
        paper_row = PAPER_TABLE2.get((traditional, llm))
        paper_union = round(paper_row[3] * scale) if paper_row else 0
        lines.append(
            f"{traditional:<10}{llm:<24}{cell.traditional_repairs:>6}"
            f"{cell.llm_repairs:>6}{cell.overlap:>9}{cell.union:>7}"
            f"{paper_union:>21}"
        )
    best = analysis.best()
    lines.append("")
    lines.append(
        f"Best hybrid (measured): {best.traditional} + {best.llm} = "
        f"{best.union}/{analysis.total_specs} "
        f"({best.union / max(analysis.total_specs, 1):.1%}) "
        "(paper: ATR + Multi-Round_None = 1677/1974 = 85.5%)"
    )
    return "\n".join(lines)


def render_figure4(analysis: HybridAnalysis) -> str:
    """The 32 Venn diagrams as text: (unique-trad | overlap | unique-llm)."""
    lines = [
        "Figure 4 — Venn diagrams of hybrid repair capabilities (measured)",
        "Each cell: unique-traditional ( overlap ) unique-LLM",
        "",
    ]
    llm_rows = SINGLE_ROUND + MULTI_ROUND
    header = f"{'':<24}" + "".join(f"{t:>22}" for t in TRADITIONAL)
    lines.append(header)
    for llm in llm_rows:
        cells = []
        for traditional in TRADITIONAL:
            cell = analysis.cells[(traditional, llm)]
            cells.append(
                f"{cell.unique_traditional:>6}({cell.overlap:>5}){cell.unique_llm:>6}   "
            )
        lines.append(f"{llm:<24}" + "".join(f"{c:>22}" for c in cells))
    return "\n".join(lines)


def sequential_hybrid(spec, seed: int = 0, feedback_value: str = "Generic"):
    """The pipeline hybrid the paper's discussion proposes (an extension
    beyond its set-union analysis): localize with the traditional machinery,
    then hand the location to the multi-round LLM as a hint.

    Returns the :class:`repro.repair.base.RepairResult` of the hybrid run.
    """
    from repro.benchmarks.faults import describe_location
    from repro.llm.mock_gpt import GPT4_PROFILE, MockGPT
    from repro.llm.prompts import FeedbackLevel, RepairHints
    from repro.repair.base import PropertyOracle, RepairTask
    from repro.repair.localization import Discriminator, localize
    from repro.repair.multi_round import MultiRoundLLM

    task = RepairTask.from_source(spec.faulty_source)
    oracle = PropertyOracle(task)
    evidence = oracle.failing_evidence_by_command(task.module, max_instances=3)
    discriminators = [
        Discriminator.from_command_evidence(command, instance)
        for command, instances in evidence
        for instance in instances
    ]
    locations = localize(task.module, task.info, discriminators, max_locations=3)
    hints = None
    if locations:
        hints = RepairHints(
            location=describe_location(task.module, locations[0].path)
        )
    tool = MultiRoundLLM(
        MockGPT(seed=seed, profile=GPT4_PROFILE),
        FeedbackLevel(feedback_value),
        hints=hints,
    )
    tool.name = f"Pipeline-Hybrid_{feedback_value}"
    return tool.repair(task)
