"""Pluggable execution backends for the experiment engine.

The matrix computation is embarrassingly parallel: every (specification,
technique) cell is deterministically seeded (see
:func:`repro.repair.registry.cell_seed`) and crash-isolated, so cells can
run in any order on any worker and still produce bit-identical results.
This module supplies the machinery:

- work is *sharded by specification* (:class:`ShardTask`), so the
  expensive per-spec ground-truth oracle is computed once per shard and
  shared by all of that spec's cells;
- :func:`execute_shard` runs one shard anywhere — the calling thread, a
  pool thread, or a forked worker process — and returns a picklable
  :class:`ShardResult` whose failures are
  :class:`~repro.runtime.guard.FailureRecord` values, so crash isolation
  survives process boundaries where exceptions themselves may not pickle;
- three :class:`Executor` implementations — :class:`SerialExecutor`,
  :class:`ThreadExecutor`, :class:`ProcessExecutor` — all yield shard
  results in *submission* order, which is what keeps parallel matrices
  byte-identical to serial ones and lets the runner flush its cache
  incrementally as shards land.

:class:`ProcessExecutor` prefers the ``fork`` start method so in-process
state (registered techniques, test monkeypatches) carries into workers;
on platforms without ``fork`` it falls back to the default start method,
where only importable (module-level) technique registrations are visible
to workers.
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator, Protocol, Sequence

from repro import chaos, obs
from repro.benchmarks.faults import FaultySpec
from repro.chaos.plan import FaultPlan
from repro.metrics.rep import truth_command_outcomes
from repro.runtime.budget import Budget
from repro.runtime.errors import ShardTimeoutError
from repro.runtime.guard import FailureRecord, capture_failure

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.experiments.runner import SpecOutcome


@dataclass(frozen=True)
class ShardTask:
    """One specification's pending cells — the unit of work distribution.

    Carries everything a worker needs to re-hydrate the work: the full
    :class:`FaultySpec`, the technique names (resolved against the
    technique registry inside the worker), and the run seed.  The payload
    is picklable by construction.
    """

    spec: FaultySpec
    techniques: tuple[str, ...]
    seed: int
    fail_fast: bool = False
    trace: bool = False
    """Capture spans/metrics for this shard's cells.  Never affects the
    outcomes — only whether the result carries telemetry payloads."""
    static_prune: bool = True
    """Whether the repair tools may veto statically dead candidates.
    Installed ambiently (:func:`repro.analysis.prune.pruning`) around the
    shard so the bit crosses thread and process boundaries with the task."""
    shard_timeout: float | None = None
    """Wall-clock seconds this shard may spend before its remaining cells
    are abandoned with a ``shard.timeout`` failure.  Enforced cooperatively
    *inside* the worker between cells (so partial results survive) and by
    the :class:`ProcessExecutor` watchdog for shards that stop cooperating
    entirely."""
    chaos: FaultPlan | None = None
    """Fault-injection plan, installed around the shard.  Like
    ``static_prune``, riding on the task is what carries the plan across
    thread and process boundaries; trigger counters restart at zero per
    shard, so the fault schedule a spec sees is executor-independent."""
    incremental: bool = True
    """Whether repair tools evaluate candidates through the shared
    incremental solve session (:mod:`repro.analyzer.session`).  Installed
    ambiently around the shard like ``static_prune``; never affects
    outcomes — only how long cells take."""
    canonical: bool = True
    """Whether the oracle deduplicates semantically equivalent candidates
    by canonical form (:mod:`repro.analysis.canon`).  Installed ambiently
    around the shard like ``incremental``; never affects outcomes — only
    how many verdicts reach the solver."""


@dataclass
class ShardResult:
    """Everything one shard produced, in the shard's technique order."""

    spec_id: str
    outcomes: dict[str, "SpecOutcome"] = field(default_factory=dict)
    failures: list[FailureRecord] = field(default_factory=list)
    elapsed: float = 0.0
    """Wall-clock seconds this shard spent executing (always measured)."""
    spans: list[dict] = field(default_factory=list)
    """Finished root spans as JSON payloads — picklable, so worker-process
    traces survive the trip back to the coordinator.  Empty when untraced."""
    metrics: dict = field(default_factory=dict)
    """A :meth:`~repro.obs.MetricsRegistry.snapshot`; empty when untraced."""
    chaos_events: list[dict] = field(default_factory=list)
    """Every injected fault that fired in this shard, as JSON payloads
    (:meth:`~repro.chaos.FireEvent.to_json` with the spec id folded in) —
    the audit trail the chaos invariant checker verifies against."""


def execute_shard(task: ShardTask) -> ShardResult:
    """Run every cell of one shard, crash-isolating each.

    The ground-truth command outcomes are computed once and shared by all
    cells of the shard.  With ``fail_fast`` the first exception propagates
    (re-raised by the executor in the coordinating thread); otherwise it is
    frozen into a :class:`FailureRecord` plus a ``"crashed"`` outcome.

    With ``task.trace``, a shard-local tracer/registry pair is installed
    for the duration (thread-local, so pool threads never interleave) and
    the result carries the spans and metric snapshot.
    """
    from repro.analysis.canon import canonicalizing, verdict_sharing
    from repro.analysis.prune import pruning
    from repro.analyzer.session import incremental

    # verdict_sharing: one oracle cache for all of this shard's techniques
    # (same spec, same commands) — BeAFix's evidence and verdicts replay
    # for ATR and any inner tools.  Lookups are gated on the canonical
    # switch, so installing it unconditionally keeps --no-canon inert.
    with pruning(task.static_prune), incremental(
        task.incremental
    ), canonicalizing(task.canonical), verdict_sharing(), chaos.install(
        task.chaos, salt=task.spec.spec_id
    ) as scope:
        if not task.trace:
            result = _execute_shard_cells(task)
        else:
            tracer = obs.Tracer()
            metrics = obs.MetricsRegistry()
            with obs.scope(tracer, metrics):
                result = _execute_shard_cells(task)
            result.spans = [span.to_json() for span in tracer.roots()]
            result.metrics = metrics.snapshot()
    if scope is not None:
        for event in scope.events:
            event.info.setdefault("spec", task.spec.spec_id)
        result.chaos_events = [event.to_json() for event in scope.events]
    return result


def _execute_shard_cells(task: ShardTask) -> ShardResult:
    # Imported late: the runner imports this module, and binding run_spec
    # at call time keeps test monkeypatches on the runner effective.
    from repro.experiments import runner

    started = time.perf_counter()
    spec = task.spec
    result = ShardResult(spec_id=spec.spec_id)
    # Cooperative deadline: checked between cells, never mid-cell, so each
    # completed cell's outcome is kept and the shard degrades instead of
    # being torn down mid-computation.  Shards that stop cooperating (a
    # cell that hangs) are the ProcessExecutor watchdog's problem.
    deadline = (
        Budget(wall_seconds=task.shard_timeout)
        if task.shard_timeout is not None
        else None
    )

    def overdue(done: int) -> bool:
        if deadline is None or not deadline.exhausted:
            return False
        remaining = task.techniques[done:]
        result.failures.append(
            capture_failure(
                f"{spec.spec_id}:shard",
                ShardTimeoutError(
                    f"shard exceeded its {task.shard_timeout:g}s deadline "
                    f"with {len(remaining)} cell(s) pending",
                    context={
                        "spec": spec.spec_id,
                        "timeout": task.shard_timeout,
                        "pending": list(remaining),
                    },
                ),
            )
        )
        for technique in remaining:
            result.outcomes[technique] = runner._timeout_outcome(spec, technique)
        return True

    truth: list[bool] | None
    if overdue(0):
        result.elapsed = time.perf_counter() - started
        return result
    try:
        with obs.span("truth-oracle", spec=spec.spec_id):
            truth = truth_command_outcomes(spec.truth_source)
    except Exception as error:
        if task.fail_fast:
            raise
        result.failures.append(
            capture_failure(f"{spec.spec_id}:truth-oracle", error)
        )
        truth = None
    for done, technique in enumerate(task.techniques):
        if overdue(done):
            break
        if truth is None:
            # The ground truth itself would not analyze; every technique
            # on this spec is unscorable.
            result.outcomes[technique] = runner._crashed_outcome(spec, technique)
            continue
        with obs.span("cell", spec=spec.spec_id, technique=technique) as span:
            try:
                outcome = runner.run_spec(spec, technique, task.seed, truth)
            except Exception as error:
                if task.fail_fast:
                    raise
                result.failures.append(
                    capture_failure(f"{spec.spec_id}:{technique}", error)
                )
                outcome = runner._crashed_outcome(spec, technique)
            span.set(status=outcome.status, rep=outcome.rep)
        result.outcomes[technique] = outcome
    result.elapsed = time.perf_counter() - started
    return result


def timeout_shard_result(task: ShardTask, detail: str) -> ShardResult:
    """Synthesize the result for a shard the watchdog gave up on.

    Every pending cell becomes a ``"timeout"`` outcome and a single
    ``shard.timeout`` failure records the abandonment, so the matrix stays
    complete (each cell accounted for) even though the worker never
    reported back.
    """
    from repro.experiments import runner

    result = ShardResult(spec_id=task.spec.spec_id)
    result.failures.append(
        capture_failure(
            f"{task.spec.spec_id}:shard",
            ShardTimeoutError(
                detail,
                context={
                    "spec": task.spec.spec_id,
                    "timeout": task.shard_timeout,
                    "pending": list(task.techniques),
                },
            ),
        )
    )
    for technique in task.techniques:
        result.outcomes[technique] = runner._timeout_outcome(
            task.spec, technique
        )
    return result


class Executor(Protocol):
    """Runs shards and yields their results in submission order."""

    def run(self, shards: Sequence[ShardTask]) -> Iterator[ShardResult]: ...


class SerialExecutor:
    """The in-thread baseline: shards run one after another."""

    def run(self, shards: Sequence[ShardTask]) -> Iterator[ShardResult]:
        for shard in shards:
            yield execute_shard(shard)


class ThreadExecutor:
    """A thread pool.

    The repair pipeline is pure Python, so threads mostly overlap I/O and
    cache traffic rather than compute — but the backend is cheap to start
    and shares the parent's memory, which makes it the right tool for
    smoke tests and for deployments where tools shell out.
    """

    def __init__(self, jobs: int = 2) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs

    def run(self, shards: Sequence[ShardTask]) -> Iterator[ShardResult]:
        with ThreadPoolExecutor(max_workers=self.jobs) as pool:
            futures = [pool.submit(execute_shard, shard) for shard in shards]
            for future in futures:
                yield future.result()


class ProcessExecutor:
    """A multiprocessing pool — the backend for CPU-bound matrix runs.

    Shard payloads are pickled to workers, which re-hydrate the spec and
    techniques and return picklable results; a worker exception is already
    a :class:`FailureRecord` inside the result, so crash isolation holds
    across the process boundary.  If a worker dies without raising (a
    hard kill), the broken pool is abandoned and the remaining shards
    finish in-process rather than losing the run.

    When shards carry a ``shard_timeout``, a *watchdog* guards against
    workers that stop cooperating entirely (the cooperative in-worker
    deadline only checks between cells, so a single hanging cell could
    wedge a pool slot forever).  Each result wait is bounded by twice the
    largest shard timeout plus a grace second; a shard that misses even
    that is declared hung and handled per ``on_timeout``:

    - ``"abandon"`` (default): synthesize ``"timeout"`` outcomes plus a
      ``shard.timeout`` failure for the hung shard;
    - ``"requeue"``: re-execute the hung shard in-process (recovering its
      real result if the hang was environmental) and append the
      ``shard.timeout`` failure as an audit record.

    Either way, already-finished results are salvaged, everything else
    finishes in-process, and the wedged pool is torn down without waiting —
    the run always completes.
    """

    def __init__(self, jobs: int = 2, on_timeout: str = "abandon") -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if on_timeout not in ("abandon", "requeue"):
            raise ValueError(
                f"on_timeout must be 'abandon' or 'requeue', got {on_timeout!r}"
            )
        self.jobs = jobs
        self.on_timeout = on_timeout

    @staticmethod
    def _context():
        try:
            return multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            return multiprocessing.get_context()

    @staticmethod
    def _watchdog_allowance(shards: Sequence[ShardTask]) -> float | None:
        """How long to wait on one shard before declaring it hung.

        Twice the largest cooperative deadline plus a grace second: a
        cooperating shard returns within its own timeout (plus scheduling
        slack), so anything that overstays this allowance is genuinely
        stuck, not merely slow.  ``None`` (wait forever) when no shard
        carries a timeout — the historical behaviour.
        """
        timeouts = [
            shard.shard_timeout
            for shard in shards
            if shard.shard_timeout is not None
        ]
        return max(timeouts) * 2 + 1.0 if timeouts else None

    def run(self, shards: Sequence[ShardTask]) -> Iterator[ShardResult]:
        allowance = self._watchdog_allowance(shards)
        pool = ProcessPoolExecutor(
            max_workers=self.jobs, mp_context=self._context()
        )
        abandoned = False
        try:
            futures = [pool.submit(execute_shard, shard) for shard in shards]
            for index, future in enumerate(futures):
                try:
                    yield future.result(timeout=allowance)
                except BrokenProcessPool:
                    abandoned = True
                    yield from self._finish_in_process(shards[index:])
                    return
                except FutureTimeout:
                    abandoned = True
                    task = shards[index]
                    detail = (
                        f"worker for {task.spec.spec_id!r} exceeded the "
                        f"{allowance:g}s watchdog allowance without reporting"
                    )
                    if self.on_timeout == "requeue":
                        result = execute_shard(task)
                        result.failures.append(
                            capture_failure(
                                f"{task.spec.spec_id}:shard",
                                ShardTimeoutError(
                                    detail,
                                    context={
                                        "spec": task.spec.spec_id,
                                        "timeout": task.shard_timeout,
                                        "requeued": True,
                                    },
                                ),
                            )
                        )
                        yield result
                    else:
                        yield timeout_shard_result(task, detail)
                    yield from self._salvage(
                        shards, futures, start=index + 1
                    )
                    return
        finally:
            if abandoned:
                # Never wait on a wedged pool: cancel what has not started
                # and hard-kill the workers (one of them is hung by
                # construction — a graceful join would block forever).
                pool.shutdown(wait=False, cancel_futures=True)
                processes = getattr(pool, "_processes", None) or {}
                for process in list(processes.values()):
                    try:
                        process.terminate()
                    except Exception:  # pragma: no cover - best effort
                        pass
            else:
                pool.shutdown(wait=True)

    @staticmethod
    def _salvage(
        shards: Sequence[ShardTask],
        futures: Sequence,
        start: int,
    ) -> Iterator[ShardResult]:
        """After a watchdog trip: keep finished results, redo the rest.

        Results other workers already produced are valid (determinism does
        not depend on which pool computed a shard); everything still queued
        or running re-executes in-process, because the pool is about to be
        torn down.
        """
        for index in range(start, len(futures)):
            future = futures[index]
            if future.done() and not future.cancelled():
                try:
                    yield future.result()
                    continue
                except Exception:  # fall through to the in-process rerun
                    pass
            future.cancel()
            yield execute_shard(shards[index])

    @staticmethod
    def _finish_in_process(
        remaining: Iterable[ShardTask],
    ) -> Iterator[ShardResult]:
        for shard in remaining:
            yield execute_shard(shard)


def create_executor(kind: str, jobs: int) -> Executor:
    """Resolve an executor name (``auto``/``serial``/``thread``/``process``).

    ``auto`` picks :class:`SerialExecutor` for ``jobs=1`` (no pool
    overhead, exact legacy behaviour) and :class:`ProcessExecutor`
    otherwise (the work is CPU-bound Python).
    """
    if kind == "auto":
        kind = "serial" if jobs <= 1 else "process"
    if kind == "serial":
        return SerialExecutor()
    if kind == "thread":
        return ThreadExecutor(jobs)
    if kind == "process":
        return ProcessExecutor(jobs)
    raise ValueError(f"unknown executor {kind!r}")
