"""Figure 3 reproduction: Pearson correlations between repair techniques.

Each technique is represented by its per-specification similarity vector
(TM against ground truth) over both benchmarks; the heatmap is the pairwise
Pearson correlation of those vectors, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.paper_values import TECHNIQUE_ORDER
from repro.experiments.runner import ResultMatrix
from repro.metrics.pearson import Correlation, pearson


@dataclass
class Figure3:
    """The correlation matrix plus cluster summaries."""

    correlations: dict[tuple[str, str], Correlation]

    def r(self, first: str, second: str) -> float:
        return self.correlations[(first, second)].r

    def cluster_min(self, cluster: list[str]) -> float:
        """Minimum pairwise r within a cluster of techniques."""
        values = [
            self.r(a, b)
            for i, a in enumerate(cluster)
            for b in cluster[i + 1 :]
        ]
        return min(values) if values else 1.0

    def cross_cluster_min(self, first: list[str], second: list[str]) -> float:
        return min(self.r(a, b) for a in first for b in second)


def compute_figure3(matrices: list[ResultMatrix]) -> Figure3:
    series: dict[str, list[float]] = {t: [] for t in TECHNIQUE_ORDER}
    for matrix in matrices:
        for technique in TECHNIQUE_ORDER:
            series[technique].extend(matrix.similarity_series(technique, "tm"))
    correlations: dict[tuple[str, str], Correlation] = {}
    for i, first in enumerate(TECHNIQUE_ORDER):
        for second in TECHNIQUE_ORDER[i:]:
            result = pearson(series[first], series[second])
            correlations[(first, second)] = result
            correlations[(second, first)] = result
    return Figure3(correlations=correlations)


def render_figure3(figure: Figure3) -> str:
    """Text heatmap of pairwise correlations."""
    short = {t: f"T{i:02d}" for i, t in enumerate(TECHNIQUE_ORDER)}
    lines = ["Figure 3 — Pearson correlation heatmap (measured)", ""]
    for t, code in short.items():
        lines.append(f"  {code} = {t}")
    lines.append("")
    header = "     " + "".join(f"{short[t]:>6}" for t in TECHNIQUE_ORDER)
    lines.append(header)
    for first in TECHNIQUE_ORDER:
        cells = "".join(
            f"{figure.r(first, second):>6.2f}" for second in TECHNIQUE_ORDER
        )
        lines.append(f"{short[first]:<5}{cells}")
    lines.append("")
    traditional = ["ARepair", "ICEBAR", "BeAFix", "ATR"]
    single = [t for t in TECHNIQUE_ORDER if t.startswith("Single-Round")]
    multi = [t for t in TECHNIQUE_ORDER if t.startswith("Multi-Round")]
    lines.append(
        f"traditional cluster min r = {figure.cluster_min(traditional):.3f} "
        "(paper: >= 0.972)"
    )
    lines.append(
        f"multi-round cluster min r = {figure.cluster_min(multi):.3f} "
        "(paper: Generic~Auto r = 0.949)"
    )
    lines.append(
        f"single-round vs others min r = "
        f"{min(figure.cross_cluster_min(single, traditional), figure.cross_cluster_min(single, multi)):.3f} "
        "(paper: as low as 0.644)"
    )
    lines.append(
        f"ICEBAR~ATR r = {figure.r('ICEBAR', 'ATR'):.3f} (paper 0.983)"
    )
    significant = sum(
        1
        for (a, b), c in figure.correlations.items()
        if a < b and c.p_value < 0.001
    )
    total_pairs = sum(1 for (a, b) in figure.correlations if a < b)
    lines.append(
        f"pairs significant at p < 0.001: {significant}/{total_pairs} "
        "(paper: all)"
    )
    return "\n".join(lines)
