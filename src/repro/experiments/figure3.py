"""Figure 3 reproduction: Pearson correlations between repair techniques.

Each technique is represented by its per-specification similarity vector
(TM against ground truth) over both benchmarks; the heatmap is the pairwise
Pearson correlation of those vectors, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.paper_values import TECHNIQUE_ORDER
from repro.experiments.runner import ResultMatrix
from repro.metrics.pearson import Correlation, pearson


@dataclass
class Figure3:
    """The correlation matrix plus cluster summaries."""

    correlations: dict[tuple[str, str], Correlation]
    techniques: list[str] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.techniques is None:
            self.techniques = list(TECHNIQUE_ORDER)

    def r(self, first: str, second: str) -> float:
        return self.correlations[(first, second)].r

    def cluster_min(self, cluster: list[str]) -> float:
        """Minimum pairwise r within a cluster of techniques."""
        values = [
            self.r(a, b)
            for i, a in enumerate(cluster)
            for b in cluster[i + 1 :]
        ]
        return min(values) if values else 1.0

    def cross_cluster_min(self, first: list[str], second: list[str]) -> float:
        return min(self.r(a, b) for a in first for b in second)


def compute_figure3(
    matrices: list[ResultMatrix], techniques: list[str] | None = None
) -> Figure3:
    order = list(techniques) if techniques else list(TECHNIQUE_ORDER)
    series: dict[str, list[float]] = {t: [] for t in order}
    for matrix in matrices:
        for technique in order:
            series[technique].extend(matrix.similarity_series(technique, "tm"))
    correlations: dict[tuple[str, str], Correlation] = {}
    for i, first in enumerate(order):
        for second in order[i:]:
            result = pearson(series[first], series[second])
            correlations[(first, second)] = result
            correlations[(second, first)] = result
    return Figure3(correlations=correlations, techniques=order)


def render_figure3(figure: Figure3) -> str:
    """Text heatmap of pairwise correlations."""
    order = figure.techniques
    short = {t: f"T{i:02d}" for i, t in enumerate(order)}
    lines = ["Figure 3 — Pearson correlation heatmap (measured)", ""]
    for t, code in short.items():
        lines.append(f"  {code} = {t}")
    lines.append("")
    header = "     " + "".join(f"{short[t]:>6}" for t in order)
    lines.append(header)
    for first in order:
        cells = "".join(f"{figure.r(first, second):>6.2f}" for second in order)
        lines.append(f"{short[first]:<5}{cells}")
    lines.append("")
    traditional = [
        t for t in ("ARepair", "ICEBAR", "BeAFix", "ATR") if t in order
    ]
    single = [t for t in order if t.startswith("Single-Round")]
    multi = [t for t in order if t.startswith("Multi-Round")]
    if len(traditional) > 1:
        lines.append(
            f"traditional cluster min r = {figure.cluster_min(traditional):.3f} "
            "(paper: >= 0.972)"
        )
    if len(multi) > 1:
        lines.append(
            f"multi-round cluster min r = {figure.cluster_min(multi):.3f} "
            "(paper: Generic~Auto r = 0.949)"
        )
    if single and traditional and multi:
        lines.append(
            f"single-round vs others min r = "
            f"{min(figure.cross_cluster_min(single, traditional), figure.cross_cluster_min(single, multi)):.3f} "
            "(paper: as low as 0.644)"
        )
    if "ICEBAR" in order and "ATR" in order:
        lines.append(
            f"ICEBAR~ATR r = {figure.r('ICEBAR', 'ATR'):.3f} (paper 0.983)"
        )
    significant = sum(
        1
        for (a, b), c in figure.correlations.items()
        if a < b and c.p_value < 0.001
    )
    total_pairs = sum(1 for (a, b) in figure.correlations if a < b)
    lines.append(
        f"pairs significant at p < 0.001: {significant}/{total_pairs} "
        "(paper: all)"
    )
    return "\n".join(lines)
