"""Progress reporting for experiment runs, as a callback protocol.

The engine used to print progress straight to stderr, which made it
unusable as a library (callers got uncontrollable console noise) and
untestable (no way to observe progress programmatically).  Now the engine
emits events to a :class:`ProgressListener`; the default is silent, the
CLI installs :class:`ConsoleListener`, and tests install recorders.

The experiment engine invokes listeners only from its coordinating
thread, but the engine is no longer the only host: concurrent callers
(several ``run_matrix`` invocations, the service daemon) may share one
listener across threads.  :class:`ConsoleListener` therefore serializes
its output and state updates behind a lock; custom listeners that assume
a single caller should do the same or document the restriction.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Protocol

from repro.runtime.guard import FailureRecord, summarize_failures

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.experiments.runner import SpecOutcome


class ProgressListener(Protocol):
    """Receives engine events; all methods are fire-and-forget."""

    def on_cell(
        self, benchmark: str, outcome: "SpecOutcome", done: int, total: int
    ) -> None:
        """One (specification, technique) cell finished."""

    def on_shard_done(
        self, benchmark: str, spec_id: str, shards_done: int, total_shards: int
    ) -> None:
        """One specification's shard (all its pending cells) finished."""

    def on_failure(self, benchmark: str, failure: FailureRecord) -> None:
        """One cell was crash-isolated into a failure record."""

    def on_metrics(self, benchmark: str, summary: dict) -> None:
        """Per-shard timing/telemetry summary (optional; the engine invokes
        it defensively, so listeners written before this event existed —
        or that simply don't care — need not implement it).  ``summary``
        carries ``spec_id``, ``elapsed`` (seconds), and ``cells``."""


class NullListener:
    """The library default: complete silence."""

    def on_cell(self, benchmark, outcome, done, total) -> None:
        pass

    def on_shard_done(self, benchmark, spec_id, shards_done, total_shards) -> None:
        pass

    def on_failure(self, benchmark, failure) -> None:
        pass

    def on_metrics(self, benchmark, summary) -> None:
        pass


NULL_LISTENER = NullListener()


class ConsoleListener:
    """The CLI's listener: the engine's historical console output.

    Prints a progress line every ``every`` completed cells and, when a
    benchmark's last shard lands, a summary of any isolated failures.
    Tracks state per benchmark so one instance can watch several runs.
    With ``verbose``, every completed shard gets a one-line timing summary
    (spec, cell count, elapsed) instead of finishing silently.

    Thread-safe: a lock serializes both the failure bookkeeping and the
    prints, so events from concurrent hosts never interleave mid-line.
    """

    def __init__(self, every: int = 25, verbose: bool = False) -> None:
        self._every = every
        self._verbose = verbose
        self._failures: dict[str, list[FailureRecord]] = {}
        self._lock = threading.Lock()

    def on_cell(self, benchmark, outcome, done, total) -> None:
        with self._lock:
            if done % self._every == 0:
                print(f"  [{benchmark}] {done}/{total} outcomes", flush=True)

    def on_shard_done(self, benchmark, spec_id, shards_done, total_shards) -> None:
        with self._lock:
            failures = self._failures.get(benchmark, [])
            if shards_done == total_shards and failures:
                print(
                    f"  [{benchmark}] {len(failures)} isolated failures: "
                    f"{summarize_failures(failures)}",
                    flush=True,
                )

    def on_failure(self, benchmark, failure) -> None:
        with self._lock:
            self._failures.setdefault(benchmark, []).append(failure)

    def on_metrics(self, benchmark, summary) -> None:
        with self._lock:
            if self._verbose:
                print(
                    f"  [{benchmark}] shard {summary['spec_id']}: "
                    f"{summary['cells']} cells in {summary['elapsed']:.2f}s",
                    flush=True,
                )
