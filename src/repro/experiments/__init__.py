"""Experiment drivers reproducing every table and figure of the paper."""

from repro.experiments.executor import (
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ShardResult,
    ShardTask,
    ThreadExecutor,
    create_executor,
    execute_shard,
)
from repro.experiments.figure2 import Figure2, compute_figure2, render_figure2
from repro.experiments.figure3 import Figure3, compute_figure3, render_figure3
from repro.experiments.hybrid import (
    HybridAnalysis,
    HybridCell,
    compute_hybrid,
    render_figure4,
    render_table2,
    sequential_hybrid,
)
from repro.experiments.progress import (
    ConsoleListener,
    NullListener,
    ProgressListener,
)
from repro.experiments.report import StudyReport, generate_report
from repro.experiments.runner import (
    ALL_TECHNIQUES,
    MULTI_ROUND,
    SINGLE_ROUND,
    TRADITIONAL,
    ResultMatrix,
    RunConfig,
    SpecOutcome,
    combined_matrices,
    run_matrix,
    run_spec,
)
from repro.experiments.table1 import Table1, compute_table1, render_table1

__all__ = [
    "ALL_TECHNIQUES",
    "ConsoleListener",
    "Executor",
    "Figure2",
    "Figure3",
    "HybridAnalysis",
    "HybridCell",
    "MULTI_ROUND",
    "NullListener",
    "ProcessExecutor",
    "ProgressListener",
    "ResultMatrix",
    "RunConfig",
    "SINGLE_ROUND",
    "SerialExecutor",
    "ShardResult",
    "ShardTask",
    "SpecOutcome",
    "StudyReport",
    "TRADITIONAL",
    "Table1",
    "ThreadExecutor",
    "combined_matrices",
    "compute_figure2",
    "compute_figure3",
    "compute_hybrid",
    "compute_table1",
    "create_executor",
    "execute_shard",
    "generate_report",
    "render_figure2",
    "render_figure3",
    "render_figure4",
    "render_table1",
    "render_table2",
    "run_matrix",
    "run_spec",
    "sequential_hybrid",
]
