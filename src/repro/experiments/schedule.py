"""Shard ordering policies — trace-driven longest-first scheduling.

With a parallel backend, submission order determines tail latency: a pool
that picks up the most expensive specification *last* idles every other
worker while it finishes.  The classic fix is longest-processing-time
first, which needs a cost estimate per shard.  This module grades three
sources, best first:

1. a prior run's trace file (``RunConfig.trace_path()``): per-cell
   ``repair`` wall time is recorded on every traced run, so the previous
   trace is an empirical cost model of this exact workload;
2. the cached result matrix: resumed runs already hold per-cell
   ``elapsed`` values for the spec's completed cells;
3. the faulty source's size — a crude static proxy (bigger specs ground
   to bigger CNFs), but strictly better than nothing.

Scheduling never changes *results*: cells are seeded per (spec,
technique) and executors yield in submission order, so reordering only
moves wall-clock time around.  That is also why ``schedule`` stays out of
the result-cache key.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.obs.export import read_trace
from repro.runtime.errors import CacheCorruptionError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.experiments.executor import ShardTask
    from repro.experiments.runner import ResultMatrix, RunConfig

SCHEDULES = ("fifo", "longest-first")
"""Supported shard orderings (``RunConfig.schedule``)."""

_SIZE_WEIGHT = 1e-6
"""Seconds ascribed per source character when no history exists — small
enough that any real measurement dominates it."""


def trace_costs(config: "RunConfig") -> dict[str, float]:
    """Per-spec seconds from the run's trace file, if one exists.

    The trace destination is deterministic for a given config
    (:meth:`RunConfig.trace_path`), so a re-run of a traced command finds
    its own previous trace.  An unreadable or half-written trace file
    degrades to "no history" rather than failing the run.
    """
    path = config.trace_path()
    if not path.exists():
        return {}
    try:
        data = read_trace(path)
    except CacheCorruptionError:
        return {}
    costs: dict[str, float] = {}
    for record in data.spans:
        if record.get("name") != "cell":
            continue
        spec = record.get("attrs", {}).get("spec")
        if spec is None:
            continue
        costs[spec] = costs.get(spec, 0.0) + float(record.get("duration", 0.0))
    return costs


def matrix_costs(matrix: "ResultMatrix") -> dict[str, float]:
    """Per-spec seconds from already-held outcomes (resumed runs)."""
    costs: dict[str, float] = {}
    for spec_id, row in matrix.outcomes.items():
        total = sum(outcome.elapsed for outcome in row.values())
        if total > 0:
            costs[spec_id] = total
    return costs


def schedule_shards(
    shards: Sequence["ShardTask"],
    config: "RunConfig",
    matrix: "ResultMatrix",
) -> list["ShardTask"]:
    """Order ``shards`` according to ``config.schedule``."""
    if config.schedule == "fifo" or len(shards) <= 1:
        return list(shards)
    history = trace_costs(config)
    fallback = matrix_costs(matrix)

    def cost(shard: "ShardTask") -> float:
        spec_id = shard.spec.spec_id
        if spec_id in history:
            return history[spec_id]
        if spec_id in fallback:
            return fallback[spec_id]
        return len(shard.spec.faulty_source) * _SIZE_WEIGHT

    # Stable sort: equal-cost shards keep benchmark order, so the
    # schedule itself is deterministic run to run.
    return sorted(shards, key=cost, reverse=True)
