"""Full experiment report generation (used by ``repro all`` and EXPERIMENTS.md).

Assembles every regenerated artifact — corpus statistics, Table I, Figure 2,
Figure 3, Table II/Figure 4 — into one text report with the paper's values
alongside for shape comparison.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.benchmarks.stats import render_stats, summarize
from repro.experiments.figure2 import compute_figure2, render_figure2
from repro.experiments.figure3 import compute_figure3, render_figure3
from repro.experiments.hybrid import compute_hybrid, render_figure4, render_table2
from repro.experiments.progress import ConsoleListener, ProgressListener
from repro.experiments.runner import (
    ResultMatrix,
    RunConfig,
    derive_trace_out,
    run_matrix,
)
from repro.experiments.table1 import compute_table1, render_table1
from repro.obs.export import (
    merge_trace_data,
    render_profile,
    trace_data_from_snapshot,
)
from repro.runtime.guard import summarize_failures


@dataclass
class StudyReport:
    """All computed artifacts of one study run."""

    arepair: ResultMatrix
    alloy4fun: ResultMatrix
    text: str


def generate_report(
    scale: float = 0.05,
    seed: int = 0,
    use_cache: bool = True,
    progress: bool = False,
    fail_fast: bool = False,
    jobs: int = 1,
    executor: str = "auto",
    listener: ProgressListener | None = None,
    trace: bool = False,
    trace_out: str | None = None,
    verbose: bool = False,
    static_prune: bool = True,
    incremental: bool = True,
    canonical: bool = True,
    shard_timeout: float | None = None,
    schedule: str = "fifo",
) -> StudyReport:
    """Run both benchmarks and render the complete study report.

    With ``trace``, both matrix runs capture spans/metrics, write one
    trace JSONL each, and the report gains a TELEMETRY section rolling up
    the per-technique costs.
    """
    started = time.time()
    if listener is None and (progress or verbose):
        listener = ConsoleListener(verbose=verbose)
    arepair = run_matrix(
        RunConfig(
            benchmark="arepair", scale=1.0, seed=seed, use_cache=use_cache,
            fail_fast=fail_fast, jobs=jobs, executor=executor,
            listener=listener, trace=trace,
            trace_out=derive_trace_out(trace_out, trace, "arepair", seed),
            static_prune=static_prune, incremental=incremental,
            canonical=canonical,
            shard_timeout=shard_timeout, schedule=schedule,
        )
    )
    alloy4fun = run_matrix(
        RunConfig(
            benchmark="alloy4fun", scale=scale, seed=seed, use_cache=use_cache,
            fail_fast=fail_fast, jobs=jobs, executor=executor,
            listener=listener, trace=trace,
            trace_out=derive_trace_out(trace_out, trace, "alloy4fun", seed),
            static_prune=static_prune, incremental=incremental,
            canonical=canonical,
            shard_timeout=shard_timeout, schedule=schedule,
        )
    )
    matrices = [arepair, alloy4fun]

    sections = [
        "REPRODUCTION REPORT — Towards More Dependable Specifications (DSN 2025)",
        f"seed={seed}  alloy4fun-scale={scale}  "
        f"({len(arepair.specs)} + {len(alloy4fun.specs)} specifications)",
        "",
        render_stats(summarize(arepair.specs), "ARepair benchmark"),
        "",
        render_stats(summarize(alloy4fun.specs), "Alloy4Fun benchmark (sampled)"),
        "",
        render_table1(compute_table1(arepair, alloy4fun)),
        "",
        render_figure2(compute_figure2(matrices)),
        "",
        render_figure3(compute_figure3(matrices)),
        "",
    ]
    analysis = compute_hybrid(matrices)
    sections.append(render_table2(analysis))
    sections.append("")
    sections.append(render_figure4(analysis))
    sections.append("")
    telemetry = [m.telemetry for m in matrices if m.telemetry is not None]
    if telemetry:
        # The traced run's cost profile: where each technique spent its
        # SAT/analyzer/LLM effort, rolled up across both benchmarks.
        merged = merge_trace_data(
            [trace_data_from_snapshot(t["metrics"]) for t in telemetry]
        )
        paths = ", ".join(t["trace_path"] for t in telemetry)
        sections.append("TELEMETRY (traced run)")
        sections.append(f"trace files: {paths}")
        sections.append("")
        sections.append(render_profile(merged))
        sections.append("")
    failures = arepair.failures + alloy4fun.failures
    if failures:
        # Crash-isolated cells are scored as misses; surfacing them keeps
        # a degraded run honest about what it measured.
        codes = ", ".join(
            f"{code}×{count}"
            for code, count in summarize_failures(failures).items()
        )
        sections.append(
            f"WARNING: {len(failures)} (spec, technique) cells failed and "
            f"were scored as unrepaired [{codes}]"
        )
        sections.append("")
    sections.append(f"report generated in {time.time() - started:.0f}s")
    return StudyReport(
        arepair=arepair, alloy4fun=alloy4fun, text="\n".join(sections)
    )
