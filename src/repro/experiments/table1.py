"""Table I reproduction: REP counts per technique per benchmark/domain."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.paper_values import (
    PAPER_TABLE1_A4F,
    PAPER_TABLE1_A4F_TOTAL,
    PAPER_TABLE1_AREPAIR,
    PAPER_TABLE1_AREPAIR_TOTAL,
    TECHNIQUE_ORDER,
)
from repro.experiments.runner import ResultMatrix


@dataclass
class Table1:
    """Computed Table I: per-domain and summary REP counts.

    ``techniques`` defaults to the paper's twelve columns; a subset run
    (``repro table1 --techniques ...``) renders only what it measured.
    """

    arepair: ResultMatrix
    alloy4fun: ResultMatrix
    techniques: list[str] = field(
        default_factory=lambda: list(TECHNIQUE_ORDER)
    )

    def domain_counts(self, matrix: ResultMatrix) -> dict[str, dict[str, int]]:
        domains: dict[str, dict[str, int]] = {}
        for spec in matrix.specs:
            domains.setdefault(spec.domain, {})
        for domain in domains:
            row = {"total": sum(1 for s in matrix.specs if s.domain == domain)}
            for technique in self.techniques:
                row[technique] = matrix.rep_count(technique, domain)
            domains[domain] = row
        return domains

    def summary(self, matrix: ResultMatrix) -> dict[str, int]:
        row = {"total": len(matrix.specs)}
        for technique in self.techniques:
            row[technique] = matrix.rep_count(technique)
        return row

    def summary_ratios(self) -> dict[str, float]:
        """The §IV-A headline ratios, measured (0 for unmeasured columns)."""
        arepair = self.summary(self.arepair)
        alloy4fun = self.summary(self.alloy4fun)
        return {
            "multi_round_best_arepair": max(
                arepair.get(f"Multi-Round_{k}", 0)
                for k in ("None", "Generic", "Auto")
            )
            / max(arepair["total"], 1),
            "multi_round_best_a4f": max(
                alloy4fun.get(f"Multi-Round_{k}", 0)
                for k in ("None", "Generic", "Auto")
            )
            / max(alloy4fun["total"], 1),
            "atr_a4f": alloy4fun.get("ATR", 0) / max(alloy4fun["total"], 1),
            "arepair_own_benchmark": arepair.get("ARepair", 0)
            / max(arepair["total"], 1),
        }


def render_table1(table: Table1) -> str:
    """Text rendering in the layout of the paper's Table I, with the
    published summary row alongside for shape comparison."""
    lines: list[str] = []
    columns = table.techniques
    header = f"{'domain':<14}{'total':>7}" + "".join(
        f"{name.split('_')[-1][:9]:>10}" for name in columns
    )
    lines.append("Table I — REP counts (measured)")
    lines.append("Columns: " + ", ".join(columns))
    lines.append("")
    for benchmark_name, matrix, paper_summary, paper_total in (
        ("Alloy4Fun", table.alloy4fun, PAPER_TABLE1_A4F, PAPER_TABLE1_A4F_TOTAL),
        ("ARepair", table.arepair, PAPER_TABLE1_AREPAIR, PAPER_TABLE1_AREPAIR_TOTAL),
    ):
        lines.append(f"== {benchmark_name} benchmark ==")
        lines.append(header)
        for domain, row in sorted(table.domain_counts(matrix).items()):
            cells = "".join(f"{row[t]:>10}" for t in columns)
            lines.append(f"{domain:<14}{row['total']:>7}{cells}")
        summary = table.summary(matrix)
        cells = "".join(f"{summary[t]:>10}" for t in columns)
        lines.append(f"{'SUMMARY':<14}{summary['total']:>7}{cells}")
        scale = summary["total"] / paper_total if paper_total else 1.0
        paper_cells = "".join(
            f"{round(paper_summary.get(t, 0) * scale):>10}" for t in columns
        )
        lines.append(
            f"{'paper(scaled)':<14}{round(paper_total * scale):>7}{paper_cells}"
        )
        lines.append("")
    ratios = table.summary_ratios()
    lines.append("Headline ratios (measured vs paper):")
    lines.append(
        f"  best Multi-Round on ARepair benchmark: "
        f"{ratios['multi_round_best_arepair']:.1%} (paper 76.3%)"
    )
    lines.append(
        f"  best Multi-Round on Alloy4Fun: "
        f"{ratios['multi_round_best_a4f']:.1%} (paper 69.6%)"
    )
    lines.append(f"  ATR on Alloy4Fun: {ratios['atr_a4f']:.1%} (paper 66.4%)")
    lines.append(
        f"  ARepair on its own benchmark: "
        f"{ratios['arepair_own_benchmark']:.1%} (paper 23.7%)"
    )
    return "\n".join(lines)


def compute_table1(
    arepair: ResultMatrix,
    alloy4fun: ResultMatrix,
    techniques: list[str] | None = None,
) -> Table1:
    return Table1(
        arepair=arepair,
        alloy4fun=alloy4fun,
        techniques=list(techniques) if techniques else list(TECHNIQUE_ORDER),
    )
