"""The experiment engine: run every technique over a benchmark suite.

One pass produces a :class:`ResultMatrix` — per (specification, technique):
the REP outcome against the ground truth plus TM/SM similarity of whatever
text the technique produced.  Every table and figure of the paper is a
projection of this matrix, so it is computed once and cached as JSON.
"""

from __future__ import annotations

import hashlib
import json
import sys
import time
from dataclasses import dataclass, field

from repro.analyzer.analyzer import Analyzer
from repro.benchmarks.cache import cache_dir, load_benchmark
from repro.benchmarks.faults import FaultySpec
from repro.llm.client import RetryingClient
from repro.llm.mock_gpt import GPT35_PROFILE, GPT4_PROFILE, MockGPT
from repro.llm.prompts import FeedbackLevel, PromptSetting
from repro.metrics.bleu import token_match
from repro.metrics.rep import rep_outcome, truth_command_outcomes
from repro.metrics.syntax_match import syntax_match
from repro.repair.arepair import ARepair
from repro.repair.atr import Atr
from repro.repair.base import RepairTask
from repro.repair.beafix import BeAFix
from repro.repair.icebar import Icebar
from repro.repair.multi_round import MultiRoundLLM
from repro.repair.single_round import SingleRoundLLM
from repro.runtime.errors import CacheCorruptionError
from repro.runtime.guard import FailureRecord, capture_failure, summarize_failures
from repro.runtime.persist import atomic_write_json, load_json
from repro.testing.generation import generate_suite

MATRIX_SCHEMA = "repro-matrix/2"
"""Result-cache schema stamp; bump on any change to the outcome payload so
old caches read as misses instead of crashing a run."""

TRADITIONAL = ["ARepair", "ICEBAR", "BeAFix", "ATR"]
SINGLE_ROUND = [f"Single-Round_{s.value}" for s in PromptSetting]
MULTI_ROUND = [f"Multi-Round_{f.value}" for f in FeedbackLevel]
ALL_TECHNIQUES = TRADITIONAL + SINGLE_ROUND + MULTI_ROUND


@dataclass
class SpecOutcome:
    """One technique's result on one specification."""

    spec_id: str
    technique: str
    rep: int
    tm: float
    sm: float
    status: str
    elapsed: float


@dataclass
class ResultMatrix:
    """All outcomes for one benchmark run."""

    benchmark: str
    seed: int
    scale: float
    specs: list[FaultySpec] = field(default_factory=list)
    outcomes: dict[str, dict[str, SpecOutcome]] = field(default_factory=dict)
    """spec_id -> technique -> outcome"""
    failures: list[FailureRecord] = field(default_factory=list)
    """Crash-isolated cell failures; the corresponding outcomes carry
    ``status="crashed"`` and count as unrepaired."""

    def repaired_ids(self, technique: str) -> set[str]:
        return {
            spec_id
            for spec_id, row in self.outcomes.items()
            if technique in row and row[technique].rep == 1
        }

    def rep_count(self, technique: str, domain: str | None = None) -> int:
        count = 0
        domains = {s.spec_id: s.domain for s in self.specs}
        for spec_id, row in self.outcomes.items():
            if domain is not None and domains.get(spec_id) != domain:
                continue
            if technique in row and row[technique].rep == 1:
                count += 1
        return count

    def similarity_series(self, technique: str, metric: str = "tm") -> list[float]:
        """Per-spec similarity values, ordered by spec_id."""
        values = []
        for spec in self.specs:
            outcome = self.outcomes.get(spec.spec_id, {}).get(technique)
            if outcome is None:
                continue
            values.append(outcome.tm if metric == "tm" else outcome.sm)
        return values

    def mean_similarity(self, technique: str, metric: str = "tm") -> float:
        series = self.similarity_series(technique, metric)
        return sum(series) / len(series) if series else 0.0

    def failure_summary(self) -> dict[str, int]:
        """Count of crash-isolated failures per error code."""
        return summarize_failures(self.failures)


def _seed_for(spec: FaultySpec, technique: str, seed: int) -> int:
    digest = hashlib.sha256(
        f"{seed}:{spec.spec_id}:{technique}".encode()
    ).digest()
    return int.from_bytes(digest[:4], "big")


def _arepair_suite_size(spec: FaultySpec) -> int:
    """AUnit suite size for bare ARepair, per benchmark.

    The ARepair benchmark ships with author-written AUnit suites (strong);
    Alloy4Fun has none, so the study's ARepair runs there relied on minimal
    generated suites — the source of ARepair's extreme overfitting."""
    return 4 if spec.benchmark == "arepair" else 1


def _icebar_suite_size(spec: FaultySpec) -> int:
    """ICEBAR seeds its refinement loop with a moderate suite and grows it
    from counterexamples, so its initial suite matters less."""
    return 5 if spec.benchmark == "arepair" else 3


def _make_tool(technique: str, spec: FaultySpec, seed: int):
    tool_seed = _seed_for(spec, technique, seed)
    if technique == "ARepair":
        size = _arepair_suite_size(spec)
        suite = generate_suite(
            Analyzer(spec.truth_source),
            positives=size,
            negatives=size,
            seed=tool_seed,
        )
        return ARepair(suite)
    if technique == "ICEBAR":
        size = _icebar_suite_size(spec)
        suite = generate_suite(
            Analyzer(spec.truth_source),
            positives=size,
            negatives=size,
            seed=tool_seed,
        )
        return Icebar(suite)
    if technique == "BeAFix":
        return BeAFix()
    if technique == "ATR":
        return Atr()
    if technique.startswith("Single-Round_"):
        setting = PromptSetting(technique.removeprefix("Single-Round_"))
        # The retry wrapper is a pass-through over the offline mock but
        # keeps the call path identical to a real-API deployment.
        client = RetryingClient(MockGPT(seed=tool_seed, profile=GPT35_PROFILE))
        return SingleRoundLLM(client, setting, spec.hints)
    if technique.startswith("Multi-Round_"):
        feedback = FeedbackLevel(technique.removeprefix("Multi-Round_"))
        client = RetryingClient(MockGPT(seed=tool_seed, profile=GPT4_PROFILE))
        return MultiRoundLLM(client, feedback)
    raise ValueError(f"unknown technique {technique!r}")


def run_spec(
    spec: FaultySpec,
    technique: str,
    seed: int,
    truth_outcomes: list[bool] | None = None,
) -> SpecOutcome:
    """Run one technique on one faulty specification and score the result."""
    start = time.perf_counter()
    tool = _make_tool(technique, spec, seed)
    task = RepairTask.from_source(spec.faulty_source)
    result = tool.repair(task)
    final_text = result.final_source(task)
    outcome = rep_outcome(final_text, spec.truth_source, truth_outcomes)
    tm = token_match(final_text, spec.truth_source)
    sm = syntax_match(final_text, spec.truth_source)
    return SpecOutcome(
        spec_id=spec.spec_id,
        technique=technique,
        rep=outcome.rep,
        tm=tm,
        sm=sm,
        status=result.status.value,
        elapsed=time.perf_counter() - start,
    )


def _crashed_outcome(spec: FaultySpec, technique: str) -> SpecOutcome:
    """The sentinel outcome for a crash-isolated cell: scored as a miss."""
    return SpecOutcome(
        spec_id=spec.spec_id,
        technique=technique,
        rep=0,
        tm=0.0,
        sm=0.0,
        status="crashed",
        elapsed=0.0,
    )


def run_matrix(
    benchmark: str,
    scale: float = 1.0,
    seed: int = 0,
    techniques: list[str] | None = None,
    use_cache: bool = True,
    progress: bool = False,
    fail_fast: bool = False,
) -> ResultMatrix:
    """Run (or load from cache) the full technique × spec matrix.

    Every (spec, technique) cell is crash-isolated: an exception in one
    cell is captured as a :class:`FailureRecord` plus a ``"crashed"``
    outcome, and the run continues.  Pass ``fail_fast=True`` (the CI /
    debugging mode) to propagate the first failure instead.
    """
    techniques = techniques or ALL_TECHNIQUES
    specs = load_benchmark(benchmark, seed=seed, scale=scale)
    path = cache_dir() / _matrix_key(benchmark, seed, scale, techniques)
    matrix = ResultMatrix(benchmark=benchmark, seed=seed, scale=scale, specs=specs)
    if use_cache and path.exists():
        try:
            _load_outcomes(matrix, path)
        except CacheCorruptionError as error:
            print(
                f"warning: discarding unusable result cache: {error}",
                file=sys.stderr,
            )
            matrix.outcomes.clear()
            matrix.failures.clear()
        missing = [
            t
            for t in techniques
            if any(t not in matrix.outcomes.get(s.spec_id, {}) for s in specs)
        ]
        if not missing:
            return matrix

    truth_cache: dict[str, list[bool] | None] = {}
    total = len(specs) * len(techniques)
    done = 0
    for spec in specs:
        row = matrix.outcomes.setdefault(spec.spec_id, {})
        if spec.truth_source not in truth_cache:
            try:
                truth_cache[spec.truth_source] = truth_command_outcomes(
                    spec.truth_source
                )
            except Exception as error:
                if fail_fast:
                    raise
                matrix.failures.append(
                    capture_failure(f"{spec.spec_id}:truth-oracle", error)
                )
                truth_cache[spec.truth_source] = None
        for technique in techniques:
            if technique in row:
                done += 1
                continue
            if truth_cache[spec.truth_source] is None:
                # The ground truth itself would not analyze; every
                # technique on this spec is unscorable.
                row[technique] = _crashed_outcome(spec, technique)
                done += 1
                continue
            try:
                row[technique] = run_spec(
                    spec, technique, seed, truth_cache[spec.truth_source]
                )
            except Exception as error:
                if fail_fast:
                    raise
                matrix.failures.append(
                    capture_failure(f"{spec.spec_id}:{technique}", error)
                )
                row[technique] = _crashed_outcome(spec, technique)
            done += 1
            if progress and done % 25 == 0:
                print(f"  [{benchmark}] {done}/{total} outcomes", flush=True)
    if progress and matrix.failures:
        print(
            f"  [{benchmark}] {len(matrix.failures)} isolated failures: "
            f"{matrix.failure_summary()}",
            flush=True,
        )
    if use_cache:
        _save_outcomes(matrix, path)
    return matrix


def _matrix_key(
    benchmark: str, seed: int, scale: float, techniques: list[str]
) -> str:
    digest = hashlib.sha256(
        json.dumps(
            {"b": benchmark, "s": seed, "sc": scale}, sort_keys=True
        ).encode()
    ).hexdigest()[:12]
    return f"matrix-{benchmark}-{seed}-{digest}.json"


def _save_outcomes(matrix: ResultMatrix, path) -> None:
    payload = {
        "outcomes": {
            spec_id: {
                technique: {
                    "rep": o.rep,
                    "tm": o.tm,
                    "sm": o.sm,
                    "status": o.status,
                    "elapsed": o.elapsed,
                }
                for technique, o in row.items()
            }
            for spec_id, row in matrix.outcomes.items()
        },
        "failures": [record.to_json() for record in matrix.failures],
    }
    atomic_write_json(path, payload, schema=MATRIX_SCHEMA)


def _load_outcomes(matrix: ResultMatrix, path) -> None:
    """Populate ``matrix`` from a cache file.

    Raises :class:`CacheCorruptionError` for anything unusable — a
    truncated file, a pre-versioning cache, a record missing fields —
    so the caller regenerates instead of crashing (or worse, reporting
    on partial garbage).
    """
    payload = load_json(path, schema=MATRIX_SCHEMA)
    try:
        for spec_id, row in payload["outcomes"].items():
            matrix.outcomes[spec_id] = {
                technique: SpecOutcome(
                    spec_id=spec_id,
                    technique=technique,
                    rep=data["rep"],
                    tm=data["tm"],
                    sm=data["sm"],
                    status=data["status"],
                    elapsed=data["elapsed"],
                )
                for technique, data in row.items()
            }
        matrix.failures.extend(
            FailureRecord.from_json(record) for record in payload["failures"]
        )
    except (KeyError, TypeError, AttributeError) as error:
        raise CacheCorruptionError(
            f"malformed result record in {path.name}: {error!r}",
            context={"path": str(path)},
        ) from error


def combined_matrices(
    scale: float = 1.0, seed: int = 0, progress: bool = False
) -> tuple[ResultMatrix, ResultMatrix]:
    """Both benchmarks' matrices (ARepair first, then Alloy4Fun)."""
    arepair = run_matrix("arepair", scale=1.0, seed=seed, progress=progress)
    alloy4fun = run_matrix("alloy4fun", scale=scale, seed=seed, progress=progress)
    return arepair, alloy4fun
