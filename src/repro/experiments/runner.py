"""The experiment engine: run every technique over a benchmark suite.

One pass produces a :class:`ResultMatrix` — per (specification, technique):
the REP outcome against the ground truth plus TM/SM similarity of whatever
text the technique produced.  Every table and figure of the paper is a
projection of this matrix, so it is computed once and cached as JSON.

A run is described by a :class:`RunConfig` and executed by a pluggable
backend (:mod:`repro.experiments.executor`): work is sharded by
specification, shards fan out over ``config.jobs`` workers, and each
completed shard is flushed to the result cache — a killed run resumes
from its completed shards.  Parallelism never changes the result: cells
are seeded per (spec, technique) via
:func:`repro.repair.registry.cell_seed`, so serial and parallel runs
produce identical matrices, and the cache key deliberately excludes
``jobs``/``executor``.
"""

from __future__ import annotations

import hashlib
import json
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from repro import obs
from repro.benchmarks.cache import cache_dir, load_benchmark
from repro.obs.export import write_trace
from repro.obs.trace import Span
from repro.benchmarks.faults import FaultySpec
from repro.chaos.plan import FaultPlan
from repro.experiments.executor import ShardTask, create_executor
from repro.experiments.schedule import SCHEDULES, schedule_shards
from repro.experiments.progress import (
    NULL_LISTENER,
    ConsoleListener,
    ProgressListener,
)
from repro.metrics.bleu import token_match
from repro.metrics.rep import rep_outcome
from repro.metrics.syntax_match import syntax_match
from repro.repair import registry
from repro.repair.base import RepairTask
from repro.repair.registry import (
    MULTI_ROUND,
    SINGLE_ROUND,
    TRADITIONAL,
)
from repro.runtime.errors import CacheCorruptionError
from repro.runtime.guard import FailureRecord, summarize_failures
from repro.runtime.persist import atomic_write_json, load_json

MATRIX_SCHEMA = "repro-matrix/3"
"""Result-cache schema stamp; bump on any change to the outcome payload or
the cache-key recipe so old caches read as misses instead of crashing (or
silently colliding with) a run."""

ALL_TECHNIQUES = registry.all_techniques()
"""The default matrix columns, derived from the technique registry."""

_EXECUTOR_KINDS = ("auto", "serial", "thread", "process")


@dataclass(frozen=True)
class RunConfig:
    """Everything that defines one matrix run.

    Only ``benchmark``, ``scale``, ``seed``, and ``techniques`` affect the
    *result* (and hence the cache key); the remaining fields steer how the
    result is computed — parallelism, caching, failure policy, progress.
    """

    benchmark: str
    scale: float = 1.0
    seed: int = 0
    techniques: tuple[str, ...] | None = None
    """``None`` means every standard registry technique."""
    jobs: int = 1
    executor: str = "auto"
    """``auto`` | ``serial`` | ``thread`` | ``process``; ``auto`` is serial
    for ``jobs=1`` and a process pool otherwise."""
    use_cache: bool = True
    flush_every: int = 1
    """Flush the result cache every N completed shards (1 = after each)."""
    fail_fast: bool = False
    listener: ProgressListener | None = None
    """Progress callbacks; ``None`` is silent (the library default)."""
    trace: bool = False
    """Capture spans and metrics for every executed cell.  Never changes
    the computed matrix — only whether telemetry is collected and a trace
    file written."""
    trace_out: str | None = None
    """Trace file destination (implies ``trace``); default
    ``trace-<benchmark>-seed<seed>.jsonl`` in the working directory."""
    static_prune: bool = True
    """Let the repair tools veto statically dead candidates
    (:mod:`repro.analysis`) before evaluator/solver work.  Part of the
    cache key when disabled — turning it off changes candidate streams
    and hence results (the ``--no-static-prune`` ablation)."""
    incremental: bool = True
    """Evaluate repair candidates through the shared incremental solve
    session (:mod:`repro.analyzer.session`).  Deliberately *not* part of
    the cache key: the session answers verdict-only queries and repair
    outcomes are bit-identical with it on or off, so both modes may share
    cached results (the ``--no-incremental`` ablation only changes how
    long cells take)."""
    canonical: bool = True
    """Deduplicate semantically equivalent candidates by canonical form
    (:mod:`repro.analysis.canon`) so the oracle solves one representative
    per equivalence class.  Like ``incremental`` — and unlike
    ``static_prune`` — *not* part of the cache key: replayed verdicts keep
    the oracle-budget traversal byte-identical, so both modes share cached
    results (the ``--no-canon`` ablation only changes solver work)."""
    shard_timeout: float | None = None
    """Wall-clock seconds one shard (one spec's pending cells) may take.
    Overdue shards record a ``shard.timeout`` failure and ``"timeout"``
    outcomes for their pending cells; neither is cached (a timeout is an
    execution artifact, not a result), so a later run retries them."""
    schedule: str = "fifo"
    """Shard ordering: ``fifo`` (benchmark order) or ``longest-first``
    (schedule by historical per-spec cost from a prior trace or cached
    matrix — shortens parallel tail latency).  Never affects results,
    only wall-clock: executors yield in submission order either way."""
    chaos: FaultPlan | None = None
    """Deterministic fault-injection plan (:mod:`repro.chaos`), installed
    around every shard.  Folded into the cache key — injected faults
    change outcomes, and a chaos matrix must never collide with a clean
    one."""

    def __post_init__(self) -> None:
        if self.techniques is not None:
            object.__setattr__(self, "techniques", tuple(self.techniques))
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")
        if self.executor not in _EXECUTOR_KINDS:
            raise ValueError(
                f"executor must be one of {_EXECUTOR_KINDS}, got {self.executor!r}"
            )
        if self.flush_every < 1:
            raise ValueError(f"flush_every must be >= 1, got {self.flush_every}")
        if self.shard_timeout is not None and self.shard_timeout <= 0:
            raise ValueError(
                f"shard_timeout must be > 0, got {self.shard_timeout}"
            )
        if self.schedule not in SCHEDULES:
            raise ValueError(
                f"schedule must be one of {SCHEDULES}, got {self.schedule!r}"
            )

    def technique_list(self) -> list[str]:
        return list(self.techniques) if self.techniques else list(ALL_TECHNIQUES)

    @property
    def tracing(self) -> bool:
        return self.trace or self.trace_out is not None

    def trace_path(self) -> Path:
        if self.trace_out is not None:
            return Path(self.trace_out)
        return Path.cwd() / f"trace-{self.benchmark}-seed{self.seed}.jsonl"


@dataclass
class SpecOutcome:
    """One technique's result on one specification."""

    spec_id: str
    technique: str
    rep: int
    tm: float
    sm: float
    status: str
    elapsed: float
    error_code: str | None = None
    """Taxonomy code when ``status == "error"`` came from a crash the
    repair layer isolated.  Runtime-only: excluded from the matrix cache
    (schema unchanged), consumed by the service's circuit breakers."""


@dataclass
class ResultMatrix:
    """All outcomes for one benchmark run."""

    benchmark: str
    seed: int
    scale: float
    specs: list[FaultySpec] = field(default_factory=list)
    outcomes: dict[str, dict[str, SpecOutcome]] = field(default_factory=dict)
    """spec_id -> technique -> outcome"""
    failures: list[FailureRecord] = field(default_factory=list)
    """Crash-isolated cell failures; the corresponding outcomes carry
    ``status="crashed"`` and count as unrepaired."""
    telemetry: dict | None = None
    """Present only on traced runs: the merged metrics snapshot
    (``"metrics"``) and the trace file path (``"trace_path"``).  Never
    cached — cached cells produced no telemetry to begin with."""
    chaos_events: list[dict] = field(default_factory=list)
    """Every injected fault that fired during this run (chaos runs only):
    the audit trail the invariant checker cross-references against
    ``failures`` and ``outcomes``."""

    def repaired_ids(self, technique: str) -> set[str]:
        return {
            spec_id
            for spec_id, row in self.outcomes.items()
            if technique in row and row[technique].rep == 1
        }

    def rep_count(self, technique: str, domain: str | None = None) -> int:
        count = 0
        domains = {s.spec_id: s.domain for s in self.specs}
        for spec_id, row in self.outcomes.items():
            if domain is not None and domains.get(spec_id) != domain:
                continue
            if technique in row and row[technique].rep == 1:
                count += 1
        return count

    def similarity_series(self, technique: str, metric: str = "tm") -> list[float]:
        """Per-spec similarity values, ordered by spec_id."""
        values = []
        for spec in self.specs:
            outcome = self.outcomes.get(spec.spec_id, {}).get(technique)
            if outcome is None:
                continue
            values.append(outcome.tm if metric == "tm" else outcome.sm)
        return values

    def mean_similarity(self, technique: str, metric: str = "tm") -> float:
        series = self.similarity_series(technique, metric)
        return sum(series) / len(series) if series else 0.0

    def failure_summary(self) -> dict[str, int]:
        """Count of crash-isolated failures per error code."""
        return summarize_failures(self.failures)


def derive_trace_out(
    trace_out: str | None, trace: bool, benchmark: str, seed: int
) -> str | None:
    """Per-benchmark trace destination for multi-benchmark drivers.

    A single ``--trace-out`` cannot serve two matrices (the second would
    clobber the first), so the benchmark name is folded into the stem;
    with bare ``--trace`` the default ``trace-<benchmark>-seed<seed>``
    naming already keeps the files apart.
    """
    if trace_out is None:
        return f"trace-{benchmark}-seed{seed}.jsonl" if trace else None
    path = Path(trace_out)
    suffix = path.suffix or ".jsonl"
    return str(path.with_name(f"{path.stem}-{benchmark}{suffix}"))


def run_spec(
    spec: FaultySpec,
    technique: str,
    seed: int,
    truth_outcomes: list[bool] | None = None,
) -> SpecOutcome:
    """Run one technique on one faulty specification and score the result."""
    start = time.perf_counter()
    tool = registry.create(technique, spec, seed)
    task = RepairTask.from_source(spec.faulty_source)
    result = tool.repair(task)
    final_text = result.final_source(task)
    outcome = rep_outcome(final_text, spec.truth_source, truth_outcomes)
    tm = token_match(final_text, spec.truth_source)
    sm = syntax_match(final_text, spec.truth_source)
    return SpecOutcome(
        spec_id=spec.spec_id,
        technique=technique,
        rep=outcome.rep,
        tm=tm,
        sm=sm,
        status=result.status.value,
        elapsed=time.perf_counter() - start,
        error_code=result.error_code,
    )


def _crashed_outcome(spec: FaultySpec, technique: str) -> SpecOutcome:
    """The sentinel outcome for a crash-isolated cell: scored as a miss."""
    return SpecOutcome(
        spec_id=spec.spec_id,
        technique=technique,
        rep=0,
        tm=0.0,
        sm=0.0,
        status="crashed",
        elapsed=0.0,
    )


def _timeout_outcome(spec: FaultySpec, technique: str) -> SpecOutcome:
    """The sentinel for a cell abandoned by a shard deadline: a miss, like
    a crash, but distinguishable — and never cached, so a rerun without
    the deadline (or on a faster machine) recomputes it."""
    return SpecOutcome(
        spec_id=spec.spec_id,
        technique=technique,
        rep=0,
        tm=0.0,
        sm=0.0,
        status="timeout",
        elapsed=0.0,
    )


def run_matrix(config: RunConfig) -> ResultMatrix:
    """Run (or load from cache) the full technique × spec matrix.

    Takes a :class:`RunConfig` and nothing else — the legacy shape (a
    benchmark name plus loose keyword arguments) was removed after its
    deprecation cycle.

    Every (spec, technique) cell is crash-isolated: an exception in one
    cell is captured as a :class:`FailureRecord` plus a ``"crashed"``
    outcome, and the run continues.  Set ``fail_fast=True`` (the CI /
    debugging mode) to propagate the first failure instead.
    """
    if not isinstance(config, RunConfig):
        raise TypeError(
            "run_matrix expects a RunConfig; the legacy "
            "run_matrix(benchmark, ...) keyword shape was removed — "
            f"got {type(config).__name__}"
        )
    return _run(config)


def _run(config: RunConfig) -> ResultMatrix:
    listener = config.listener or NULL_LISTENER
    techniques = config.technique_list()
    unknown = [t for t in techniques if not registry.is_registered(t)]
    if unknown:
        raise ValueError(f"unknown technique(s): {', '.join(unknown)}")
    specs = load_benchmark(config.benchmark, seed=config.seed, scale=config.scale)
    path = cache_dir() / _matrix_key(
        config.benchmark,
        config.seed,
        config.scale,
        techniques,
        static_prune=config.static_prune,
        chaos_digest=config.chaos.digest() if config.chaos else None,
    )
    matrix = ResultMatrix(
        benchmark=config.benchmark,
        seed=config.seed,
        scale=config.scale,
        specs=specs,
    )
    if config.use_cache and path.exists():
        try:
            _load_outcomes(matrix, path)
        except CacheCorruptionError as error:
            print(
                f"warning: discarding unusable result cache: {error}",
                file=sys.stderr,
            )
            matrix.outcomes.clear()
            matrix.failures.clear()

    # Shard by specification: each shard carries only that spec's missing
    # techniques, so a resumed run re-executes nothing it already has.
    total = len(specs) * len(techniques)
    done = 0
    shards: list[ShardTask] = []
    tracing = config.tracing
    for spec in specs:
        row = matrix.outcomes.get(spec.spec_id, {})
        missing = tuple(t for t in techniques if t not in row)
        done += len(techniques) - len(missing)
        if missing:
            shards.append(
                ShardTask(
                    spec=spec,
                    techniques=missing,
                    seed=config.seed,
                    fail_fast=config.fail_fast,
                    trace=tracing,
                    static_prune=config.static_prune,
                    incremental=config.incremental,
                    canonical=config.canonical,
                    shard_timeout=config.shard_timeout,
                    chaos=config.chaos,
                )
            )
    if not shards:
        return matrix
    shards = schedule_shards(shards, config, matrix)

    # Run-level telemetry accumulators (only allocated when tracing):
    # worker shards return picklable span/metric payloads, merged here so
    # thread and process runs aggregate identically to serial ones.
    run_spans: list[Span] = []
    run_metrics = obs.MetricsRegistry() if tracing else None

    backend = create_executor(config.executor, config.jobs)
    shards_done = 0
    try:
        for result in backend.run(shards):
            row = matrix.outcomes.setdefault(result.spec_id, {})
            row.update(result.outcomes)
            matrix.failures.extend(result.failures)
            matrix.chaos_events.extend(result.chaos_events)
            for failure in result.failures:
                listener.on_failure(config.benchmark, failure)
            for outcome in result.outcomes.values():
                done += 1
                listener.on_cell(config.benchmark, outcome, done, total)
            shards_done += 1
            listener.on_shard_done(
                config.benchmark, result.spec_id, shards_done, len(shards)
            )
            # Defensive dispatch: on_metrics post-dates the listener
            # protocol, and third-party listeners may not implement it.
            on_metrics = getattr(listener, "on_metrics", None)
            if on_metrics is not None:
                on_metrics(
                    config.benchmark,
                    {
                        "spec_id": result.spec_id,
                        "elapsed": result.elapsed,
                        "cells": len(result.outcomes),
                    },
                )
            if run_metrics is not None:
                run_spans.extend(
                    Span.from_json(payload) for payload in result.spans
                )
                run_metrics.merge(result.metrics)
            if config.use_cache and (
                shards_done % config.flush_every == 0
                or shards_done == len(shards)
            ):
                # Incremental durability: a killed run resumes from the
                # last flushed shard instead of losing everything.
                _save_outcomes(matrix, path)
    except KeyboardInterrupt:
        # Ctrl-C is a graceful stop, not a crash: flush everything already
        # computed (regardless of flush_every cadence) so the next run
        # resumes from here, say what survived, and let the interrupt
        # propagate to the caller's exit handling.
        if config.use_cache:
            _save_outcomes(matrix, path)
        cells = sum(len(row) for row in matrix.outcomes.values())
        print(
            f"\ninterrupted: {shards_done}/{len(shards)} shard(s) finished, "
            f"{cells} cell(s) "
            + (
                f"flushed to {path.name} — a rerun resumes from there"
                if config.use_cache
                else "computed but not cached (--no-cache run)"
            ),
            file=sys.stderr,
        )
        raise

    if run_metrics is not None:
        trace_path = config.trace_path()
        write_trace(
            trace_path,
            run_spans,
            run_metrics,
            meta={
                "benchmark": config.benchmark,
                "seed": config.seed,
                "scale": config.scale,
                "jobs": config.jobs,
                "executor": config.executor,
            },
        )
        matrix.telemetry = {
            "metrics": run_metrics.snapshot(),
            "trace_path": str(trace_path),
        }
    return matrix


def _matrix_key(
    benchmark: str,
    seed: int,
    scale: float,
    techniques: Sequence[str],
    *,
    static_prune: bool = True,
    chaos_digest: str | None = None,
) -> str:
    # The key folds in the technique *set* (sorted: order cannot change
    # outcomes) so a subset run and a full run never collide on one file.
    # Execution parameters (jobs, executor) are deliberately excluded:
    # they must not change the result.  The static-prune bit *does* change
    # candidate streams, so the ablation (``static_prune=False``) gets its
    # own key; the default keeps the historical key shape so committed
    # caches stay addressable.  A chaos plan changes outcomes by design,
    # so its digest gets its own key for the same reason.
    payload = {"b": benchmark, "s": seed, "sc": scale, "t": sorted(techniques)}
    if not static_prune:
        payload["sp"] = False
    if chaos_digest is not None:
        payload["ch"] = chaos_digest
    digest = hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()
    ).hexdigest()[:12]
    return f"matrix-{benchmark}-{seed}-{digest}.json"


def _save_outcomes(matrix: ResultMatrix, path) -> None:
    # Timeout cells (and their shard.timeout failure records) are
    # execution artifacts — a rerun on a faster machine, or without the
    # deadline, should recompute them — so they never enter the cache.
    payload = {
        "outcomes": {
            spec_id: {
                technique: {
                    "rep": o.rep,
                    "tm": o.tm,
                    "sm": o.sm,
                    "status": o.status,
                    "elapsed": o.elapsed,
                }
                for technique, o in row.items()
                if o.status != "timeout"
            }
            for spec_id, row in matrix.outcomes.items()
        },
        "failures": [
            record.to_json()
            for record in matrix.failures
            if record.code != "shard.timeout"
        ],
    }
    atomic_write_json(path, payload, schema=MATRIX_SCHEMA)


def _load_outcomes(matrix: ResultMatrix, path) -> None:
    """Populate ``matrix`` from a cache file.

    Raises :class:`CacheCorruptionError` for anything unusable — a
    truncated file, a pre-versioning cache, a record missing fields —
    so the caller regenerates instead of crashing (or worse, reporting
    on partial garbage).
    """
    payload = load_json(path, schema=MATRIX_SCHEMA)
    try:
        for spec_id, row in payload["outcomes"].items():
            matrix.outcomes[spec_id] = {
                technique: SpecOutcome(
                    spec_id=spec_id,
                    technique=technique,
                    rep=data["rep"],
                    tm=data["tm"],
                    sm=data["sm"],
                    status=data["status"],
                    elapsed=data["elapsed"],
                )
                for technique, data in row.items()
            }
        matrix.failures.extend(
            FailureRecord.from_json(record) for record in payload["failures"]
        )
    except (KeyError, TypeError, AttributeError) as error:
        raise CacheCorruptionError(
            f"malformed result record in {path.name}: {error!r}",
            context={"path": str(path)},
        ) from error


def combined_matrices(
    scale: float = 1.0,
    seed: int = 0,
    progress: bool = False,
    jobs: int = 1,
    executor: str = "auto",
    listener: ProgressListener | None = None,
) -> tuple[ResultMatrix, ResultMatrix]:
    """Both benchmarks' matrices (ARepair first, then Alloy4Fun)."""
    if listener is None and progress:
        listener = ConsoleListener()
    arepair = run_matrix(
        RunConfig(
            benchmark="arepair", scale=1.0, seed=seed,
            jobs=jobs, executor=executor, listener=listener,
        )
    )
    alloy4fun = run_matrix(
        RunConfig(
            benchmark="alloy4fun", scale=scale, seed=seed,
            jobs=jobs, executor=executor, listener=listener,
        )
    )
    return arepair, alloy4fun
