"""Published numbers from the paper, for paper-vs-measured reporting.

Values are transcribed from Table I, Figure 2, Figure 3, and Table II of
"Towards More Dependable Specifications" (DSN 2025).
"""

from __future__ import annotations

from repro.repair.registry import MULTI_ROUND, SINGLE_ROUND, TRADITIONAL

TECHNIQUE_ORDER = TRADITIONAL + SINGLE_ROUND + MULTI_ROUND
"""The paper's column order — identical to the registry's standard
technique order (traditional, then single-round settings, then
multi-round feedback levels)."""

# Table I: REP counts per benchmark (summary rows).
PAPER_TABLE1_A4F_TOTAL = 1936
PAPER_TABLE1_AREPAIR_TOTAL = 38
PAPER_TABLE1_A4F: dict[str, int] = {
    "ARepair": 185,
    "ICEBAR": 1051,
    "BeAFix": 981,
    "ATR": 1286,
    "Single-Round_Loc+Fix": 401,
    "Single-Round_Loc": 497,
    "Single-Round_Pass": 303,
    "Single-Round_None": 147,
    "Single-Round_Loc+Pass": 374,
    "Multi-Round_None": 1348,
    "Multi-Round_Generic": 1290,
    "Multi-Round_Auto": 1237,
}
PAPER_TABLE1_AREPAIR: dict[str, int] = {
    "ARepair": 9,
    "ICEBAR": 21,
    "BeAFix": 24,
    "ATR": 22,
    "Single-Round_Loc+Fix": 29,
    "Single-Round_Loc": 20,
    "Single-Round_Pass": 26,
    "Single-Round_None": 4,
    "Single-Round_Loc+Pass": 11,
    "Multi-Round_None": 24,
    "Multi-Round_Generic": 29,
    "Multi-Round_Auto": 27,
}

# Table I: per-domain breakdown for Alloy4Fun.
PAPER_TABLE1_A4F_DOMAINS: dict[str, dict[str, int]] = {
    "classroom": {
        "total": 999, "ARepair": 88, "ICEBAR": 424, "BeAFix": 387, "ATR": 688,
        "Single-Round_Loc+Fix": 139, "Single-Round_Loc": 231,
        "Single-Round_Pass": 94, "Single-Round_None": 88,
        "Single-Round_Loc+Pass": 162, "Multi-Round_None": 667,
        "Multi-Round_Generic": 593, "Multi-Round_Auto": 553,
    },
    "cv": {
        "total": 138, "ARepair": 2, "ICEBAR": 86, "BeAFix": 82, "ATR": 38,
        "Single-Round_Loc+Fix": 58, "Single-Round_Loc": 50,
        "Single-Round_Pass": 43, "Single-Round_None": 4,
        "Single-Round_Loc+Pass": 53, "Multi-Round_None": 119,
        "Multi-Round_Generic": 117, "Multi-Round_Auto": 117,
    },
    "graphs": {
        "total": 283, "ARepair": 19, "ICEBAR": 237, "BeAFix": 232, "ATR": 260,
        "Single-Round_Loc+Fix": 78, "Single-Round_Loc": 109,
        "Single-Round_Pass": 90, "Single-Round_None": 20,
        "Single-Round_Loc+Pass": 75, "Multi-Round_None": 158,
        "Multi-Round_Generic": 167, "Multi-Round_Auto": 180,
    },
    "lts": {
        "total": 249, "ARepair": 1, "ICEBAR": 73, "BeAFix": 41, "ATR": 70,
        "Single-Round_Loc+Fix": 91, "Single-Round_Loc": 70,
        "Single-Round_Pass": 49, "Single-Round_None": 21,
        "Single-Round_Loc+Pass": 53, "Multi-Round_None": 51,
        "Multi-Round_Generic": 51, "Multi-Round_Auto": 51,
    },
    "production": {
        "total": 61, "ARepair": 27, "ICEBAR": 36, "BeAFix": 56, "ATR": 43,
        "Single-Round_Loc+Fix": 28, "Single-Round_Loc": 32,
        "Single-Round_Pass": 24, "Single-Round_None": 12,
        "Single-Round_Loc+Pass": 26, "Multi-Round_None": 161,
        "Multi-Round_Generic": 170, "Multi-Round_Auto": 158,
    },
    "trash": {
        "total": 206, "ARepair": 48, "ICEBAR": 195, "BeAFix": 183, "ATR": 187,
        "Single-Round_Loc+Fix": 7, "Single-Round_Loc": 5,
        "Single-Round_Pass": 3, "Single-Round_None": 2,
        "Single-Round_Loc+Pass": 5, "Multi-Round_None": 192,
        "Multi-Round_Generic": 192, "Multi-Round_Auto": 178,
    },
}

# Figure 2 headline values quoted in the text.
PAPER_FIGURE2_HIGHLIGHTS = {
    "ATR": {"tm": 0.985, "sm": 0.997},
    "Multi-Round_Generic": {"tm": 0.938, "sm": 0.943},
}

# Figure 3 headline correlations quoted in the text.
PAPER_FIGURE3_HIGHLIGHTS = {
    ("ICEBAR", "ATR"): 0.983,
    ("Multi-Round_Generic", "Multi-Round_Auto"): 0.949,
    "traditional_cluster_min": 0.972,
    "single_round_min": 0.644,
}

# Table II / Figure 4 headline hybrid totals (out of 1,974).
PAPER_HYBRID_HIGHLIGHTS = {
    ("ATR", "Multi-Round_None"): 1677,
    ("ICEBAR", "Multi-Round_None"): 1637,
    ("BeAFix", "Multi-Round_None"): 1609,
    ("ARepair", "Multi-Round_None"): 1424,
}

# Table II: full published hybrid rows (individual, overlap, union).
PAPER_TABLE2: dict[tuple[str, str], tuple[int, int, int, int]] = {
    # (traditional, llm): (trad_repairs, llm_repairs, overlap, union)
    ("ARepair", "Single-Round_Loc+Fix"): (194, 430, 32, 592),
    ("ARepair", "Single-Round_Loc"): (194, 517, 62, 649),
    ("ARepair", "Single-Round_Pass"): (194, 329, 35, 488),
    ("ARepair", "Single-Round_None"): (194, 151, 21, 324),
    ("ARepair", "Single-Round_Loc+Pass"): (194, 385, 27, 552),
    ("ARepair", "Multi-Round_None"): (194, 1372, 142, 1424),
    ("ARepair", "Multi-Round_Generic"): (194, 1319, 137, 1376),
    ("ARepair", "Multi-Round_Auto"): (194, 1264, 122, 1336),
    ("ICEBAR", "Single-Round_Loc+Fix"): (1072, 430, 255, 1247),
    ("ICEBAR", "Single-Round_Loc"): (1072, 517, 322, 1267),
    ("ICEBAR", "Single-Round_Pass"): (1072, 329, 219, 1182),
    ("ICEBAR", "Single-Round_None"): (1072, 151, 98, 1125),
    ("ICEBAR", "Single-Round_Loc+Pass"): (1072, 385, 230, 1227),
    ("ICEBAR", "Multi-Round_None"): (1072, 1372, 807, 1637),
    ("ICEBAR", "Multi-Round_Generic"): (1072, 1319, 788, 1603),
    ("ICEBAR", "Multi-Round_Auto"): (1072, 1264, 746, 1590),
    ("BeAFix", "Single-Round_Loc+Fix"): (1005, 430, 259, 1176),
    ("BeAFix", "Single-Round_Loc"): (1005, 517, 314, 1208),
    ("BeAFix", "Single-Round_Pass"): (1005, 329, 219, 1115),
    ("BeAFix", "Single-Round_None"): (1005, 151, 98, 1058),
    ("BeAFix", "Single-Round_Loc+Pass"): (1005, 385, 227, 1163),
    ("BeAFix", "Multi-Round_None"): (1005, 1372, 768, 1609),
    ("BeAFix", "Multi-Round_Generic"): (1005, 1319, 742, 1582),
    ("BeAFix", "Multi-Round_Auto"): (1005, 1264, 697, 1572),
    ("ATR", "Single-Round_Loc+Fix"): (1308, 430, 296, 1442),
    ("ATR", "Single-Round_Loc"): (1308, 517, 385, 1440),
    ("ATR", "Single-Round_Pass"): (1308, 329, 250, 1387),
    ("ATR", "Single-Round_None"): (1308, 151, 127, 1332),
    ("ATR", "Single-Round_Loc+Pass"): (1308, 385, 109, 1584),
    ("ATR", "Multi-Round_None"): (1308, 1372, 1003, 1677),
    ("ATR", "Multi-Round_Generic"): (1308, 1319, 970, 1657),
    ("ATR", "Multi-Round_Auto"): (1308, 1264, 913, 1659),
}
